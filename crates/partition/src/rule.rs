//! Algorithm 2: rule-base partitioning.
//!
//! ```text
//! Input:  Rule-base created from an ontology
//! Output: Partition of the rule-base
//! 1: Create rule dependency graph: vertex per rule, edge when the head
//!    of a rule contains a clause that is in the body of another rule.
//! 2: Partition the rule-dep graph to minimize edge cut, balance number
//!    of rules in each partition (standard graph partitioning).
//! ```
//!
//! The dependency graph comes from `owlpar-datalog`'s analysis module;
//! edges may be weighted by a predicate histogram ("a priori knowledge
//! about the distribution of different predicates in the dataset can be
//! used to weigh the edges").
//!
//! At run time (Algorithm 3, rule-partitioning flavor) every newly derived
//! triple is matched against the body atoms of the *other* partitions'
//! rules to decide where to send it — [`RulePartitions::consumers`].

use crate::multilevel::{partition_kway, CsrGraph, PartitionOptions};
use owlpar_datalog::analysis::weighted_dependency_graph;
use owlpar_datalog::Rule;
use owlpar_rdf::fx::FxHashMap;
use owlpar_rdf::{NodeId, Triple};
use std::time::{Duration, Instant};

/// Result of Algorithm 2.
#[derive(Debug, Clone)]
pub struct RulePartitions {
    /// Number of partitions.
    pub k: usize,
    /// Partition id per rule index.
    pub assignment: Vec<u32>,
    /// Rule indices per partition.
    pub parts: Vec<Vec<usize>>,
    /// Edge-cut of the dependency graph under this assignment.
    pub edge_cut: u64,
    /// Wall-clock partitioning time.
    pub partition_time: Duration,
}

impl RulePartitions {
    /// Materialize partition `p`'s rule subset.
    pub fn rules_for<'r>(&self, rules: &'r [Rule], p: usize) -> Vec<&'r Rule> {
        self.parts[p].iter().map(|&i| &rules[i]).collect()
    }

    /// Which partitions (other than `from`) have a rule whose body might
    /// consume `t`? This is the paper's triple-routing test: "we match the
    /// newly generated [tuple] with all the rules of other partitions to
    /// determine if it can trigger any of them."
    pub fn consumers(&self, rules: &[Rule], t: &Triple, from: u32) -> Vec<u32> {
        self.interested(rules, t, Some(from))
    }

    /// All partitions with a rule whose body might consume `t` (the
    /// hybrid scheme needs the origin included, because the same rule
    /// group exists on several data shards).
    pub fn interested_groups(&self, rules: &[Rule], t: &Triple) -> Vec<u32> {
        self.interested(rules, t, None)
    }

    fn interested(&self, rules: &[Rule], t: &Triple, exclude: Option<u32>) -> Vec<u32> {
        let mut out = Vec::new();
        for p in 0..self.k as u32 {
            if exclude == Some(p) {
                continue;
            }
            let interested = self.parts[p as usize].iter().any(|&ri| {
                rules[ri].body.iter().any(|atom| atom.could_match(t))
            });
            if interested {
                out.push(p);
            }
        }
        out
    }
}

/// Run Algorithm 2: partition `rules` into `k` balanced sets minimizing
/// dependency edge-cut. `predicate_counts`, when supplied, weighs edges
/// by expected triple production.
pub fn partition_rules(
    rules: &[Rule],
    k: usize,
    predicate_counts: Option<&FxHashMap<NodeId, usize>>,
    opts: &PartitionOptions,
) -> RulePartitions {
    assert!(k >= 1);
    let start = Instant::now();
    let empty = FxHashMap::default();
    let dep = weighted_dependency_graph(rules, predicate_counts.unwrap_or(&empty), 1);
    let und = dep.undirected_edges();
    let graph = CsrGraph::from_edges(rules.len(), &und);
    let assignment = partition_kway(&graph, k.min(rules.len().max(1)), opts);
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &p) in assignment.iter().enumerate() {
        parts[p as usize].push(i);
    }
    RulePartitions {
        k,
        edge_cut: graph.edge_cut(&assignment),
        assignment,
        parts,
        partition_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_datalog::ast::build::*;

    fn nid(i: u32) -> NodeId {
        NodeId(i)
    }

    fn promote(name: &str, from: u32, to: u32) -> Rule {
        Rule::new(
            name,
            atom(v(0), c(nid(to)), v(1)),
            vec![atom(v(0), c(nid(from)), v(1))],
        )
        .unwrap()
    }

    fn trans(name: &str, p: u32) -> Rule {
        Rule::new(
            name,
            atom(v(0), c(nid(p)), v(2)),
            vec![atom(v(0), c(nid(p)), v(1)), atom(v(1), c(nid(p)), v(2))],
        )
        .unwrap()
    }

    /// Two independent rule "families": chain a→b→c and chain x→y→z.
    fn two_families() -> Vec<Rule> {
        vec![
            promote("ab", 1, 2),
            promote("bc", 2, 3),
            trans("c", 3),
            promote("xy", 11, 12),
            promote("yz", 12, 13),
            trans("z", 13),
        ]
    }

    #[test]
    fn balanced_assignment_covering_all_rules() {
        let rules = two_families();
        let rp = partition_rules(&rules, 2, None, &PartitionOptions::default());
        assert_eq!(rp.assignment.len(), 6);
        let sizes: Vec<usize> = rp.parts.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn independent_families_are_not_cut() {
        let rules = two_families();
        let rp = partition_rules(&rules, 2, None, &PartitionOptions::default());
        assert_eq!(rp.edge_cut, 0, "families are independent");
        // family 1 = rules 0..3, family 2 = rules 3..6: each stays whole
        assert_eq!(rp.assignment[0], rp.assignment[1]);
        assert_eq!(rp.assignment[1], rp.assignment[2]);
        assert_eq!(rp.assignment[3], rp.assignment[4]);
        assert_eq!(rp.assignment[4], rp.assignment[5]);
        assert_ne!(rp.assignment[0], rp.assignment[3]);
    }

    #[test]
    fn weighted_edges_bias_the_cut() {
        // chain: r0 -(heavy)- r1 -(light)- r2, plus isolated r3.
        // heavy edge: r0 produces predicate 2 (many triples) consumed by r1
        // light edge: r1 produces predicate 3 (few triples) consumed by r2
        let rules = vec![
            promote("r0", 1, 2),
            promote("r1", 2, 3),
            promote("r2", 3, 4),
            promote("r3", 21, 22),
        ];
        let mut counts: FxHashMap<NodeId, usize> = FxHashMap::default();
        counts.insert(nid(2), 10_000);
        counts.insert(nid(3), 1);
        let rp = partition_rules(&rules, 2, Some(&counts), &PartitionOptions::default());
        // r0 and r1 must be co-located (the heavy edge survives)
        assert_eq!(rp.assignment[0], rp.assignment[1]);
    }

    #[test]
    fn rules_for_materializes_subsets() {
        let rules = two_families();
        let rp = partition_rules(&rules, 3, None, &PartitionOptions::default());
        let mut seen = 0;
        for p in 0..3 {
            seen += rp.rules_for(&rules, p).len();
        }
        assert_eq!(seen, rules.len());
    }

    #[test]
    fn consumers_route_by_body_match() {
        let rules = two_families();
        let rp = partition_rules(&rules, 2, None, &PartitionOptions::default());
        // a predicate-2 triple is consumed by rule "bc" (body pred 2)
        let t2 = Triple::new(nid(100), nid(2), nid(101));
        let home = rp.assignment[1]; // partition holding "bc"
        let other = 1 - home;
        assert_eq!(rp.consumers(&rules, &t2, other), vec![home]);
        // ... and by nobody else once we're already on `home`
        assert!(rp.consumers(&rules, &t2, home).is_empty());
    }

    #[test]
    fn consumers_exclude_origin() {
        let rules = vec![trans("t", 5)];
        let rp = partition_rules(&rules, 1, None, &PartitionOptions::default());
        let t5 = Triple::new(nid(1), nid(5), nid(2));
        assert!(rp.consumers(&rules, &t5, 0).is_empty());
    }

    #[test]
    fn k_larger_than_rule_count() {
        let rules = vec![promote("only", 1, 2)];
        let rp = partition_rules(&rules, 4, None, &PartitionOptions::default());
        assert_eq!(rp.parts.iter().map(Vec::len).sum::<usize>(), 1);
        assert_eq!(rp.parts.len(), 4);
    }

    #[test]
    fn partition_time_populated() {
        let rules = two_families();
        let rp = partition_rules(&rules, 2, None, &PartitionOptions::default());
        assert!(rp.partition_time < Duration::from_secs(5));
    }
}
