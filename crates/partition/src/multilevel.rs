//! A from-scratch multilevel k-way graph partitioner (the role METIS plays
//! in the paper).
//!
//! Classic three-phase scheme (Karypis & Kumar):
//!
//! 1. **Coarsening** — heavy-edge matching contracts the graph until it is
//!    small;
//! 2. **Initial partitioning** — greedy graph growing bisects the coarsest
//!    graph;
//! 3. **Uncoarsening** — the partition is projected back level by level
//!    and improved with a boundary Fiduccia–Mattheyses (FM) pass.
//!
//! k-way partitions are produced by recursive bisection with proportional
//! weight targets, so non-power-of-two k works. The objective matches the
//! paper's §III-A-1: equal vertex weight per part, minimum edge-cut.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

/// Compressed-sparse-row undirected graph with vertex and edge weights.
///
/// Invariants: `xadj.len() == n+1`; every edge appears in both endpoint
/// adjacency lists with the same weight; no self-loops.
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    /// Index of each vertex's adjacency slice in `adjncy`/`adjwgt`.
    pub xadj: Vec<usize>,
    /// Flattened neighbor lists.
    pub adjncy: Vec<u32>,
    /// Edge weights, parallel to `adjncy`.
    pub adjwgt: Vec<u64>,
    /// Vertex weights.
    pub vwgt: Vec<u64>,
}

impl CsrGraph {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Neighbors of `v` with edge weights.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, u64)> + '_ {
        let r = self.xadj[v]..self.xadj[v + 1];
        self.adjncy[r.clone()]
            .iter()
            .copied()
            .zip(self.adjwgt[r].iter().copied())
    }

    /// Build from an undirected weighted edge list over `n` vertices with
    /// unit vertex weights. Parallel edges are merged (weights summed),
    /// self-loops dropped.
    pub fn from_edges(n: usize, edges: &[(usize, usize, u64)]) -> CsrGraph {
        Self::from_edges_vwgt(n, edges, vec![1; n])
    }

    /// [`CsrGraph::from_edges`] with explicit vertex weights.
    pub fn from_edges_vwgt(
        n: usize,
        edges: &[(usize, usize, u64)],
        vwgt: Vec<u64>,
    ) -> CsrGraph {
        assert_eq!(vwgt.len(), n);
        // merge parallel edges
        let mut canon: Vec<(usize, usize, u64)> = edges
            .iter()
            .filter(|&&(a, b, _)| a != b)
            .map(|&(a, b, w)| (a.min(b), a.max(b), w))
            .collect();
        canon.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let mut merged: Vec<(usize, usize, u64)> = Vec::with_capacity(canon.len());
        for (a, b, w) in canon {
            match merged.last_mut() {
                Some(last) if last.0 == a && last.1 == b => last.2 += w,
                _ => merged.push((a, b, w)),
            }
        }
        let mut deg = vec![0usize; n];
        for &(a, b, _) in &merged {
            deg[a] += 1;
            deg[b] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + deg[v];
        }
        let mut adjncy = vec![0u32; xadj[n]];
        let mut adjwgt = vec![0u64; xadj[n]];
        let mut cursor = xadj.clone();
        for &(a, b, w) in &merged {
            adjncy[cursor[a]] = b as u32;
            adjwgt[cursor[a]] = w;
            cursor[a] += 1;
            adjncy[cursor[b]] = a as u32;
            adjwgt[cursor[b]] = w;
            cursor[b] += 1;
        }
        CsrGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    }

    /// Edge-cut of a partition assignment.
    pub fn edge_cut(&self, part: &[u32]) -> u64 {
        let mut cut = 0;
        for v in 0..self.n() {
            for (u, w) in self.neighbors(v) {
                if part[v] != part[u as usize] {
                    cut += w;
                }
            }
        }
        cut / 2
    }

    /// Per-part vertex weight sums for a k-way assignment.
    pub fn part_weights(&self, part: &[u32], k: usize) -> Vec<u64> {
        let mut w = vec![0u64; k];
        for v in 0..self.n() {
            w[part[v] as usize] += self.vwgt[v];
        }
        w
    }
}

/// Partitioner options.
#[derive(Debug, Clone, Copy)]
pub struct PartitionOptions {
    /// Allowed imbalance: a part may weigh up to `(1+epsilon) * target`.
    pub epsilon: f64,
    /// Run FM refinement during uncoarsening (ablation switch).
    pub refine: bool,
    /// Stop coarsening when the graph has at most this many vertices.
    pub coarsen_until: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            epsilon: 0.05,
            refine: true,
            coarsen_until: 128,
            seed: 0x5eed,
        }
    }
}

/// Partition `graph` into `k` parts. Returns the part id of every vertex.
pub fn partition_kway(graph: &CsrGraph, k: usize, opts: &PartitionOptions) -> Vec<u32> {
    assert!(k >= 1, "k must be positive");
    let mut part = vec![0u32; graph.n()];
    if k == 1 || graph.n() == 0 {
        return part;
    }
    let vertices: Vec<usize> = (0..graph.n()).collect();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    recurse(graph, &vertices, k, 0, &mut part, opts, &mut rng);
    part
}

/// Recursive bisection: split `vertices` of `graph` into k parts labelled
/// `base..base+k` in `part`.
fn recurse(
    graph: &CsrGraph,
    vertices: &[usize],
    k: usize,
    base: u32,
    part: &mut [u32],
    opts: &PartitionOptions,
    rng: &mut StdRng,
) {
    if k == 1 {
        for &v in vertices {
            part[v] = base;
        }
        return;
    }
    let k_left = k / 2 + k % 2; // ceil
    let k_right = k / 2;
    let ratio = k_left as f64 / k as f64;

    let (sub, local_to_global) = induce(graph, vertices);
    let side = multilevel_bisect(&sub, ratio, opts, rng);

    let mut left: Vec<usize> = Vec::new();
    let mut right: Vec<usize> = Vec::new();
    for (local, &global) in local_to_global.iter().enumerate() {
        if side[local] == 0 {
            left.push(global);
        } else {
            right.push(global);
        }
    }
    recurse(graph, &left, k_left, base, part, opts, rng);
    recurse(graph, &right, k_right, base + k_left as u32, part, opts, rng);
}

/// Induced subgraph on `vertices`; returns it plus the local→global map.
fn induce(graph: &CsrGraph, vertices: &[usize]) -> (CsrGraph, Vec<usize>) {
    let mut global_to_local = vec![usize::MAX; graph.n()];
    for (local, &v) in vertices.iter().enumerate() {
        global_to_local[v] = local;
    }
    let mut edges: Vec<(usize, usize, u64)> = Vec::new();
    let mut vwgt = Vec::with_capacity(vertices.len());
    for (local, &v) in vertices.iter().enumerate() {
        vwgt.push(graph.vwgt[v]);
        for (u, w) in graph.neighbors(v) {
            let lu = global_to_local[u as usize];
            if lu != usize::MAX && lu > local {
                edges.push((local, lu, w));
            }
        }
    }
    (
        CsrGraph::from_edges_vwgt(vertices.len(), &edges, vwgt),
        vertices.to_vec(),
    )
}

/// Multilevel bisection of `graph`: coarsen, bisect, project + refine.
/// Returns 0/1 per vertex; side 0 targets `ratio` of the total weight.
fn multilevel_bisect(
    graph: &CsrGraph,
    ratio: f64,
    opts: &PartitionOptions,
    rng: &mut StdRng,
) -> Vec<u32> {
    if graph.n() <= opts.coarsen_until {
        return best_direct_bisect(graph, ratio, opts, rng);
    }
    let (coarse, map) = coarsen(graph, rng);
    // If matching stalled (e.g. star graphs), fall back to direct bisection.
    if coarse.n() as f64 > graph.n() as f64 * 0.95 {
        return best_direct_bisect(graph, ratio, opts, rng);
    }
    let coarse_side = multilevel_bisect(&coarse, ratio, opts, rng);
    let mut side: Vec<u32> = (0..graph.n()).map(|v| coarse_side[map[v]]).collect();
    if opts.refine {
        fm_refine(graph, &mut side, ratio, opts.epsilon, rng);
    }
    side
}

/// Heavy-edge matching contraction. Returns the coarse graph and the
/// fine→coarse vertex map.
fn coarsen(graph: &CsrGraph, rng: &mut StdRng) -> (CsrGraph, Vec<usize>) {
    let n = graph.n();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut matched = vec![usize::MAX; n];
    let mut coarse_count = 0usize;
    let mut map = vec![usize::MAX; n];
    for &v in &order {
        if map[v] != usize::MAX {
            continue;
        }
        // pick the heaviest unmatched neighbor
        let mut best: Option<(u32, u64)> = None;
        for (u, w) in graph.neighbors(v) {
            if map[u as usize] == usize::MAX
                && best.is_none_or(|(_, bw)| w > bw)
            {
                best = Some((u, w));
            }
        }
        map[v] = coarse_count;
        if let Some((u, _)) = best {
            map[u as usize] = coarse_count;
            matched[v] = u as usize;
        }
        coarse_count += 1;
    }
    let _ = matched;
    let mut vwgt = vec![0u64; coarse_count];
    for v in 0..n {
        vwgt[map[v]] += graph.vwgt[v];
    }
    let mut edges: Vec<(usize, usize, u64)> = Vec::new();
    for v in 0..n {
        for (u, w) in graph.neighbors(v) {
            let (cv, cu) = (map[v], map[u as usize]);
            if cv < cu {
                edges.push((cv, cu, w));
            }
        }
    }
    (
        CsrGraph::from_edges_vwgt(coarse_count, &edges, vwgt),
        map,
    )
}

/// Number of random restarts for the coarsest-level initial bisection
/// (METIS similarly derives several initial partitions and keeps the best).
const INITIAL_TRIES: usize = 4;

/// Run greedy growing + FM several times and keep the lowest-cut result.
fn best_direct_bisect(
    graph: &CsrGraph,
    ratio: f64,
    opts: &PartitionOptions,
    rng: &mut StdRng,
) -> Vec<u32> {
    let one_try = |rng: &mut StdRng| {
        let mut side = greedy_grow_bisect(graph, ratio, rng);
        if opts.refine {
            fm_refine(graph, &mut side, ratio, opts.epsilon, rng);
        }
        let cut = graph.edge_cut(&side);
        (cut, side)
    };
    let mut best = one_try(rng);
    for _ in 1..INITIAL_TRIES {
        let (cut, side) = one_try(rng);
        if cut < best.0 {
            best = (cut, side);
        }
    }
    best.1
}

/// Greedy graph-growing bisection: BFS-grow side 0 from a random seed,
/// preferring frontier vertices with the strongest connection to the
/// region, until side 0 reaches `ratio` of the total weight. Disconnected
/// graphs are handled by reseeding.
fn greedy_grow_bisect(graph: &CsrGraph, ratio: f64, rng: &mut StdRng) -> Vec<u32> {
    let n = graph.n();
    let total: u64 = graph.total_vwgt();
    let target = (total as f64 * ratio).round() as u64;
    let mut side = vec![1u32; n];
    if n == 0 || target == 0 {
        return side;
    }
    let mut grown: u64 = 0;
    let mut in_region = vec![false; n];
    // (connection weight, vertex); lazy heap, stale entries skipped
    let mut frontier: BinaryHeap<(u64, usize)> = BinaryHeap::new();
    let mut conn = vec![0u64; n];

    while grown < target {
        let v = match frontier.pop() {
            Some((w, v)) if !in_region[v] && w == conn[v] => v,
            Some(_) => continue,
            None => {
                // reseed in an untouched component
                let candidates: Vec<usize> = (0..n).filter(|&v| !in_region[v]).collect();
                if candidates.is_empty() {
                    break;
                }
                candidates[rng.gen_range(0..candidates.len())]
            }
        };
        in_region[v] = true;
        side[v] = 0;
        grown += graph.vwgt[v];
        for (u, w) in graph.neighbors(v) {
            let u = u as usize;
            if !in_region[u] {
                conn[u] += w;
                frontier.push((conn[u], u));
            }
        }
    }
    side
}

/// Boundary FM refinement with rollback to the best observed prefix.
/// Respects the balance constraint `weight(side) <= (1+eps) * its target`.
fn fm_refine(graph: &CsrGraph, side: &mut [u32], ratio: f64, epsilon: f64, _rng: &mut StdRng) {
    let n = graph.n();
    let total = graph.total_vwgt() as f64;
    let target = [total * ratio, total * (1.0 - ratio)];
    // Allow eps slack but never less than the integral ceiling of the
    // target, and never so much that a side can be emptied.
    let bound = |t: f64| ((t * (1.0 + epsilon)).floor() as u64).max(t.ceil() as u64);
    let max_w = [bound(target[0]), bound(target[1])];

    const MAX_PASSES: usize = 4;
    const STALL_LIMIT: usize = 256;

    for _pass in 0..MAX_PASSES {
        let mut weights = [0u64; 2];
        for v in 0..n {
            weights[side[v] as usize] += graph.vwgt[v];
        }
        // gain[v] = external - internal edge weight
        let mut gain = vec![0i64; n];
        for v in 0..n {
            for (u, w) in graph.neighbors(v) {
                if side[v] == side[u as usize] {
                    gain[v] -= w as i64;
                } else {
                    gain[v] += w as i64;
                }
            }
        }
        let mut heap: BinaryHeap<(i64, usize)> = (0..n)
            .filter(|&v| gain[v] > i64::MIN)
            .map(|v| (gain[v], v))
            .collect();
        let mut locked = vec![false; n];
        let mut moves: Vec<usize> = Vec::new();
        let mut cum_gain: i64 = 0;
        let mut best_gain: i64 = 0;
        let mut best_len: usize = 0;
        let mut stall = 0usize;

        while let Some((g, v)) = heap.pop() {
            if locked[v] || g != gain[v] {
                continue; // stale entry
            }
            let from = side[v] as usize;
            let to = 1 - from;
            if weights[to] + graph.vwgt[v] > max_w[to] || weights[from] == graph.vwgt[v] {
                continue; // would break balance or empty a side
            }
            // execute the move
            locked[v] = true;
            side[v] = to as u32;
            weights[from] -= graph.vwgt[v];
            weights[to] += graph.vwgt[v];
            cum_gain += g;
            moves.push(v);
            if cum_gain > best_gain {
                best_gain = cum_gain;
                best_len = moves.len();
                stall = 0;
            } else {
                stall += 1;
                if stall > STALL_LIMIT {
                    break;
                }
            }
            // update neighbor gains
            for (u, w) in graph.neighbors(v) {
                let u = u as usize;
                if locked[u] {
                    continue;
                }
                // v moved to `to`; recompute u's delta for this edge
                if side[u] as usize == to {
                    gain[u] -= 2 * w as i64;
                } else {
                    gain[u] += 2 * w as i64;
                }
                heap.push((gain[u], u));
            }
        }
        // rollback the non-improving suffix
        for &v in &moves[best_len..] {
            side[v] = 1 - side[v];
        }
        if best_gain <= 0 {
            return; // pass produced no improvement
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn opts(seed: u64) -> PartitionOptions {
        PartitionOptions {
            seed,
            ..PartitionOptions::default()
        }
    }

    /// Two K5 cliques joined by one light edge: the canonical easy cut.
    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                edges.push((a, b, 10));
                edges.push((a + 5, b + 5, 10));
            }
        }
        edges.push((4, 5, 1)); // bridge
        CsrGraph::from_edges(10, &edges)
    }

    /// A ring of `n` vertices.
    fn ring(n: usize) -> CsrGraph {
        let edges: Vec<(usize, usize, u64)> = (0..n).map(|i| (i, (i + 1) % n, 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    /// `c` disjoint cliques of size `s`.
    fn cliques(c: usize, s: usize) -> CsrGraph {
        let mut edges = Vec::new();
        for k in 0..c {
            for a in 0..s {
                for b in (a + 1)..s {
                    edges.push((k * s + a, k * s + b, 1));
                }
            }
        }
        CsrGraph::from_edges(c * s, &edges)
    }

    #[test]
    fn csr_construction_merges_parallel_edges() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 2), (1, 0, 3), (1, 2, 1), (2, 2, 9)]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2, "parallel merged, self-loop dropped");
        let w01: u64 = g
            .neighbors(0)
            .find(|&(u, _)| u == 1)
            .map(|(_, w)| w)
            .unwrap();
        assert_eq!(w01, 5);
    }

    #[test]
    fn csr_neighbors_symmetric() {
        let g = two_cliques();
        for v in 0..g.n() {
            for (u, w) in g.neighbors(v) {
                let back = g
                    .neighbors(u as usize)
                    .find(|&(x, _)| x as usize == v)
                    .expect("symmetric edge");
                assert_eq!(back.1, w);
            }
        }
    }

    #[test]
    fn bisection_of_two_cliques_cuts_the_bridge() {
        let g = two_cliques();
        let part = partition_kway(&g, 2, &opts(1));
        assert_eq!(g.edge_cut(&part), 1, "only the bridge is cut");
        let w = g.part_weights(&part, 2);
        assert_eq!(w, vec![5, 5]);
    }

    #[test]
    fn kway_partitions_are_complete_and_in_range() {
        let g = ring(100);
        for k in [1, 2, 3, 4, 7, 8] {
            let part = partition_kway(&g, k, &opts(7));
            assert_eq!(part.len(), 100);
            assert!(part.iter().all(|&p| (p as usize) < k), "k={k}");
            // every part non-empty for k << n
            for p in 0..k {
                assert!(part.iter().any(|&x| x as usize == p), "part {p} empty at k={k}");
            }
        }
    }

    #[test]
    fn ring_bisection_cuts_two_edges() {
        let g = ring(64);
        let part = partition_kway(&g, 2, &opts(3));
        assert_eq!(g.edge_cut(&part), 2);
    }

    #[test]
    fn balance_within_tolerance() {
        let g = ring(1000);
        for k in [2, 4, 8, 16] {
            let part = partition_kway(&g, k, &opts(11));
            let w = g.part_weights(&part, k);
            let target = 1000.0 / k as f64;
            for (p, &wp) in w.iter().enumerate() {
                assert!(
                    (wp as f64) <= target * 1.12 + 1.0,
                    "part {p} weight {wp} vs target {target} (k={k})"
                );
            }
        }
    }

    #[test]
    fn disjoint_cliques_partition_cleanly() {
        // 8 cliques of 16, k=4: perfect partition has zero cut
        let g = cliques(8, 16);
        let part = partition_kway(&g, 4, &opts(5));
        assert_eq!(g.edge_cut(&part), 0, "disjoint components need no cut");
        let w = g.part_weights(&part, 4);
        assert!(w.iter().all(|&x| x == 32), "w={w:?}");
    }

    #[test]
    fn refinement_improves_or_matches_no_refinement() {
        let g = ring(512);
        for seed in 0..5 {
            let with = partition_kway(
                &g,
                4,
                &PartitionOptions {
                    refine: true,
                    ..opts(seed)
                },
            );
            let without = partition_kway(
                &g,
                4,
                &PartitionOptions {
                    refine: false,
                    ..opts(seed)
                },
            );
            assert!(
                g.edge_cut(&with) <= g.edge_cut(&without),
                "seed {seed}: refined {} > unrefined {}",
                g.edge_cut(&with),
                g.edge_cut(&without)
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = two_cliques();
        let a = partition_kway(&g, 2, &opts(42));
        let b = partition_kway(&g, 2, &opts(42));
        assert_eq!(a, b);
    }

    #[test]
    fn large_graph_partitions_quickly_with_low_cut() {
        // 4 communities of 500 vertices, dense inside, sparse between.
        let mut edges = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        let n_comm = 4;
        let sz = 500;
        for c in 0..n_comm {
            for _ in 0..sz * 8 {
                let a = c * sz + rng.gen_range(0..sz);
                let b = c * sz + rng.gen_range(0..sz);
                if a != b {
                    edges.push((a, b, 1));
                }
            }
        }
        for _ in 0..40 {
            let a = rng.gen_range(0..n_comm * sz);
            let b = rng.gen_range(0..n_comm * sz);
            if a != b {
                edges.push((a, b, 1));
            }
        }
        let g = CsrGraph::from_edges(n_comm * sz, &edges);
        let part = partition_kway(&g, 4, &opts(13));
        let cut = g.edge_cut(&part);
        assert!(cut < 200, "community structure should be found, cut={cut}");
        let w = g.part_weights(&part, 4);
        for &wp in &w {
            assert!((wp as i64 - 500).unsigned_abs() < 80, "w={w:?}");
        }
    }

    #[test]
    fn k_equal_n_gives_singletons() {
        let g = ring(8);
        let part = partition_kway(&g, 8, &opts(2));
        let mut seen = vec![0; 8];
        for &p in &part {
            seen[p as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(partition_kway(&g, 4, &opts(1)).is_empty());
        let g1 = CsrGraph::from_edges(1, &[]);
        assert_eq!(partition_kway(&g1, 1, &opts(1)), vec![0]);
    }

    #[test]
    fn star_graph_does_not_hang() {
        // pathological for matching: one hub connected to all leaves
        let edges: Vec<(usize, usize, u64)> = (1..2000).map(|i| (0, i, 1)).collect();
        let g = CsrGraph::from_edges(2000, &edges);
        let part = partition_kway(&g, 4, &opts(17));
        assert_eq!(part.len(), 2000);
        let w = g.part_weights(&part, 4);
        assert!(w.iter().all(|&x| x > 0));
    }

    #[test]
    fn weighted_vertices_balance_by_weight() {
        // vertex 0 weighs as much as all the rest together
        let n = 9;
        let mut vwgt = vec![1u64; n];
        vwgt[0] = 8;
        let edges: Vec<(usize, usize, u64)> = (0..n - 1).map(|i| (i, i + 1, 1)).collect();
        let g = CsrGraph::from_edges_vwgt(n, &edges, vwgt);
        let part = partition_kway(&g, 2, &opts(3));
        let w = g.part_weights(&part, 2);
        // 16 total, target 8/8
        assert!(w.iter().all(|&x| (6..=10).contains(&x)), "w={w:?}");
    }
}
