//! Workload partitioning for parallel OWL inferencing.
//!
//! The paper's central contribution is two families of partitioning
//! schemes (§III), both implemented here:
//!
//! * **Data partitioning** (Algorithm 1, [`data`]): split the instance
//!   triples over k processors, each running the complete rule-base.
//!   Ownership of every graph resource is decided by a pluggable policy:
//!   * [`multilevel`] — a from-scratch METIS-style multilevel k-way
//!     partitioner (heavy-edge-matching coarsening, greedy graph-growing
//!     initial bisection, boundary Fiduccia–Mattheyses refinement) that
//!     minimizes edge-cut with balanced parts;
//!   * [`hash`] — streaming hash ownership (cheap, no edge-cut
//!     minimization — the paper's negative baseline);
//!   * [`domain`] — domain-specific grouping (e.g. LUBM's per-university
//!     clustering) balanced with a greedy bin-packer.
//! * **Rule partitioning** (Algorithm 2, [`rule`]): build the
//!   rule-dependency graph, weight edges by predicted triple production,
//!   and cut it with the same multilevel partitioner.
//!
//! [`metrics`] implements the paper's evaluation metrics: `bal`, input
//! replication `IR`, output replication `OR`, and partitioning time
//! (Table I).

#![forbid(unsafe_code)]

pub mod data;
pub mod domain;
pub mod hash;
pub mod metrics;
pub mod multilevel;
pub mod rdfgraph;
pub mod rule;
pub mod streaming;

pub use data::{partition_data, DataPartitions, OwnershipPolicy};
pub use metrics::{output_replication, PartitionQuality};
pub use rule::{partition_rules, RulePartitions};
