//! Algorithm 1: data partitioning.
//!
//! ```text
//! Input:  Initial tuples
//! Output: Set of partitions of original tuples, partition table
//! 1: Remove all the tuples involving the schema elements.
//! 2: Partition the resulting graph based on the partitioning policy.
//! 3: for all tuples: assign the tuple to the partition owning its
//!    subject and the partition owning its object.
//! ```
//!
//! Step 1 (the schema/instance split) happens in `owlpar-horst`; this
//! module receives instance triples only. Step 3 means a triple crossing
//! an ownership boundary is **replicated** on both owners ("a triple from
//! the dataset can be present in at most two processors"), which is what
//! guarantees every single-join rule can fire locally.

use crate::domain::{authority_key, domain_owners, KeyFn};
use crate::hash::hash_owner;
use crate::multilevel::{partition_kway, PartitionOptions};
use crate::rdfgraph::build_ownership_graph;
use owlpar_rdf::fx::FxHashMap;
use owlpar_rdf::{Dictionary, NodeId, Triple};
use std::time::{Duration, Instant};

/// The ownership policy of Algorithm 1 step 2.
pub enum OwnershipPolicy<'a> {
    /// Multilevel min-edge-cut graph partitioning (METIS role).
    Graph(PartitionOptions),
    /// Streaming hash ownership.
    Hash {
        /// Hash-function seed.
        seed: u64,
    },
    /// Domain-specific grouping; `None` uses [`authority_key`].
    Domain(Option<KeyFn<'a>>),
    /// Linear Deterministic Greedy streaming (one pass, edge-cut aware —
    /// the middle ground between hash and graph partitioning).
    Streaming,
}

impl std::fmt::Debug for OwnershipPolicy<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OwnershipPolicy::Graph(o) => write!(f, "Graph({o:?})"),
            OwnershipPolicy::Hash { seed } => write!(f, "Hash{{seed:{seed}}}"),
            OwnershipPolicy::Domain(_) => write!(f, "Domain"),
            OwnershipPolicy::Streaming => write!(f, "Streaming"),
        }
    }
}

/// Result of Algorithm 1.
#[derive(Debug, Clone)]
pub struct DataPartitions {
    /// Number of partitions.
    pub k: usize,
    /// The partition table: resource → owning partition. Shipped to every
    /// worker so it can route derived triples.
    pub owner: FxHashMap<NodeId, u32>,
    /// Instance triples per partition (with boundary replication).
    pub parts: Vec<Vec<Triple>>,
    /// Wall-clock time of the partitioning itself (Table I column).
    pub partition_time: Duration,
    /// Edge-cut of the ownership graph (graph policy only).
    pub edge_cut: Option<u64>,
}

impl DataPartitions {
    /// Owner of a resource, if it is ownable (i.e. was a graph vertex).
    pub fn owner_of(&self, node: NodeId) -> Option<u32> {
        self.owner.get(&node).copied()
    }

    /// The (one or two) partitions a triple belongs on: owner of the
    /// subject plus owner of the object when those differ. Non-ownable
    /// endpoints (class objects) impose no constraint.
    pub fn destinations(&self, t: &Triple) -> Destinations {
        let a = self.owner_of(t.s);
        let b = self.owner_of(t.o);
        match (a, b) {
            (Some(x), Some(y)) if x != y => Destinations::Two(x, y),
            (Some(x), _) => Destinations::One(x),
            (None, Some(y)) => Destinations::One(y),
            (None, None) => Destinations::None,
        }
    }
}

/// Up to two destination partitions for one triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destinations {
    /// Neither endpoint is ownable (cannot happen for instance triples
    /// produced by our pipeline; present for API totality).
    None,
    /// Both endpoints owned by the same partition.
    One(u32),
    /// Endpoints owned by different partitions — replicate.
    Two(u32, u32),
}

impl Destinations {
    /// Iterate the destinations.
    pub fn iter(&self) -> impl Iterator<Item = u32> {
        let (a, b) = match *self {
            Destinations::None => (None, None),
            Destinations::One(x) => (Some(x), None),
            Destinations::Two(x, y) => (Some(x), Some(y)),
        };
        a.into_iter().chain(b)
    }
}

/// Run Algorithm 1 over `instance` triples.
///
/// `rdf_type` (when known) keeps class objects out of the ownership graph;
/// `dict` is needed by the domain policy to read IRIs.
pub fn partition_data(
    instance: &[Triple],
    dict: &Dictionary,
    rdf_type: Option<NodeId>,
    k: usize,
    policy: &OwnershipPolicy<'_>,
) -> DataPartitions {
    assert!(k >= 1);
    let start = Instant::now();
    let og = build_ownership_graph(instance, rdf_type);

    let (owners_by_vertex, edge_cut): (Vec<u32>, Option<u64>) = match policy {
        OwnershipPolicy::Graph(opts) => {
            let part = partition_kway(&og.graph, k, opts);
            let cut = og.graph.edge_cut(&part);
            (part, Some(cut))
        }
        OwnershipPolicy::Hash { seed } => (
            og.vertex_to_node
                .iter()
                .map(|&n| hash_owner(n, k, *seed))
                .collect(),
            None,
        ),
        OwnershipPolicy::Domain(key) => (
            domain_owners(&og.vertex_to_node, dict, k, key.unwrap_or(&authority_key)),
            None,
        ),
        OwnershipPolicy::Streaming => {
            let table = crate::streaming::ldg_owners(instance, rdf_type, k);
            (
                og.vertex_to_node
                    .iter()
                    .map(|n| table.get(n).copied().unwrap_or(0))
                    .collect(),
                None,
            )
        }
    };

    let mut owner: FxHashMap<NodeId, u32> = FxHashMap::default();
    for (v, &n) in og.vertex_to_node.iter().enumerate() {
        owner.insert(n, owners_by_vertex[v]);
    }

    let mut parts: Vec<Vec<Triple>> = vec![Vec::new(); k];
    let table = DataPartitions {
        k,
        owner,
        parts: Vec::new(),
        partition_time: Duration::ZERO,
        edge_cut,
    };
    for t in instance {
        for d in table.destinations(t).iter() {
            parts[d as usize].push(*t);
        }
    }
    DataPartitions {
        parts,
        partition_time: start.elapsed(),
        ..table
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_rdf::Graph;

    const P: u32 = 1000;
    const TYPE: u32 = 1001;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    /// Two clusters {0..4} and {10..14}, chained internally, one bridge.
    fn clustered() -> Vec<Triple> {
        let mut v = Vec::new();
        for base in [0, 10] {
            for i in 0..4 {
                v.push(t(base + i, P, base + i + 1));
            }
        }
        v.push(t(4, P, 10)); // bridge
        v
    }

    fn graph_policy() -> OwnershipPolicy<'static> {
        OwnershipPolicy::Graph(PartitionOptions {
            seed: 1,
            ..PartitionOptions::default()
        })
    }

    #[test]
    fn every_triple_lands_on_owner_of_both_endpoints() {
        let triples = clustered();
        let d = Dictionary::new();
        for policy in [
            graph_policy(),
            OwnershipPolicy::Hash { seed: 2 },
            OwnershipPolicy::Streaming,
        ] {
            let dp = partition_data(&triples, &d, None, 3, &policy);
            for tr in &triples {
                for endpoint in [tr.s, tr.o] {
                    let owner = dp.owner_of(endpoint).expect("all endpoints ownable");
                    assert!(
                        dp.parts[owner as usize].contains(tr),
                        "{tr} missing from partition {owner} under {policy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn triple_present_in_at_most_two_partitions() {
        let triples = clustered();
        let d = Dictionary::new();
        let dp = partition_data(&triples, &d, None, 4, &OwnershipPolicy::Hash { seed: 7 });
        for tr in &triples {
            let copies = dp.parts.iter().filter(|p| p.contains(tr)).count();
            assert!((1..=2).contains(&copies), "{tr} in {copies} partitions");
        }
    }

    #[test]
    fn union_of_partitions_is_input() {
        let triples = clustered();
        let d = Dictionary::new();
        let dp = partition_data(&triples, &d, None, 3, &graph_policy());
        let mut union: Vec<Triple> = dp.parts.iter().flatten().copied().collect();
        union.sort_unstable();
        union.dedup();
        let mut input = triples.clone();
        input.sort_unstable();
        assert_eq!(union, input);
    }

    #[test]
    fn graph_policy_cuts_only_the_bridge() {
        let triples = clustered();
        let d = Dictionary::new();
        let dp = partition_data(&triples, &d, None, 2, &graph_policy());
        assert_eq!(dp.edge_cut, Some(1));
        // only the bridge triple is replicated
        let replicated: Vec<&Triple> = triples
            .iter()
            .filter(|tr| matches!(dp.destinations(tr), Destinations::Two(_, _)))
            .collect();
        assert_eq!(replicated, vec![&t(4, P, 10)]);
    }

    #[test]
    fn type_triples_follow_subject_owner_only() {
        let mut triples = clustered();
        triples.push(t(0, TYPE, 9999)); // class 9999 not ownable
        let d = Dictionary::new();
        let dp = partition_data(&triples, &d, Some(NodeId(TYPE)), 2, &graph_policy());
        assert_eq!(dp.owner_of(NodeId(9999)), None);
        let tt = t(0, TYPE, 9999);
        assert_eq!(
            dp.destinations(&tt),
            Destinations::One(dp.owner_of(NodeId(0)).unwrap())
        );
        let copies = dp.parts.iter().filter(|p| p.contains(&tt)).count();
        assert_eq!(copies, 1);
    }

    #[test]
    fn domain_policy_groups_by_authority() {
        let mut g = Graph::new();
        let mut triples = Vec::new();
        let p = g.intern_iri("http://ont/p");
        for u in 0..4 {
            let mut prev = g.intern_iri(format!("http://www.univ{u}.edu/n0"));
            for i in 1..10 {
                let cur = g.intern_iri(format!("http://www.univ{u}.edu/n{i}"));
                triples.push(Triple::new(prev, p, cur));
                prev = cur;
            }
        }
        let dp = partition_data(&triples, &g.dict, None, 2, &OwnershipPolicy::Domain(None));
        // no triple crosses partitions: all universities are intact
        for tr in &triples {
            assert!(matches!(dp.destinations(tr), Destinations::One(_)));
        }
        let sizes: Vec<usize> = dp.parts.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![18, 18]);
    }

    #[test]
    fn streaming_policy_keeps_clusters_mostly_intact() {
        let triples = clustered();
        let d = Dictionary::new();
        let dp = partition_data(&triples, &d, None, 2, &OwnershipPolicy::Streaming);
        // at most a couple of the 9 triples should be replicated
        let replicated = triples
            .iter()
            .filter(|tr| matches!(dp.destinations(tr), Destinations::Two(_, _)))
            .count();
        assert!(replicated <= 3, "LDG replicated {replicated}/9");
    }

    #[test]
    fn k_one_puts_everything_in_partition_zero() {
        let triples = clustered();
        let d = Dictionary::new();
        let dp = partition_data(&triples, &d, None, 1, &OwnershipPolicy::Hash { seed: 1 });
        assert_eq!(dp.parts.len(), 1);
        assert_eq!(dp.parts[0].len(), triples.len());
    }

    #[test]
    fn partition_time_recorded() {
        let triples = clustered();
        let d = Dictionary::new();
        let dp = partition_data(&triples, &d, None, 2, &graph_policy());
        // can't assert much portably, but it must be populated
        assert!(dp.partition_time <= Duration::from_secs(10));
    }

    #[test]
    fn destinations_iter_yields_each_once() {
        assert_eq!(Destinations::None.iter().count(), 0);
        assert_eq!(Destinations::One(3).iter().collect::<Vec<_>>(), vec![3]);
        assert_eq!(
            Destinations::Two(1, 2).iter().collect::<Vec<_>>(),
            vec![1, 2]
        );
    }
}
