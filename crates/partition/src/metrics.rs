//! The paper's partitioning-quality metrics (§III-A, Table I).
//!
//! * **bal** — standard deviation of the number of nodes per partition
//!   ("the computational time of the reasoning is directly proportional
//!   to the number of nodes in the RDF graph");
//! * **IR** (input replication) — Σ nodes-per-partition / distinct nodes
//!   in the input; the diagnostic proxy for communication volume;
//! * **OR** (output replication) — Σ result-tuples-per-partition /
//!   distinct tuples in the unioned output; the efficiency metric proper;
//! * **partition time** — carried on
//!   [`crate::data::DataPartitions::partition_time`].

use owlpar_rdf::fx::FxHashSet;
use owlpar_rdf::{NodeId, Triple};
use rayon::prelude::*;

/// Quality of a data partitioning, before any reasoning runs.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PartitionQuality {
    /// Distinct resource nodes present per partition (replicas counted in
    /// every partition they appear in).
    pub node_counts: Vec<usize>,
    /// Distinct nodes in the whole input.
    pub total_nodes: usize,
    /// Standard deviation of `node_counts`.
    pub bal: f64,
    /// Input replication `Σ node_counts / total_nodes`. 1.0 = no
    /// replication; the paper reports e.g. 0.07 as *excess* replication
    /// (IR − 1), which [`PartitionQuality::ir_excess`] provides.
    pub ir: f64,
    /// Triples per partition.
    pub triple_counts: Vec<usize>,
}

impl PartitionQuality {
    /// Replication overhead above the unavoidable 1.0 (the paper's Table I
    /// convention: "for 4 partitions ... the duplication (IR) is nearly
    /// 10%" means `ir_excess ≈ 0.1`).
    pub fn ir_excess(&self) -> f64 {
        (self.ir - 1.0).max(0.0)
    }
}

/// Population standard deviation.
pub fn stddev(xs: &[usize]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<usize>() as f64 / n;
    let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
    var.sqrt()
}

/// Distinct resource nodes in a triple list. `rdf_type` objects are not
/// counted as nodes, mirroring the ownership-graph construction.
fn distinct_nodes(triples: &[Triple], rdf_type: Option<NodeId>) -> FxHashSet<NodeId> {
    let mut set = FxHashSet::default();
    for t in triples {
        set.insert(t.s);
        if Some(t.p) != rdf_type {
            set.insert(t.o);
        }
    }
    set
}

/// Compute [`PartitionQuality`] for a set of partitions.
pub fn quality(parts: &[Vec<Triple>], rdf_type: Option<NodeId>) -> PartitionQuality {
    let node_sets: Vec<FxHashSet<NodeId>> = parts
        .par_iter()
        .map(|p| distinct_nodes(p, rdf_type))
        .collect();
    let node_counts: Vec<usize> = node_sets.iter().map(FxHashSet::len).collect();
    let mut union: FxHashSet<NodeId> = FxHashSet::default();
    for s in &node_sets {
        union.extend(s.iter().copied());
    }
    let total_nodes = union.len();
    let ir = if total_nodes == 0 {
        1.0
    } else {
        node_counts.iter().sum::<usize>() as f64 / total_nodes as f64
    };
    PartitionQuality {
        bal: stddev(&node_counts),
        node_counts,
        total_nodes,
        ir,
        triple_counts: parts.iter().map(Vec::len).collect(),
    }
}

/// Output replication: Σ per-partition result sizes over the distinct
/// union size. 1.0 = every inference derived exactly once. The paper
/// reports the excess (`OR ≈ 0.1`); use [`or_excess`] for that convention.
pub fn output_replication(per_partition_outputs: &[usize], union_size: usize) -> f64 {
    if union_size == 0 {
        return 1.0;
    }
    per_partition_outputs.iter().sum::<usize>() as f64 / union_size as f64
}

/// Output replication excess above 1.0.
pub fn or_excess(per_partition_outputs: &[usize], union_size: usize) -> f64 {
    (output_replication(per_partition_outputs, union_size) - 1.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    #[test]
    fn stddev_basics() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5, 5, 5]), 0.0);
        assert!((stddev(&[2, 4]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quality_no_replication() {
        // two disjoint partitions
        let parts = vec![vec![t(0, 9, 1)], vec![t(2, 9, 3)]];
        let q = quality(&parts, None);
        assert_eq!(q.node_counts, vec![2, 2]);
        assert_eq!(q.total_nodes, 4);
        assert!((q.ir - 1.0).abs() < 1e-12);
        assert_eq!(q.ir_excess(), 0.0);
        assert_eq!(q.bal, 0.0);
    }

    #[test]
    fn quality_with_replication() {
        // node 1 appears in both partitions
        let parts = vec![vec![t(0, 9, 1)], vec![t(1, 9, 2)]];
        let q = quality(&parts, None);
        assert_eq!(q.total_nodes, 3);
        assert!((q.ir - 4.0 / 3.0).abs() < 1e-12);
        assert!((q.ir_excess() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn type_objects_not_counted() {
        const TYPE: u32 = 7;
        let parts = vec![vec![t(0, TYPE, 100), t(0, 9, 1)]];
        let q = quality(&parts, Some(NodeId(TYPE)));
        assert_eq!(q.node_counts, vec![2]); // 0 and 1, not class 100
    }

    #[test]
    fn or_conventions() {
        assert!((output_replication(&[50, 60], 100) - 1.1).abs() < 1e-12);
        assert!((or_excess(&[50, 60], 100) - 0.1).abs() < 1e-12);
        assert_eq!(output_replication(&[], 0), 1.0);
        assert_eq!(or_excess(&[5], 5), 0.0);
    }

    #[test]
    fn empty_partitions_ok() {
        let parts = vec![Vec::new(), vec![t(0, 9, 1)]];
        let q = quality(&parts, None);
        assert_eq!(q.node_counts, vec![0, 2]);
        assert_eq!(q.triple_counts, vec![0, 1]);
        assert_eq!(q.bal, 1.0);
    }
}
