//! Domain-specific ownership (§III-A-3).
//!
//! "The entities are organized such that entities that belong to a
//! certain university are more likely to be related to each other than
//! entities that belong to different universities. We have used this
//! characteristic of the data to create a partitioning algorithm."
//!
//! Nodes are grouped by a dataset-specific key (for LUBM/UOBM: the
//! university encoded in the IRI authority; for MDC: the oil field), and
//! whole groups are placed on partitions with a greedy longest-processing-
//! time bin-packer to balance node counts. Like the paper's version this
//! is a streaming algorithm: one pass to count groups, one to assign.

use owlpar_rdf::fx::FxHashMap;
use owlpar_rdf::{Dictionary, NodeId, Term};

/// Extracts a grouping key from a term; `None` sends the node to the
/// fallback (hash) assignment.
pub type KeyFn<'a> = &'a dyn Fn(&Term) -> Option<String>;

/// Default key: the IRI authority (scheme + host), e.g.
/// `http://www.univ3.edu/dept2/student5` → `http://www.univ3.edu`.
/// LUBM-style datasets encode the university there, so this reproduces
/// the paper's per-university grouping without dataset-specific code.
pub fn authority_key(term: &Term) -> Option<String> {
    let iri = term.as_iri()?;
    let rest = iri.strip_prefix("http://").or_else(|| iri.strip_prefix("https://"))?;
    let host_end = rest.find('/').unwrap_or(rest.len());
    Some(iri[..iri.len() - rest.len() + host_end].to_string())
}

/// Assign an owner to every node in `nodes` by grouping with `key` and
/// bin-packing groups onto `k` partitions. Keyless nodes are spread by
/// hash. Returns owners parallel to `nodes`.
pub fn domain_owners(
    nodes: &[NodeId],
    dict: &Dictionary,
    k: usize,
    key: KeyFn<'_>,
) -> Vec<u32> {
    assert!(k > 0);
    // pass 1: group sizes
    let mut group_of: Vec<Option<u32>> = Vec::with_capacity(nodes.len());
    let mut group_ids: FxHashMap<String, u32> = FxHashMap::default();
    let mut group_sizes: Vec<u64> = Vec::new();
    for &n in nodes {
        let g = dict.term(n).and_then(key).map(|s| {
            let next = group_ids.len() as u32;
            let id = *group_ids.entry(s).or_insert(next);
            if id as usize == group_sizes.len() {
                group_sizes.push(0);
            }
            group_sizes[id as usize] += 1;
            id
        });
        group_of.push(g);
    }
    // LPT bin packing: biggest group first onto the lightest partition
    let mut order: Vec<u32> = (0..group_sizes.len() as u32).collect();
    order.sort_unstable_by_key(|&g| std::cmp::Reverse(group_sizes[g as usize]));
    let mut part_load = vec![0u64; k];
    let mut group_part = vec![0u32; group_sizes.len()];
    for g in order {
        // `k > 0` is asserted on entry, so the range is never empty.
        let lightest = (0..k).min_by_key(|&p| part_load[p]).unwrap_or(0);
        group_part[g as usize] = lightest as u32;
        part_load[lightest] += group_sizes[g as usize];
    }
    // pass 2: assign
    nodes
        .iter()
        .zip(&group_of)
        .map(|(&n, g)| match g {
            Some(gid) => group_part[*gid as usize],
            None => crate::hash::hash_owner(n, k, 0xd0a1),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn authority_key_extracts_host() {
        assert_eq!(
            authority_key(&Term::iri("http://www.univ3.edu/dept2/student5")),
            Some("http://www.univ3.edu".to_string())
        );
        assert_eq!(
            authority_key(&Term::iri("https://a.b/x")),
            Some("https://a.b".to_string())
        );
        assert_eq!(
            authority_key(&Term::iri("http://bare-host.org")),
            Some("http://bare-host.org".to_string())
        );
        assert_eq!(authority_key(&Term::iri("urn:x")), None);
        assert_eq!(authority_key(&Term::literal("lit")), None);
    }

    fn setup(groups: usize, per_group: usize) -> (Dictionary, Vec<NodeId>) {
        let mut d = Dictionary::new();
        let mut nodes = Vec::new();
        for g in 0..groups {
            for i in 0..per_group {
                nodes.push(d.intern_iri(format!("http://www.univ{g}.edu/thing{i}")));
            }
        }
        (d, nodes)
    }

    #[test]
    fn same_group_same_owner() {
        let (d, nodes) = setup(4, 25);
        let owners = domain_owners(&nodes, &d, 2, &authority_key);
        for g in 0..4 {
            let first = owners[g * 25];
            for i in 0..25 {
                assert_eq!(owners[g * 25 + i], first, "group {g} split");
            }
        }
    }

    #[test]
    fn groups_balance_across_partitions() {
        let (d, nodes) = setup(8, 100);
        let owners = domain_owners(&nodes, &d, 4, &authority_key);
        let mut counts = vec![0usize; 4];
        for &o in &owners {
            counts[o as usize] += 1;
        }
        assert_eq!(counts, vec![200, 200, 200, 200]);
    }

    #[test]
    fn uneven_groups_packed_lpt() {
        let mut d = Dictionary::new();
        let mut nodes = Vec::new();
        // group sizes 6, 3, 2, 1 onto k=2 → loads {6} vs {3,2,1}
        for (g, sz) in [(0, 6), (1, 3), (2, 2), (3, 1)] {
            for i in 0..sz {
                nodes.push(d.intern_iri(format!("http://www.g{g}.org/n{i}")));
            }
        }
        let owners = domain_owners(&nodes, &d, 2, &authority_key);
        let mut counts = vec![0usize; 2];
        for &o in &owners {
            counts[o as usize] += 1;
        }
        counts.sort_unstable();
        assert_eq!(counts, vec![6, 6]);
    }

    #[test]
    fn keyless_nodes_fall_back_to_hash() {
        let mut d = Dictionary::new();
        let nodes: Vec<NodeId> = (0..100)
            .map(|i| d.intern(Term::literal(format!("lit{i}"))))
            .collect();
        let owners = domain_owners(&nodes, &d, 4, &authority_key);
        assert!(owners.iter().all(|&o| o < 4));
        // not all in one bucket
        let distinct: std::collections::HashSet<u32> = owners.iter().copied().collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn custom_key_function() {
        let mut d = Dictionary::new();
        let a = d.intern_iri("http://x/a-north");
        let b = d.intern_iri("http://x/b-north");
        let c = d.intern_iri("http://x/c-south");
        let key = |t: &Term| -> Option<String> {
            t.as_iri().map(|i| i.rsplit('-').next().unwrap().to_string())
        };
        let owners = domain_owners(&[a, b, c], &d, 2, &key);
        assert_eq!(owners[0], owners[1]);
        assert_ne!(owners[0], owners[2]);
    }
}
