//! Hash-based ownership (§III-A-2).
//!
//! "A (generic/arbitrary) hash function is used to determine which
//! processor a node is assigned to. ... it can be implemented as a
//! streaming algorithm ... On the other hand, the hashing algorithm does
//! not minimize edge-cuts and therefore the replication in the partitions
//! could be very high."
//!
//! Ownership is a pure function of the node id, so — exactly as the paper
//! notes — no owner table needs to be materialized or shipped; we expose
//! both the pure function and a table-producing wrapper so the parallel
//! layer can treat all policies uniformly.

use owlpar_rdf::NodeId;

/// A 64-bit finalizer (splitmix64) — a cheap, well-mixed "generic hash
/// function" in the paper's sense.
#[inline]
pub fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Owner of `node` among `k` partitions, with a `seed` so experiments can
/// draw independent hash functions.
#[inline]
pub fn hash_owner(node: NodeId, k: usize, seed: u64) -> u32 {
    debug_assert!(k > 0);
    (mix(node.0 as u64 ^ seed) % k as u64) as u32
}

/// Materialize owners for a vertex list (streaming over it once).
pub fn hash_owners(nodes: &[NodeId], k: usize, seed: u64) -> Vec<u32> {
    nodes.iter().map(|&n| hash_owner(n, k, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_owner(NodeId(5), 4, 1), hash_owner(NodeId(5), 4, 1));
    }

    #[test]
    fn owner_in_range() {
        for i in 0..1000 {
            let o = hash_owner(NodeId(i), 7, 3);
            assert!(o < 7);
        }
    }

    #[test]
    fn roughly_uniform() {
        let k = 4;
        let mut counts = vec![0usize; k];
        for i in 0..10_000 {
            counts[hash_owner(NodeId(i), k, 42) as usize] += 1;
        }
        for &c in &counts {
            assert!((2000..=3000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u32> = (0..100).map(|i| hash_owner(NodeId(i), 8, 1)).collect();
        let b: Vec<u32> = (0..100).map(|i| hash_owner(NodeId(i), 8, 2)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn batch_matches_pointwise() {
        let nodes: Vec<NodeId> = (0..50).map(NodeId).collect();
        let owners = hash_owners(&nodes, 3, 9);
        for (i, &n) in nodes.iter().enumerate() {
            assert_eq!(owners[i], hash_owner(n, 3, 9));
        }
    }

    #[test]
    fn k_one_maps_everything_to_zero() {
        for i in 0..100 {
            assert_eq!(hash_owner(NodeId(i), 1, 7), 0);
        }
    }
}
