//! Linear Deterministic Greedy (LDG) streaming partitioning.
//!
//! The paper positions hash partitioning as the streaming option ("the
//! whole data graph need not be loaded into the memory") and graph
//! partitioning as the quality option. The streaming-partitioning
//! literature that followed (Stanton & Kliot 2012) found a middle point:
//! assign each vertex, in stream order, to the partition holding most of
//! its already-seen neighbours, damped by a balance penalty:
//!
//! ```text
//! score(p) = |N(v) ∩ P_p| · (1 − |P_p| / C)      C = capacity per part
//! ```
//!
//! One pass, O(1) state per vertex — streaming like hash, but edge-cut
//! aware like the graph partitioner. Exposed as
//! [`crate::OwnershipPolicy::Streaming`] so every experiment can compare
//! all four policies.

use owlpar_rdf::fx::FxHashMap;
use owlpar_rdf::{NodeId, Triple};

/// Assign an owner to every node by one LDG pass over the triples.
///
/// `rdf_type` objects are skipped exactly like the ownership-graph
/// construction. Returns the owner table.
pub fn ldg_owners(
    instance: &[Triple],
    rdf_type: Option<NodeId>,
    k: usize,
) -> FxHashMap<NodeId, u32> {
    assert!(k >= 1);
    // Stream vertices in first-appearance order; edges to already-placed
    // neighbours vote for their partition.
    let mut owner: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut loads: Vec<u64> = vec![0; k];

    let mut neighbours: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
    let mut order: Vec<NodeId> = Vec::new();
    for t in instance {
        let skip_object = Some(t.p) == rdf_type;
        if !neighbours.contains_key(&t.s) {
            order.push(t.s);
        }
        let entry = neighbours.entry(t.s).or_default();
        if !skip_object {
            entry.push(t.o);
        }
        if !skip_object {
            if !neighbours.contains_key(&t.o) {
                order.push(t.o);
            }
            neighbours.entry(t.o).or_default().push(t.s);
        }
    }

    // LDG capacity: the balanced share per partition — the penalty term
    // reaches zero exactly when a partition is full.
    let capacity = (order.len() as f64 / k as f64).max(1.0);

    for v in order {
        let mut best = 0u32;
        let mut best_score = f64::NEG_INFINITY;
        let neigh = &neighbours[&v];
        for (p, &load) in loads.iter().enumerate().take(k) {
            let placed = neigh
                .iter()
                .filter(|n| owner.get(n) == Some(&(p as u32)))
                .count() as f64;
            let score = (placed + 1e-9) * (1.0 - load as f64 / capacity);
            // deterministic tie-break: lightest partition
            let score = score - load as f64 * 1e-12;
            if score > best_score {
                best_score = score;
                best = p as u32;
            }
        }
        owner.insert(v, best);
        loads[best as usize] += 1;
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    /// Two chains with a single bridge — LDG should keep chains intact.
    fn two_chains() -> Vec<Triple> {
        let mut v = Vec::new();
        for base in [0u32, 100] {
            for i in 0..20 {
                v.push(t(base + i, 500, base + i + 1));
            }
        }
        v.push(t(20, 500, 100));
        v
    }

    #[test]
    fn covers_all_nodes() {
        let triples = two_chains();
        let owner = ldg_owners(&triples, None, 3);
        for tr in &triples {
            assert!(owner.contains_key(&tr.s));
            assert!(owner.contains_key(&tr.o));
        }
        assert!(owner.values().all(|&p| p < 3));
    }

    #[test]
    fn balances_loads() {
        let triples = two_chains();
        let owner = ldg_owners(&triples, None, 2);
        let mut loads = [0usize; 2];
        for &p in owner.values() {
            loads[p as usize] += 1;
        }
        let total: usize = loads.iter().sum();
        for &l in &loads {
            assert!(l * 3 >= total, "severely unbalanced: {loads:?}");
        }
    }

    #[test]
    fn cuts_fewer_edges_than_hash() {
        let triples = two_chains();
        let k = 2;
        let ldg = ldg_owners(&triples, None, k);
        let cut = |owner: &FxHashMap<NodeId, u32>| {
            triples
                .iter()
                .filter(|tr| owner[&tr.s] != owner[&tr.o])
                .count()
        };
        let ldg_cut = cut(&ldg);
        let mut hash = FxHashMap::default();
        for tr in &triples {
            for n in [tr.s, tr.o] {
                hash.entry(n)
                    .or_insert_with(|| crate::hash::hash_owner(n, k, 7));
            }
        }
        let hash_cut = cut(&hash);
        assert!(
            ldg_cut * 2 < hash_cut.max(1) + ldg_cut + 20,
            "LDG {ldg_cut} should beat hash {hash_cut} clearly"
        );
        assert!(ldg_cut <= hash_cut, "LDG {ldg_cut} vs hash {hash_cut}");
    }

    #[test]
    fn type_objects_not_owned() {
        const TYPE: u32 = 9;
        let triples = vec![t(1, TYPE, 999), t(1, 500, 2)];
        let owner = ldg_owners(&triples, Some(NodeId(TYPE)), 2);
        assert!(!owner.contains_key(&NodeId(999)));
        assert!(owner.contains_key(&NodeId(1)));
        assert!(owner.contains_key(&NodeId(2)));
    }

    #[test]
    fn deterministic() {
        let triples = two_chains();
        assert_eq!(ldg_owners(&triples, None, 4), ldg_owners(&triples, None, 4));
    }

    #[test]
    fn k_one() {
        let triples = two_chains();
        let owner = ldg_owners(&triples, None, 1);
        assert!(owner.values().all(|&p| p == 0));
    }
}
