//! Build the ownership graph from instance triples.
//!
//! "The input RDF graph, in which each triple is represented by two
//! vertices, one each for the subject and the object, and an edge
//! representing the property, is considered for partition. All the
//! vertices are uniformly weighted." (§III-A-1)
//!
//! One deviation, documented in DESIGN.md: objects of `rdf:type` triples
//! (classes) are **not** vertices. Compiled OWL-Horst rules never join on
//! a class position (classes are constants in the compiled rules), and
//! making classes vertices would star-connect every instance of a class,
//! destroying the community structure the partitioner exploits.

use crate::multilevel::CsrGraph;
use owlpar_rdf::fx::FxHashMap;
use owlpar_rdf::{NodeId, Triple};

/// The ownership graph plus its vertex ↔ node maps.
#[derive(Debug, Clone)]
pub struct OwnershipGraph {
    /// The undirected graph handed to the partitioner.
    pub graph: CsrGraph,
    /// Vertex index → RDF node.
    pub vertex_to_node: Vec<NodeId>,
    /// RDF node → vertex index.
    pub node_to_vertex: FxHashMap<NodeId, u32>,
}

impl OwnershipGraph {
    /// Number of ownable resources.
    pub fn n(&self) -> usize {
        self.vertex_to_node.len()
    }
}

/// Build the ownership graph over `instance` triples. `rdf_type` (when
/// present in the dictionary) suppresses class-object vertices.
pub fn build_ownership_graph(instance: &[Triple], rdf_type: Option<NodeId>) -> OwnershipGraph {
    let mut node_to_vertex: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut vertex_to_node: Vec<NodeId> = Vec::new();
    let vid = |n: NodeId,
                   node_to_vertex: &mut FxHashMap<NodeId, u32>,
                   vertex_to_node: &mut Vec<NodeId>| {
        *node_to_vertex.entry(n).or_insert_with(|| {
            vertex_to_node.push(n);
            (vertex_to_node.len() - 1) as u32
        })
    };
    let mut edges: Vec<(usize, usize, u64)> = Vec::new();
    for t in instance {
        let s = vid(t.s, &mut node_to_vertex, &mut vertex_to_node);
        if Some(t.p) == rdf_type {
            continue; // subject becomes a vertex; class object does not
        }
        let o = vid(t.o, &mut node_to_vertex, &mut vertex_to_node);
        if s != o {
            edges.push((s as usize, o as usize, 1));
        }
    }
    OwnershipGraph {
        graph: CsrGraph::from_edges(vertex_to_node.len(), &edges),
        vertex_to_node,
        node_to_vertex,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    #[test]
    fn builds_vertices_for_subjects_and_objects() {
        let g = build_ownership_graph(&[t(1, 50, 2), t(2, 50, 3)], None);
        assert_eq!(g.n(), 3);
        assert_eq!(g.graph.m(), 2);
        assert!(g.node_to_vertex.contains_key(&NodeId(1)));
        assert!(g.node_to_vertex.contains_key(&NodeId(3)));
        // predicates are not vertices
        assert!(!g.node_to_vertex.contains_key(&NodeId(50)));
    }

    #[test]
    fn type_objects_are_not_vertices() {
        const TYPE: u32 = 9;
        let g = build_ownership_graph(&[t(1, TYPE, 100), t(1, 50, 2)], Some(NodeId(TYPE)));
        assert_eq!(g.n(), 2);
        assert!(!g.node_to_vertex.contains_key(&NodeId(100)));
    }

    #[test]
    fn parallel_triples_merge_into_weighted_edge() {
        let g = build_ownership_graph(&[t(1, 50, 2), t(1, 51, 2), t(2, 52, 1)], None);
        assert_eq!(g.graph.m(), 1);
        let w: u64 = g.graph.neighbors(0).map(|(_, w)| w).sum();
        assert_eq!(w, 3);
    }

    #[test]
    fn self_referencing_triple_is_vertex_without_edge() {
        let g = build_ownership_graph(&[t(1, 50, 1)], None);
        assert_eq!(g.n(), 1);
        assert_eq!(g.graph.m(), 0);
    }

    #[test]
    fn vertex_maps_are_inverse() {
        let g = build_ownership_graph(&[t(1, 50, 2), t(3, 50, 4)], None);
        for (v, &n) in g.vertex_to_node.iter().enumerate() {
            assert_eq!(g.node_to_vertex[&n] as usize, v);
        }
    }

    #[test]
    fn empty_input() {
        let g = build_ownership_graph(&[], None);
        assert_eq!(g.n(), 0);
        assert_eq!(g.graph.m(), 0);
    }
}
