//! Property tests for the multilevel partitioner: on arbitrary graphs the
//! result must be a complete, in-range, balanced assignment, and
//! refinement must never worsen the cut.

use owlpar_partition::multilevel::{partition_kway, CsrGraph, PartitionOptions};
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = CsrGraph> {
    (2usize..200, prop::collection::vec((any::<u32>(), any::<u32>(), 1u64..5), 0..400))
        .prop_map(|(n, raw)| {
            let edges: Vec<(usize, usize, u64)> = raw
                .into_iter()
                .map(|(a, b, w)| (a as usize % n, b as usize % n, w))
                .collect();
            CsrGraph::from_edges(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn assignment_is_complete_and_in_range(g in graph_strategy(), k in 1usize..8, seed in 0u64..50) {
        let opts = PartitionOptions { seed, ..PartitionOptions::default() };
        let part = partition_kway(&g, k, &opts);
        prop_assert_eq!(part.len(), g.n());
        prop_assert!(part.iter().all(|&p| (p as usize) < k));
    }

    #[test]
    fn parts_reasonably_balanced(g in graph_strategy(), k in 2usize..6, seed in 0u64..50) {
        let opts = PartitionOptions { seed, ..PartitionOptions::default() };
        let part = partition_kway(&g, k, &opts);
        let w = g.part_weights(&part, k);
        let total: u64 = w.iter().sum();
        let target = total as f64 / k as f64;
        for &wp in &w {
            // recursive bisection compounds epsilon per level (log2 k
            // levels); allow that plus integrality slack
            let levels = (k as f64).log2().ceil();
            let bound = target * (1.0 + 0.06 * levels) + levels + 1.0;
            prop_assert!(
                (wp as f64) <= bound,
                "weights {w:?} vs target {target} (k={k})"
            );
        }
    }

    #[test]
    fn refinement_never_worsens_cut(g in graph_strategy(), seed in 0u64..30) {
        let refined = partition_kway(&g, 2, &PartitionOptions {
            seed, refine: true, ..PartitionOptions::default()
        });
        let unrefined = partition_kway(&g, 2, &PartitionOptions {
            seed, refine: false, ..PartitionOptions::default()
        });
        prop_assert!(g.edge_cut(&refined) <= g.edge_cut(&unrefined));
    }

    #[test]
    fn edge_cut_bounded_by_total_weight(g in graph_strategy(), k in 2usize..6) {
        let part = partition_kway(&g, k, &PartitionOptions::default());
        let total_edge_weight: u64 = (0..g.n())
            .flat_map(|v| g.neighbors(v).map(|(_, w)| w))
            .sum::<u64>() / 2;
        prop_assert!(g.edge_cut(&part) <= total_edge_weight);
    }

    #[test]
    fn deterministic_per_seed(g in graph_strategy(), k in 1usize..6, seed in 0u64..20) {
        let opts = PartitionOptions { seed, ..PartitionOptions::default() };
        prop_assert_eq!(partition_kway(&g, k, &opts), partition_kway(&g, k, &opts));
    }
}
