//! TBox (schema) extraction and schema/instance triple classification.
//!
//! Algorithm 1 of the paper begins with *"Remove all the tuples involving
//! the schema elements from the initial tuples"*: the ownership graph is
//! built over instance data only, while the schema (together with the
//! compiled rule-base) is replicated to every partition. [`TBox`] is both
//! the input to the rule compiler and the classifier that performs that
//! split.

use owlpar_rdf::fx::{FxHashMap, FxHashSet};
use owlpar_rdf::{vocab, Graph, NodeId, Triple};

/// Whether a triple belongs to the ontology (schema) or the data (instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripleKind {
    /// Ontology definition: replicated to every partition.
    Schema,
    /// Instance data: partitioned.
    Instance,
}

/// Ids of the builtin vocabulary terms actually present in a graph's
/// dictionary. Missing entries mean the graph never mentions that term.
#[derive(Debug, Clone, Default)]
pub struct VocabIds {
    /// `rdf:type`
    pub rdf_type: Option<NodeId>,
    /// `owl:sameAs`
    pub same_as: Option<NodeId>,
    set: FxHashSet<NodeId>,
    meta_classes: FxHashSet<NodeId>,
}

impl VocabIds {
    fn collect(graph: &Graph) -> Self {
        let mut v = VocabIds::default();
        for (id, term) in graph.dict.iter() {
            let Some(iri) = term.as_iri() else { continue };
            if vocab::is_builtin(iri) {
                v.set.insert(id);
                match iri {
                    vocab::RDF_TYPE => v.rdf_type = Some(id),
                    vocab::OWL_SAME_AS => v.same_as = Some(id),
                    _ => {}
                }
                if matches!(
                    iri,
                    vocab::OWL_CLASS
                        | vocab::RDFS_CLASS
                        | vocab::OWL_OBJECT_PROPERTY
                        | vocab::OWL_DATATYPE_PROPERTY
                        | vocab::OWL_TRANSITIVE
                        | vocab::OWL_SYMMETRIC
                        | vocab::OWL_FUNCTIONAL
                        | vocab::OWL_INVERSE_FUNCTIONAL
                        | vocab::OWL_ONTOLOGY
                        | vocab::OWL_RESTRICTION
                        | vocab::RDF_PROPERTY
                ) {
                    v.meta_classes.insert(id);
                }
            }
        }
        v
    }

    /// Is `id` any builtin RDF/RDFS/OWL/XSD term?
    pub fn is_builtin(&self, id: NodeId) -> bool {
        self.set.contains(&id)
    }

    /// Is `id` a meta-class (`owl:Class`, `owl:TransitiveProperty`, ...)?
    pub fn is_meta_class(&self, id: NodeId) -> bool {
        self.meta_classes.contains(&id)
    }
}

/// The extracted schema of an OWL-Horst ontology.
#[derive(Debug, Clone, Default)]
pub struct TBox {
    /// `sub ⊑ sup` pairs, reflexive-transitively closed over
    /// `rdfs:subClassOf` and `owl:equivalentClass` (minus the identity
    /// pairs).
    pub sub_class_of: Vec<(NodeId, NodeId)>,
    /// `sub ⊑ sup` property pairs, closed like [`TBox::sub_class_of`].
    pub sub_property_of: Vec<(NodeId, NodeId)>,
    /// `rdfs:domain` assertions `(property, class)`.
    pub domain: Vec<(NodeId, NodeId)>,
    /// `rdfs:range` assertions `(property, class)`.
    pub range: Vec<(NodeId, NodeId)>,
    /// Properties declared `owl:TransitiveProperty`.
    pub transitive: Vec<NodeId>,
    /// Properties declared `owl:SymmetricProperty`.
    pub symmetric: Vec<NodeId>,
    /// Properties declared `owl:FunctionalProperty`.
    pub functional: Vec<NodeId>,
    /// Properties declared `owl:InverseFunctionalProperty`.
    pub inverse_functional: Vec<NodeId>,
    /// `owl:inverseOf` pairs (one direction; compiler emits both rules).
    pub inverse_of: Vec<(NodeId, NodeId)>,
    /// `owl:hasValue` restrictions: `(restriction_class, property, value)`.
    pub has_value: Vec<(NodeId, NodeId, NodeId)>,
    /// `owl:someValuesFrom` restrictions:
    /// `(restriction_class, property, filler_class)`.
    pub some_values_from: Vec<(NodeId, NodeId, NodeId)>,
    /// All class ids mentioned by the schema.
    pub classes: FxHashSet<NodeId>,
    /// All property ids mentioned by the schema.
    pub properties: FxHashSet<NodeId>,
    /// Builtin-vocabulary ids for classification.
    pub vocab: VocabIds,
}

impl TBox {
    /// Extract the TBox from a graph containing schema + instance triples.
    pub fn extract(graph: &Graph) -> TBox {
        let v = VocabIds::collect(graph);
        let id_of = |iri: &str| graph.dict.id(&owlpar_rdf::Term::iri(iri));

        let sub_class = id_of(vocab::RDFS_SUBCLASSOF);
        let sub_prop = id_of(vocab::RDFS_SUBPROPERTYOF);
        let domain_p = id_of(vocab::RDFS_DOMAIN);
        let range_p = id_of(vocab::RDFS_RANGE);
        let inverse_p = id_of(vocab::OWL_INVERSE_OF);
        let eq_class = id_of(vocab::OWL_EQUIVALENT_CLASS);
        let eq_prop = id_of(vocab::OWL_EQUIVALENT_PROPERTY);
        let on_prop = id_of(vocab::OWL_ON_PROPERTY);
        let some_values = id_of(vocab::OWL_SOME_VALUES_FROM);
        let has_value = id_of(vocab::OWL_HAS_VALUE);
        let trans_c = id_of(vocab::OWL_TRANSITIVE);
        let sym_c = id_of(vocab::OWL_SYMMETRIC);
        let fun_c = id_of(vocab::OWL_FUNCTIONAL);
        let ifun_c = id_of(vocab::OWL_INVERSE_FUNCTIONAL);

        let mut sub_class_edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut sub_prop_edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut tbox = TBox {
            vocab: v,
            ..TBox::default()
        };
        // Restrictions are assembled from their three constituent triples.
        let mut restr_on_prop: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        let mut restr_some: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        let mut restr_value: FxHashMap<NodeId, NodeId> = FxHashMap::default();

        for t in graph.store.iter() {
            let p = Some(t.p);
            if p == sub_class {
                sub_class_edges.push((t.s, t.o));
            } else if p == eq_class {
                sub_class_edges.push((t.s, t.o));
                sub_class_edges.push((t.o, t.s));
            } else if p == sub_prop {
                sub_prop_edges.push((t.s, t.o));
            } else if p == eq_prop {
                sub_prop_edges.push((t.s, t.o));
                sub_prop_edges.push((t.o, t.s));
            } else if p == domain_p {
                tbox.domain.push((t.s, t.o));
            } else if p == range_p {
                tbox.range.push((t.s, t.o));
            } else if p == inverse_p {
                tbox.inverse_of.push((t.s, t.o));
            } else if p == on_prop {
                restr_on_prop.insert(t.s, t.o);
            } else if p == some_values {
                restr_some.insert(t.s, t.o);
            } else if p == has_value {
                restr_value.insert(t.s, t.o);
            } else if Some(t.p) == tbox.vocab.rdf_type {
                if Some(t.o) == trans_c {
                    tbox.transitive.push(t.s);
                } else if Some(t.o) == sym_c {
                    tbox.symmetric.push(t.s);
                } else if Some(t.o) == fun_c {
                    tbox.functional.push(t.s);
                } else if Some(t.o) == ifun_c {
                    tbox.inverse_functional.push(t.s);
                }
            }
        }

        for (r, prop) in &restr_on_prop {
            if let Some(&filler) = restr_some.get(r) {
                tbox.some_values_from.push((*r, *prop, filler));
            }
            if let Some(&value) = restr_value.get(r) {
                tbox.has_value.push((*r, *prop, value));
            }
        }
        tbox.some_values_from.sort_unstable();
        tbox.has_value.sort_unstable();

        tbox.sub_class_of = transitive_closure(&sub_class_edges);
        tbox.sub_property_of = transitive_closure(&sub_prop_edges);

        for &(a, b) in &tbox.sub_class_of {
            tbox.classes.insert(a);
            tbox.classes.insert(b);
        }
        for &(_, c) in tbox.domain.iter().chain(&tbox.range) {
            tbox.classes.insert(c);
        }
        for &(r, _, f) in &tbox.some_values_from {
            tbox.classes.insert(r);
            tbox.classes.insert(f);
        }
        for &(r, _, _) in &tbox.has_value {
            tbox.classes.insert(r);
        }
        for &(a, b) in &tbox.sub_property_of {
            tbox.properties.insert(a);
            tbox.properties.insert(b);
        }
        for &(p, _) in tbox.domain.iter().chain(&tbox.range) {
            tbox.properties.insert(p);
        }
        for &p in tbox
            .transitive
            .iter()
            .chain(&tbox.symmetric)
            .chain(&tbox.functional)
            .chain(&tbox.inverse_functional)
        {
            tbox.properties.insert(p);
        }
        for &(a, b) in &tbox.inverse_of {
            tbox.properties.insert(a);
            tbox.properties.insert(b);
        }
        for &(_, p, _) in tbox.some_values_from.iter().chain(&tbox.has_value) {
            tbox.properties.insert(p);
        }
        tbox
    }

    /// Classify one triple. A triple is **schema** when its predicate is a
    /// builtin schema predicate (anything in the RDF/RDFS/OWL namespaces
    /// except `rdf:type` and `owl:sameAs`), or when it types a resource
    /// with a builtin meta-class (`X rdf:type owl:Class`, ...).
    /// `rdf:type` to a user class and `owl:sameAs` between individuals are
    /// instance data.
    pub fn classify(&self, t: &Triple) -> TripleKind {
        if Some(t.p) == self.vocab.rdf_type {
            if self.vocab.is_meta_class(t.o) || self.vocab.is_builtin(t.o) {
                TripleKind::Schema
            } else {
                TripleKind::Instance
            }
        } else if Some(t.p) == self.vocab.same_as {
            TripleKind::Instance
        } else if self.vocab.is_builtin(t.p) {
            TripleKind::Schema
        } else {
            TripleKind::Instance
        }
    }

    /// Split a triple list into (schema, instance) per [`TBox::classify`].
    pub fn split(&self, triples: impl IntoIterator<Item = Triple>) -> (Vec<Triple>, Vec<Triple>) {
        let mut schema = Vec::new();
        let mut instance = Vec::new();
        for t in triples {
            match self.classify(&t) {
                TripleKind::Schema => schema.push(t),
                TripleKind::Instance => instance.push(t),
            }
        }
        (schema, instance)
    }
}

/// Transitive closure of a directed edge list (identity pairs excluded),
/// returned sorted and deduplicated. Schema graphs are tiny, so a simple
/// worklist is fine.
fn transitive_closure(edges: &[(NodeId, NodeId)]) -> Vec<(NodeId, NodeId)> {
    let mut succ: FxHashMap<NodeId, FxHashSet<NodeId>> = FxHashMap::default();
    for &(a, b) in edges {
        if a != b {
            succ.entry(a).or_default().insert(b);
        }
    }
    let keys: Vec<NodeId> = succ.keys().copied().collect();
    for &start in &keys {
        // BFS from each source
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        let mut stack: Vec<NodeId> = succ[&start].iter().copied().collect();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = succ.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
        seen.remove(&start); // drop identity
        if let Some(entry) = succ.get_mut(&start) {
            entry.extend(seen);
            entry.remove(&start);
        }
    }
    let mut out: Vec<(NodeId, NodeId)> = succ
        .into_iter()
        .flat_map(|(a, bs)| bs.into_iter().map(move |b| (a, b)))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_rdf::vocab::*;
    use owlpar_rdf::Term;

    fn uc(n: &str) -> String {
        format!("http://ex.org/ont#{n}")
    }

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        // class hierarchy: GradStudent < Student < Person; Person ≡ Human
        g.insert_iris(uc("GradStudent"), RDFS_SUBCLASSOF, uc("Student"));
        g.insert_iris(uc("Student"), RDFS_SUBCLASSOF, uc("Person"));
        g.insert_iris(uc("Person"), OWL_EQUIVALENT_CLASS, uc("Human"));
        // property hierarchy + characteristics
        g.insert_iris(uc("headOf"), RDFS_SUBPROPERTYOF, uc("worksFor"));
        g.insert_iris(uc("partOf"), RDF_TYPE, OWL_TRANSITIVE);
        g.insert_iris(uc("near"), RDF_TYPE, OWL_SYMMETRIC);
        g.insert_iris(uc("hasId"), RDF_TYPE, OWL_FUNCTIONAL);
        g.insert_iris(uc("email"), RDF_TYPE, OWL_INVERSE_FUNCTIONAL);
        g.insert_iris(uc("advises"), OWL_INVERSE_OF, uc("advisedBy"));
        g.insert_iris(uc("teaches"), RDFS_DOMAIN, uc("Professor"));
        g.insert_iris(uc("teaches"), RDFS_RANGE, uc("Course"));
        // a restriction: things with hasId "42" are TheAnswer
        g.insert_iris(uc("TheAnswer"), RDF_TYPE, OWL_RESTRICTION);
        g.insert_iris(uc("TheAnswer"), OWL_ON_PROPERTY, uc("hasId"));
        g.insert_terms(
            Term::iri(uc("TheAnswer")),
            Term::iri(OWL_HAS_VALUE),
            Term::literal("42"),
        );
        // instance data
        g.insert_iris("http://ex.org/u0/alice", RDF_TYPE, uc("GradStudent"));
        g.insert_iris("http://ex.org/u0/alice", uc("advisedBy"), "http://ex.org/u0/bob");
        g.insert_iris("http://ex.org/u0/alice", OWL_SAME_AS, "http://ex.org/u0/al");
        g
    }

    fn id(g: &Graph, iri: &str) -> NodeId {
        g.dict.id(&Term::iri(iri)).unwrap()
    }

    #[test]
    fn subclass_closure_includes_transitive_and_equivalent() {
        let g = sample_graph();
        let tb = TBox::extract(&g);
        let grad = id(&g, &uc("GradStudent"));
        let person = id(&g, &uc("Person"));
        let human = id(&g, &uc("Human"));
        assert!(tb.sub_class_of.contains(&(grad, person)));
        assert!(tb.sub_class_of.contains(&(grad, human)), "via equivalence");
        assert!(tb.sub_class_of.contains(&(person, human)));
        assert!(tb.sub_class_of.contains(&(human, person)), "equiv is bidirectional");
        assert!(!tb.sub_class_of.contains(&(person, person)), "no identity pairs");
    }

    #[test]
    fn property_characteristics_extracted() {
        let g = sample_graph();
        let tb = TBox::extract(&g);
        assert_eq!(tb.transitive, vec![id(&g, &uc("partOf"))]);
        assert_eq!(tb.symmetric, vec![id(&g, &uc("near"))]);
        assert_eq!(tb.functional, vec![id(&g, &uc("hasId"))]);
        assert_eq!(tb.inverse_functional, vec![id(&g, &uc("email"))]);
        assert_eq!(
            tb.inverse_of,
            vec![(id(&g, &uc("advises")), id(&g, &uc("advisedBy")))]
        );
    }

    #[test]
    fn domain_range_extracted() {
        let g = sample_graph();
        let tb = TBox::extract(&g);
        assert_eq!(
            tb.domain,
            vec![(id(&g, &uc("teaches")), id(&g, &uc("Professor")))]
        );
        assert_eq!(
            tb.range,
            vec![(id(&g, &uc("teaches")), id(&g, &uc("Course")))]
        );
    }

    #[test]
    fn has_value_restriction_assembled() {
        let g = sample_graph();
        let tb = TBox::extract(&g);
        assert_eq!(tb.has_value.len(), 1);
        let (r, p, v) = tb.has_value[0];
        assert_eq!(r, id(&g, &uc("TheAnswer")));
        assert_eq!(p, id(&g, &uc("hasId")));
        assert_eq!(v, g.dict.id(&Term::literal("42")).unwrap());
    }

    #[test]
    fn classification_schema_vs_instance() {
        let g = sample_graph();
        let tb = TBox::extract(&g);
        let rdf_type = id(&g, RDF_TYPE);
        let subclass = id(&g, RDFS_SUBCLASSOF);
        let same_as = id(&g, OWL_SAME_AS);
        let grad = id(&g, &uc("GradStudent"));
        let student = id(&g, &uc("Student"));
        let owl_trans = id(&g, OWL_TRANSITIVE);
        let part_of = id(&g, &uc("partOf"));
        let alice = id(&g, "http://ex.org/u0/alice");
        let al = id(&g, "http://ex.org/u0/al");

        // (GradStudent subClassOf Student): schema
        assert_eq!(
            tb.classify(&Triple::new(grad, subclass, student)),
            TripleKind::Schema
        );
        // (partOf type owl:TransitiveProperty): schema
        assert_eq!(
            tb.classify(&Triple::new(part_of, rdf_type, owl_trans)),
            TripleKind::Schema
        );
        // (alice type GradStudent): instance
        assert_eq!(
            tb.classify(&Triple::new(alice, rdf_type, grad)),
            TripleKind::Instance
        );
        // (alice sameAs al): instance
        assert_eq!(
            tb.classify(&Triple::new(alice, same_as, al)),
            TripleKind::Instance
        );
    }

    #[test]
    fn split_partitions_the_graph() {
        let g = sample_graph();
        let tb = TBox::extract(&g);
        let (schema, instance) = tb.split(g.store.iter().copied());
        assert_eq!(schema.len() + instance.len(), g.len());
        assert_eq!(instance.len(), 3, "alice's three instance triples");
    }

    #[test]
    fn classes_and_properties_collected() {
        let g = sample_graph();
        let tb = TBox::extract(&g);
        assert!(tb.classes.contains(&id(&g, &uc("Person"))));
        assert!(tb.classes.contains(&id(&g, &uc("Course"))));
        assert!(tb.properties.contains(&id(&g, &uc("teaches"))));
        assert!(tb.properties.contains(&id(&g, &uc("partOf"))));
    }

    #[test]
    fn empty_graph_gives_empty_tbox() {
        let g = Graph::new();
        let tb = TBox::extract(&g);
        assert!(tb.sub_class_of.is_empty());
        assert!(tb.transitive.is_empty());
        assert!(tb.classes.is_empty());
    }

    #[test]
    fn subclass_cycle_closes_without_identity() {
        let mut g = Graph::new();
        g.insert_iris(uc("A"), RDFS_SUBCLASSOF, uc("B"));
        g.insert_iris(uc("B"), RDFS_SUBCLASSOF, uc("C"));
        g.insert_iris(uc("C"), RDFS_SUBCLASSOF, uc("A"));
        let tb = TBox::extract(&g);
        let a = id(&g, &uc("A"));
        let c = id(&g, &uc("C"));
        assert!(tb.sub_class_of.contains(&(a, c)));
        assert!(tb.sub_class_of.contains(&(c, a)));
        assert!(!tb.sub_class_of.contains(&(a, a)));
        assert_eq!(tb.sub_class_of.len(), 6);
    }
}
