//! [`HorstReasoner`]: the serial OWL-Horst materializer.
//!
//! Ties together TBox extraction, rule compilation and the datalog
//! engines. This is the component Algorithm 3 wraps: "it uses an existing
//! reasoner for creating additional tuples ... it can be built as a
//! wrapper over an existing reasoner."

use crate::compile::{compile_ontology, CompileOptions};
use crate::tbox::TBox;
use owlpar_datalog::{MaterializationStrategy, Reasoner, Rule};
use owlpar_rdf::{Graph, Triple};

/// A compiled OWL-Horst reasoner for a specific ontology.
#[derive(Debug, Clone)]
pub struct HorstReasoner {
    /// The extracted schema.
    pub tbox: TBox,
    /// The schema triples (replicated to every partition by Algorithm 1).
    pub schema_triples: Vec<Triple>,
    /// The instance triples (the partitionable data).
    pub instance_triples: Vec<Triple>,
    /// The compiled single-join rule-base.
    pub reasoner: Reasoner,
}

impl HorstReasoner {
    /// Extract the TBox of `graph`, compile it, and split the triples.
    /// `strategy` selects the closure engine.
    pub fn from_graph(graph: &mut Graph, strategy: MaterializationStrategy) -> Self {
        Self::with_options(graph, strategy, CompileOptions::default())
    }

    /// [`HorstReasoner::from_graph`] with explicit compiler options.
    pub fn with_options(
        graph: &mut Graph,
        strategy: MaterializationStrategy,
        opts: CompileOptions,
    ) -> Self {
        let tbox = TBox::extract(graph);
        let rules = compile_ontology(&tbox, &mut graph.dict, opts);
        let (schema_triples, instance_triples) = tbox.split(graph.store.iter().copied());
        HorstReasoner {
            tbox,
            schema_triples,
            instance_triples,
            reasoner: Reasoner::new(rules, strategy),
        }
    }

    /// The compiled rule-base.
    pub fn rules(&self) -> &[Rule] {
        &self.reasoner.rules
    }

    /// Materialize `graph` in place; returns the number of derived triples.
    pub fn materialize(&self, graph: &mut Graph) -> usize {
        self.reasoner.materialize(&mut graph.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlpar_datalog::backward::TableScope;
    use owlpar_rdf::vocab::*;
    use owlpar_rdf::Term;

    fn uc(n: &str) -> String {
        format!("http://ex.org/ont#{n}")
    }

    fn ud(n: &str) -> String {
        format!("http://ex.org/data/{n}")
    }

    fn workload() -> Graph {
        let mut g = Graph::new();
        g.insert_iris(uc("Student"), RDFS_SUBCLASSOF, uc("Person"));
        g.insert_iris(uc("partOf"), RDF_TYPE, OWL_TRANSITIVE);
        g.insert_iris(ud("alice"), RDF_TYPE, uc("Student"));
        g.insert_iris(ud("a"), uc("partOf"), ud("b"));
        g.insert_iris(ud("b"), uc("partOf"), ud("c"));
        g
    }

    #[test]
    fn from_graph_splits_and_compiles() {
        let mut g = workload();
        let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
        assert_eq!(hr.schema_triples.len(), 2);
        assert_eq!(hr.instance_triples.len(), 3);
        assert_eq!(hr.rules().len(), 2); // one subclass + one transitive
    }

    #[test]
    fn materialize_forward() {
        let mut g = workload();
        let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
        let n = hr.materialize(&mut g);
        assert_eq!(n, 2); // alice:Person and a partOf c
        assert!(g.contains_terms(
            &Term::iri(ud("alice")),
            &Term::iri(RDF_TYPE),
            &Term::iri(uc("Person"))
        ));
    }

    #[test]
    fn forward_and_backward_agree() {
        let mut g1 = workload();
        let hr1 = HorstReasoner::from_graph(&mut g1, MaterializationStrategy::ForwardSemiNaive);
        hr1.materialize(&mut g1);

        let mut g2 = workload();
        let hr2 = HorstReasoner::from_graph(
            &mut g2,
            MaterializationStrategy::BackwardPerResource(TableScope::PerQuery),
        );
        hr2.materialize(&mut g2);

        assert_eq!(g1.term_fingerprint(), g2.term_fingerprint());
    }
}
