//! [`HorstReasoner`]: the serial OWL-Horst materializer.
//!
//! Ties together TBox extraction, rule compilation and the datalog
//! engines. This is the component Algorithm 3 wraps: "it uses an existing
//! reasoner for creating additional tuples ... it can be built as a
//! wrapper over an existing reasoner."

use crate::compile::{compile_ontology, CompileOptions};
use crate::tbox::{TBox, TripleKind};
use owlpar_datalog::{MaterializationStrategy, Reasoner, Rule};
use owlpar_lint::{lint_rules, LintOptions, LintReport, PartitionContext};
use owlpar_rdf::fx::{FxHashMap, FxHashSet};
use owlpar_rdf::{Graph, NodeId, Triple, TripleStore};

/// What [`HorstReasoner::materialize_delta`] did with an insert batch.
///
/// The incremental path is only sound while the schema (and therefore the
/// compiled rule-base) is unchanged: rules are specialized to the TBox, so
/// a schema triple in the batch invalidates the compilation. The caller
/// must then recompile ([`HorstReasoner::from_graph`]) and re-close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// The batch was pure instance data; `derived` lists every new
    /// consequence (cascades included) that was inserted into the store.
    Incremental {
        /// Consequences derived from the batch, in derivation order.
        derived: Vec<Triple>,
    },
    /// The batch contains schema triples; nothing was inserted. The
    /// caller must recompile the ontology and re-materialize.
    SchemaChanged,
}

/// A compiled OWL-Horst reasoner for a specific ontology.
#[derive(Debug, Clone)]
pub struct HorstReasoner {
    /// The extracted schema.
    pub tbox: TBox,
    /// The schema triples (replicated to every partition by Algorithm 1).
    pub schema_triples: Vec<Triple>,
    /// The instance triples (the partitionable data).
    pub instance_triples: Vec<Triple>,
    /// The compiled single-join rule-base.
    pub reasoner: Reasoner,
    /// Static lint report over the compiled rule-base, checked against the
    /// data-partitioned deployment context (the strictest one). The master
    /// consults it before spawning workers; a deny finding means the
    /// rule-base is not safe to evaluate over partitioned data.
    pub lint: LintReport,
}

impl HorstReasoner {
    /// Extract the TBox of `graph`, compile it, and split the triples.
    /// `strategy` selects the closure engine.
    pub fn from_graph(graph: &mut Graph, strategy: MaterializationStrategy) -> Self {
        Self::with_options(graph, strategy, CompileOptions::default())
    }

    /// [`HorstReasoner::from_graph`] with explicit compiler options.
    pub fn with_options(
        graph: &mut Graph,
        strategy: MaterializationStrategy,
        opts: CompileOptions,
    ) -> Self {
        let tbox = TBox::extract(graph);
        let rules = compile_ontology(&tbox, &mut graph.dict, opts);
        let (schema_triples, instance_triples) = tbox.split(graph.store.iter().copied());
        // Lint against the data the rule-base will meet: the predicate
        // histogram weights rule-partitioning edges, and the base
        // vocabulary enables dead-rule detection.
        let mut hist: FxHashMap<NodeId, usize> = FxHashMap::default();
        let mut base: FxHashSet<NodeId> = FxHashSet::default();
        for t in graph.store.iter() {
            *hist.entry(t.p).or_default() += 1;
            base.insert(t.p);
        }
        let mut lint_opts = LintOptions::for_context(PartitionContext::DataPartitioned);
        lint_opts.predicate_counts = Some(hist);
        lint_opts.base_predicates = Some(base);
        let lint = lint_rules(&rules, &lint_opts);
        HorstReasoner {
            tbox,
            schema_triples,
            instance_triples,
            reasoner: Reasoner::new(rules, strategy),
            lint,
        }
    }

    /// The compiled rule-base.
    pub fn rules(&self) -> &[Rule] {
        &self.reasoner.rules
    }

    /// Materialize `graph` in place; returns the number of derived triples.
    pub fn materialize(&self, graph: &mut Graph) -> usize {
        self.reasoner.materialize(&mut graph.store)
    }

    /// Incrementally maintain a store that is already closed under this
    /// reasoner's rules: insert `batch` and derive only its consequences
    /// (semi-naive evaluation seeded with the batch — O(delta), not
    /// O(store)).
    ///
    /// Soundness: forward closure is monotonic and confluent, so seeding
    /// the semi-naive rounds with exactly the *new* triples over an
    /// already-closed store yields the same fixpoint as re-closing
    /// `store ∪ batch` from scratch — provided the rule-base itself still
    /// matches the schema. A batch containing schema triples therefore
    /// returns [`DeltaOutcome::SchemaChanged`] without touching the
    /// store; the caller recompiles and re-closes.
    pub fn materialize_delta(
        &self,
        store: &mut TripleStore,
        batch: &[Triple],
    ) -> DeltaOutcome {
        if batch
            .iter()
            .any(|t| self.tbox.classify(t) == TripleKind::Schema)
        {
            return DeltaOutcome::SchemaChanged;
        }
        let mut fresh = Vec::with_capacity(batch.len());
        for &t in batch {
            if store.insert(t) {
                fresh.push(t);
            }
        }
        let derived = self.reasoner.materialize_delta(store, fresh);
        DeltaOutcome::Incremental { derived }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_datalog::backward::TableScope;
    use owlpar_rdf::vocab::*;
    use owlpar_rdf::Term;

    fn uc(n: &str) -> String {
        format!("http://ex.org/ont#{n}")
    }

    fn ud(n: &str) -> String {
        format!("http://ex.org/data/{n}")
    }

    fn workload() -> Graph {
        let mut g = Graph::new();
        g.insert_iris(uc("Student"), RDFS_SUBCLASSOF, uc("Person"));
        g.insert_iris(uc("partOf"), RDF_TYPE, OWL_TRANSITIVE);
        g.insert_iris(ud("alice"), RDF_TYPE, uc("Student"));
        g.insert_iris(ud("a"), uc("partOf"), ud("b"));
        g.insert_iris(ud("b"), uc("partOf"), ud("c"));
        g
    }

    #[test]
    fn from_graph_splits_and_compiles() {
        let mut g = workload();
        let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
        assert_eq!(hr.schema_triples.len(), 2);
        assert_eq!(hr.instance_triples.len(), 3);
        assert_eq!(hr.rules().len(), 2); // one subclass + one transitive
    }

    #[test]
    fn materialize_forward() {
        let mut g = workload();
        let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
        let n = hr.materialize(&mut g);
        assert_eq!(n, 2); // alice:Person and a partOf c
        assert!(g.contains_terms(
            &Term::iri(ud("alice")),
            &Term::iri(RDF_TYPE),
            &Term::iri(uc("Person"))
        ));
    }

    #[test]
    fn delta_matches_full_reclose() {
        let mut g = workload();
        let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
        hr.materialize(&mut g);

        // bob shows up, and a new partOf edge extends the chain.
        let bob = g.intern(Term::iri(ud("bob")));
        let student = g.intern(Term::iri(uc("Student")));
        let rdf_type = g.intern(Term::iri(RDF_TYPE));
        let part_of = g.intern(Term::iri(uc("partOf")));
        let c = g.intern(Term::iri(ud("c")));
        let d = g.intern(Term::iri(ud("d")));
        let batch = vec![
            owlpar_rdf::Triple::new(bob, rdf_type, student),
            owlpar_rdf::Triple::new(c, part_of, d),
        ];

        let mut incremental = g.store.clone();
        let outcome = hr.materialize_delta(&mut incremental, &batch);
        let DeltaOutcome::Incremental { derived } = outcome else {
            panic!("pure instance batch must stay incremental");
        };
        // bob:Person plus a/b partOf d cascades.
        assert_eq!(derived.len(), 3);

        // Oracle: close base ∪ batch from scratch.
        let mut scratch = g.clone();
        for &t in &batch {
            scratch.store.insert(t);
        }
        let hr2 =
            HorstReasoner::from_graph(&mut scratch, MaterializationStrategy::ForwardSemiNaive);
        hr2.materialize(&mut scratch);
        assert_eq!(incremental.iter_sorted(), scratch.store.iter_sorted());
    }

    #[test]
    fn delta_with_schema_triple_reports_schema_changed() {
        let mut g = workload();
        let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
        hr.materialize(&mut g);
        let person = g.intern(Term::iri(uc("Person")));
        let agent = g.intern(Term::iri(uc("Agent")));
        let subclass = g.intern(Term::iri(RDFS_SUBCLASSOF));
        let before = g.store.len();
        let outcome = hr.materialize_delta(
            &mut g.store,
            &[owlpar_rdf::Triple::new(person, subclass, agent)],
        );
        assert_eq!(outcome, DeltaOutcome::SchemaChanged);
        assert_eq!(g.store.len(), before, "store untouched on schema change");
    }

    #[test]
    fn delta_of_known_triples_is_empty() {
        let mut g = workload();
        let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
        hr.materialize(&mut g);
        let existing: Vec<owlpar_rdf::Triple> = hr.instance_triples.clone();
        let outcome = hr.materialize_delta(&mut g.store, &existing);
        assert_eq!(
            outcome,
            DeltaOutcome::Incremental { derived: vec![] },
            "re-inserting closed triples derives nothing"
        );
    }

    #[test]
    fn forward_and_backward_agree() {
        let mut g1 = workload();
        let hr1 = HorstReasoner::from_graph(&mut g1, MaterializationStrategy::ForwardSemiNaive);
        hr1.materialize(&mut g1);

        let mut g2 = workload();
        let hr2 = HorstReasoner::from_graph(
            &mut g2,
            MaterializationStrategy::BackwardPerResource(TableScope::PerQuery),
        );
        hr2.materialize(&mut g2);

        assert_eq!(g1.term_fingerprint(), g2.term_fingerprint());
    }
}
