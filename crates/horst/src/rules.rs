//! The *generic* OWL-Horst (pD\*) rule set, with schema atoms in rule
//! bodies.
//!
//! This is the textbook formulation (ter Horst 2005): rules like `rdfs9`
//! quantify over the schema (`(?c rdfs:subClassOf ?d) (?x rdf:type ?c) →
//! (?x rdf:type ?d)`). Production engines evaluate the *compiled* form
//! from [`crate::compile`] instead; we keep the generic set as an
//! independent oracle — tests check that
//! `generic rules + schema triples` and `compiled rules + instance
//! triples` produce the same instance-level closure.

use owlpar_datalog::parser::parse_rules;
use owlpar_datalog::Rule;
use owlpar_rdf::Dictionary;

/// Textual source of the generic pD\* rule set (subset exercised by the
/// benchmarks; `rdf:type`-propagating RDFS core plus the OWL property
/// rules).
pub const PD_STAR_RULES: &str = r#"
# --- RDFS core -------------------------------------------------------
# rdfs2: domain
[rdfs2: (?p rdfs:domain ?c) (?x ?p ?y) -> (?x rdf:type ?c)]
# rdfs3: range
[rdfs3: (?p rdfs:range ?c) (?x ?p ?y) -> (?y rdf:type ?c)]
# rdfs5: subPropertyOf transitivity
[rdfs5: (?p rdfs:subPropertyOf ?q) (?q rdfs:subPropertyOf ?r) -> (?p rdfs:subPropertyOf ?r)]
# rdfs7: subPropertyOf inheritance
[rdfs7: (?p rdfs:subPropertyOf ?q) (?x ?p ?y) -> (?x ?q ?y)]
# rdfs9: subClassOf inheritance
[rdfs9: (?c rdfs:subClassOf ?d) (?x rdf:type ?c) -> (?x rdf:type ?d)]
# rdfs11: subClassOf transitivity
[rdfs11: (?c rdfs:subClassOf ?d) (?d rdfs:subClassOf ?e) -> (?c rdfs:subClassOf ?e)]

# --- pD* property semantics -----------------------------------------
# rdfp1: functional property
[rdfp1: (?p rdf:type owl:FunctionalProperty) (?x ?p ?y) (?x ?p ?z) -> (?y owl:sameAs ?z)]
# rdfp2: inverse functional property
[rdfp2: (?p rdf:type owl:InverseFunctionalProperty) (?y ?p ?x) (?z ?p ?x) -> (?y owl:sameAs ?z)]
# rdfp3: symmetric property
[rdfp3: (?p rdf:type owl:SymmetricProperty) (?x ?p ?y) -> (?y ?p ?x)]
# rdfp4: transitive property
[rdfp4: (?p rdf:type owl:TransitiveProperty) (?x ?p ?y) (?y ?p ?z) -> (?x ?p ?z)]
# rdfp6: sameAs symmetry
[rdfp6: (?x owl:sameAs ?y) -> (?y owl:sameAs ?x)]
# rdfp7: sameAs transitivity
[rdfp7: (?x owl:sameAs ?y) (?y owl:sameAs ?z) -> (?x owl:sameAs ?z)]
# rdfp8a/b: inverseOf
[rdfp8a: (?p owl:inverseOf ?q) (?x ?p ?y) -> (?y ?q ?x)]
[rdfp8b: (?p owl:inverseOf ?q) (?x ?q ?y) -> (?y ?p ?x)]

# --- equivalence ------------------------------------------------------
# rdfp12a/b/c: equivalentClass
[rdfp12a: (?c owl:equivalentClass ?d) -> (?c rdfs:subClassOf ?d)]
[rdfp12b: (?c owl:equivalentClass ?d) -> (?d rdfs:subClassOf ?c)]
# rdfp13a/b: equivalentProperty
[rdfp13a: (?p owl:equivalentProperty ?q) -> (?p rdfs:subPropertyOf ?q)]
[rdfp13b: (?p owl:equivalentProperty ?q) -> (?q rdfs:subPropertyOf ?p)]

# --- restrictions -----------------------------------------------------
# rdfp14a: hasValue membership from value
[rdfp14a: (?r owl:hasValue ?v) (?r owl:onProperty ?p) (?x ?p ?v) -> (?x rdf:type ?r)]
# rdfp14b: value from hasValue membership
[rdfp14b: (?r owl:hasValue ?v) (?r owl:onProperty ?p) (?x rdf:type ?r) -> (?x ?p ?v)]
# rdfp15: someValuesFrom membership
[rdfp15: (?r owl:someValuesFrom ?c) (?r owl:onProperty ?p) (?x ?p ?y) (?y rdf:type ?c) -> (?x rdf:type ?r)]
"#;

/// Parse [`PD_STAR_RULES`] against `dict`.
// The rule text is a compile-time constant; the unit tests below parse it,
// so the expect can only fire if the constant itself is edited and broken.
#[allow(clippy::expect_used)]
pub fn pd_star_rules(dict: &mut Dictionary) -> Vec<Rule> {
    parse_rules(PD_STAR_RULES, dict).expect("builtin pD* rule set parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_ontology, CompileOptions};
    use crate::tbox::{TBox, TripleKind};
    use owlpar_datalog::analysis::{classify, JoinClass};
    use owlpar_datalog::forward::forward_closure;
    use owlpar_rdf::vocab::*;
    use owlpar_rdf::{Graph, Triple};

    #[test]
    fn rule_set_parses() {
        let mut d = Dictionary::new();
        let rules = pd_star_rules(&mut d);
        assert_eq!(rules.len(), 21);
    }

    #[test]
    fn generic_rules_are_mostly_single_join_after_schema_binding() {
        // The generic formulation has 3-atom rules (rdfp1/2, rdfp14, rdfp15)
        // whose first atom is a schema atom; after compilation those become
        // 1- or 2-atom rules. Here we just record the generic shape.
        let mut d = Dictionary::new();
        let rules = pd_star_rules(&mut d);
        let multi: Vec<&str> = rules
            .iter()
            .filter(|r| matches!(classify(r), JoinClass::MultiJoin))
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(
            multi,
            vec!["rdfp1", "rdfp2", "rdfp4", "rdfp14a", "rdfp14b", "rdfp15"]
        );
    }

    fn uc(n: &str) -> String {
        format!("http://ex.org/ont#{n}")
    }

    fn ud(n: &str) -> String {
        format!("http://ex.org/data/{n}")
    }

    /// Build a graph exercising most axiom types.
    fn workload() -> Graph {
        let mut g = Graph::new();
        g.insert_iris(uc("GradStudent"), RDFS_SUBCLASSOF, uc("Student"));
        g.insert_iris(uc("Student"), RDFS_SUBCLASSOF, uc("Person"));
        g.insert_iris(uc("Person"), OWL_EQUIVALENT_CLASS, uc("Human"));
        g.insert_iris(uc("headOf"), RDFS_SUBPROPERTYOF, uc("worksFor"));
        g.insert_iris(uc("partOf"), RDF_TYPE, OWL_TRANSITIVE);
        g.insert_iris(uc("near"), RDF_TYPE, OWL_SYMMETRIC);
        g.insert_iris(uc("advises"), OWL_INVERSE_OF, uc("advisedBy"));
        g.insert_iris(uc("teaches"), RDFS_DOMAIN, uc("Professor"));
        g.insert_iris(uc("teaches"), RDFS_RANGE, uc("Course"));
        g.insert_iris(uc("email"), RDF_TYPE, OWL_INVERSE_FUNCTIONAL);

        g.insert_iris(ud("alice"), RDF_TYPE, uc("GradStudent"));
        g.insert_iris(ud("bob"), uc("headOf"), ud("dept1"));
        g.insert_iris(ud("a"), uc("partOf"), ud("b"));
        g.insert_iris(ud("b"), uc("partOf"), ud("c"));
        g.insert_iris(ud("c"), uc("partOf"), ud("d"));
        g.insert_iris(ud("x"), uc("near"), ud("y"));
        g.insert_iris(ud("carol"), uc("advises"), ud("alice"));
        g.insert_iris(ud("prof"), uc("teaches"), ud("cs101"));
        g.insert_iris(ud("p1"), uc("email"), ud("e1"));
        g.insert_iris(ud("p2"), uc("email"), ud("e1"));
        g
    }

    #[test]
    fn compiled_closure_equals_generic_closure_on_instance_triples() {
        let g0 = workload();
        let tbox = TBox::extract(&g0);

        // Oracle: generic rules over schema + instance.
        let mut oracle = g0.clone();
        let generic = pd_star_rules(&mut oracle.dict);
        forward_closure(&mut oracle.store, &generic);

        // System under test: compiled rules over the same graph.
        let mut sut = g0.clone();
        let compiled = compile_ontology(&tbox, &mut sut.dict, CompileOptions::default());
        forward_closure(&mut sut.store, &compiled);

        // Compare the *instance-level* closures as term sets (dictionaries
        // may have diverged, so compare decoded terms via fingerprint of
        // instance triples only).
        let instance_fp = |g: &Graph| {
            let mut sub = Graph::new();
            for t in g.store.iter() {
                if tbox.classify(&to_local(g, &g0, *t)) == TripleKind::Instance {
                    let (s, p, o) = g.decode(*t);
                    sub.insert_terms(s, p, o);
                }
            }
            sub.term_fingerprint()
        };
        // classify() needs ids in g0's dictionary; remap by terms.
        fn to_local(g: &Graph, g0: &Graph, t: Triple) -> Triple {
            let (s, p, o) = g.decode(t);
            let gid = |term: &owlpar_rdf::Term| {
                g0.dict.id(term).unwrap_or(owlpar_rdf::NodeId(u32::MAX))
            };
            Triple::new(gid(&s), gid(&p), gid(&o))
        }

        assert_eq!(instance_fp(&oracle), instance_fp(&sut));
    }

    #[test]
    fn generic_rules_derive_schema_closure_too() {
        let mut g = workload();
        let rules = pd_star_rules(&mut g.dict);
        forward_closure(&mut g.store, &rules);
        // rdfs11 derived GradStudent subClassOf Person at the schema level
        assert!(g.contains_terms(
            &owlpar_rdf::Term::iri(uc("GradStudent")),
            &owlpar_rdf::Term::iri(RDFS_SUBCLASSOF),
            &owlpar_rdf::Term::iri(uc("Person"))
        ));
    }
}
