//! The ontology → specialized-rule compiler.
//!
//! "In rule based reasoners, the OWL ontology definitions are first
//! compiled into a set of rules. This rule-set is then applied on the
//! presented data-set to create the new inferred triples." (§I)
//!
//! Every schema axiom becomes one (or two) datalog rules over instance
//! triples with the schema constants baked in. The compiler guarantees —
//! and [`verify_single_join`] checks — that every emitted rule is
//! **single-join** (§II: "only a small class of rules called single-join
//! rules can \[be\] used to represent all but one of the rules").

use crate::tbox::TBox;
use owlpar_datalog::ast::build::{atom, c, v};
use owlpar_datalog::Rule;
use owlpar_rdf::{vocab, Dictionary, NodeId, Term};

/// Compiler switches.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Emit `owl:sameAs` symmetry/transitivity rules when the data can
    /// contain `sameAs` (from functional/inverse-functional axioms or
    /// asserted identity).
    pub same_as_axioms: bool,
    /// Emit the `sameAs` *substitution* rules
    /// `(?x sameAs ?y)(?x ?p ?z) → (?y ?p ?z)` etc. These are single-join
    /// but highly productive; real systems (OWLIM) special-case identity,
    /// and the paper's benchmarks do not exercise them, so they default
    /// to off.
    pub same_as_substitution: bool,
    /// Compile `owl:hasValue` / `owl:someValuesFrom` restriction rules.
    pub restrictions: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            same_as_axioms: true,
            same_as_substitution: false,
            restrictions: true,
        }
    }
}

/// Compile the TBox into a specialized single-join rule-base.
///
/// `dict` must be the dictionary the TBox ids refer to; the compiler
/// interns `owl:sameAs` if identity rules are requested.
// Every rule below is built from constant atom shapes, so `Rule::new`
// cannot reject them; the expects are structural invariants, not error
// handling (and `owlpar-lint` re-verifies the output independently).
#[allow(clippy::expect_used)]
pub fn compile_ontology(tbox: &TBox, dict: &mut Dictionary, opts: CompileOptions) -> Vec<Rule> {
    let mut rules = Vec::new();
    let rdf_type = dict.intern(Term::iri(vocab::RDF_TYPE));
    let name_of = |dict: &Dictionary, id: NodeId| -> String {
        dict.term(id)
            .and_then(|t| t.local_name().map(str::to_owned))
            .unwrap_or_else(|| format!("{id}"))
    };

    // rdfs9 specialized: (?x type C) -> (?x type D) for every C ⊑ D.
    for &(sub, sup) in &tbox.sub_class_of {
        rules.push(
            Rule::new(
                format!("subClassOf:{}<{}", name_of(dict, sub), name_of(dict, sup)),
                atom(v(0), c(rdf_type), c(sup)),
                vec![atom(v(0), c(rdf_type), c(sub))],
            )
            .expect("subclass rule is well-formed"),
        );
    }

    // rdfs7 specialized: (?x p ?y) -> (?x q ?y) for every p ⊑ q.
    for &(sub, sup) in &tbox.sub_property_of {
        rules.push(
            Rule::new(
                format!("subPropertyOf:{}<{}", name_of(dict, sub), name_of(dict, sup)),
                atom(v(0), c(sup), v(1)),
                vec![atom(v(0), c(sub), v(1))],
            )
            .expect("subproperty rule is well-formed"),
        );
    }

    // rdfs2 specialized: (?x p ?y) -> (?x type C) for domain(p)=C.
    for &(p, cls) in &tbox.domain {
        rules.push(
            Rule::new(
                format!("domain:{}", name_of(dict, p)),
                atom(v(0), c(rdf_type), c(cls)),
                vec![atom(v(0), c(p), v(1))],
            )
            .expect("domain rule is well-formed"),
        );
    }

    // rdfs3 specialized: (?x p ?y) -> (?y type C) for range(p)=C.
    for &(p, cls) in &tbox.range {
        rules.push(
            Rule::new(
                format!("range:{}", name_of(dict, p)),
                atom(v(1), c(rdf_type), c(cls)),
                vec![atom(v(0), c(p), v(1))],
            )
            .expect("range rule is well-formed"),
        );
    }

    // rdfp4: transitivity — the canonical single-join rule.
    for &p in &tbox.transitive {
        rules.push(
            Rule::new(
                format!("transitive:{}", name_of(dict, p)),
                atom(v(0), c(p), v(2)),
                vec![atom(v(0), c(p), v(1)), atom(v(1), c(p), v(2))],
            )
            .expect("transitive rule is well-formed"),
        );
    }

    // rdfp3: symmetry.
    for &p in &tbox.symmetric {
        rules.push(
            Rule::new(
                format!("symmetric:{}", name_of(dict, p)),
                atom(v(1), c(p), v(0)),
                vec![atom(v(0), c(p), v(1))],
            )
            .expect("symmetric rule is well-formed"),
        );
    }

    // rdfp8a/b: inverses, both directions.
    for &(p, q) in &tbox.inverse_of {
        rules.push(
            Rule::new(
                format!("inverseOf:{}>{}", name_of(dict, p), name_of(dict, q)),
                atom(v(1), c(q), v(0)),
                vec![atom(v(0), c(p), v(1))],
            )
            .expect("inverse rule is well-formed"),
        );
        rules.push(
            Rule::new(
                format!("inverseOf:{}<{}", name_of(dict, p), name_of(dict, q)),
                atom(v(1), c(p), v(0)),
                vec![atom(v(0), c(q), v(1))],
            )
            .expect("inverse rule is well-formed"),
        );
    }

    let needs_same_as = !tbox.functional.is_empty() || !tbox.inverse_functional.is_empty();
    if opts.same_as_axioms && (needs_same_as || opts.same_as_substitution) {
        let same_as = dict.intern(Term::iri(vocab::OWL_SAME_AS));

        // rdfp1: functional — join on the shared subject.
        for &p in &tbox.functional {
            rules.push(
                Rule::new(
                    format!("functional:{}", name_of(dict, p)),
                    atom(v(1), c(same_as), v(2)),
                    vec![atom(v(0), c(p), v(1)), atom(v(0), c(p), v(2))],
                )
                .expect("functional rule is well-formed"),
            );
        }
        // rdfp2: inverse functional — join on the shared object.
        for &p in &tbox.inverse_functional {
            rules.push(
                Rule::new(
                    format!("invFunctional:{}", name_of(dict, p)),
                    atom(v(1), c(same_as), v(2)),
                    vec![atom(v(1), c(p), v(0)), atom(v(2), c(p), v(0))],
                )
                .expect("inverse-functional rule is well-formed"),
            );
        }
        // rdfp6/7: sameAs symmetry and transitivity.
        rules.push(
            Rule::new(
                "sameAs:sym",
                atom(v(1), c(same_as), v(0)),
                vec![atom(v(0), c(same_as), v(1))],
            )
            .expect("sameAs symmetry is well-formed"),
        );
        rules.push(
            Rule::new(
                "sameAs:trans",
                atom(v(0), c(same_as), v(2)),
                vec![atom(v(0), c(same_as), v(1)), atom(v(1), c(same_as), v(2))],
            )
            .expect("sameAs transitivity is well-formed"),
        );
        if opts.same_as_substitution {
            // rdfp11: substitute identity into subject and object position.
            rules.push(
                Rule::new(
                    "sameAs:substSubject",
                    atom(v(1), v(2), v(3)),
                    vec![atom(v(0), c(same_as), v(1)), atom(v(0), v(2), v(3))],
                )
                .expect("sameAs subject substitution is well-formed"),
            );
            rules.push(
                Rule::new(
                    "sameAs:substObject",
                    atom(v(2), v(3), v(1)),
                    vec![atom(v(0), c(same_as), v(1)), atom(v(2), v(3), v(0))],
                )
                .expect("sameAs object substitution is well-formed"),
            );
        }
    }

    if opts.restrictions {
        // rdfp14a/b: hasValue both ways.
        for &(r, p, val) in &tbox.has_value {
            rules.push(
                Rule::new(
                    format!("hasValue:in:{}", name_of(dict, r)),
                    atom(v(0), c(rdf_type), c(r)),
                    vec![atom(v(0), c(p), c(val))],
                )
                .expect("hasValue-in rule is well-formed"),
            );
            rules.push(
                Rule::new(
                    format!("hasValue:out:{}", name_of(dict, r)),
                    atom(v(0), c(p), c(val)),
                    vec![atom(v(0), c(rdf_type), c(r))],
                )
                .expect("hasValue-out rule is well-formed"),
            );
        }
        // rdfp15: someValuesFrom membership.
        for &(r, p, filler) in &tbox.some_values_from {
            rules.push(
                Rule::new(
                    format!("someValuesFrom:{}", name_of(dict, r)),
                    atom(v(0), c(rdf_type), c(r)),
                    vec![atom(v(0), c(p), v(1)), atom(v(1), c(rdf_type), c(filler))],
                )
                .expect("someValuesFrom rule is well-formed"),
            );
        }
    }

    rules
}

/// Assert the paper's key structural claim: every compiled rule is
/// single-join. Returns the offending rule names (empty = claim holds).
///
/// Delegates to the `owlpar-lint` partition-safety pass so there is one
/// source of truth for what "safe under data partitioning" means.
pub fn verify_single_join(rules: &[Rule]) -> Vec<String> {
    owlpar_lint::lint_rules(rules, &owlpar_lint::LintOptions::default()).unsafe_rule_names()
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlpar_datalog::forward::forward_closure;
    use owlpar_rdf::vocab::*;
    use owlpar_rdf::{Graph, Triple, TriplePattern};

    fn uc(n: &str) -> String {
        format!("http://ex.org/ont#{n}")
    }

    fn ud(n: &str) -> String {
        format!("http://ex.org/data/{n}")
    }

    fn build() -> (Graph, Vec<Rule>) {
        let mut g = Graph::new();
        g.insert_iris(uc("GradStudent"), RDFS_SUBCLASSOF, uc("Student"));
        g.insert_iris(uc("Student"), RDFS_SUBCLASSOF, uc("Person"));
        g.insert_iris(uc("headOf"), RDFS_SUBPROPERTYOF, uc("worksFor"));
        g.insert_iris(uc("partOf"), RDF_TYPE, OWL_TRANSITIVE);
        g.insert_iris(uc("near"), RDF_TYPE, OWL_SYMMETRIC);
        g.insert_iris(uc("advises"), OWL_INVERSE_OF, uc("advisedBy"));
        g.insert_iris(uc("teaches"), RDFS_DOMAIN, uc("Professor"));
        g.insert_iris(uc("teaches"), RDFS_RANGE, uc("Course"));
        g.insert_iris(uc("email"), RDF_TYPE, OWL_INVERSE_FUNCTIONAL);

        g.insert_iris(ud("alice"), RDF_TYPE, uc("GradStudent"));
        g.insert_iris(ud("bob"), uc("headOf"), ud("dept1"));
        g.insert_iris(ud("a"), uc("partOf"), ud("b"));
        g.insert_iris(ud("b"), uc("partOf"), ud("c"));
        g.insert_iris(ud("x"), uc("near"), ud("y"));
        g.insert_iris(ud("carol"), uc("advises"), ud("alice"));
        g.insert_iris(ud("prof"), uc("teaches"), ud("cs101"));
        g.insert_iris(ud("p1"), uc("email"), ud("e1"));
        g.insert_iris(ud("p2"), uc("email"), ud("e1"));

        let tbox = TBox::extract(&g);
        let rules = compile_ontology(&tbox, &mut g.dict, CompileOptions::default());
        (g, rules)
    }

    fn has(g: &Graph, s: &str, p: &str, o: &str) -> bool {
        g.contains_terms(&Term::iri(s), &Term::iri(p), &Term::iri(o))
    }

    #[test]
    fn all_compiled_rules_are_single_join() {
        let (_, rules) = build();
        assert!(verify_single_join(&rules).is_empty());
        assert!(!rules.is_empty());
    }

    #[test]
    fn closure_derives_expected_facts() {
        let (mut g, rules) = build();
        forward_closure(&mut g.store, &rules);

        // subclass chain: alice is Student and Person
        assert!(has(&g, &ud("alice"), RDF_TYPE, &uc("Student")));
        assert!(has(&g, &ud("alice"), RDF_TYPE, &uc("Person")));
        // subproperty: bob worksFor dept1
        assert!(has(&g, &ud("bob"), &uc("worksFor"), &ud("dept1")));
        // transitivity: a partOf c
        assert!(has(&g, &ud("a"), &uc("partOf"), &ud("c")));
        // symmetry: y near x
        assert!(has(&g, &ud("y"), &uc("near"), &ud("x")));
        // inverse: alice advisedBy carol
        assert!(has(&g, &ud("alice"), &uc("advisedBy"), &ud("carol")));
        // domain/range: prof is Professor, cs101 is Course
        assert!(has(&g, &ud("prof"), RDF_TYPE, &uc("Professor")));
        assert!(has(&g, &ud("cs101"), RDF_TYPE, &uc("Course")));
        // inverse functional: p1 sameAs p2 (and symmetric closure)
        assert!(has(&g, &ud("p1"), OWL_SAME_AS, &ud("p2")));
        assert!(has(&g, &ud("p2"), OWL_SAME_AS, &ud("p1")));
    }

    #[test]
    fn no_same_as_rules_without_functional_axioms() {
        let mut g = Graph::new();
        g.insert_iris(uc("A"), RDFS_SUBCLASSOF, uc("B"));
        let tbox = TBox::extract(&g);
        let rules = compile_ontology(&tbox, &mut g.dict, CompileOptions::default());
        assert!(rules.iter().all(|r| !r.name.starts_with("sameAs")));
    }

    #[test]
    fn substitution_rules_emitted_on_request() {
        let mut g = Graph::new();
        g.insert_iris(uc("hasId"), RDF_TYPE, OWL_FUNCTIONAL);
        let tbox = TBox::extract(&g);
        let opts = CompileOptions {
            same_as_substitution: true,
            ..CompileOptions::default()
        };
        let rules = compile_ontology(&tbox, &mut g.dict, opts);
        assert!(rules.iter().any(|r| r.name == "sameAs:substSubject"));
        assert!(rules.iter().any(|r| r.name == "sameAs:substObject"));
        assert!(verify_single_join(&rules).is_empty());
    }

    #[test]
    fn substitution_rules_substitute() {
        let mut g = Graph::new();
        g.insert_iris(uc("hasId"), RDF_TYPE, OWL_INVERSE_FUNCTIONAL);
        g.insert_iris(ud("a"), uc("hasId"), ud("i"));
        g.insert_iris(ud("b"), uc("hasId"), ud("i"));
        g.insert_iris(ud("a"), uc("likes"), ud("pizza"));
        let tbox = TBox::extract(&g);
        let opts = CompileOptions {
            same_as_substitution: true,
            ..CompileOptions::default()
        };
        let rules = compile_ontology(&tbox, &mut g.dict, opts);
        forward_closure(&mut g.store, &rules);
        // a sameAs b (functional on shared object i), so b likes pizza
        assert!(has(&g, &ud("b"), &uc("likes"), &ud("pizza")));
    }

    #[test]
    fn restriction_rules_fire_both_ways() {
        let mut g = Graph::new();
        g.insert_iris(uc("CsDept"), RDF_TYPE, OWL_RESTRICTION);
        g.insert_iris(uc("CsDept"), OWL_ON_PROPERTY, uc("fieldIs"));
        g.insert_iris(uc("CsDept"), OWL_HAS_VALUE, uc("CS"));
        g.insert_iris(ud("d1"), uc("fieldIs"), uc("CS"));
        g.insert_iris(ud("d2"), RDF_TYPE, uc("CsDept"));
        let tbox = TBox::extract(&g);
        let rules = compile_ontology(&tbox, &mut g.dict, CompileOptions::default());
        forward_closure(&mut g.store, &rules);
        assert!(has(&g, &ud("d1"), RDF_TYPE, &uc("CsDept")));
        assert!(has(&g, &ud("d2"), &uc("fieldIs"), &uc("CS")));
    }

    #[test]
    fn some_values_from_rule() {
        let mut g = Graph::new();
        g.insert_iris(uc("Advisor"), RDF_TYPE, OWL_RESTRICTION);
        g.insert_iris(uc("Advisor"), OWL_ON_PROPERTY, uc("advises"));
        g.insert_iris(uc("Advisor"), OWL_SOME_VALUES_FROM, uc("Student"));
        g.insert_iris(ud("carol"), uc("advises"), ud("dave"));
        g.insert_iris(ud("dave"), RDF_TYPE, uc("Student"));
        let tbox = TBox::extract(&g);
        let rules = compile_ontology(&tbox, &mut g.dict, CompileOptions::default());
        forward_closure(&mut g.store, &rules);
        assert!(has(&g, &ud("carol"), RDF_TYPE, &uc("Advisor")));
    }

    #[test]
    fn compiled_rule_count_matches_axioms() {
        let (_, rules) = build();
        // 3 subclass pairs (Grad<Student, Grad<Person, Student<Person),
        // 1 subproperty, 1 domain, 1 range, 1 transitive, 1 symmetric,
        // 2 inverse, 1 invFunctional, 2 sameAs axioms
        assert_eq!(rules.len(), 3 + 1 + 1 + 1 + 1 + 1 + 2 + 1 + 2);
    }

    #[test]
    fn closure_restricted_to_instance_data_only_mentions_instances() {
        let (mut g, rules) = build();
        let tbox = TBox::extract(&g);
        let before: Vec<Triple> = g.store.iter().copied().collect();
        forward_closure(&mut g.store, &rules);
        let new: Vec<Triple> = g
            .store
            .matches(TriplePattern::any())
            .into_iter()
            .filter(|t| !before.contains(t))
            .collect();
        // every derived triple is instance-kind
        for t in new {
            assert_eq!(tbox.classify(&t), crate::tbox::TripleKind::Instance);
        }
    }
}
