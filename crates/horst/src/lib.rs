//! OWL-Horst (pD\*) semantics on top of the datalog engine.
//!
//! The paper targets the OWL-Horst fragment (ter Horst 2005): the
//! RDFS entailment rules plus the pD\* extensions for transitive,
//! symmetric, (inverse-)functional and inverse properties, equivalence,
//! `owl:sameAs`, and value restrictions. Rule-based OWL engines (Jena,
//! OWLIM, Oracle) *compile the ontology into rules*: every schema axiom
//! becomes a specialized datalog rule over instance triples only. That
//! compilation step is what makes every resulting rule **single-join**,
//! which in turn is what makes the paper's data-partitioning approach
//! correct.
//!
//! * [`tbox`] — extract the schema (TBox) from a graph and classify
//!   triples into schema vs instance.
//! * [`rules`] — the *generic* pD\* rule set (schema atoms in rule
//!   bodies), used as a cross-check oracle in tests.
//! * [`compile`] — the ontology→specialized-rules compiler
//!   ("compile the ontology into a set of rules").
//! * [`reasoner`] — a facade tying extraction + compilation + closure
//!   together.

#![forbid(unsafe_code)]

pub mod compile;
pub mod reasoner;
pub mod rules;
pub mod tbox;

pub use compile::{compile_ontology, CompileOptions};
pub use reasoner::{DeltaOutcome, HorstReasoner};
pub use tbox::{TBox, TripleKind};
