//! Property test: on random ontologies + random instance data, the
//! compiled (specialized) rule-base derives exactly the same
//! instance-level closure as the generic pD* rule set evaluated with the
//! schema present. This is the correctness contract of the ontology→rule
//! compiler.

use owlpar_datalog::forward::forward_closure;
use owlpar_horst::rules::pd_star_rules;
use owlpar_horst::{compile_ontology, CompileOptions, TBox};
use owlpar_rdf::vocab::*;
use owlpar_rdf::Graph;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Axiom {
    SubClass(u8, u8),
    EquivClass(u8, u8),
    SubProp(u8, u8),
    Domain(u8, u8),
    Range(u8, u8),
    Transitive(u8),
    Symmetric(u8),
    InverseOf(u8, u8),
    InverseFunctional(u8),
}

fn axiom_strategy() -> impl Strategy<Value = Axiom> {
    prop_oneof![
        (0u8..6, 0u8..6).prop_map(|(a, b)| Axiom::SubClass(a, b)),
        (0u8..6, 0u8..6).prop_map(|(a, b)| Axiom::EquivClass(a, b)),
        (0u8..5, 0u8..5).prop_map(|(a, b)| Axiom::SubProp(a, b)),
        (0u8..5, 0u8..6).prop_map(|(p, c)| Axiom::Domain(p, c)),
        (0u8..5, 0u8..6).prop_map(|(p, c)| Axiom::Range(p, c)),
        (0u8..5).prop_map(Axiom::Transitive),
        (0u8..5).prop_map(Axiom::Symmetric),
        (0u8..5, 0u8..5).prop_map(|(a, b)| Axiom::InverseOf(a, b)),
        (0u8..5).prop_map(Axiom::InverseFunctional),
    ]
}

fn class(i: u8) -> String {
    format!("http://ont.example.org/ont#C{i}")
}

fn prop_iri(i: u8) -> String {
    format!("http://ont.example.org/ont#p{i}")
}

fn inst(i: u8) -> String {
    format!("http://data.example.org/i{i}")
}

fn build_graph(axioms: &[Axiom], facts: &[(u8, u8, u8, bool)]) -> Graph {
    let mut g = Graph::new();
    for a in axioms {
        match *a {
            Axiom::SubClass(x, y) => {
                g.insert_iris(class(x), RDFS_SUBCLASSOF, class(y));
            }
            Axiom::EquivClass(x, y) => {
                g.insert_iris(class(x), OWL_EQUIVALENT_CLASS, class(y));
            }
            Axiom::SubProp(x, y) => {
                g.insert_iris(prop_iri(x), RDFS_SUBPROPERTYOF, prop_iri(y));
            }
            Axiom::Domain(p, c) => {
                g.insert_iris(prop_iri(p), RDFS_DOMAIN, class(c));
            }
            Axiom::Range(p, c) => {
                g.insert_iris(prop_iri(p), RDFS_RANGE, class(c));
            }
            Axiom::Transitive(p) => {
                g.insert_iris(prop_iri(p), RDF_TYPE, OWL_TRANSITIVE);
            }
            Axiom::Symmetric(p) => {
                g.insert_iris(prop_iri(p), RDF_TYPE, OWL_SYMMETRIC);
            }
            Axiom::InverseOf(p, q) => {
                g.insert_iris(prop_iri(p), OWL_INVERSE_OF, prop_iri(q));
            }
            Axiom::InverseFunctional(p) => {
                g.insert_iris(prop_iri(p), RDF_TYPE, OWL_INVERSE_FUNCTIONAL);
            }
        }
    }
    for &(s, p, o, is_type) in facts {
        if is_type {
            g.insert_iris(inst(s), RDF_TYPE, class(o % 6));
        } else {
            g.insert_iris(inst(s), prop_iri(p % 5), inst(o));
        }
    }
    g
}

/// Dictionary-independent schema/instance split: a triple is schema iff
/// its predicate is a builtin other than `rdf:type`/`owl:sameAs`, or it
/// types something with a builtin class.
fn is_instance(s: &owlpar_rdf::Term, p: &owlpar_rdf::Term, o: &owlpar_rdf::Term) -> bool {
    let _ = s;
    let Some(p_iri) = p.as_iri() else { return true };
    if p_iri == RDF_TYPE {
        return !o.as_iri().is_some_and(is_builtin);
    }
    if p_iri == OWL_SAME_AS {
        return true;
    }
    !is_builtin(p_iri)
}

type TermTriple = (owlpar_rdf::Term, owlpar_rdf::Term, owlpar_rdf::Term);

fn instance_closure(mut g: Graph, compiled: bool, tbox: &TBox) -> Vec<TermTriple> {
    let rules = if compiled {
        compile_ontology(tbox, &mut g.dict, CompileOptions::default())
    } else {
        pd_star_rules(&mut g.dict)
    };
    forward_closure(&mut g.store, &rules);
    let mut out: Vec<TermTriple> = g
        .store
        .iter()
        .map(|t| g.decode(*t))
        .filter(|(s, p, o)| is_instance(s, p, o))
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_rules_equal_generic_pd_star(
        axioms in prop::collection::vec(axiom_strategy(), 0..12),
        facts in prop::collection::vec((0u8..10, 0u8..5, 0u8..10, any::<bool>()), 1..25),
    ) {
        let g = build_graph(&axioms, &facts);
        // The generic rule set may extend the schema closure (rdfs5/11);
        // extract the TBox from the *schema-closed* graph so the compiled
        // side sees the same axioms the generic side can exploit.
        let mut schema_closed = g.clone();
        {
            let generic = pd_star_rules(&mut schema_closed.dict);
            forward_closure(&mut schema_closed.store, &generic);
        }
        let tbox = TBox::extract(&schema_closed);

        let generic = instance_closure(g.clone(), false, &tbox);
        let compiled = instance_closure(g, true, &tbox);
        prop_assert_eq!(generic, compiled);
    }

    #[test]
    fn compiled_rules_are_always_single_join(
        axioms in prop::collection::vec(axiom_strategy(), 0..16),
    ) {
        let mut g = build_graph(&axioms, &[]);
        let tbox = TBox::extract(&g);
        let rules = compile_ontology(&tbox, &mut g.dict, CompileOptions::default());
        let offenders = owlpar_horst::compile::verify_single_join(&rules);
        prop_assert!(offenders.is_empty(), "non-single-join: {offenders:?}");
    }
}
