//! End-to-end tests: a real server on a real socket, exercised through
//! the client — including the headline concurrency property: readers
//! never block on writers and always see a consistent epoch.

// Tests assert on infallible setup; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_datalog::MaterializationStrategy;
use owlpar_horst::HorstReasoner;
use owlpar_rdf::Graph;
use owlpar_serve::{serve, Client, RunInfo, ServeConfig, ServeError, ServerHandle, ServingKb};
use std::time::{Duration, Instant};

fn campus_kb() -> ServingKb {
    let mut g = Graph::new();
    g.insert_iris(
        "http://x/Student",
        owlpar_rdf::vocab::RDFS_SUBCLASSOF,
        "http://x/Person",
    );
    g.insert_iris(
        "http://x/alice",
        owlpar_rdf::vocab::RDF_TYPE,
        "http://x/Student",
    );
    let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
    hr.materialize(&mut g);
    ServingKb::from_closed(g, hr)
}

fn start(kb: ServingKb, threads: usize) -> ServerHandle {
    serve(
        kb,
        RunInfo::default(),
        &ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads,
            ..ServeConfig::default()
        },
    )
    .expect("bind server")
}

const PERSONS: &str = "SELECT ?s WHERE { ?s a <http://x/Person> }";

#[test]
fn query_insert_query_sees_consequence() {
    let handle = start(campus_kb(), 2);
    let mut c = Client::connect(handle.addr()).unwrap();

    let r1 = c.query(PERSONS).unwrap();
    assert_eq!(r1.epoch, 0);
    assert_eq!(r1.columns, vec!["s"]);
    assert_eq!(r1.rows, vec![vec!["<http://x/alice>".to_string()]]);

    let ins = c
        .insert(
            "<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
             <http://x/Student> .\n",
        )
        .unwrap();
    assert_eq!(ins.epoch, 1);
    assert_eq!(ins.added, 1);
    assert_eq!(ins.derived, 1, "bob:Person must be derived");
    assert!(!ins.schema_changed);

    let r2 = c.query(PERSONS).unwrap();
    assert_eq!(r2.epoch, 1, "query runs on the inserted epoch");
    let mut subjects: Vec<String> = r2.rows.into_iter().map(|mut r| r.remove(0)).collect();
    subjects.sort();
    assert_eq!(subjects, vec!["<http://x/alice>", "<http://x/bob>"]);

    c.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn epochs_increment_per_insert_and_stats_report_them() {
    let handle = start(campus_kb(), 2);
    let mut c = Client::connect(handle.addr()).unwrap();
    for (i, who) in ["carol", "dan", "erin"].iter().enumerate() {
        let out = c
            .insert(&format!(
                "<http://x/{who}> \
                 <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                 <http://x/Student> .\n"
            ))
            .unwrap();
        assert_eq!(out.epoch, i as u64 + 1);
    }
    c.query(PERSONS).unwrap();
    let json = c.stats().unwrap();
    for key in [
        "\"epoch\":3",
        "\"inserts\":3",
        "\"queries\":1",
        "\"errors\":0",
        "\"query_p50_us\":",
        "\"insert_p99_us\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    c.shutdown().unwrap();
    handle.join().unwrap();
}

/// The acceptance-criterion test: with a writer that is deliberately
/// slowed between *building* and *publishing* its snapshot, a concurrent
/// query must complete promptly against the pre-swap epoch — readers
/// never wait for writers, and the epoch they see is consistent.
#[test]
fn readers_never_block_on_a_slow_writer() {
    const DELAY: Duration = Duration::from_millis(800);
    let kb = campus_kb().with_debug_publish_delay(DELAY);
    let handle = start(kb, 4);
    let addr = handle.addr();

    let writer = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let started = Instant::now();
        let out = c
            .insert(
                "<http://x/bob> \
                 <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                 <http://x/Student> .\n",
            )
            .unwrap();
        (out, started.elapsed())
    });

    // Let the insert reach the delayed-publish window, then query.
    std::thread::sleep(DELAY / 4);
    let mut c = Client::connect(addr).unwrap();
    let started = Instant::now();
    let r = c.query(PERSONS).unwrap();
    let latency = started.elapsed();

    let (ins, insert_elapsed) = writer.join().unwrap();
    assert!(
        insert_elapsed >= DELAY,
        "test premise: the writer was actually delayed ({insert_elapsed:?})"
    );
    assert_eq!(
        r.epoch, 0,
        "mid-update query sees the consistent pre-swap epoch"
    );
    assert_eq!(r.rows.len(), 1, "pre-insert state: alice only");
    assert!(
        latency < DELAY / 2,
        "reader waited on the writer: query took {latency:?} against a \
         {DELAY:?} publish delay"
    );
    assert_eq!(ins.epoch, 1);

    // After the writer finishes, readers move to the new epoch.
    let r2 = c.query(PERSONS).unwrap();
    assert_eq!(r2.epoch, 1);
    assert_eq!(r2.rows.len(), 2);

    c.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn concurrent_clients_on_all_threads() {
    let handle = start(campus_kb(), 4);
    let addr = handle.addr();
    let mut clients = Vec::new();
    for _ in 0..8 {
        clients.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for _ in 0..25 {
                let r = c.query(PERSONS).unwrap();
                assert!(!r.rows.is_empty());
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    handle.request_shutdown();
    handle.join().unwrap();
}

#[test]
fn bad_query_and_bad_batch_are_remote_errors_not_disconnects() {
    let handle = start(campus_kb(), 2);
    let mut c = Client::connect(handle.addr()).unwrap();

    let err = c.query("SELECT ?x WHERE { }").unwrap_err();
    assert!(matches!(err, ServeError::Remote(_)), "{err}");
    let err = c.query("SELECT ?ghost WHERE { ?s ?p ?o }").unwrap_err();
    assert!(matches!(err, ServeError::Remote(_)), "{err}");
    let err = c.insert("not ntriples at all").unwrap_err();
    assert!(matches!(err, ServeError::Remote(_)), "{err}");

    // The connection survives all three failures.
    c.ping().unwrap();
    let r = c.query(PERSONS).unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.epoch, 0, "failed requests publish nothing");

    let json = c.stats().unwrap();
    assert!(json.contains("\"errors\":3"), "{json}");

    c.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn schema_insert_recompiles_and_serves_new_consequences() {
    let handle = start(campus_kb(), 2);
    let mut c = Client::connect(handle.addr()).unwrap();
    let out = c
        .insert(
            "<http://x/Person> \
             <http://www.w3.org/2000/01/rdf-schema#subClassOf> \
             <http://x/Agent> .\n",
        )
        .unwrap();
    assert!(out.schema_changed);
    let r = c
        .query("SELECT ?s WHERE { ?s a <http://x/Agent> }")
        .unwrap();
    assert_eq!(r.rows, vec![vec!["<http://x/alice>".to_string()]]);
    c.shutdown().unwrap();
    handle.join().unwrap();
}

/// With one worker (held by a parked connection) and a one-slot queue
/// (filled by a second), a third connection must be answered `BUSY` by
/// the acceptor itself — typed saturation, not an unbounded queue.
#[test]
fn saturated_server_answers_busy() {
    let handle = serve(
        campus_kb(),
        RunInfo::default(),
        &ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            max_pending: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind server");
    let addr = handle.addr();

    let mut held = Client::connect(addr).unwrap();
    held.ping().unwrap(); // the only worker is now parked on this peer
    let queued = Client::connect(addr).unwrap(); // fills the queue slot

    let mut overflow = Client::connect(addr).unwrap();
    let err = overflow.ping().unwrap_err();
    assert!(matches!(err, ServeError::Busy), "expected BUSY, got {err}");

    // Free the worker; the queued connection gets served, and the BUSY
    // rejection shows up in the stats.
    drop(held);
    drop(queued);
    let mut c = Client::connect(addr).unwrap();
    let json = c.stats().unwrap();
    assert!(json.contains("\"busy_rejections\":1"), "{json}");
    c.shutdown().unwrap();
    handle.join().unwrap();
}

/// An idle peer is disconnected once the read deadline passes — with a
/// typed error frame, a stats count, and without wedging the worker.
#[test]
fn idle_client_is_disconnected_with_typed_error() {
    let handle = serve(
        campus_kb(),
        RunInfo::default(),
        &ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            read_timeout: Some(Duration::from_millis(150)),
            ..ServeConfig::default()
        },
    )
    .expect("bind server");
    let addr = handle.addr();

    let mut idle = Client::connect(addr).unwrap();
    idle.ping().unwrap();
    std::thread::sleep(Duration::from_millis(600));
    match idle.ping().unwrap_err() {
        // Usual case: we read the server's goodbye error frame.
        ServeError::Remote(m) => assert!(m.contains("idle"), "{m}"),
        // Or the socket is already torn down on our side.
        ServeError::Io(_) => {}
        other => panic!("unexpected error kind: {other}"),
    }

    // The worker is free again and the disconnect was counted.
    let mut c = Client::connect(addr).unwrap();
    let json = c.stats().unwrap();
    assert!(json.contains("\"idle_disconnects\":1"), "{json}");
    c.shutdown().unwrap();
    handle.join().unwrap();
}

/// Once shutdown is requested, an in-flight connection's next INSERT is
/// rejected whole — the shutdown ordering guarantee: batches are fully
/// applied+logged or fully rejected, never half-done.
#[test]
fn insert_after_shutdown_request_is_rejected_whole() {
    let handle = start(campus_kb(), 2);
    let mut c = Client::connect(handle.addr()).unwrap();
    c.ping().unwrap();
    handle.request_shutdown();
    let err = c
        .insert(
            "<http://x/zed> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
             <http://x/Student> .\n",
        )
        .unwrap_err();
    assert!(
        matches!(&err, ServeError::Remote(m) if m.contains("shutting down")),
        "expected a typed shutdown rejection, got {err}"
    );
    handle.join().unwrap();
}

#[test]
fn shutdown_stops_accepting_but_drains_cleanly() {
    let handle = start(campus_kb(), 2);
    let addr = handle.addr();
    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();
    c.shutdown().unwrap();
    handle.join().unwrap();
    // The listener is gone: either connect fails or the socket is dead.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c2) => assert!(c2.ping().is_err(), "server still answering after shutdown"),
    }
}
