//! Property test for the incremental maintenance path: for randomized
//! insert sequences, the delta-closure state must equal the closure
//! `owlpar_core::run_serial` computes from scratch over the accumulated
//! triples — including sequences that mutate the schema mid-stream.

// Tests assert on infallible setup; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_core::run_serial;
use owlpar_datalog::MaterializationStrategy;
use owlpar_horst::HorstReasoner;
use owlpar_rdf::{parse_ntriples, Dictionary, Graph};
use owlpar_serve::ServingKb;

/// Deterministic xorshift64* generator (no external deps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const RDF_TYPE: &str = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>";
const SUBCLASS: &str = "<http://www.w3.org/2000/01/rdf-schema#subClassOf>";
const TRANSITIVE: &str = "<http://www.w3.org/2002/07/owl#TransitiveProperty>";

fn entity(i: u64) -> String {
    format!("<http://d/e{i}>")
}

fn class(i: u64) -> String {
    format!("<http://o/C{i}>")
}

/// A random N-Triples line from a small universe: mostly instance
/// triples (type assertions, transitive `partOf` edges), occasionally —
/// when `allow_schema` — a schema axiom.
fn random_line(rng: &mut Rng, allow_schema: bool) -> String {
    match rng.below(if allow_schema { 10 } else { 8 }) {
        0..=4 => format!("{} {RDF_TYPE} {} .", entity(rng.below(12)), class(rng.below(4))),
        5..=7 => format!(
            "{} <http://o/partOf> {} .",
            entity(rng.below(12)),
            entity(rng.below(12))
        ),
        8 => format!("{} {SUBCLASS} {} .", class(rng.below(4)), class(rng.below(4))),
        _ => format!("{} {SUBCLASS} <http://o/Thing> .", class(rng.below(4))),
    }
}

fn base_nt(rng: &mut Rng) -> String {
    let mut nt = String::new();
    // Fixed schema skeleton: a subclass edge and a transitive property.
    nt.push_str(&format!("{} {SUBCLASS} {} .\n", class(0), class(1)));
    nt.push_str(&format!("<http://o/partOf> {RDF_TYPE} {TRANSITIVE} .\n"));
    for _ in 0..(3 + rng.below(6)) {
        nt.push_str(&random_line(rng, false));
        nt.push('\n');
    }
    nt
}

/// Dictionary-independent canonical form of a triple set.
fn canon(triples: impl IntoIterator<Item = owlpar_rdf::Triple>, dict: &Dictionary) -> Vec<String> {
    let mut out: Vec<String> = triples
        .into_iter()
        .map(|t| {
            let term = |id| {
                dict.term(id)
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "?".to_string())
            };
            format!("{} {} {}", term(t.s), term(t.p), term(t.o))
        })
        .collect();
    out.sort();
    out
}

fn oracle_closure(all_nt: &str) -> Vec<String> {
    let mut g = Graph::new();
    parse_ntriples(all_nt, &mut g).expect("oracle parse");
    run_serial(&mut g, MaterializationStrategy::ForwardSemiNaive);
    canon(g.store.iter().copied(), &g.dict)
}

fn check_seed(seed: u64, allow_schema: bool) {
    let mut rng = Rng::new(seed);
    let mut accumulated = base_nt(&mut rng);

    let mut g = Graph::new();
    parse_ntriples(&accumulated, &mut g).expect("base parse");
    let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
    hr.materialize(&mut g);
    let kb = ServingKb::from_closed(g, hr);

    for batch_no in 0..3 {
        let mut batch = String::new();
        for _ in 0..(1 + rng.below(8)) {
            batch.push_str(&random_line(&mut rng, allow_schema));
            batch.push('\n');
        }
        accumulated.push_str(&batch);
        kb.insert_ntriples(&batch).expect("insert batch");

        let snapshot = kb.snapshot();
        assert_eq!(snapshot.epoch, batch_no + 1);
        assert_eq!(
            canon(snapshot.store.iter(), &snapshot.dict),
            oracle_closure(&accumulated),
            "seed {seed} batch {batch_no}: delta closure diverged from \
             the from-scratch run_serial closure"
        );
    }
}

#[test]
fn delta_closure_equals_from_scratch_closure_instance_only() {
    for seed in 1..=20 {
        check_seed(seed, false);
    }
}

#[test]
fn delta_closure_equals_from_scratch_closure_with_schema_changes() {
    for seed in 100..=119 {
        check_seed(seed, true);
    }
}
