//! Crash-recovery property tests: across randomized crash points,
//! batch mixes, and WAL truncation offsets, recovery always rebuilds
//! exactly the closure over the acknowledged batches.
//!
//! The oracle is a from-scratch closure (parse every acked batch into a
//! fresh graph, compile, fully materialize), compared against the
//! recovered graph with [`Graph::term_fingerprint`] — an order- and
//! dictionary-independent hash, so the two graphs may intern terms in
//! any order.

// Tests assert on infallible setup; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_core::{CrashPlan, CrashPoint};
use owlpar_datalog::MaterializationStrategy;
use owlpar_horst::HorstReasoner;
use owlpar_rdf::vocab::{RDFS_SUBCLASSOF, RDF_TYPE};
use owlpar_rdf::{parse_ntriples, Graph};
use owlpar_serve::{
    recover, serve, Client, CrashAction, Durability, DurabilityConfig, RunInfo, ServeConfig,
    ServeError, ServingKb,
};
use std::path::PathBuf;

/// xorshift64* — deterministic, dependency-free randomness for the
/// property loops. Seeds are fixed, so every run explores the same
/// schedule and failures reproduce.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "owlpar-crashprop-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The fixed starting KB every scenario begins from, already closed.
fn closed_base() -> (Graph, HorstReasoner) {
    let mut g = Graph::new();
    g.insert_iris("http://x/Student", RDFS_SUBCLASSOF, "http://x/Person");
    g.insert_iris("http://x/alice", RDF_TYPE, "http://x/Student");
    let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
    hr.materialize(&mut g);
    (g, hr)
}

/// A random batch: mostly instance triples (delta path), occasionally a
/// schema triple (recompile path on both the live and replay sides).
fn make_batch(rng: &mut Rng, i: usize) -> String {
    if rng.below(5) == 0 {
        format!("<http://x/Student> <{RDFS_SUBCLASSOF}> <http://x/Tier{i}> .\n")
    } else {
        format!("<http://x/e{i}> <{RDF_TYPE}> <http://x/Student> .\n")
    }
}

/// The no-crash oracle: base KB + `batches`, closed from scratch.
fn oracle_fingerprint(batches: &[String]) -> u64 {
    let mut g = Graph::new();
    g.insert_iris("http://x/Student", RDFS_SUBCLASSOF, "http://x/Person");
    g.insert_iris("http://x/alice", RDF_TYPE, "http://x/Student");
    for b in batches {
        parse_ntriples(b, &mut g).unwrap();
    }
    let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
    hr.materialize(&mut g);
    g.term_fingerprint()
}

/// One durable serving KB over a fresh data dir.
fn durable_kb(cfg: DurabilityConfig) -> ServingKb {
    let (g, hr) = closed_base();
    let d = Durability::init(cfg, &g).unwrap();
    ServingKb::from_closed(g, hr).with_durability(d)
}

/// The headline property, across 32 seeds: pick a random crash point,
/// a random occurrence, and a random batch mix; run inserts through the
/// real write path until the injected crash (if it fires) poisons the
/// layer; then recover from the files alone and demand the recovered
/// closure equal the from-scratch closure over exactly the batches that
/// were acknowledged.
#[test]
fn randomized_crash_points_recover_exactly_the_acked_closure() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed + 1);
        let dir = tmp_dir(&format!("seed{seed}"));
        let point = CrashPoint::ALL[rng.below(3) as usize];
        let n = 4 + rng.below(8) as usize;
        let occurrence = rng.below(n as u64) as u32;
        let cfg = DurabilityConfig {
            checkpoint_bytes: 1, // checkpoint after every insert
            crash: CrashPlan::new().with(point, occurrence),
            crash_action: CrashAction::Simulate,
            ..DurabilityConfig::new(&dir)
        };
        let kb = durable_kb(cfg);

        let mut acked: Vec<String> = Vec::new();
        for i in 0..n {
            let batch = make_batch(&mut rng, i);
            match kb.insert_ntriples(&batch) {
                Ok(_) => acked.push(batch),
                Err(e) => {
                    assert!(
                        matches!(e, ServeError::Crashed(_) | ServeError::Durability(_)),
                        "seed {seed}: unexpected failure kind: {e}"
                    );
                    break;
                }
            }
        }

        let (recovered, _, report) = recover(DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(
            recovered.term_fingerprint(),
            oracle_fingerprint(&acked),
            "seed {seed}: crash {point}@{occurrence}, {} acked, recovery: {}",
            acked.len(),
            report.summary()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Exhaustive torn-tail tolerance: truncate the (single) WAL segment at
/// *every* byte offset and demand that recovery yields the closure of
/// exactly the record-complete prefix — never an error, never a
/// half-applied batch.
#[test]
fn every_wal_truncation_offset_recovers_a_closed_prefix() {
    let dir = tmp_dir("trunc");
    // Large checkpoint threshold + small batches: everything stays in
    // wal-0 and the single initial checkpoint.
    let kb = durable_kb(DurabilityConfig::new(&dir));
    let mut rng = Rng::new(7);
    let batches: Vec<String> = (0..4).map(|i| make_batch(&mut rng, i)).collect();
    for b in &batches {
        kb.insert_ntriples(b).unwrap();
    }
    drop(kb);

    let wal_path = dir.join("wal-0000000000000000.log");
    let full = std::fs::read(&wal_path).unwrap();

    // Record boundaries: header, then len|crc|payload per record.
    let mut boundaries = vec![16usize];
    let mut pos = 16usize;
    while pos < full.len() {
        let len =
            u32::from_le_bytes([full[pos], full[pos + 1], full[pos + 2], full[pos + 3]]) as usize;
        pos += 8 + len;
        boundaries.push(pos);
    }
    assert_eq!(boundaries.len(), batches.len() + 1, "one boundary per record");

    let prefix_fp: Vec<u64> = (0..=batches.len())
        .map(|k| oracle_fingerprint(&batches[..k]))
        .collect();

    for cut in 16..=full.len() {
        std::fs::write(&wal_path, &full[..cut]).unwrap();
        let intact = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        let (recovered, _, report) =
            recover(DurabilityConfig::new(&dir)).unwrap_or_else(|e| {
                panic!("cut at {cut} must stay recoverable, got: {e}");
            });
        assert_eq!(
            recovered.term_fingerprint(),
            prefix_fp[intact],
            "cut {cut}: expected the closure of the first {intact} batch(es)"
        );
        let at_boundary = boundaries.contains(&cut);
        assert_eq!(
            report.torn_tail, !at_boundary,
            "cut {cut}: tear detection disagrees (boundary={at_boundary})"
        );
        assert_eq!(report.batches_replayed, intact, "cut {cut}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A corrupted newest checkpoint is skipped; recovery falls back to the
/// previous one and re-reaches the full state through the retained WAL
/// suffix (retention keeps the two newest checkpoints and the segments
/// covering them exactly so this fallback is always possible).
#[test]
fn corrupt_newest_checkpoint_falls_back_to_the_previous_one() {
    let dir = tmp_dir("ckpt-fallback");
    let cfg = DurabilityConfig {
        checkpoint_bytes: 1, // checkpoint after every insert
        ..DurabilityConfig::new(&dir)
    };
    let kb = durable_kb(cfg);
    let mut rng = Rng::new(11);
    let batches: Vec<String> = (0..3).map(|i| make_batch(&mut rng, i)).collect();
    for b in &batches {
        kb.insert_ntriples(b).unwrap();
    }
    drop(kb);

    // Newest checkpoint is seq 3; flip a byte in its body.
    let newest = dir.join("ckpt-0000000000000003.owlckpt");
    let mut bytes = std::fs::read(&newest).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&newest, &bytes).unwrap();

    let (recovered, _, report) = recover(DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(report.checkpoint_seq, 2, "fell back past the corrupt newest");
    assert_eq!(report.checkpoints_skipped, 1);
    assert_eq!(
        recovered.term_fingerprint(),
        oracle_fingerprint(&batches),
        "the WAL suffix re-reaches the full acked state"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Both retained checkpoints corrupt = truly unrecoverable: a typed
/// [`ServeError::Recovery`] (CLI exit code 3), not a panic.
#[test]
fn all_checkpoints_corrupt_is_a_typed_recovery_error() {
    let dir = tmp_dir("all-corrupt");
    let kb = durable_kb(DurabilityConfig::new(&dir));
    kb.insert_ntriples(&make_batch(&mut Rng::new(3), 0)).unwrap();
    drop(kb);

    for (_, path) in owlpar_serve::checkpoint::list(&dir).unwrap() {
        let mut bytes = std::fs::read(&path).unwrap();
        for b in bytes.iter_mut() {
            *b ^= 0xAA;
        }
        std::fs::write(&path, &bytes).unwrap();
    }
    let err = recover(DurabilityConfig::new(&dir)).unwrap_err();
    assert!(matches!(err, ServeError::Recovery(_)), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// End-to-end through the real server: insert over TCP, shut down
/// gracefully (final WAL fsync), restart from the data dir alone, and
/// serve the recovered state — acknowledged inserts survive the restart.
#[test]
fn server_restart_from_data_dir_serves_the_acked_closure() {
    let dir = tmp_dir("restart");
    let serve_cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServeConfig::default()
    };

    let handle = serve(
        durable_kb(DurabilityConfig::new(&dir)),
        RunInfo::default(),
        &serve_cfg,
    )
    .unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    let batches = [
        "<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
         <http://x/Student> .\n"
            .to_string(),
        "<http://x/Person> <http://www.w3.org/2000/01/rdf-schema#subClassOf> \
         <http://x/Agent> .\n"
            .to_string(),
    ];
    for b in &batches {
        c.insert(b).unwrap();
    }
    let json = c.stats().unwrap();
    assert!(json.contains("\"durability\":\"ok\""), "{json}");
    c.shutdown().unwrap();
    handle.join().unwrap();

    // "Restart": rebuild the serving KB purely from the data directory.
    let (graph, durability, report) = recover(DurabilityConfig::new(&dir)).unwrap();
    // The schema insert doubled as a compaction point, so a checkpoint
    // folded both batches in and the retained WAL tail is empty.
    assert_eq!(report.checkpoint_seq, 1);
    assert_eq!(report.batches_replayed, 0);
    assert_eq!(graph.term_fingerprint(), oracle_fingerprint(&batches));

    let mut graph = graph;
    let reasoner =
        HorstReasoner::from_graph(&mut graph, MaterializationStrategy::ForwardSemiNaive);
    let kb = ServingKb::from_closed(graph, reasoner).with_durability(durability);
    let handle = serve(kb, RunInfo::default(), &serve_cfg).unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    let rows = c
        .query("SELECT ?s WHERE { ?s a <http://x/Agent> }")
        .unwrap()
        .rows;
    let mut subjects: Vec<String> = rows.into_iter().map(|mut r| r.remove(0)).collect();
    subjects.sort();
    assert_eq!(
        subjects,
        vec!["<http://x/alice>", "<http://x/bob>"],
        "recovered server re-serves recovered consequences"
    );
    // And the restarted server keeps accepting durable inserts.
    c.insert(
        "<http://x/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
         <http://x/Student> .\n",
    )
    .unwrap();
    c.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
