//! Server-side tracing end to end: with an ambient recorder installed,
//! a real server records Query / Insert / WAL-fsync / Checkpoint spans,
//! the STATS response embeds a Prometheus dump that merges those phase
//! totals with the request counters, and draining the recorder yields a
//! timeline with the pool-thread and writer lanes.
//!
//! The ambient recorder is process-global, so this file holds exactly
//! one test — parallel tests in the same binary would race on it.

// Tests assert on infallible setup; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_datalog::MaterializationStrategy;
use owlpar_horst::HorstReasoner;
use owlpar_obs::{Event, Phase, Recorder};
use owlpar_rdf::Graph;
use owlpar_serve::{
    serve, Client, Durability, DurabilityConfig, RunInfo, ServeConfig, ServingKb,
};
use std::path::PathBuf;

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("owlpar-traceserve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn closed_base() -> (Graph, HorstReasoner) {
    let mut g = Graph::new();
    g.insert_iris(
        "http://x/Student",
        owlpar_rdf::vocab::RDFS_SUBCLASSOF,
        "http://x/Person",
    );
    g.insert_iris(
        "http://x/alice",
        owlpar_rdf::vocab::RDF_TYPE,
        "http://x/Student",
    );
    let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
    hr.materialize(&mut g);
    (g, hr)
}

fn span_count(events: &[Event], phase: Phase) -> usize {
    events
        .iter()
        .filter(|e| matches!(e, Event::Span { phase: p, .. } if *p == phase))
        .count()
}

#[test]
fn traced_server_records_request_and_durability_spans() {
    // Before the KB and the pool exist, so both bind to this recorder.
    let rec = Recorder::enabled();
    owlpar_obs::install_global(rec.clone());

    let dir = tmp_dir();
    let (g, hr) = closed_base();
    let d = Durability::init(DurabilityConfig::new(&dir), &g).unwrap();
    let kb = ServingKb::from_closed(g, hr).with_durability(d);
    let handle = serve(
        kb,
        RunInfo::default(),
        &ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let mut c = Client::connect(handle.addr()).unwrap();
    c.query("SELECT ?s WHERE { ?s a <http://x/Person> }").unwrap();
    c.insert(
        "<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
         <http://x/Student> .\n",
    )
    .unwrap();

    // The Prometheus dump inside STATS merges counters with the phase
    // totals of the spans flushed so far.
    let stats = c.stats().unwrap();
    assert!(stats.contains("\"prom\":\""), "{stats}");
    assert!(stats.contains("owlpar_server_queries_total 1"), "{stats}");
    assert!(stats.contains("owlpar_server_inserts_total 1"), "{stats}");
    assert!(stats.contains("owlpar_phase_seconds_total"), "{stats}");
    assert!(stats.contains("owlpar_server_query_latency_us"), "{stats}");

    c.shutdown().unwrap();
    handle.join().unwrap();

    let book = rec.drain();
    owlpar_obs::install_global(Recorder::disabled());
    assert!(span_count(&book.events, Phase::Query) >= 1, "query span");
    assert!(span_count(&book.events, Phase::Insert) >= 1, "insert span");
    // One WAL fsync for the logged batch, one for the shutdown flush.
    assert!(span_count(&book.events, Phase::WalFsync) >= 2, "wal spans");
    let names: Vec<&str> = book.tracks.iter().map(|t| t.name.as_str()).collect();
    assert!(names.contains(&"kb-writer"), "writer lane in {names:?}");
    assert!(
        names.iter().any(|n| n.starts_with("owlpar-serve-")),
        "pool lane in {names:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
