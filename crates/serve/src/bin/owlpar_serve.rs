//! The `owlpar-serve` command-line tool: run a KB server, or talk to
//! one.
//!
//! ```text
//! owlpar-serve run <kb.nt|kb.owlpar> [--addr 127.0.0.1:7878] [--k 2]
//!                  [--threads 4] [--strategy graph|hash|domain|rule]
//! owlpar-serve query <addr> '<SPARQL>'
//! owlpar-serve insert <addr> <batch.nt|->
//! owlpar-serve stats <addr>
//! owlpar-serve ping <addr>
//! owlpar-serve shutdown <addr>
//! ```
//!
//! Exit codes mirror `owlpar`: 0 success, 1 usage/IO/remote error, 3 the
//! initial parallel materialization failed.

use owlpar_core::{ParallelConfig, PartitioningStrategy};
use owlpar_rdf::{parse_ntriples, snapshot, Graph};
use owlpar_serve::{run_info, serve, Client, ServeConfig, ServeError, ServingKb};
use std::io::Read;
use std::process::ExitCode;

enum CliError {
    Usage(String),
    Run(String),
}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError::Usage(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError::Usage(s.to_string())
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Run(r) => CliError::Run(r.to_string()),
            other => CliError::Usage(other.to_string()),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(e)) => {
            eprintln!("owlpar-serve: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Run(e)) => {
            eprintln!("owlpar-serve: materialization failed: {e}");
            ExitCode::from(3)
        }
    }
}

fn run(args: Vec<String>) -> Result<(), CliError> {
    let cmd = args.first().cloned().unwrap_or_default();
    let rest = &args[args.len().min(1)..];
    match cmd.as_str() {
        "run" => run_server(rest),
        "query" => query(rest),
        "insert" => insert(rest),
        "stats" => stats(rest),
        "ping" => ping(rest),
        "shutdown" => shutdown(rest),
        _ => Err(format!(
            "usage: owlpar-serve <run|query|insert|stats|ping|shutdown> ... (got '{cmd}')"
        )
        .into()),
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load_kb(path: &str) -> Result<Graph, CliError> {
    if path.ends_with(".owlpar") {
        let mut f =
            std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
        return snapshot::load(&mut f).map_err(|e| format!("loading {path}: {e}").into());
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut g = Graph::new();
    parse_ntriples(&text, &mut g).map_err(|e| format!("parsing {path}: {e}"))?;
    Ok(g)
}

fn run_server(args: &[String]) -> Result<(), CliError> {
    let [input, ..] = args else {
        return Err("run needs <kb.nt|kb.owlpar>".into());
    };
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let k: usize = flag_value(args, "--k")
        .map_or(Ok(2), |v| v.parse().map_err(|_| "--k".to_string()))?;
    let threads: usize = flag_value(args, "--threads")
        .map_or(Ok(4), |v| v.parse().map_err(|_| "--threads".to_string()))?;
    let strategy = match flag_value(args, "--strategy").as_deref() {
        None | Some("graph") => PartitioningStrategy::data_graph(),
        Some("hash") => PartitioningStrategy::data_hash(),
        Some("domain") => PartitioningStrategy::data_domain(),
        Some("rule") => PartitioningStrategy::rule(),
        Some(other) => return Err(format!("unknown strategy '{other}'").into()),
    };

    let graph = load_kb(input)?;
    let base = graph.len();
    let cfg = ParallelConfig {
        k,
        strategy,
        ..ParallelConfig::default()
    }
    .forward();
    let (kb, report) = ServingKb::materialize(graph, &cfg)?;
    println!("materialized: {}", report.summary());

    let handle = serve(
        kb,
        run_info(&report),
        &ServeConfig {
            addr,
            threads,
        },
    )?;
    println!(
        "serving {} triples ({base} base) on {} with {threads} thread(s); \
         epoch {}",
        report.closure_size,
        handle.addr(),
        handle.epoch()
    );
    handle.join()?;
    println!("shut down cleanly");
    Ok(())
}

fn connect(args: &[String], what: &str) -> Result<(Client, Vec<String>), CliError> {
    let [addr, rest @ ..] = args else {
        return Err(format!("{what} needs <addr>").into());
    };
    Ok((Client::connect(addr.as_str())?, rest.to_vec()))
}

fn query(args: &[String]) -> Result<(), CliError> {
    let (mut client, rest) = connect(args, "query")?;
    let [sparql, ..] = &rest[..] else {
        return Err("query needs <addr> '<SPARQL>'".into());
    };
    let result = client.query(sparql)?;
    println!("{}", result.columns.join("\t"));
    for row in &result.rows {
        println!("{}", row.join("\t"));
    }
    eprintln!("{} row(s) @ epoch {}", result.rows.len(), result.epoch);
    Ok(())
}

fn insert(args: &[String]) -> Result<(), CliError> {
    let (mut client, rest) = connect(args, "insert")?;
    let [source, ..] = &rest[..] else {
        return Err("insert needs <addr> <batch.nt|->".into());
    };
    let nt = if source == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(source).map_err(|e| format!("reading {source}: {e}"))?
    };
    let out = client.insert(&nt)?;
    println!(
        "epoch {}: +{} base triple(s), {} derived{}",
        out.epoch,
        out.added,
        out.derived,
        if out.schema_changed {
            " (schema changed; rules recompiled)"
        } else {
            ""
        }
    );
    Ok(())
}

fn stats(args: &[String]) -> Result<(), CliError> {
    let (mut client, _) = connect(args, "stats")?;
    println!("{}", client.stats()?);
    Ok(())
}

fn ping(args: &[String]) -> Result<(), CliError> {
    let (mut client, _) = connect(args, "ping")?;
    client.ping()?;
    println!("pong");
    Ok(())
}

fn shutdown(args: &[String]) -> Result<(), CliError> {
    let (mut client, _) = connect(args, "shutdown")?;
    client.shutdown()?;
    println!("server shutting down");
    Ok(())
}
