//! The `owlpar-serve` command-line tool: run a KB server, or talk to
//! one.
//!
//! ```text
//! owlpar-serve run <kb.nt|kb.owlpar> [--addr 127.0.0.1:7878] [--k 2]
//!                  [--threads 4] [--strategy graph|hash|domain|rule]
//!                  [--data-dir <dir>] [--checkpoint-bytes <n>]
//!                  [--read-timeout-ms <n>] [--max-pending <n>]
//!                  [--crash-at <point[@occ][,...]>] [--trace-out <file>]
//! owlpar-serve query <addr> '<SPARQL>'
//! owlpar-serve insert <addr> <batch.nt|->
//! owlpar-serve stats <addr>
//! owlpar-serve ping <addr>
//! owlpar-serve shutdown <addr>
//! ```
//!
//! With `--data-dir`, every accepted INSERT is write-ahead logged and
//! the closed KB is checkpointed atomically; if the directory already
//! holds state, the server recovers from it (latest valid checkpoint +
//! WAL replay) and the `<kb>` argument is ignored. `--crash-at` injects
//! a real `abort(2)` at a durability crash point — the hook the CI
//! crash-recovery smoke job drives. `--trace-out` records the whole run
//! — initial materialization phases plus every query / insert /
//! checkpoint / WAL-fsync span — and writes a Chrome-trace JSON on
//! clean shutdown (live phase totals are scrapeable from STATS anytime).
//!
//! Exit codes mirror `owlpar`: 0 success, 1 usage/IO/remote error, 3 the
//! initial parallel materialization failed *or* the data directory is
//! unrecoverable.

use owlpar_core::{run_parallel, CrashPlan, ParallelConfig, PartitioningStrategy};
use owlpar_datalog::MaterializationStrategy;
use owlpar_horst::HorstReasoner;
use owlpar_rdf::{parse_ntriples, snapshot, Graph};
use owlpar_serve::{
    has_state, recover, run_info, serve, Client, CrashAction, Durability, DurabilityConfig,
    RunInfo, ServeConfig, ServeError, ServingKb,
};
use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

enum CliError {
    Usage(String),
    /// Materialization failed or the data directory is unrecoverable —
    /// the states an operator cannot fix by retrying the same command.
    Fatal(String),
}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError::Usage(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError::Usage(s.to_string())
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Run(r) => CliError::Fatal(format!("materialization failed: {r}")),
            ServeError::Recovery(r) => CliError::Fatal(format!("unrecoverable state: {r}")),
            other => CliError::Usage(other.to_string()),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(e)) => {
            eprintln!("owlpar-serve: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Fatal(e)) => {
            eprintln!("owlpar-serve: {e}");
            ExitCode::from(3)
        }
    }
}

fn run(args: Vec<String>) -> Result<(), CliError> {
    let cmd = args.first().cloned().unwrap_or_default();
    let rest = &args[args.len().min(1)..];
    match cmd.as_str() {
        "run" => run_server(rest),
        "query" => query(rest),
        "insert" => insert(rest),
        "stats" => stats(rest),
        "ping" => ping(rest),
        "shutdown" => shutdown(rest),
        _ => Err(format!(
            "usage: owlpar-serve <run|query|insert|stats|ping|shutdown> ... (got '{cmd}')"
        )
        .into()),
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load_kb(path: &str) -> Result<Graph, CliError> {
    if path.ends_with(".owlpar") {
        let mut f =
            std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
        return snapshot::load(&mut f).map_err(|e| format!("loading {path}: {e}").into());
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut g = Graph::new();
    parse_ntriples(&text, &mut g).map_err(|e| format!("parsing {path}: {e}"))?;
    Ok(g)
}

/// Build the durability config from the CLI flags.
fn durability_config(args: &[String], dir: PathBuf) -> Result<DurabilityConfig, CliError> {
    let mut cfg = DurabilityConfig::new(dir);
    if let Some(v) = flag_value(args, "--checkpoint-bytes") {
        cfg.checkpoint_bytes = v
            .parse()
            .map_err(|_| "--checkpoint-bytes wants a byte count".to_string())?;
    }
    if let Some(spec) = flag_value(args, "--crash-at") {
        cfg.crash = CrashPlan::parse(&spec).map_err(|e| format!("--crash-at: {e}"))?;
        cfg.crash_action = CrashAction::Abort;
    }
    Ok(cfg)
}

fn run_server(args: &[String]) -> Result<(), CliError> {
    let [input, ..] = args else {
        return Err("run needs <kb.nt|kb.owlpar>".into());
    };
    // Install the ambient recorder before anything records: the initial
    // materialization, the KB writer lane, and the pool threads all bind
    // to it at construction time.
    let trace_out = flag_value(args, "--trace-out");
    if trace_out.is_some() {
        owlpar_obs::install_global(owlpar_obs::Recorder::enabled());
    }
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let k: usize = flag_value(args, "--k")
        .map_or(Ok(2), |v| v.parse().map_err(|_| "--k".to_string()))?;
    let threads: usize = flag_value(args, "--threads")
        .map_or(Ok(4), |v| v.parse().map_err(|_| "--threads".to_string()))?;
    let strategy = match flag_value(args, "--strategy").as_deref() {
        None | Some("graph") => PartitioningStrategy::data_graph(),
        Some("hash") => PartitioningStrategy::data_hash(),
        Some("domain") => PartitioningStrategy::data_domain(),
        Some("rule") => PartitioningStrategy::rule(),
        Some(other) => return Err(format!("unknown strategy '{other}'").into()),
    };
    let mut serve_cfg = ServeConfig {
        addr,
        threads,
        ..ServeConfig::default()
    };
    if let Some(ms) = flag_value(args, "--read-timeout-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| "--read-timeout-ms wants milliseconds".to_string())?;
        serve_cfg.read_timeout = (ms > 0).then(|| Duration::from_millis(ms));
    }
    if let Some(n) = flag_value(args, "--max-pending") {
        serve_cfg.max_pending = n
            .parse()
            .map_err(|_| "--max-pending wants a count".to_string())?;
    }
    let data_dir = flag_value(args, "--data-dir").map(PathBuf::from);

    // Three startup shapes: recover from a non-empty data dir (the
    // `<kb>` argument is ignored — checkpoint 0 holds the initial KB),
    // initialize a fresh data dir from the input, or serve purely
    // in-memory when no --data-dir is given.
    let (kb, run): (ServingKb, RunInfo) = match data_dir {
        Some(dir) if has_state(&dir) => {
            let (graph, durability, report) = recover(durability_config(args, dir)?)?;
            println!("recovery: {}", report.summary());
            let mut graph = graph;
            let reasoner = HorstReasoner::from_graph(
                &mut graph,
                MaterializationStrategy::ForwardSemiNaive,
            );
            let run = RunInfo {
                summary: report.summary(),
                derived: report.rederived,
                ..RunInfo::default()
            };
            (
                ServingKb::from_closed(graph, reasoner).with_durability(durability),
                run,
            )
        }
        data_dir => {
            let mut graph = load_kb(input)?;
            let base = graph.len();
            let cfg = ParallelConfig {
                k,
                strategy,
                ..ParallelConfig::default()
            }
            .forward();
            let report = run_parallel(&mut graph, &cfg)
                .map_err(|e| CliError::Fatal(format!("materialization failed: {e}")))?;
            println!("materialized: {} ({base} base triples)", report.summary());
            let reasoner = HorstReasoner::from_graph(
                &mut graph,
                MaterializationStrategy::ForwardSemiNaive,
            );
            let run = run_info(&report);
            let kb = match data_dir {
                Some(dir) => {
                    // Checkpoint 0 = the closed initial KB; the WAL then
                    // records everything accepted after it.
                    let d = Durability::init(durability_config(args, dir)?, &graph)?;
                    println!("durability: data dir {} initialized", d.dir().display());
                    ServingKb::from_closed(graph, reasoner).with_durability(d)
                }
                None => ServingKb::from_closed(graph, reasoner),
            };
            (kb, run)
        }
    };

    let handle = serve(kb, run, &serve_cfg)?;
    println!(
        "serving on {} with {threads} thread(s); epoch {}",
        handle.addr(),
        handle.epoch()
    );
    handle.join()?;
    println!("shut down cleanly");
    if let Some(path) = trace_out {
        let book = owlpar_obs::global().drain();
        owlpar_obs::install_global(owlpar_obs::Recorder::disabled());
        std::fs::write(&path, owlpar_obs::chrome::to_chrome_json(&book))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "trace written to {path} ({} event(s), {} lane(s))",
            book.events.len(),
            book.tracks.len()
        );
    }
    Ok(())
}

fn connect(args: &[String], what: &str) -> Result<(Client, Vec<String>), CliError> {
    let [addr, rest @ ..] = args else {
        return Err(format!("{what} needs <addr>").into());
    };
    Ok((Client::connect(addr.as_str())?, rest.to_vec()))
}

fn query(args: &[String]) -> Result<(), CliError> {
    let (mut client, rest) = connect(args, "query")?;
    let [sparql, ..] = &rest[..] else {
        return Err("query needs <addr> '<SPARQL>'".into());
    };
    let result = client.query(sparql)?;
    println!("{}", result.columns.join("\t"));
    for row in &result.rows {
        println!("{}", row.join("\t"));
    }
    eprintln!("{} row(s) @ epoch {}", result.rows.len(), result.epoch);
    Ok(())
}

fn insert(args: &[String]) -> Result<(), CliError> {
    let (mut client, rest) = connect(args, "insert")?;
    let [source, ..] = &rest[..] else {
        return Err("insert needs <addr> <batch.nt|->".into());
    };
    let nt = if source == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(source).map_err(|e| format!("reading {source}: {e}"))?
    };
    let out = client.insert(&nt)?;
    println!(
        "epoch {}: +{} base triple(s), {} derived{}",
        out.epoch,
        out.added,
        out.derived,
        if out.schema_changed {
            " (schema changed; rules recompiled)"
        } else {
            ""
        }
    );
    Ok(())
}

fn stats(args: &[String]) -> Result<(), CliError> {
    let (mut client, _) = connect(args, "stats")?;
    println!("{}", client.stats()?);
    Ok(())
}

fn ping(args: &[String]) -> Result<(), CliError> {
    let (mut client, _) = connect(args, "ping")?;
    client.ping()?;
    println!("pong");
    Ok(())
}

fn shutdown(args: &[String]) -> Result<(), CliError> {
    let (mut client, _) = connect(args, "shutdown")?;
    client.shutdown()?;
    println!("server shutting down");
    Ok(())
}
