//! The length-prefixed wire protocol.
//!
//! Every message is one *frame*: a little-endian `u32` byte length
//! followed by that many body bytes. The length is validated through
//! [`owlpar_core::check_payload_bounds`] — the *same* check the
//! shared-file transport applies to its message files — before any
//! allocation happens, so a zero-length or absurd length is a typed
//! error, never an OOM or a busy-loop.
//!
//! Body grammar (first byte tags the variant):
//!
//! ```text
//! request  := QUERY(1) sparql-utf8
//!           | INSERT(2) ntriples-utf8
//!           | STATS(3) | PING(4) | SHUTDOWN(5)
//! response := OK(0) payload | ERR(1) message-utf8
//! payload  := ROWS(1) epoch:u64 ncols:u32 nrows:u32 str{ncols} str{ncols*nrows}
//!           | INSERTED(2) epoch:u64 added:u32 derived:u32 schema_changed:u8
//!           | STATS(3) json-utf8
//!           | PONG(4)
//!           | BYE(5)
//!           | BUSY(6)
//! str      := len:u32 bytes{len}
//! ```
//!
//! All integers are little-endian. Decoders never index — every read
//! goes through a bounds-checked cursor and returns
//! [`ServeError::Protocol`] on truncation.

use crate::error::ServeError;
use std::io::{Read, Write};

/// Write one frame. Delegates to the shared `owlpar_core::frame` codec
/// — the single bounds-checked, never-panicking implementation both the
/// serving layer and the cluster transport (`owlpar-net`) use.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), ServeError> {
    Ok(owlpar_core::frame::write_frame(w, body)?)
}

/// Read one frame, validating the claimed length before allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ServeError> {
    Ok(owlpar_core::frame::read_frame(r)?)
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Evaluate a SPARQL-lite query against the current snapshot.
    Query(String),
    /// Insert an N-Triples batch through the delta-closure path.
    Insert(String),
    /// Fetch server statistics as JSON.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to stop accepting connections and drain.
    Shutdown,
}

const OP_QUERY: u8 = 1;
const OP_INSERT: u8 = 2;
const OP_STATS: u8 = 3;
const OP_PING: u8 = 4;
const OP_SHUTDOWN: u8 = 5;

impl Request {
    /// Serialize to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Query(q) => tagged(OP_QUERY, q.as_bytes()),
            Request::Insert(nt) => tagged(OP_INSERT, nt.as_bytes()),
            Request::Stats => vec![OP_STATS],
            Request::Ping => vec![OP_PING],
            Request::Shutdown => vec![OP_SHUTDOWN],
        }
    }

    /// Parse a frame body.
    pub fn decode(body: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(body);
        let op = c.u8()?;
        let req = match op {
            OP_QUERY => Request::Query(c.rest_utf8()?),
            OP_INSERT => Request::Insert(c.rest_utf8()?),
            OP_STATS => Request::Stats,
            OP_PING => Request::Ping,
            OP_SHUTDOWN => Request::Shutdown,
            other => {
                return Err(ServeError::Protocol(format!(
                    "unknown request opcode {other}"
                )))
            }
        };
        c.done()?;
        Ok(req)
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Query solutions, with the epoch of the snapshot they came from.
    Rows {
        /// Snapshot epoch the query ran against.
        epoch: u64,
        /// Projected variable names.
        columns: Vec<String>,
        /// Rendered result rows.
        rows: Vec<Vec<String>>,
    },
    /// Outcome of an insert.
    Inserted {
        /// Epoch the insert published.
        epoch: u64,
        /// Fresh base triples actually added.
        added: u32,
        /// Consequences derived from them.
        derived: u32,
        /// Whether the batch forced a schema recompilation + re-close.
        schema_changed: bool,
    },
    /// Server statistics as JSON text.
    Stats(String),
    /// Reply to [`Request::Ping`].
    Pong,
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown,
    /// The server is saturated: its connection cap is reached and the
    /// connection was refused instead of queued. Clients should back
    /// off and retry.
    Busy,
    /// The request failed server-side.
    Error(String),
}

/// Row cap for the degenerate all-constant `SELECT *` whose rows have no
/// columns (and therefore no bytes on the wire): without it a lying
/// header could demand billions of empty rows. Encoders truncate to it.
pub const MAX_ZERO_COLUMN_ROWS: usize = 4096;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;
const PAY_ROWS: u8 = 1;
const PAY_INSERTED: u8 = 2;
const PAY_STATS: u8 = 3;
const PAY_PONG: u8 = 4;
const PAY_BYE: u8 = 5;
const PAY_BUSY: u8 = 6;

impl Response {
    /// Serialize to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Rows {
                epoch,
                columns,
                rows,
            } => {
                let nrows = if columns.is_empty() {
                    rows.len().min(MAX_ZERO_COLUMN_ROWS)
                } else {
                    rows.len()
                };
                let mut b = vec![STATUS_OK, PAY_ROWS];
                b.extend_from_slice(&epoch.to_le_bytes());
                b.extend_from_slice(&(columns.len() as u32).to_le_bytes());
                b.extend_from_slice(&(nrows as u32).to_le_bytes());
                for c in columns {
                    put_str(&mut b, c);
                }
                for row in rows.iter().take(nrows) {
                    for cell in row {
                        put_str(&mut b, cell);
                    }
                }
                b
            }
            Response::Inserted {
                epoch,
                added,
                derived,
                schema_changed,
            } => {
                let mut b = vec![STATUS_OK, PAY_INSERTED];
                b.extend_from_slice(&epoch.to_le_bytes());
                b.extend_from_slice(&added.to_le_bytes());
                b.extend_from_slice(&derived.to_le_bytes());
                b.push(u8::from(*schema_changed));
                b
            }
            Response::Stats(json) => {
                let mut b = vec![STATUS_OK, PAY_STATS];
                b.extend_from_slice(json.as_bytes());
                b
            }
            Response::Pong => vec![STATUS_OK, PAY_PONG],
            Response::ShuttingDown => vec![STATUS_OK, PAY_BYE],
            Response::Busy => vec![STATUS_OK, PAY_BUSY],
            Response::Error(m) => tagged(STATUS_ERR, m.as_bytes()),
        }
    }

    /// Parse a frame body.
    pub fn decode(body: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(body);
        match c.u8()? {
            STATUS_ERR => return Ok(Response::Error(c.rest_utf8()?)),
            STATUS_OK => {}
            other => {
                return Err(ServeError::Protocol(format!(
                    "unknown response status {other}"
                )))
            }
        }
        let resp = match c.u8()? {
            PAY_ROWS => {
                let epoch = c.u64()?;
                let ncols = c.u32()? as usize;
                let nrows = c.u32()? as usize;
                // Cap decode-side allocation by what the frame can
                // actually hold (each string costs ≥4 bytes), so a lying
                // header cannot force a huge allocation. Zero-column rows
                // carry no bytes at all, so they get an explicit cap.
                let remaining = c.remaining();
                let min_bytes = ncols
                    .checked_add(ncols.saturating_mul(nrows))
                    .and_then(|strings| strings.checked_mul(4));
                if min_bytes.is_none_or(|min| min > remaining)
                    || (ncols == 0 && nrows > MAX_ZERO_COLUMN_ROWS)
                {
                    return Err(ServeError::Protocol(format!(
                        "rows header claims {ncols}x{nrows} strings in a \
                         {remaining}-byte body"
                    )));
                }
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(c.str()?);
                }
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        row.push(c.str()?);
                    }
                    rows.push(row);
                }
                Response::Rows {
                    epoch,
                    columns,
                    rows,
                }
            }
            PAY_INSERTED => Response::Inserted {
                epoch: c.u64()?,
                added: c.u32()?,
                derived: c.u32()?,
                schema_changed: c.u8()? != 0,
            },
            PAY_STATS => Response::Stats(c.rest_utf8()?),
            PAY_PONG => Response::Pong,
            PAY_BYE => Response::ShuttingDown,
            PAY_BUSY => Response::Busy,
            other => {
                return Err(ServeError::Protocol(format!(
                    "unknown payload kind {other}"
                )))
            }
        };
        c.done()?;
        Ok(resp)
    }
}

fn tagged(tag: u8, bytes: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(1 + bytes.len());
    b.push(tag);
    b.extend_from_slice(bytes);
    b
}

fn put_str(b: &mut Vec<u8>, s: &str) {
    b.extend_from_slice(&(s.len() as u32).to_le_bytes());
    b.extend_from_slice(s.as_bytes());
}

/// Bounds-checked reader over a frame body. Never panics: truncated or
/// malformed input surfaces as [`ServeError::Protocol`].
struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Self {
        Cursor { body, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.body.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or_else(|| {
                ServeError::Protocol(format!(
                    "truncated frame: wanted {n} more bytes, {} left",
                    self.remaining()
                ))
            })?;
        let s = &self.body[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<String, ServeError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| ServeError::Protocol("non-UTF-8 string".into()))
    }

    fn rest_utf8(&mut self) -> Result<String, ServeError> {
        let b = self.take(self.remaining())?;
        String::from_utf8(b.to_vec())
            .map_err(|_| ServeError::Protocol("non-UTF-8 text".into()))
    }

    fn done(&self) -> Result<(), ServeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ServeError::Protocol(format!(
                "{} trailing byte(s) after message",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_core::MAX_PAYLOAD_BYTES;

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Query("SELECT ?s WHERE { ?s ?p ?o }".into()),
            Request::Insert("<a> <b> <c> .".into()),
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::Rows {
                epoch: 7,
                columns: vec!["s".into(), "o".into()],
                rows: vec![
                    vec!["<a>".into(), "<b>".into()],
                    vec!["<c>".into(), "\"lit\"".into()],
                ],
            },
            Response::Inserted {
                epoch: 8,
                added: 3,
                derived: 5,
                schema_changed: true,
            },
            Response::Stats("{\"epoch\":8}".into()),
            Response::Pong,
            Response::ShuttingDown,
            Response::Busy,
            Response::Error("boom".into()),
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn zero_length_frame_rejected_on_both_sides() {
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &[]),
            Err(ServeError::Frame(_))
        ));
        let wire = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(ServeError::Frame(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.push(0xff); // body much shorter than claimed
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert!(matches!(err, ServeError::Frame(_)), "{err}");
        assert!(u64::from(u32::MAX) > MAX_PAYLOAD_BYTES, "test premise");
    }

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"world!").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"world!");
    }

    /// Fuzz-style: no random byte soup may panic the decoders; they must
    /// return either a valid message or a typed error.
    #[test]
    fn decoders_never_panic_on_garbage() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..2000 {
            let len = (next() % 64) as usize;
            let body: Vec<u8> = (0..len).map(|_| (next() & 0xff) as u8).collect();
            let _ = Request::decode(&body);
            let _ = Response::decode(&body);
            let _ = trial;
        }
    }

    /// Fuzz-style: bit-flipped valid encodings decode or fail cleanly.
    #[test]
    fn decoders_survive_bit_flips() {
        let valid = Response::Rows {
            epoch: 3,
            columns: vec!["x".into()],
            rows: vec![vec!["<http://x/a>".into()]],
        }
        .encode();
        for byte in 0..valid.len() {
            for bit in 0..8 {
                let mut mutated = valid.clone();
                mutated[byte] ^= 1 << bit;
                let _ = Response::decode(&mutated); // must not panic
            }
        }
    }

    #[test]
    fn trailing_bytes_are_a_protocol_error() {
        let mut body = Request::Ping.encode();
        body.push(0);
        assert!(matches!(
            Request::decode(&body),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn lying_rows_header_is_rejected() {
        let mut b = vec![0u8, 1u8]; // OK, ROWS
        b.extend_from_slice(&0u64.to_le_bytes());
        b.extend_from_slice(&u32::MAX.to_le_bytes()); // ncols
        b.extend_from_slice(&u32::MAX.to_le_bytes()); // nrows
        let err = Response::decode(&b).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)), "{err}");
    }
}
