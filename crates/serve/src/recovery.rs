//! Crash recovery: the durability handle the write path drives, and the
//! startup path that rebuilds a [`owlpar_rdf::Graph`] from a data
//! directory.
//!
//! # Data directory layout
//!
//! ```text
//! <data-dir>/ckpt-<seq>.owlckpt   checksummed snapshot of the closed graph
//! <data-dir>/wal-<seq>.log        batches accepted after checkpoint <seq>
//! ```
//!
//! # Invariants
//!
//! 1. **Write-ahead**: a batch is appended to `wal-<live>` and fsynced
//!    before it mutates the in-memory store; an acknowledged INSERT is
//!    therefore always on disk.
//! 2. **Checkpoint coverage**: checkpoint `n` contains exactly the
//!    closure of (checkpoint `n-1` ∪ the batches of `wal-<n-1>`), and is
//!    written atomically (temp + rename + fsync) before `wal-<n>` opens.
//! 3. **Retention**: the two newest checkpoints and every WAL segment
//!    `>= newest-1` are kept, so a corrupted newest checkpoint still
//!    leaves a valid base plus a complete log suffix.
//! 4. **Idempotent replay**: closure is monotonic and replay re-derives
//!    into a set, so replaying a batch that a checkpoint already folded
//!    in changes nothing — recovery may safely over-replay.
//!
//! Recovery therefore: picks the newest checkpoint that passes CRC +
//! decode verification (falling back past corrupt ones), replays every
//! retained WAL segment from that sequence upward — truncating at the
//! first bad CRC in the final, possibly-torn segment — and re-closes
//! each batch with the same semi-naive delta path the live server uses.
//! The result provably equals the no-crash closure over the acknowledged
//! batches (plus, possibly, one final logged-but-unacknowledged batch).

use crate::checkpoint;
use crate::error::ServeError;
use crate::wal::{self, WalWriter};
use owlpar_core::{CrashPlan, CrashPoint, CrashState};
use owlpar_datalog::MaterializationStrategy;
use owlpar_horst::{DeltaOutcome, HorstReasoner};
use owlpar_rdf::{parse_ntriples, Graph, Triple};
use std::path::{Path, PathBuf};

/// What an injected [`CrashPoint`] does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashAction {
    /// Abort the process (`kill -9` semantics) — the CLI's `--crash-at`
    /// mode, exercised by the CI smoke job.
    #[default]
    Abort,
    /// Simulate: stop persisting, surface [`ServeError::Crashed`], and
    /// leave the on-disk state exactly as a dead process would — the
    /// property-test mode, which then recovers from the files alone.
    Simulate,
}

/// Tunables for the durability layer.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Data directory (created if absent).
    pub dir: PathBuf,
    /// Take a checkpoint once the live WAL segment exceeds this many
    /// bytes. (A checkpoint is also taken whenever the serving KB folds
    /// its overlay into the frozen base — the merge-compaction point.)
    pub checkpoint_bytes: u64,
    /// Deterministic process-crash schedule (empty = never).
    pub crash: CrashPlan,
    /// What a scheduled crash does.
    pub crash_action: CrashAction,
}

impl DurabilityConfig {
    /// Defaults: 1 MiB WAL trigger, no injected crashes.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_bytes: 1 << 20,
            crash: CrashPlan::new(),
            crash_action: CrashAction::Abort,
        }
    }
}

/// The live durability handle: owns the WAL append handle and the
/// checkpoint cursor. Driven by the serving KB's writer path (under the
/// writer mutex, so appends are naturally serialized).
#[derive(Debug)]
pub struct Durability {
    cfg: DurabilityConfig,
    wal: WalWriter,
    /// Sequence of the live WAL segment == the checkpoint it follows.
    seq: u64,
    crash: CrashState,
    /// Set once persistence has failed (IO error or simulated crash);
    /// every later operation is refused so the server can never
    /// acknowledge a batch it did not log.
    poisoned: bool,
}

impl Durability {
    /// Initialize a fresh data directory from an already-closed graph:
    /// write checkpoint 0 and open `wal-0`.
    pub fn init(cfg: DurabilityConfig, graph: &Graph) -> Result<Self, ServeError> {
        std::fs::create_dir_all(&cfg.dir)
            .map_err(|e| ServeError::Durability(format!("creating data dir: {e}")))?;
        checkpoint::write(&cfg.dir, 0, graph)?;
        let wal = WalWriter::create(&cfg.dir, 0)?;
        let crash = cfg.crash.state();
        Ok(Durability {
            cfg,
            wal,
            seq: 0,
            crash,
            poisoned: false,
        })
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Sequence of the live WAL segment.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// `true` once persistence has failed; the writer refuses further
    /// batches rather than acknowledging unlogged state.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    fn guard(&self) -> Result<(), ServeError> {
        if self.poisoned {
            return Err(ServeError::Durability(
                "durability layer is poisoned by an earlier failure; restart to recover".into(),
            ));
        }
        Ok(())
    }

    /// Durably log one accepted batch (the raw N-Triples text). Returns
    /// only after the record is on stable storage — the write-ahead
    /// contract. On any failure nothing may be acknowledged.
    pub fn log_batch(&mut self, nt: &str) -> Result<(), ServeError> {
        self.guard()?;
        let crash_here = self.crash.should_crash(CrashPoint::BeforeWalFsync);
        if crash_here && self.cfg.crash_action == CrashAction::Simulate {
            // Die mid-append: leave a torn half-record, exactly what a
            // real crash between write(2) and fsync(2) can leave.
            self.poisoned = true;
            self.wal.append_torn_record(nt.as_bytes())?;
            return Err(ServeError::Crashed(CrashPoint::BeforeWalFsync));
        }
        let append = self.wal.append_record(nt.as_bytes());
        if let Err(e) = append {
            self.poisoned = true;
            return Err(e);
        }
        if crash_here {
            std::process::abort();
        }
        if let Err(e) = self.wal.sync() {
            self.poisoned = true;
            return Err(e);
        }
        Ok(())
    }

    /// Should the writer take a checkpoint now? (WAL-size trigger; the
    /// caller additionally checkpoints at merge-compaction.)
    pub fn wal_over_threshold(&self) -> bool {
        self.wal.bytes() >= self.cfg.checkpoint_bytes
    }

    /// Take checkpoint `seq+1` of `graph` (which must be the closed,
    /// authoritative store including everything logged so far), rotate
    /// the WAL, and prune state older than the retention window.
    pub fn take_checkpoint(&mut self, graph: &Graph) -> Result<(), ServeError> {
        self.guard()?;
        if self.crash.should_crash(CrashPoint::AfterWalBeforeCheckpoint) {
            match self.cfg.crash_action {
                CrashAction::Abort => std::process::abort(),
                CrashAction::Simulate => {
                    self.poisoned = true;
                    return Err(ServeError::Crashed(CrashPoint::AfterWalBeforeCheckpoint));
                }
            }
        }
        let next = self.seq + 1;
        if self.crash.should_crash(CrashPoint::MidCheckpoint) {
            // Die half-way through writing the checkpoint: only `.tmp`
            // staging debris exists, the rename never happened.
            let bytes = checkpoint::encode(next, graph)?;
            let debris = self
                .cfg
                .dir
                .join(format!("{}{}", checkpoint::checkpoint_name(next), owlpar_core::TMP_SUFFIX));
            let half = &bytes[..bytes.len() / 2];
            std::fs::write(&debris, half)
                .map_err(|e| ServeError::Durability(format!("writing staging debris: {e}")))?;
            match self.cfg.crash_action {
                CrashAction::Abort => std::process::abort(),
                CrashAction::Simulate => {
                    self.poisoned = true;
                    return Err(ServeError::Crashed(CrashPoint::MidCheckpoint));
                }
            }
        }
        if let Err(e) = checkpoint::write(&self.cfg.dir, next, graph) {
            self.poisoned = true;
            return Err(e);
        }
        match WalWriter::create(&self.cfg.dir, next) {
            Ok(w) => self.wal = w,
            Err(e) => {
                self.poisoned = true;
                return Err(e);
            }
        }
        self.seq = next;
        self.prune();
        Ok(())
    }

    /// Drop checkpoints older than the two newest and WAL segments below
    /// the older retained checkpoint. Best-effort: leftover files are
    /// harmless (the scan ignores anything it does not need) and must
    /// never fail a checkpoint that already succeeded.
    fn prune(&self) {
        let keep_from = self.seq.saturating_sub(1);
        if let Ok(ckpts) = checkpoint::list(&self.cfg.dir) {
            for (seq, path) in ckpts {
                if seq < keep_from {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        if let Ok(segments) = wal::list_segments(&self.cfg.dir) {
            for (seq, path) in segments {
                if seq < keep_from {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }

    /// Final fsync at graceful shutdown, after every worker has drained.
    /// Every acknowledged batch is already durable (per-append fsync);
    /// this closes the window for any bytes the OS may still buffer.
    pub fn final_sync(&mut self) -> Result<(), ServeError> {
        if self.poisoned {
            return Ok(()); // nothing further may be persisted
        }
        self.wal.sync()
    }
}

/// What recovery did, for operator-facing reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence of the checkpoint recovery started from.
    pub checkpoint_seq: u64,
    /// Newer checkpoints skipped because they failed verification.
    pub checkpoints_skipped: usize,
    /// WAL segments replayed (including empty ones).
    pub segments_replayed: usize,
    /// Batches re-applied from the WAL.
    pub batches_replayed: usize,
    /// Consequences re-derived while replaying.
    pub rederived: usize,
    /// Batches that forced a schema recompile during replay.
    pub schema_recompiles: usize,
    /// Whether a torn/corrupt record terminated a segment scan early
    /// (the torn tail was truncated before the WAL reopened).
    pub torn_tail: bool,
}

impl RecoveryReport {
    /// One-line operator summary.
    pub fn summary(&self) -> String {
        format!(
            "recovered from checkpoint {} ({} newer skipped), replayed {} batch(es) \
             across {} segment(s), {} rederived, {} schema recompile(s){}",
            self.checkpoint_seq,
            self.checkpoints_skipped,
            self.batches_replayed,
            self.segments_replayed,
            self.rederived,
            self.schema_recompiles,
            if self.torn_tail {
                "; torn WAL tail truncated"
            } else {
                ""
            }
        )
    }
}

/// Does `dir` hold recoverable state (any checkpoint or WAL file)?
pub fn has_state(dir: &Path) -> bool {
    checkpoint::list(dir).map(|c| !c.is_empty()).unwrap_or(false)
        || wal::list_segments(dir).map(|s| !s.is_empty()).unwrap_or(false)
}

/// Re-apply one logged batch to a recovered graph — the same semantics
/// as the live insert path: semi-naive delta closure, full recompile +
/// re-close when the batch carries schema triples.
fn apply_batch(
    graph: &mut Graph,
    reasoner: &mut HorstReasoner,
    nt: &str,
    report: &mut RecoveryReport,
) -> Result<(), ServeError> {
    let mut scratch = Graph::new();
    parse_ntriples(nt, &mut scratch)
        .map_err(|e| ServeError::Recovery(format!("WAL batch failed to parse: {e}")))?;
    let batch: Vec<Triple> = scratch
        .store
        .iter()
        .map(|&t| {
            let (s, p, o) = scratch.decode(t);
            Triple::new(graph.intern(s), graph.intern(p), graph.intern(o))
        })
        .collect();
    match reasoner.materialize_delta(&mut graph.store, &batch) {
        DeltaOutcome::Incremental { derived } => {
            report.rederived += derived.len();
        }
        DeltaOutcome::SchemaChanged => {
            for &t in &batch {
                graph.store.insert(t);
            }
            *reasoner =
                HorstReasoner::from_graph(graph, MaterializationStrategy::ForwardSemiNaive);
            report.rederived += reasoner.materialize(graph);
            report.schema_recompiles += 1;
        }
    }
    report.batches_replayed += 1;
    Ok(())
}

/// Rebuild the closed graph from `cfg.dir` and resume the durability
/// layer on the recovered tail.
///
/// Fails with [`ServeError::Recovery`] (CLI exit code 3) only when the
/// directory is truly unrecoverable: no checkpoint passes verification,
/// or a WAL segment below the torn tail cannot be read at all.
pub fn recover(cfg: DurabilityConfig) -> Result<(Graph, Durability, RecoveryReport), ServeError> {
    let dir = cfg.dir.clone();
    let (ckpt_seq, mut graph, skipped) = match checkpoint::latest_valid(&dir)? {
        Some(found) => found,
        None => {
            return Err(ServeError::Recovery(format!(
                "{}: no checkpoint passed verification",
                dir.display()
            )))
        }
    };
    let mut report = RecoveryReport {
        checkpoint_seq: ckpt_seq,
        checkpoints_skipped: skipped,
        ..RecoveryReport::default()
    };

    let mut reasoner =
        HorstReasoner::from_graph(&mut graph, MaterializationStrategy::ForwardSemiNaive);

    // Replay every retained segment from the recovery base upward.
    let segments: Vec<(u64, PathBuf)> = wal::list_segments(&dir)?
        .into_iter()
        .filter(|&(seq, _)| seq >= ckpt_seq)
        .collect();
    let mut live: Option<(u64, u64)> = None; // (seq, valid_len) of last segment
    for (seq, path) in &segments {
        let replay = wal::replay_segment(path)?;
        if replay.seq != *seq {
            return Err(ServeError::Recovery(format!(
                "{}: header sequence {} does not match its filename",
                path.display(),
                replay.seq
            )));
        }
        report.torn_tail |= replay.torn;
        for record in &replay.records {
            let nt = std::str::from_utf8(record).map_err(|_| {
                ServeError::Recovery(format!("{}: non-UTF-8 WAL record", path.display()))
            })?;
            apply_batch(&mut graph, &mut reasoner, nt, &mut report)?;
        }
        report.segments_replayed += 1;
        live = Some((*seq, replay.valid_len));
    }

    // Resume appending where the valid prefix of the newest segment
    // ends; create wal-<ckpt_seq> if (unusually) no segment survived.
    let wal = match live {
        Some((seq, valid_len)) => WalWriter::reopen(&dir, seq, valid_len)?,
        None => WalWriter::create(&dir, ckpt_seq)?,
    };
    let seq = wal
        .path()
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(wal::parse_segment_name)
        .unwrap_or(ckpt_seq);
    let crash = cfg.crash.state();
    let durability = Durability {
        cfg,
        wal,
        seq,
        crash,
        poisoned: false,
    };
    Ok((graph, durability, report))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_rdf::vocab::{RDFS_SUBCLASSOF, RDF_TYPE};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("owlpar-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn closed_base() -> (Graph, HorstReasoner) {
        let mut g = Graph::new();
        g.insert_iris("http://x/Student", RDFS_SUBCLASSOF, "http://x/Person");
        g.insert_iris("http://x/alice", RDF_TYPE, "http://x/Student");
        let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
        hr.materialize(&mut g);
        (g, hr)
    }

    #[test]
    fn init_log_recover_equals_oracle() {
        let dir = tmp_dir("basic");
        let (g, hr) = closed_base();
        let mut d = Durability::init(DurabilityConfig::new(&dir), &g).unwrap();
        let batch = "<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                     <http://x/Student> .\n";
        d.log_batch(batch).unwrap();

        // Oracle: apply the batch to the live graph too.
        let mut oracle = g;
        let mut r = RecoveryReport::default();
        let mut hr = hr;
        apply_batch(&mut oracle, &mut hr, batch, &mut r).unwrap();

        let (recovered, d2, report) = recover(DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(report.checkpoint_seq, 0);
        assert_eq!(report.batches_replayed, 1);
        assert!(!report.torn_tail);
        assert_eq!(recovered.term_fingerprint(), oracle.term_fingerprint());
        assert_eq!(d2.seq(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rotates_and_prunes() {
        let dir = tmp_dir("rotate");
        let (mut g, hr) = closed_base();
        let mut d = Durability::init(DurabilityConfig::new(&dir), &g).unwrap();
        for i in 0..3 {
            let nt = format!(
                "<http://x/s{i}> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                 <http://x/Student> .\n"
            );
            d.log_batch(&nt).unwrap();
            let mut scratch = Graph::new();
            parse_ntriples(&nt, &mut scratch).unwrap();
            let batch: Vec<Triple> = scratch
                .store
                .iter()
                .map(|&t| {
                    let (s, p, o) = scratch.decode(t);
                    Triple::new(g.intern(s), g.intern(p), g.intern(o))
                })
                .collect();
            hr.materialize_delta(&mut g.store, &batch);
            d.take_checkpoint(&g).unwrap();
        }
        assert_eq!(d.seq(), 3);
        let ckpts = checkpoint::list(&dir).unwrap();
        assert_eq!(
            ckpts.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![2, 3],
            "retention keeps the two newest checkpoints"
        );
        let segs = wal::list_segments(&dir).unwrap();
        assert_eq!(
            segs.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![2, 3],
            "WAL segments below the retention window are pruned"
        );
        // Recovery from the rotated state still works (empty tail).
        let (recovered, _, report) = recover(DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(report.checkpoint_seq, 3);
        assert_eq!(recovered.term_fingerprint(), g.term_fingerprint());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn simulated_crash_before_wal_fsync_loses_only_that_batch() {
        let dir = tmp_dir("crash-wal");
        let (g, _) = closed_base();
        let cfg = DurabilityConfig {
            crash: CrashPlan::new().with(CrashPoint::BeforeWalFsync, 1),
            crash_action: CrashAction::Simulate,
            ..DurabilityConfig::new(&dir)
        };
        let mut d = Durability::init(cfg, &g).unwrap();
        let b0 = "<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                  <http://x/Student> .\n";
        let b1 = "<http://x/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                  <http://x/Student> .\n";
        d.log_batch(b0).unwrap();
        let err = d.log_batch(b1).unwrap_err();
        assert!(matches!(err, ServeError::Crashed(CrashPoint::BeforeWalFsync)));
        assert!(d.poisoned());
        assert!(d.log_batch(b0).is_err(), "poisoned layer refuses everything");

        let (recovered, _, report) = recover(DurabilityConfig::new(&dir)).unwrap();
        assert!(report.torn_tail, "the half-record tear is detected");
        assert_eq!(report.batches_replayed, 1, "only the acked batch survives");
        let bob = recovered.contains_terms(
            &owlpar_rdf::Term::iri("http://x/bob"),
            &owlpar_rdf::Term::iri(RDF_TYPE),
            &owlpar_rdf::Term::iri("http://x/Person"),
        );
        assert!(bob, "recovered closure re-derives bob:Person");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn simulated_crash_mid_checkpoint_leaves_recoverable_state() {
        let dir = tmp_dir("crash-ckpt");
        let (mut g, hr) = closed_base();
        let cfg = DurabilityConfig {
            crash: CrashPlan::new().with(CrashPoint::MidCheckpoint, 0),
            crash_action: CrashAction::Simulate,
            ..DurabilityConfig::new(&dir)
        };
        let mut d = Durability::init(cfg, &g).unwrap();
        let nt = "<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                  <http://x/Student> .\n";
        d.log_batch(nt).unwrap();
        let mut scratch = Graph::new();
        parse_ntriples(nt, &mut scratch).unwrap();
        let batch: Vec<Triple> = scratch
            .store
            .iter()
            .map(|&t| {
                let (s, p, o) = scratch.decode(t);
                Triple::new(g.intern(s), g.intern(p), g.intern(o))
            })
            .collect();
        hr.materialize_delta(&mut g.store, &batch);
        let err = d.take_checkpoint(&g).unwrap_err();
        assert!(matches!(err, ServeError::Crashed(CrashPoint::MidCheckpoint)));

        // Only checkpoint 0 exists; the WAL has the acked batch; the
        // staging debris is ignored.
        let (recovered, _, report) = recover(DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(report.checkpoint_seq, 0);
        assert_eq!(report.batches_replayed, 1);
        assert_eq!(recovered.term_fingerprint(), g.term_fingerprint());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_is_unrecoverable_with_typed_error() {
        let dir = tmp_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(!has_state(&dir));
        let err = recover(DurabilityConfig::new(&dir)).unwrap_err();
        assert!(matches!(err, ServeError::Recovery(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_batch_in_wal_recompiles_on_replay() {
        let dir = tmp_dir("schema");
        let (g, _) = closed_base();
        let mut d = Durability::init(DurabilityConfig::new(&dir), &g).unwrap();
        d.log_batch(
            "<http://x/Person> <http://www.w3.org/2000/01/rdf-schema#subClassOf> \
             <http://x/Agent> .\n",
        )
        .unwrap();
        let (recovered, _, report) = recover(DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(report.schema_recompiles, 1);
        assert!(recovered.contains_terms(
            &owlpar_rdf::Term::iri("http://x/alice"),
            &owlpar_rdf::Term::iri(RDF_TYPE),
            &owlpar_rdf::Term::iri("http://x/Agent"),
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
