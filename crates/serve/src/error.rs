//! Typed failures of the serving subsystem.
//!
//! Same discipline as `owlpar_core::error`: every runtime path returns a
//! structured error; panics are denied crate-wide outside tests.

use owlpar_core::{CrashPoint, PayloadBoundsError, RunError};

/// Anything that can go wrong serving a KB.
#[derive(Debug)]
pub enum ServeError {
    /// Socket/stream trouble.
    Io(std::io::Error),
    /// A frame violated the shared payload bounds (zero-length or
    /// oversized) — same check the shared-file transport applies.
    Frame(PayloadBoundsError),
    /// A frame decoded to something that is not a valid message
    /// (unknown opcode, truncated field, non-UTF-8 text).
    Protocol(String),
    /// The server answered a request with an error report.
    Remote(String),
    /// The initial materialization run failed.
    Run(RunError),
    /// An insert batch failed to parse as N-Triples.
    BadBatch(String),
    /// A query failed to parse.
    BadQuery(String),
    /// The server is saturated (connection cap reached) and refused the
    /// connection with a `BUSY` response instead of queueing it.
    Busy,
    /// The peer sat idle (or wrote/read too slowly) past the configured
    /// socket deadline and was disconnected.
    IdleTimeout,
    /// The durability layer (WAL append, fsync, checkpoint write) failed;
    /// the triggering write was rejected, not half-applied.
    Durability(String),
    /// Crash-recovery found no usable state (every checkpoint invalid,
    /// WAL unreadable). Maps to exit code 3 in the CLI.
    Recovery(String),
    /// An injected [`CrashPoint`] fired in simulation mode: the
    /// durability layer stopped persisting, exactly as if the process
    /// had died at that point.
    Crashed(CrashPoint),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Frame(e) => write!(f, "bad frame: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ServeError::Remote(m) => write!(f, "server error: {m}"),
            ServeError::Run(e) => write!(f, "materialization failed: {e}"),
            ServeError::BadBatch(m) => write!(f, "bad insert batch: {m}"),
            ServeError::BadQuery(m) => write!(f, "bad query: {m}"),
            ServeError::Busy => write!(f, "server busy: connection cap reached, retry later"),
            ServeError::IdleTimeout => {
                write!(f, "idle timeout: no complete request within the deadline")
            }
            ServeError::Durability(m) => write!(f, "durability failure: {m}"),
            ServeError::Recovery(m) => write!(f, "unrecoverable state: {m}"),
            ServeError::Crashed(p) => write!(f, "injected crash at {p}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Frame(e) => Some(e),
            ServeError::Run(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<PayloadBoundsError> for ServeError {
    fn from(e: PayloadBoundsError) -> Self {
        ServeError::Frame(e)
    }
}

impl From<owlpar_core::FrameError> for ServeError {
    fn from(e: owlpar_core::FrameError) -> Self {
        match e {
            owlpar_core::FrameError::Io(e) => ServeError::Io(e),
            owlpar_core::FrameError::Bounds(b) => ServeError::Frame(b),
            // The serve protocol uses plain frames, but map the CRC
            // variant anyway so the conversion is total.
            owlpar_core::FrameError::Checksum { expected, actual } => ServeError::Protocol(
                format!("frame checksum mismatch (expected {expected:#010x}, got {actual:#010x})"),
            ),
        }
    }
}

impl From<RunError> for ServeError {
    fn from(e: RunError) -> Self {
        ServeError::Run(e)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn display_is_prefixed_by_kind() {
        assert!(ServeError::Protocol("x".into()).to_string().contains("protocol"));
        assert!(ServeError::Remote("x".into()).to_string().contains("server"));
        assert!(ServeError::BadQuery("x".into()).to_string().contains("query"));
    }

    #[test]
    fn frame_errors_carry_the_shared_bounds_error() {
        let e = ServeError::from(owlpar_core::check_payload_bounds(0).unwrap_err());
        assert!(e.to_string().contains("zero-length"));
    }
}
