//! Server-side instrumentation: request counters and latency
//! histograms, exported as hand-rolled JSON (the wire protocol is
//! dependency-free, so no serde here). The STATS response also embeds a
//! Prometheus text dump ([`ServerStats::prometheus`]) so one scrape
//! shows where server time goes (query / insert / checkpoint /
//! wal-fsync phase spans) next to the request counters.

use owlpar_obs::Recorder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (covers 1µs .. ~584000 years).
const BUCKETS: usize = 64;

/// A lock-free log-scale latency histogram: bucket *i* counts
/// observations in `[2^(i-1), 2^i)` microseconds (bucket 0: `< 1µs`).
/// Quantiles report the upper bound of the bucket the quantile falls
/// into — exact enough for p50/p99 dashboards at ~2x resolution, and
/// recordable from any number of threads without coordination.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = if us == 0 {
            0
        } else {
            (BUCKETS as u32 - us.leading_zeros()) as usize
        }
        .min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Upper bound (µs) of the bucket holding quantile `q` (0 < q ≤ 1).
    /// Zero when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 1 } else { 1u64 << i.min(63) };
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// Counters for one running server.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Queries answered (successfully).
    pub queries: AtomicU64,
    /// Insert batches applied.
    pub inserts: AtomicU64,
    /// Requests answered with an error.
    pub errors: AtomicU64,
    /// Connections turned away with `BUSY` (worker pool saturated).
    pub busy_rejections: AtomicU64,
    /// Connections dropped for blowing a read/write deadline.
    pub idle_disconnects: AtomicU64,
    /// Query latency (parse + execute + render).
    pub query_latency: LatencyHistogram,
    /// Insert latency (parse + delta closure + publish).
    pub insert_latency: LatencyHistogram,
}

/// The numbers of the initial materialization run, frozen at startup
/// and reported by STATS alongside the live counters.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    /// Workers of the materialization run.
    pub workers: usize,
    /// Rounds (max over workers).
    pub rounds: usize,
    /// Triples derived by the run.
    pub derived: usize,
    /// Messages skipped-with-report during the run.
    pub skipped: usize,
    /// `RunReport::summary()` of the run.
    pub summary: String,
}

impl ServerStats {
    /// The Prometheus text dump embedded in STATS: the recorder's
    /// per-phase span totals (empty when tracing is off) merged with the
    /// request counters and latency quantiles as extra samples.
    pub fn prometheus(&self, rec: &Recorder) -> String {
        let extras = [
            (
                "owlpar_server_queries_total",
                "",
                "",
                self.queries.load(Ordering::Relaxed) as f64,
            ),
            (
                "owlpar_server_inserts_total",
                "",
                "",
                self.inserts.load(Ordering::Relaxed) as f64,
            ),
            (
                "owlpar_server_errors_total",
                "",
                "",
                self.errors.load(Ordering::Relaxed) as f64,
            ),
            (
                "owlpar_server_busy_rejections_total",
                "",
                "",
                self.busy_rejections.load(Ordering::Relaxed) as f64,
            ),
            (
                "owlpar_server_idle_disconnects_total",
                "",
                "",
                self.idle_disconnects.load(Ordering::Relaxed) as f64,
            ),
            (
                "owlpar_server_query_latency_us",
                "quantile",
                "p50",
                self.query_latency.quantile_us(0.50) as f64,
            ),
            (
                "owlpar_server_query_latency_us",
                "quantile",
                "p99",
                self.query_latency.quantile_us(0.99) as f64,
            ),
            (
                "owlpar_server_insert_latency_us",
                "quantile",
                "p50",
                self.insert_latency.quantile_us(0.50) as f64,
            ),
            (
                "owlpar_server_insert_latency_us",
                "quantile",
                "p99",
                self.insert_latency.quantile_us(0.99) as f64,
            ),
        ];
        owlpar_obs::prom::render(&rec.phase_totals(), &extras)
    }

    /// Render the stats JSON the STATS request returns. `durability` is
    /// `None` when the server runs without a data dir, `Some("ok")`
    /// while the layer is healthy, and `Some(<error>)` once poisoned.
    /// `prom` is the Prometheus dump of [`ServerStats::prometheus`],
    /// embedded as an escaped string so a scraper can unwrap one field.
    pub fn to_json(
        &self,
        epoch: u64,
        triples: usize,
        terms: usize,
        run: &RunInfo,
        durability: Option<&str>,
        prom: &str,
    ) -> String {
        let durability = match durability {
            None => "null".to_string(),
            Some(s) => format!("\"{}\"", escape_json(s)),
        };
        format!(
            "{{\"epoch\":{epoch},\"triples\":{triples},\"terms\":{terms},\
             \"queries\":{},\"inserts\":{},\"errors\":{},\
             \"busy_rejections\":{},\"idle_disconnects\":{},\
             \"durability\":{durability},\
             \"query_p50_us\":{},\"query_p99_us\":{},\
             \"insert_p50_us\":{},\"insert_p99_us\":{},\
             \"prom\":\"{}\",\
             \"run\":{{\"workers\":{},\"rounds\":{},\"derived\":{},\
             \"skipped\":{},\"summary\":\"{}\"}}}}",
            self.queries.load(Ordering::Relaxed),
            self.inserts.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.busy_rejections.load(Ordering::Relaxed),
            self.idle_disconnects.load(Ordering::Relaxed),
            self.query_latency.quantile_us(0.50),
            self.query_latency.quantile_us(0.99),
            self.insert_latency.quantile_us(0.50),
            self.insert_latency.quantile_us(0.99),
            escape_json(prom),
            run.workers,
            run.rounds,
            run.derived,
            run.skipped,
            escape_json(&run.summary),
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
    }

    #[test]
    fn quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64,128)
        }
        h.record(Duration::from_millis(50)); // bucket [32768,65536)
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.50);
        assert!((100..=256).contains(&p50), "p50={p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 <= 256, "99 of 100 samples are ~100us, p99={p99}");
        let p100 = h.quantile_us(1.0);
        assert!(p100 >= 50_000, "max sample is 50ms, p100={p100}");
    }

    #[test]
    fn sub_microsecond_and_huge_samples_stay_in_range() {
        let h = LatencyHistogram::default();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(1 << 40));
        assert_eq!(h.count(), 2);
        assert!(h.quantile_us(0.1) >= 1);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn stats_json_is_wellformed_enough() {
        let s = ServerStats::default();
        s.queries.fetch_add(3, Ordering::Relaxed);
        let j = s.to_json(
            2,
            100,
            40,
            &RunInfo {
                workers: 4,
                rounds: 3,
                derived: 17,
                skipped: 0,
                summary: "4 worker(s)".into(),
            },
            None,
            "owlpar_server_queries_total 3\n",
        );
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"epoch\":2",
            "\"triples\":100",
            "\"queries\":3",
            "\"busy_rejections\":0",
            "\"idle_disconnects\":0",
            "\"durability\":null",
            "\"query_p50_us\":",
            "\"prom\":\"owlpar_server_queries_total 3\\n\"",
            "\"workers\":4",
            "\"summary\":\"4 worker(s)\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn stats_json_reports_durability_state() {
        let s = ServerStats::default();
        let run = RunInfo::default();
        let ok = s.to_json(0, 0, 0, &run, Some("ok"), "");
        assert!(ok.contains("\"durability\":\"ok\""), "{ok}");
        let bad = s.to_json(0, 0, 0, &run, Some("wal: disk \"full\""), "");
        assert!(bad.contains("\"durability\":\"wal: disk \\\"full\\\"\""), "{bad}");
    }

    #[test]
    fn prometheus_dump_merges_counters_and_phase_totals() {
        use owlpar_obs::Phase;
        let s = ServerStats::default();
        s.queries.fetch_add(7, Ordering::Relaxed);
        s.query_latency.record(Duration::from_micros(100));

        // Untraced server: counters and quantiles, no phase lines.
        let text = s.prometheus(&Recorder::disabled());
        assert!(text.contains("owlpar_server_queries_total 7"), "{text}");
        assert!(
            text.contains("owlpar_server_query_latency_us{quantile=\"p50\"}"),
            "{text}"
        );
        assert!(!text.contains("owlpar_phase_seconds_total"), "{text}");

        // Traced server: flushed spans surface as phase counters.
        let rec = Recorder::enabled();
        let mut lane = rec.track("serve");
        let span = lane.begin(Phase::Query, owlpar_obs::NO_ROUND);
        lane.end(span);
        lane.flush();
        let text = s.prometheus(&rec);
        assert!(
            text.contains("owlpar_phase_seconds_total{phase=\"query\"}"),
            "{text}"
        );
        assert!(
            text.contains("owlpar_phase_spans_total{phase=\"query\"} 1"),
            "{text}"
        );
    }
}
