//! [`ServingKb`]: a materialized KB published through epochs and
//! maintained incrementally.
//!
//! The write path owns a private mutable [`Graph`] (dictionary + closed
//! store) plus the compiled [`HorstReasoner`]. An INSERT batch is parsed,
//! re-interned, pushed through the semi-naive **delta closure**
//! ([`HorstReasoner::materialize_delta`] — O(batch + consequences), not
//! O(store)), and then published as a brand-new snapshot. Readers keep
//! draining queries from the previous snapshot the whole time; they only
//! see the new epoch once it is complete.
//!
//! A batch containing schema triples invalidates the compiled rule-base;
//! the writer then recompiles and re-closes from scratch (correct, just
//! not O(delta)) before publishing.

use crate::epoch::{EpochHandle, KbSnapshot};
use crate::error::ServeError;
use crate::recovery::Durability;
use owlpar_core::{run_parallel, ParallelConfig, RunReport};
use owlpar_datalog::MaterializationStrategy;
use owlpar_obs::{Phase, Track, NO_ROUND};
use owlpar_horst::{DeltaOutcome, HorstReasoner};
use owlpar_rdf::{parse_ntriples, FrozenStore, Graph, OverlayStore, Triple, TripleStore};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Keep the writer's mutable overlay small relative to the frozen base:
/// past this bound it is merged into a fresh frozen base (linear merge of
/// sorted runs), so per-insert snapshot publication stays O(overlay), not
/// O(store).
const COMPACT_FLOOR: usize = 4096;

/// What an insert did, as reported to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The epoch this insert published.
    pub epoch: u64,
    /// Batch triples that were actually new.
    pub added: usize,
    /// Consequences derived from them.
    pub derived: usize,
    /// Whether the batch carried schema triples and forced a
    /// recompile + full re-close instead of the delta path.
    pub schema_changed: bool,
}

struct WriterState {
    graph: Graph,
    reasoner: HorstReasoner,
    /// Frozen bulk of `graph.store`, shared (by `Arc`) with every
    /// published snapshot — the cheap part of publication.
    base: Arc<FrozenStore>,
    /// `graph.store` minus `base`: the recent, not-yet-compacted inserts.
    /// Cloned (it is small) into each published snapshot.
    overlay: TripleStore,
    /// Optional durability layer: WAL + checkpoints. `None` = the
    /// pre-durability, purely in-memory behavior.
    durability: Option<Durability>,
    /// The last checkpoint failure, surfaced through
    /// [`ServingKb::durability_status`]. The triggering insert was
    /// still acknowledged — it was already logged — but the layer is
    /// poisoned and later inserts are refused.
    durability_error: Option<String>,
    /// Trace lane of the write path on the ambient recorder (a no-op
    /// unless one was installed *before* the KB was built): WAL fsyncs
    /// and checkpoint writes show up as spans on the server timeline.
    lane: Track,
}

impl WriterState {
    fn from_closed(graph: Graph, reasoner: HorstReasoner) -> Self {
        let base = Arc::new(FrozenStore::from_store(&graph.store));
        WriterState {
            graph,
            reasoner,
            base,
            overlay: TripleStore::new(),
            durability: None,
            durability_error: None,
            lane: owlpar_obs::global().track("kb-writer"),
        }
    }

    /// Rebuild the frozen base from the authoritative store (schema
    /// change: the overlay bookkeeping is no longer a strict delta).
    fn refreeze(&mut self) {
        self.base = Arc::new(FrozenStore::from_store(&self.graph.store));
        self.overlay = TripleStore::new();
    }

    /// Fold an oversized overlay into the frozen base. Returns whether
    /// a merge happened — the merge-compaction point doubles as a
    /// checkpoint trigger for the durability layer.
    fn maybe_compact(&mut self) -> bool {
        if self.overlay.len() > COMPACT_FLOOR.max(self.base.len() / 4) {
            self.base = Arc::new(self.base.merge(&self.overlay));
            self.overlay = TripleStore::new();
            return true;
        }
        false
    }

    /// The published view of the current state: shared frozen base plus a
    /// clone of the small overlay. O(overlay) — the point of the design.
    fn published_store(&self) -> OverlayStore {
        OverlayStore::new(Arc::clone(&self.base), Arc::new(self.overlay.clone()))
    }
}

/// A concurrently servable knowledge base.
pub struct ServingKb {
    epochs: EpochHandle,
    writer: Mutex<WriterState>,
    /// Test hook: sleep this long *after* building the next snapshot but
    /// *before* publishing it, to make the "readers never block on
    /// writers" property observable in tests.
    debug_publish_delay: Duration,
}

impl ServingKb {
    /// Materialize `graph` with the parallel runtime, then wrap the
    /// closed result for serving (epoch 0).
    pub fn materialize(
        mut graph: Graph,
        cfg: &ParallelConfig,
    ) -> Result<(Self, RunReport), ServeError> {
        let report = run_parallel(&mut graph, cfg)?;
        let reasoner =
            HorstReasoner::from_graph(&mut graph, MaterializationStrategy::ForwardSemiNaive);
        Ok((Self::from_closed(graph, reasoner), report))
    }

    /// Serve a graph that is *already closed* under `reasoner`'s rules.
    pub fn from_closed(graph: Graph, reasoner: HorstReasoner) -> Self {
        let writer = WriterState::from_closed(graph, reasoner);
        let snapshot = KbSnapshot {
            epoch: 0,
            store: writer.published_store(),
            dict: Arc::new(writer.graph.dict.clone()),
        };
        ServingKb {
            epochs: EpochHandle::new(snapshot),
            writer: Mutex::new(writer),
            debug_publish_delay: Duration::ZERO,
        }
    }

    /// Set the publish-delay test hook (see field docs).
    pub fn with_debug_publish_delay(mut self, d: Duration) -> Self {
        self.debug_publish_delay = d;
        self
    }

    /// Attach a durability layer: every subsequent accepted INSERT is
    /// write-ahead logged (and fsynced) before it is applied, and
    /// checkpoints are taken at merge-compaction or when the WAL grows
    /// past its configured bound.
    pub fn with_durability(self, d: Durability) -> Self {
        {
            let mut guard = self.lock_writer();
            guard.durability = Some(d);
            guard.durability_error = None;
        }
        self
    }

    /// `None` when no durability layer is attached, `Some("ok")` while
    /// it is healthy, and the first persistent failure (IO error or
    /// injected crash) as a string once poisoned. A degraded server
    /// keeps answering queries but refuses further inserts.
    pub fn durability_status(&self) -> Option<String> {
        let guard = self.lock_writer();
        if let Some(e) = &guard.durability_error {
            return Some(e.clone());
        }
        guard.durability.as_ref().map(|d| {
            if d.poisoned() {
                "durability layer poisoned by an earlier failure".into()
            } else {
                "ok".into()
            }
        })
    }

    /// Final durability flush for graceful shutdown — called after every
    /// worker has drained, so in-flight inserts are either fully
    /// applied+logged or were rejected before touching any state.
    pub fn shutdown_flush(&self) -> Result<(), ServeError> {
        let mut guard = self.lock_writer();
        let w: &mut WriterState = &mut guard;
        let result = match w.durability.as_mut() {
            Some(d) => {
                let span = w.lane.begin(Phase::WalFsync, NO_ROUND);
                let r = d.final_sync();
                w.lane.end(span);
                r
            }
            None => Ok(()),
        };
        w.lane.flush();
        result
    }

    /// The current snapshot (cheap; see [`EpochHandle::load`]).
    pub fn snapshot(&self) -> Arc<KbSnapshot> {
        self.epochs.load()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epochs.epoch()
    }

    fn lock_writer(&self) -> MutexGuard<'_, WriterState> {
        match self.writer.lock() {
            Ok(g) => g,
            // The writer never unwinds while holding the lock (all
            // fallible steps return typed errors), but stay total.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Parse `nt` as N-Triples, apply it through the delta-closure path,
    /// and publish the result as a new epoch.
    ///
    /// Serialized with other inserts by the writer mutex; concurrent
    /// readers are *not* blocked at any point — they read the previous
    /// snapshot until the new one is fully built and swapped in.
    pub fn insert_ntriples(&self, nt: &str) -> Result<InsertOutcome, ServeError> {
        // Parse into a scratch graph first so a syntax error cannot
        // leave partial state anywhere.
        let mut scratch = Graph::new();
        parse_ntriples(nt, &mut scratch).map_err(|e| ServeError::BadBatch(e.to_string()))?;

        let mut guard = self.lock_writer();
        let w: &mut WriterState = &mut guard;

        // Re-intern the batch against the serving dictionary.
        let batch: Vec<Triple> = scratch
            .store
            .iter()
            .map(|&t| {
                let (s, p, o) = scratch.decode(t);
                Triple::new(w.graph.intern(s), w.graph.intern(p), w.graph.intern(o))
            })
            .collect();

        // Write-ahead: the batch is durably logged (appended + fsynced)
        // *before* any in-memory mutation, so an acknowledged insert is
        // always recoverable and a failed log leaves nothing applied.
        // (Interned dictionary terms from the lines above are semantic
        // no-ops without triples referencing them.)
        if let Some(d) = w.durability.as_mut() {
            if !batch.is_empty() {
                let span = w.lane.begin(Phase::WalFsync, NO_ROUND);
                d.log_batch(nt)?;
                w.lane.end(span);
            }
        }

        let before = w.graph.store.len();
        // Batch triples that are actually new (the delta path will insert
        // exactly these): they join the overlay alongside the derivations.
        let fresh: Vec<Triple> = batch
            .iter()
            .copied()
            .filter(|t| !w.graph.store.contains(t))
            .collect();
        let compacted;
        let (derived, schema_changed) =
            match w.reasoner.materialize_delta(&mut w.graph.store, &batch) {
                DeltaOutcome::Incremental { derived } => {
                    for t in fresh.iter().chain(derived.iter()) {
                        w.overlay.insert(*t);
                    }
                    compacted = w.maybe_compact();
                    (derived.len(), false)
                }
                DeltaOutcome::SchemaChanged => {
                    // The compiled rule-base is stale: insert the batch,
                    // recompile against the new schema, re-close fully,
                    // and refreeze the base (the overlay bookkeeping no
                    // longer describes a strict delta).
                    for &t in &batch {
                        w.graph.store.insert(t);
                    }
                    let mid = w.graph.store.len();
                    w.reasoner = HorstReasoner::from_graph(
                        &mut w.graph,
                        MaterializationStrategy::ForwardSemiNaive,
                    );
                    w.reasoner.materialize(&mut w.graph);
                    w.refreeze();
                    compacted = true; // full refreeze ≙ compaction point
                    (w.graph.store.len() - mid, true)
                }
            };
        let added = w.graph.store.len() - before - derived;

        // Checkpoint at the merge-compaction point or when the WAL has
        // outgrown its bound. The batch is already logged, so a
        // checkpoint failure does not retract the acknowledgement — it
        // poisons the layer, and the *next* insert is refused.
        if let Some(d) = w.durability.as_mut() {
            if compacted || d.wal_over_threshold() {
                let span = w.lane.begin(Phase::Checkpoint, NO_ROUND);
                let result = d.take_checkpoint(&w.graph);
                w.lane.end(span);
                if let Err(e) = result {
                    w.durability_error = Some(e.to_string());
                }
            }
        }

        // Publish this insert's spans so a STATS scrape between inserts
        // sees them in the phase totals.
        w.lane.flush();

        // Build the complete next snapshot before touching the handle.
        // Publication cost is O(overlay): the frozen base is shared.
        let next = KbSnapshot {
            epoch: self.epochs.epoch() + 1,
            store: w.published_store(),
            dict: Arc::new(w.graph.dict.clone()),
        };
        if !self.debug_publish_delay.is_zero() {
            std::thread::sleep(self.debug_publish_delay);
        }
        let epoch = next.epoch;
        self.epochs.publish(next);
        Ok(InsertOutcome {
            epoch,
            added,
            derived,
            schema_changed,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_datalog::MaterializationStrategy;

    fn base() -> (Graph, HorstReasoner) {
        let mut g = Graph::new();
        g.insert_iris(
            "http://x/Student",
            owlpar_rdf::vocab::RDFS_SUBCLASSOF,
            "http://x/Person",
        );
        g.insert_iris("http://x/alice", owlpar_rdf::vocab::RDF_TYPE, "http://x/Student");
        let hr = HorstReasoner::from_graph(&mut g, MaterializationStrategy::ForwardSemiNaive);
        hr.materialize(&mut g);
        (g, hr)
    }

    #[test]
    fn insert_publishes_new_epoch_with_consequences() {
        let (g, hr) = base();
        let kb = ServingKb::from_closed(g, hr);
        assert_eq!(kb.epoch(), 0);
        let out = kb
            .insert_ntriples(
                "<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                 <http://x/Student> .\n",
            )
            .unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!(out.added, 1);
        assert_eq!(out.derived, 1, "bob:Person follows");
        assert!(!out.schema_changed);
        assert_eq!(kb.epoch(), 1);
    }

    #[test]
    fn old_snapshot_is_immutable_across_inserts() {
        let (g, hr) = base();
        let kb = ServingKb::from_closed(g, hr);
        let old = kb.snapshot();
        let n = old.store.len();
        kb.insert_ntriples(
            "<http://x/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
             <http://x/Student> .\n",
        )
        .unwrap();
        assert_eq!(old.store.len(), n, "reader's snapshot unchanged");
        assert!(kb.snapshot().store.len() > n);
    }

    #[test]
    fn schema_triple_takes_the_recompile_path() {
        let (g, hr) = base();
        let kb = ServingKb::from_closed(g, hr);
        let out = kb
            .insert_ntriples(
                "<http://x/Person> \
                 <http://www.w3.org/2000/01/rdf-schema#subClassOf> \
                 <http://x/Agent> .\n",
            )
            .unwrap();
        assert!(out.schema_changed);
        // alice (and her derived Person membership) now cascades to Agent.
        assert!(out.derived >= 1, "derived={}", out.derived);
        // New rule-base answers follow-up instance inserts incrementally.
        let out2 = kb
            .insert_ntriples(
                "<http://x/dan> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                 <http://x/Student> .\n",
            )
            .unwrap();
        assert!(!out2.schema_changed);
        assert_eq!(out2.derived, 2, "dan:Person and dan:Agent");
    }

    #[test]
    fn bad_ntriples_is_a_typed_error_and_publishes_nothing() {
        let (g, hr) = base();
        let kb = ServingKb::from_closed(g, hr);
        let err = kb.insert_ntriples("this is not ntriples").unwrap_err();
        assert!(matches!(err, ServeError::BadBatch(_)), "{err}");
        assert_eq!(kb.epoch(), 0);
    }
}
