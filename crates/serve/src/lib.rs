//! `owlpar-serve`: the concurrent KB-serving subsystem.
//!
//! The paper's pipeline is batch-shaped: load, partition, materialize in
//! parallel, write the closure out. This crate turns the materialized
//! result into a *long-running service* — the deployment shape the
//! paper's §I motivates ("materialized knowledge-bases trade off space
//! and increased loading time for shorter query times"):
//!
//! * [`kb`] — [`ServingKb`]: materialize once with the parallel
//!   runtime, then maintain the closure **incrementally**: INSERT
//!   batches run a semi-naive delta closure seeded with just the new
//!   triples (O(batch + consequences)), falling back to a full
//!   recompile + re-close only when the batch touches the schema.
//! * [`epoch`] — lock-free-for-readers snapshot publication: readers
//!   clone an `Arc` to the current immutable snapshot and never wait on
//!   writers; writers build the complete next snapshot before a
//!   pointer-swap publish.
//! * [`wire`] — the length-prefixed TCP protocol; frame lengths are
//!   validated through the same `owlpar_core::check_payload_bounds` the
//!   shared-file transport uses.
//! * [`server`] / [`client`] — a thread-pooled TCP server with graceful
//!   shutdown, and the matching blocking client. The accept path is
//!   bounded (saturated servers answer `BUSY` instead of queueing
//!   unboundedly) and every connection carries read/write deadlines.
//! * [`stats`] — lock-free latency histograms and counters behind the
//!   STATS request.
//! * [`wal`] / [`checkpoint`] / [`recovery`] — the durability layer: a
//!   CRC-checksummed write-ahead log of accepted INSERT batches (base
//!   triples only; derived facts are recomputed), atomic checksummed
//!   checkpoints of the closed graph, and a crash-recovery path that
//!   provably equals the no-crash closure over acknowledged batches.

// Serving code must propagate failures as typed errors, never panic;
// the unwrap/expect/panic deny gates come from `[workspace.lints]` in the
// workspace manifest (enforced in CI by clippy).
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod client;
pub mod epoch;
pub mod error;
pub mod kb;
pub mod recovery;
pub mod server;
pub mod stats;
pub mod wal;
pub mod wire;

pub use client::{Client, InsertResult, QueryResult};
pub use epoch::{EpochHandle, KbSnapshot};
pub use error::ServeError;
pub use kb::{InsertOutcome, ServingKb};
pub use recovery::{
    has_state, recover, CrashAction, Durability, DurabilityConfig, RecoveryReport,
};
pub use server::{run_info, serve, ServeConfig, ServerHandle};
pub use stats::{LatencyHistogram, RunInfo, ServerStats};
