//! The write-ahead log: durable, checksummed record of accepted INSERT
//! batches.
//!
//! Only **base** triples are logged — the raw N-Triples text of each
//! accepted batch, exactly as the client sent it. Derived facts are
//! never logged: recovery recomputes them with the same semi-naive
//! delta closure the live insert path uses, which keeps the log
//! proportional to the ingress stream, not the closure.
//!
//! One *segment* file covers the interval between two checkpoints and
//! is named `wal-<seq>.log`, where `seq` is the checkpoint it follows
//! (see [`crate::checkpoint`]). Layout:
//!
//! ```text
//! segment := magic "OWLWAL1\n" | seq:u64 | record*
//! record  := len:u32 | crc:u32 | payload bytes{len}
//! ```
//!
//! All integers little-endian; `crc` is the shared CRC-32
//! ([`owlpar_core::crc32`]) of the payload; `len` is validated through
//! the same [`owlpar_core::check_payload_bounds`] as every other
//! length-prefixed stream in the system.
//!
//! The append path is write-ahead in the strict sense: a batch is
//! appended **and fsynced** before it is applied to the in-memory
//! store, so an acknowledged insert is always on disk. A crash between
//! the write and the fsync can leave a *torn* final record; replay
//! tolerates exactly that — it stops at the first record whose length
//! field is truncated or whose CRC does not match, reports the tear,
//! and recovery truncates the segment back to its valid prefix before
//! appending again.

use crate::error::ServeError;
use owlpar_core::{check_payload_bounds, crc32};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const WAL_MAGIC: &[u8; 8] = b"OWLWAL1\n";
const HEADER_LEN: u64 = 16; // magic + seq

/// Name of the segment that follows checkpoint `seq`.
pub fn segment_name(seq: u64) -> String {
    format!("wal-{seq:016}.log")
}

/// Parse a segment filename back to its sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

fn io_err(what: &str, e: &std::io::Error) -> ServeError {
    ServeError::Durability(format!("{what}: {e}"))
}

/// Append handle for one WAL segment.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: std::fs::File,
    /// Bytes in the segment (header + records) — the checkpoint trigger.
    bytes: u64,
    records: u64,
}

impl WalWriter {
    /// Create segment `seq` in `dir` (fails if it already exists with
    /// content — segments are created exactly once, at rotation).
    pub fn create(dir: &Path, seq: u64) -> Result<Self, ServeError> {
        let path = dir.join(segment_name(seq));
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("creating WAL segment", &e))?;
        let len = file
            .metadata()
            .map_err(|e| io_err("statting WAL segment", &e))?
            .len();
        if len == 0 {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(WAL_MAGIC);
            header.extend_from_slice(&seq.to_le_bytes());
            file.write_all(&header)
                .and_then(|()| file.sync_all())
                .map_err(|e| io_err("writing WAL header", &e))?;
        }
        let bytes = file
            .metadata()
            .map_err(|e| io_err("statting WAL segment", &e))?
            .len();
        Ok(WalWriter {
            path,
            file,
            bytes,
            records: 0,
        })
    }

    /// Reopen an existing segment for appending, first truncating it to
    /// `valid_len` — the valid prefix replay established — so a torn
    /// tail can never shadow a future record.
    pub fn reopen(dir: &Path, seq: u64, valid_len: u64) -> Result<Self, ServeError> {
        let path = dir.join(segment_name(seq));
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| io_err("reopening WAL segment", &e))?;
        let actual = file
            .metadata()
            .map_err(|e| io_err("statting WAL segment", &e))?
            .len();
        if actual > valid_len {
            file.set_len(valid_len)
                .and_then(|()| file.sync_all())
                .map_err(|e| io_err("truncating torn WAL tail", &e))?;
        }
        drop(file);
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err("reopening WAL segment", &e))?;
        Ok(WalWriter {
            path,
            file,
            bytes: valid_len.min(actual.max(HEADER_LEN)),
            records: 0,
        })
    }

    /// Segment size in bytes (header + records).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records appended through this handle.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Path of the live segment.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stage one record **without** fsyncing: write `len|crc|payload`.
    /// Callers must follow with [`WalWriter::sync`] before
    /// acknowledging the batch. Split so the crash-injection point
    /// *between* write and fsync is a real program point, not a
    /// simulation fiction.
    pub fn append_record(&mut self, payload: &[u8]) -> Result<(), ServeError> {
        check_payload_bounds(payload.len() as u64)
            .map_err(|e| ServeError::Durability(format!("WAL record: {e}")))?;
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        self.file
            .write_all(&rec)
            .map_err(|e| io_err("appending WAL record", &e))?;
        self.bytes += rec.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Write a deliberately torn half-record: the simulation of a crash
    /// that died mid-append. Used by the fault-injection tests; the
    /// record is *not* counted as appended.
    pub fn append_torn_record(&mut self, payload: &[u8]) -> Result<(), ServeError> {
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        rec.truncate((rec.len() / 2).max(1));
        self.file
            .write_all(&rec)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err("appending torn WAL record", &e))?;
        self.bytes += rec.len() as u64;
        Ok(())
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.file
            .sync_data()
            .map_err(|e| io_err("fsyncing WAL", &e))
    }
}

/// What replaying one segment found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentReplay {
    /// The segment's sequence number (from its header).
    pub seq: u64,
    /// Every valid record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the valid prefix (where appends may resume).
    pub valid_len: u64,
    /// `true` when a torn/corrupt record terminated the scan early.
    pub torn: bool,
}

/// Replay one segment file, stopping at the first torn or corrupt
/// record (truncate-at-first-bad-CRC semantics). A completely missing
/// or header-corrupt file is an error; a torn *tail* is not.
pub fn replay_segment(path: &Path) -> Result<SegmentReplay, ServeError> {
    let mut f = std::fs::File::open(path).map_err(|e| io_err("opening WAL segment", &e))?;
    let mut header = [0u8; HEADER_LEN as usize];
    f.read_exact(&mut header)
        .map_err(|e| io_err("reading WAL header", &e))?;
    if &header[..8] != WAL_MAGIC {
        return Err(ServeError::Durability(format!(
            "{}: bad WAL magic",
            path.display()
        )));
    }
    let seq = u64::from_le_bytes([
        header[8], header[9], header[10], header[11], header[12], header[13], header[14],
        header[15],
    ]);
    let mut records = Vec::new();
    let mut valid_len = HEADER_LEN;
    let torn;
    loop {
        let mut prefix = [0u8; 8];
        match f.read_exact(&mut prefix) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                // Either a clean end (0 extra bytes) or a tear inside
                // the length/crc prefix; both stop the scan. Whether it
                // was a tear matters for reporting: compare the file's
                // real length with the valid prefix.
                let file_len = f
                    .metadata()
                    .map_err(|e| io_err("statting WAL segment", &e))?
                    .len();
                torn = file_len != valid_len;
                break;
            }
            Err(e) => return Err(io_err("reading WAL record prefix", &e)),
        }
        let len = u64::from(u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]));
        let crc = u32::from_le_bytes([prefix[4], prefix[5], prefix[6], prefix[7]]);
        if check_payload_bounds(len).is_err() {
            // A nonsense length is indistinguishable from a tear that
            // happened to leave garbage; same remedy.
            torn = true;
            break;
        }
        let mut payload = vec![0u8; len as usize];
        match f.read_exact(&mut payload) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                torn = true;
                break;
            }
            Err(e) => return Err(io_err("reading WAL record payload", &e)),
        }
        if crc32(&payload) != crc {
            torn = true;
            break;
        }
        valid_len += 8 + len;
        records.push(payload);
    }
    Ok(SegmentReplay {
        seq,
        records,
        valid_len,
        torn,
    })
}

/// All WAL segments in `dir`, sorted ascending by sequence number.
/// `*.tmp` staging debris and foreign files are ignored.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, ServeError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("listing data dir", &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("listing data dir", &e))?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("owlpar-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_sync_replay_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut w = WalWriter::create(&dir, 3).unwrap();
        w.append_record(b"<a> <p> <b> .\n").unwrap();
        w.append_record(b"<c> <p> <d> .\n").unwrap();
        w.sync().unwrap();
        let r = replay_segment(&dir.join(segment_name(3))).unwrap();
        assert_eq!(r.seq, 3);
        assert!(!r.torn);
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.records[0], b"<a> <p> <b> .\n");
        assert_eq!(r.valid_len, w.bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_record_is_tolerated_and_truncatable() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::create(&dir, 0).unwrap();
        w.append_record(b"<a> <p> <b> .\n").unwrap();
        w.append_torn_record(b"<never> <acked> <batch> .\n").unwrap();
        let path = dir.join(segment_name(0));
        let r = replay_segment(&path).unwrap();
        assert!(r.torn, "tear must be reported");
        assert_eq!(r.records.len(), 1, "only the intact record survives");
        // Reopen truncates; a fresh append lands cleanly after it.
        let mut w2 = WalWriter::reopen(&dir, 0, r.valid_len).unwrap();
        w2.append_record(b"<c> <p> <d> .\n").unwrap();
        w2.sync().unwrap();
        let r2 = replay_segment(&path).unwrap();
        assert!(!r2.torn);
        assert_eq!(r2.records.len(), 2);
        assert_eq!(r2.records[1], b"<c> <p> <d> .\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_mid_record_truncates_at_first_bad_crc() {
        let dir = tmp_dir("corrupt");
        let mut w = WalWriter::create(&dir, 0).unwrap();
        for i in 0..5 {
            w.append_record(format!("<s{i}> <p> <o{i}> .\n").as_bytes()).unwrap();
        }
        w.sync().unwrap();
        let path = dir.join(segment_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the third record's body.
        let target = bytes.len() / 2;
        bytes[target] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let r = replay_segment(&path).unwrap();
        assert!(r.torn);
        assert!(r.records.len() < 5, "records after the corruption are dropped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_offset_is_tolerated() {
        let dir = tmp_dir("alltrunc");
        let mut w = WalWriter::create(&dir, 0).unwrap();
        w.append_record(b"<a> <p> <b> .\n").unwrap();
        w.append_record(b"<c> <p> <d> .\n").unwrap();
        w.sync().unwrap();
        let path = dir.join(segment_name(0));
        let full = std::fs::read(&path).unwrap();
        for cut in (HEADER_LEN as usize)..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let r = replay_segment(&path).unwrap();
            assert!(r.records.len() <= 2);
            assert!(
                r.valid_len <= cut as u64,
                "valid prefix cannot exceed the file"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_and_oversized_lengths_stop_the_scan_not_the_process() {
        let dir = tmp_dir("badlen");
        let mut w = WalWriter::create(&dir, 0).unwrap();
        w.append_record(b"<a> <p> <b> .\n").unwrap();
        w.sync().unwrap();
        let path = dir.join(segment_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&0u32.to_le_bytes()); // zero length
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let r = replay_segment(&path).unwrap();
        assert!(r.torn);
        assert_eq!(r.records.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_names_roundtrip_and_sort() {
        assert_eq!(parse_segment_name(&segment_name(42)), Some(42));
        assert_eq!(parse_segment_name("wal-x.log"), None);
        assert_eq!(parse_segment_name("ckpt-1.owlckpt"), None);
        assert!(segment_name(2) < segment_name(10), "zero-padded ordering");
    }
}
