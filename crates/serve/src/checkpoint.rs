//! Atomic, checksummed checkpoints of the serving KB.
//!
//! A checkpoint is the full closed graph — dictionary plus triple
//! columns, serialized with the existing binary snapshot format
//! ([`owlpar_rdf::snapshot`]) — wrapped in a small checksummed
//! container and written with the crash-safe temp+rename+fsync
//! discipline ([`owlpar_core::atomic_write_synced`]):
//!
//! ```text
//! checkpoint := magic "OWLCKPT1" | seq:u64 | body_len:u64
//!             | crc:u32 (of body) | body (snapshot image)
//! ```
//!
//! A crash mid-write leaves only `*.tmp` staging debris (ignored by the
//! scan); a crash after the rename leaves a complete, verifiable file.
//! Recovery keeps the **two** most recent checkpoints on disk so a
//! latest checkpoint that fails verification (bit rot, torn rename on
//! a non-atomic filesystem) falls back to its predecessor — together
//! with the retained WAL segments that is always sufficient to rebuild
//! (see [`crate::recovery`]).

use crate::error::ServeError;
use owlpar_core::{atomic_write_synced, crc32};
use owlpar_rdf::{snapshot, Graph};
use std::path::{Path, PathBuf};

const CKPT_MAGIC: &[u8; 8] = b"OWLCKPT1";
const CKPT_HEADER: usize = 8 + 8 + 8 + 4;

/// Name of checkpoint `seq`.
pub fn checkpoint_name(seq: u64) -> String {
    format!("ckpt-{seq:016}.owlckpt")
}

/// Parse a checkpoint filename back to its sequence number.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".owlckpt")?
        .parse()
        .ok()
}

/// Serialize `graph` into the checkpoint container for `seq`.
pub fn encode(seq: u64, graph: &Graph) -> Result<Vec<u8>, ServeError> {
    let body = snapshot::save_to_vec(graph)
        .map_err(|e| ServeError::Durability(format!("serializing checkpoint: {e}")))?;
    let mut out = Vec::with_capacity(CKPT_HEADER + body.len());
    out.extend_from_slice(CKPT_MAGIC);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Write checkpoint `seq` of `graph` into `dir`, atomically and
/// durably. Returns the final path.
pub fn write(dir: &Path, seq: u64, graph: &Graph) -> Result<PathBuf, ServeError> {
    let bytes = encode(seq, graph)?;
    let path = dir.join(checkpoint_name(seq));
    atomic_write_synced(&path, &bytes)
        .map_err(|e| ServeError::Durability(format!("writing checkpoint {seq}: {e}")))?;
    Ok(path)
}

/// Read and fully verify one checkpoint file: magic, sequence
/// consistency, length, CRC, and snapshot decode.
pub fn read(path: &Path) -> Result<(u64, Graph), ServeError> {
    let bytes = std::fs::read(path)
        .map_err(|e| ServeError::Durability(format!("reading checkpoint: {e}")))?;
    if bytes.len() < CKPT_HEADER || &bytes[..8] != CKPT_MAGIC {
        return Err(ServeError::Durability(format!(
            "{}: not a checkpoint (bad magic or truncated header)",
            path.display()
        )));
    }
    let seq = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]);
    let body_len = u64::from_le_bytes([
        bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22], bytes[23],
    ]) as usize;
    let crc = u32::from_le_bytes([bytes[24], bytes[25], bytes[26], bytes[27]]);
    let body = &bytes[CKPT_HEADER..];
    if body.len() != body_len {
        return Err(ServeError::Durability(format!(
            "{}: body is {} bytes, header claims {body_len}",
            path.display(),
            body.len()
        )));
    }
    if crc32(body) != crc {
        return Err(ServeError::Durability(format!(
            "{}: checksum mismatch",
            path.display()
        )));
    }
    let graph = snapshot::load_from_slice(body)
        .map_err(|e| ServeError::Durability(format!("{}: {e}", path.display())))?;
    Ok((seq, graph))
}

/// All checkpoint files in `dir`, sorted ascending by sequence number.
/// `*.tmp` staging debris and foreign files are ignored.
pub fn list(dir: &Path) -> Result<Vec<(u64, PathBuf)>, ServeError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ServeError::Durability(format!("listing data dir: {e}")))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| ServeError::Durability(format!("listing data dir: {e}")))?;
        if let Some(seq) = entry
            .file_name()
            .to_str()
            .and_then(parse_checkpoint_name)
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// The newest checkpoint in `dir` that passes full verification,
/// together with how many newer ones had to be skipped as invalid.
/// `Ok(None)` when the directory holds no checkpoint files at all.
pub fn latest_valid(dir: &Path) -> Result<Option<(u64, Graph, usize)>, ServeError> {
    let mut skipped = 0;
    for (seq, path) in list(dir)?.into_iter().rev() {
        match read(&path) {
            Ok((file_seq, graph)) if file_seq == seq => {
                return Ok(Some((seq, graph, skipped)));
            }
            Ok(_) | Err(_) => skipped += 1,
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("owlpar-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert_iris("http://x/a", "http://x/p", "http://x/b");
        g.insert_iris("http://x/b", "http://x/p", "http://x/c");
        g
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let g = sample();
        let path = write(&dir, 7, &g).unwrap();
        let (seq, back) = read(&path).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(back.term_fingerprint(), g.term_fingerprint());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error_and_fallback_finds_previous() {
        let dir = tmp_dir("fallback");
        let g1 = sample();
        let mut g2 = sample();
        g2.insert_iris("http://x/c", "http://x/p", "http://x/d");
        write(&dir, 1, &g1).unwrap();
        let p2 = write(&dir, 2, &g2).unwrap();
        // Corrupt the newer checkpoint's body.
        let mut bytes = std::fs::read(&p2).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&p2, &bytes).unwrap();
        assert!(matches!(read(&p2), Err(ServeError::Durability(_))));
        let (seq, graph, skipped) = latest_valid(&dir).unwrap().unwrap();
        assert_eq!(seq, 1, "falls back to the previous checkpoint");
        assert_eq!(skipped, 1);
        assert_eq!(graph.term_fingerprint(), g1.term_fingerprint());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_checkpoint_never_panics() {
        let dir = tmp_dir("trunc");
        let path = write(&dir, 0, &sample()).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(read(&path).is_err(), "truncation at {cut} must fail cleanly");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tmp_debris_is_invisible_to_the_scan() {
        let dir = tmp_dir("debris");
        write(&dir, 3, &sample()).unwrap();
        std::fs::write(dir.join("ckpt-0000000000000004.owlckpt.tmp"), b"partial").unwrap();
        let listed = list(&dir).unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].0, 3);
        let (seq, _, skipped) = latest_valid(&dir).unwrap().unwrap();
        assert_eq!((seq, skipped), (3, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let dir = tmp_dir("empty");
        assert!(latest_valid(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn names_roundtrip_and_sort() {
        assert_eq!(parse_checkpoint_name(&checkpoint_name(9)), Some(9));
        assert_eq!(parse_checkpoint_name("wal-1.log"), None);
        assert!(checkpoint_name(9) < checkpoint_name(10));
    }
}
