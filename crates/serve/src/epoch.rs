//! Epoch-based snapshot publication.
//!
//! The serving KB is published as a sequence of *immutable* snapshots,
//! each tagged with a monotonically increasing epoch. Readers grab the
//! current `Arc<KbSnapshot>` — a pointer clone under a read lock held
//! for nanoseconds — and then run their whole query against that frozen
//! state with no further coordination. The writer prepares the *entire*
//! next snapshot off to the side and only then swaps the pointer, so:
//!
//! * readers never observe a half-applied update (consistency), and
//! * readers never wait for closure computation (the write lock is held
//!   only for the pointer swap, never across reasoning).
//!
//! This is the textbook read-copy-update shape, built from `std` parts
//! only.

use owlpar_rdf::{Dictionary, OverlayStore};
use std::sync::{Arc, RwLock};

/// One immutable published state of the KB.
#[derive(Debug)]
pub struct KbSnapshot {
    /// Publication sequence number; starts at 0 for the initial
    /// materialization and increases by 1 per published update.
    pub epoch: u64,
    /// The closed triple store as of this epoch: a frozen base shared
    /// across epochs plus a small per-epoch delta, read as their union.
    pub store: OverlayStore,
    /// The dictionary the store is encoded against. Queries against this
    /// snapshot must be parsed read-only against *this* dictionary
    /// (`owlpar_query::parse_query_frozen`), never a newer one.
    pub dict: Arc<Dictionary>,
}

/// The handle readers load snapshots from and the writer publishes to.
#[derive(Debug)]
pub struct EpochHandle {
    current: RwLock<Arc<KbSnapshot>>,
}

impl EpochHandle {
    /// Publish the initial snapshot (epoch 0 by convention).
    pub fn new(initial: KbSnapshot) -> Self {
        EpochHandle {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current snapshot. Cheap (one `Arc` clone); the returned
    /// snapshot stays valid and immutable no matter how many updates
    /// are published afterwards.
    pub fn load(&self) -> Arc<KbSnapshot> {
        match self.current.read() {
            Ok(g) => Arc::clone(&g),
            // A writer can't poison this lock (publish only swaps a
            // pointer), but stay total: the value is still intact.
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Current epoch without keeping the snapshot alive.
    pub fn epoch(&self) -> u64 {
        self.load().epoch
    }

    /// Swap in a fully built snapshot. The write lock is held only for
    /// the pointer assignment.
    pub fn publish(&self, next: KbSnapshot) {
        let next = Arc::new(next);
        match self.current.write() {
            Ok(mut g) => *g = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_rdf::{FrozenStore, Graph, Triple};

    fn snap(epoch: u64, ntriples: u32) -> KbSnapshot {
        let mut g = Graph::new();
        for i in 0..ntriples {
            let s = g.intern_iri(format!("http://x/s{i}"));
            let p = g.intern_iri("http://x/p");
            let o = g.intern_iri(format!("http://x/o{i}"));
            g.store.insert(Triple::new(s, p, o));
        }
        KbSnapshot {
            epoch,
            store: OverlayStore::frozen(Arc::new(FrozenStore::from_store(&g.store))),
            dict: Arc::new(g.dict),
        }
    }

    #[test]
    fn load_returns_published_snapshot() {
        let h = EpochHandle::new(snap(0, 2));
        assert_eq!(h.epoch(), 0);
        assert_eq!(h.load().store.len(), 2);
    }

    #[test]
    fn old_snapshot_survives_publication() {
        let h = EpochHandle::new(snap(0, 1));
        let old = h.load();
        h.publish(snap(1, 5));
        assert_eq!(old.epoch, 0, "reader's snapshot is frozen");
        assert_eq!(old.store.len(), 1);
        assert_eq!(h.epoch(), 1);
        assert_eq!(h.load().store.len(), 5);
    }

    #[test]
    fn concurrent_readers_see_a_consistent_epoch() {
        let h = Arc::new(EpochHandle::new(snap(0, 1)));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let h = Arc::clone(&h);
            readers.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let s = h.load();
                    // Epoch n was always published with n+1 triples.
                    assert_eq!(s.store.len() as u64, s.epoch + 1);
                }
            }));
        }
        for e in 1..20 {
            h.publish(snap(e, e as u32 + 1));
        }
        for r in readers {
            r.join().unwrap();
        }
    }
}
