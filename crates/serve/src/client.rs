//! A minimal blocking client for the framed protocol — used by the CLI,
//! the load generator, and the end-to-end tests.

use crate::error::ServeError;
use crate::wire::{self, Request, Response};
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// Decoded result of a QUERY request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Projected variable names.
    pub columns: Vec<String>,
    /// Rendered rows.
    pub rows: Vec<Vec<String>>,
}

/// Decoded result of an INSERT request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertResult {
    /// Epoch the insert published.
    pub epoch: u64,
    /// Fresh base triples added.
    pub added: u32,
    /// Consequences derived.
    pub derived: u32,
    /// Whether the schema changed (recompile + full re-close).
    pub schema_changed: bool,
}

/// One connection to an `owlpar-serve` server. Requests are pipelined
/// one at a time (send frame, read frame).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ServeError> {
        wire::write_frame(&mut self.writer, &req.encode())?;
        let body = wire::read_frame(&mut self.reader)?;
        match Response::decode(&body)? {
            Response::Error(m) => Err(ServeError::Remote(m)),
            Response::Busy => Err(ServeError::Busy),
            other => Ok(other),
        }
    }

    /// Evaluate a SPARQL-lite query.
    pub fn query(&mut self, sparql: &str) -> Result<QueryResult, ServeError> {
        match self.round_trip(&Request::Query(sparql.to_string()))? {
            Response::Rows {
                epoch,
                columns,
                rows,
            } => Ok(QueryResult {
                epoch,
                columns,
                rows,
            }),
            other => Err(unexpected("rows", &other)),
        }
    }

    /// Insert an N-Triples batch.
    pub fn insert(&mut self, ntriples: &str) -> Result<InsertResult, ServeError> {
        match self.round_trip(&Request::Insert(ntriples.to_string()))? {
            Response::Inserted {
                epoch,
                added,
                derived,
                schema_changed,
            } => Ok(InsertResult {
                epoch,
                added,
                derived,
                schema_changed,
            }),
            other => Err(unexpected("inserted", &other)),
        }
    }

    /// Fetch the stats JSON.
    pub fn stats(&mut self) -> Result<String, ServeError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown ack", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServeError {
    ServeError::Protocol(format!("expected {wanted}, got {got:?}"))
}
