//! The TCP server: accept loop + fixed thread pool + request dispatch.
//!
//! One acceptor thread hands connections to a fixed pool of worker
//! threads over an mpsc channel. Each worker speaks the framed protocol
//! of [`crate::wire`] until the peer hangs up. Queries run entirely
//! against an epoch snapshot ([`ServingKb::snapshot`]) — they never
//! touch the writer lock — so any number of in-flight queries proceed
//! while an insert is recomputing the closure.
//!
//! Shutdown is graceful and typed: a SHUTDOWN request (or
//! [`ServerHandle::request_shutdown`]) raises a flag, wakes the acceptor
//! with a loopback connection, and lets every worker drain its current
//! connection before exiting.

use crate::error::ServeError;
use crate::kb::ServingKb;
use crate::stats::{RunInfo, ServerStats};
use crate::wire::{self, Request, Response};
use owlpar_core::RunReport;
use owlpar_query::exec::render_row;
use owlpar_query::{execute, parse_query_frozen};
use std::io::{BufReader, BufWriter, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (use port 0 for an ephemeral port).
    pub addr: String,
    /// Worker threads answering requests.
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
        }
    }
}

struct Inner {
    kb: ServingKb,
    stats: ServerStats,
    run: RunInfo,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// A running server; dropping the handle does *not* stop it — call
/// [`ServerHandle::request_shutdown`] + [`ServerHandle::join`].
pub struct ServerHandle {
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Current epoch of the served KB.
    pub fn epoch(&self) -> u64 {
        self.inner.kb.epoch()
    }

    /// Raise the shutdown flag and wake the acceptor.
    pub fn request_shutdown(&self) {
        initiate_shutdown(&self.inner);
    }

    /// Wait for the acceptor and all workers to drain and exit.
    pub fn join(mut self) -> Result<(), ServeError> {
        if let Some(a) = self.acceptor.take() {
            a.join()
                .map_err(|_| ServeError::Protocol("acceptor thread panicked".into()))?;
        }
        for w in self.workers.drain(..) {
            w.join()
                .map_err(|_| ServeError::Protocol("worker thread panicked".into()))?;
        }
        Ok(())
    }
}

/// Derive the STATS run section from the materialization report.
pub fn run_info(report: &RunReport) -> RunInfo {
    RunInfo {
        workers: report.k,
        rounds: report.max_rounds(),
        derived: report.derived,
        skipped: report.total_skipped(),
        summary: report.summary(),
    }
}

/// Bind, spawn the acceptor + worker pool, and return immediately.
pub fn serve(kb: ServingKb, run: RunInfo, cfg: &ServeConfig) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let inner = Arc::new(Inner {
        kb,
        stats: ServerStats::default(),
        run,
        shutdown: AtomicBool::new(false),
        addr,
    });

    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
    let rx = Arc::new(Mutex::new(rx));

    let threads = cfg.threads.max(1);
    let mut workers = Vec::with_capacity(threads);
    for i in 0..threads {
        let rx = Arc::clone(&rx);
        let inner = Arc::clone(&inner);
        workers.push(
            std::thread::Builder::new()
                .name(format!("owlpar-serve-{i}"))
                .spawn(move || worker_loop(&rx, &inner))?,
        );
    }

    let acceptor = {
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("owlpar-serve-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if inner.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                }
                // tx drops here; workers drain the queue and exit.
            })?
    };

    Ok(ServerHandle {
        inner,
        acceptor: Some(acceptor),
        workers,
    })
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, inner: &Arc<Inner>) {
    loop {
        let next = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        match next {
            Ok(stream) => {
                // Connection-level failures only affect that peer.
                let _ = handle_connection(stream, inner);
            }
            Err(_) => return, // acceptor gone and queue drained
        }
    }
}

fn handle_connection(stream: TcpStream, inner: &Arc<Inner>) -> Result<(), ServeError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let body = match wire::read_frame(&mut reader) {
            Ok(b) => b,
            Err(ServeError::Io(e)) if e.kind() == ErrorKind::UnexpectedEof => {
                return Ok(()); // peer closed between requests
            }
            Err(e) => {
                // Bad frame: report it if the socket still works, then
                // drop the connection — framing is unrecoverable.
                inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                let _ = wire::write_frame(&mut writer, &Response::Error(e.to_string()).encode());
                return Err(e);
            }
        };
        let response = match Request::decode(&body) {
            Ok(req) => dispatch(req, inner),
            Err(e) => {
                inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                Response::Error(e.to_string())
            }
        };
        let closing = matches!(response, Response::ShuttingDown);
        wire::write_frame(&mut writer, &response.encode())?;
        if closing {
            initiate_shutdown(inner);
            return Ok(());
        }
    }
}

fn dispatch(req: Request, inner: &Arc<Inner>) -> Response {
    match req {
        Request::Query(src) => {
            let started = Instant::now();
            // The whole query runs against one frozen snapshot: parsing
            // against its dictionary (read-only), executing against its
            // store. Updates published meanwhile are invisible — the
            // client learns which epoch answered via the response.
            let snapshot = inner.kb.snapshot();
            match parse_query_frozen(&src, &snapshot.dict) {
                Ok(q) => {
                    let rows = execute(&snapshot.store, &q);
                    let columns: Vec<String> =
                        q.projected_names().iter().map(|s| s.to_string()).collect();
                    let rendered: Vec<Vec<String>> = rows
                        .iter()
                        .map(|r| render_row(&snapshot.dict, r))
                        .collect();
                    inner.stats.queries.fetch_add(1, Ordering::Relaxed);
                    inner.stats.query_latency.record(started.elapsed());
                    Response::Rows {
                        epoch: snapshot.epoch,
                        columns,
                        rows: rendered,
                    }
                }
                Err(e) => {
                    inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                    Response::Error(ServeError::BadQuery(e.to_string()).to_string())
                }
            }
        }
        Request::Insert(nt) => {
            let started = Instant::now();
            match inner.kb.insert_ntriples(&nt) {
                Ok(out) => {
                    inner.stats.inserts.fetch_add(1, Ordering::Relaxed);
                    inner.stats.insert_latency.record(started.elapsed());
                    Response::Inserted {
                        epoch: out.epoch,
                        added: out.added as u32,
                        derived: out.derived as u32,
                        schema_changed: out.schema_changed,
                    }
                }
                Err(e) => {
                    inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                    Response::Error(e.to_string())
                }
            }
        }
        Request::Stats => {
            let snapshot = inner.kb.snapshot();
            Response::Stats(inner.stats.to_json(
                snapshot.epoch,
                snapshot.store.len(),
                snapshot.dict.len(),
                &inner.run,
            ))
        }
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::ShuttingDown,
    }
}

fn initiate_shutdown(inner: &Arc<Inner>) {
    if inner.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    // Wake the acceptor, which is parked in accept(2).
    if let Ok(addrs) = inner.addr.to_socket_addrs() {
        for a in addrs {
            let _ = TcpStream::connect(a);
        }
    }
}
