//! The TCP server: accept loop + fixed thread pool + request dispatch.
//!
//! One acceptor thread hands connections to a fixed pool of worker
//! threads over a **bounded** channel: when `threads` workers are busy
//! and `max_pending` connections already wait, the acceptor answers
//! `BUSY` on the spot and closes — saturation is a typed wire response,
//! never an unbounded queue. Each worker speaks the framed protocol of
//! [`crate::wire`] until the peer hangs up, under per-connection
//! read/write socket deadlines so an idle or glacial peer cannot park a
//! worker thread forever (it is disconnected with a typed error).
//! Queries run entirely against an epoch snapshot
//! ([`ServingKb::snapshot`]) — they never touch the writer lock — so
//! any number of in-flight queries proceed while an insert is
//! recomputing the closure.
//!
//! Shutdown is graceful, typed, and durable: a SHUTDOWN request (or
//! [`ServerHandle::request_shutdown`]) raises a flag, wakes the
//! acceptor, rejects new INSERTs (they are *fully rejected*, never
//! half-applied), lets every worker finish its current request, and —
//! once all workers have drained — performs the final WAL fsync via
//! [`ServingKb::shutdown_flush`].

use crate::error::ServeError;
use crate::kb::ServingKb;
use crate::stats::{RunInfo, ServerStats};
use crate::wire::{self, Request, Response};
use owlpar_core::RunReport;
use owlpar_obs::{Phase, Track, NO_ROUND};
use owlpar_query::exec::render_row;
use owlpar_query::{execute, parse_query_frozen};
use std::io::{BufReader, BufWriter, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (use port 0 for an ephemeral port).
    pub addr: String,
    /// Worker threads answering requests.
    pub threads: usize,
    /// Per-connection read deadline: a peer that does not deliver a
    /// complete frame within it is disconnected with a typed error
    /// instead of parking a worker. `None` = wait forever.
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline for slow consumers.
    pub write_timeout: Option<Duration>,
    /// Connections allowed to wait for a free worker beyond the
    /// `threads` being served; the acceptor answers `BUSY` past it.
    pub max_pending: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            max_pending: 64,
        }
    }
}

struct Inner {
    kb: ServingKb,
    stats: ServerStats,
    run: RunInfo,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// A running server; dropping the handle does *not* stop it — call
/// [`ServerHandle::request_shutdown`] + [`ServerHandle::join`].
pub struct ServerHandle {
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Current epoch of the served KB.
    pub fn epoch(&self) -> u64 {
        self.inner.kb.epoch()
    }

    /// Raise the shutdown flag and wake the acceptor.
    pub fn request_shutdown(&self) {
        initiate_shutdown(&self.inner);
    }

    /// Wait for the acceptor and all workers to drain and exit, then
    /// perform the final durability fsync. By this point every in-flight
    /// INSERT has either been fully applied and logged, or was rejected
    /// whole — shutdown never leaves a half-applied batch behind.
    pub fn join(mut self) -> Result<(), ServeError> {
        if let Some(a) = self.acceptor.take() {
            a.join()
                .map_err(|_| ServeError::Protocol("acceptor thread panicked".into()))?;
        }
        for w in self.workers.drain(..) {
            w.join()
                .map_err(|_| ServeError::Protocol("worker thread panicked".into()))?;
        }
        self.inner.kb.shutdown_flush()
    }
}

/// Derive the STATS run section from the materialization report.
pub fn run_info(report: &RunReport) -> RunInfo {
    RunInfo {
        workers: report.k,
        rounds: report.max_rounds(),
        derived: report.derived,
        skipped: report.total_skipped(),
        summary: report.summary(),
    }
}

/// Bind, spawn the acceptor + worker pool, and return immediately.
pub fn serve(kb: ServingKb, run: RunInfo, cfg: &ServeConfig) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let inner = Arc::new(Inner {
        kb,
        stats: ServerStats::default(),
        run,
        shutdown: AtomicBool::new(false),
        addr,
    });

    // Bounded handoff: `max_pending` waiting connections beyond the
    // `threads` currently served. A full queue is answered with BUSY by
    // the acceptor itself, so saturation is visible to clients instead
    // of accumulating in unbounded memory.
    let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
        sync_channel(cfg.max_pending.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let timeouts = (cfg.read_timeout, cfg.write_timeout);
    let threads = cfg.threads.max(1);
    let mut workers = Vec::with_capacity(threads);
    for i in 0..threads {
        let rx = Arc::clone(&rx);
        let inner = Arc::clone(&inner);
        workers.push(
            std::thread::Builder::new()
                .name(format!("owlpar-serve-{i}"))
                .spawn(move || worker_loop(&rx, &inner, timeouts))?,
        );
    }

    let acceptor = {
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("owlpar-serve-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if inner.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match conn {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            inner.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
                            reject_busy(stream);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                // tx drops here; workers drain the queue and exit.
            })?
    };

    Ok(ServerHandle {
        inner,
        acceptor: Some(acceptor),
        workers,
    })
}

/// Tell a connection the pool is saturated and hang up. Best-effort —
/// the peer may already be gone — and briefly bounded so a slow client
/// cannot stall the acceptor.
fn reject_busy(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut writer = BufWriter::new(stream);
    let _ = wire::write_frame(&mut writer, &Response::Busy.encode());
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    inner: &Arc<Inner>,
    timeouts: (Option<Duration>, Option<Duration>),
) {
    // One trace lane per pool thread, on the ambient recorder (disabled
    // unless the embedder installed one — e.g. `owlpar-serve run
    // --trace-out`). Named after the thread so the timeline shows which
    // pool slot served each request.
    let rec = owlpar_obs::global();
    let mut lane = rec.track(std::thread::current().name().unwrap_or("owlpar-serve"));
    loop {
        let next = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        match next {
            Ok(stream) => {
                // Connection-level failures only affect that peer.
                let _ = handle_connection(stream, inner, timeouts, &mut lane);
            }
            Err(_) => return, // acceptor gone and queue drained
        }
    }
}

/// Whether an IO error is a socket deadline expiring. Timeouts surface
/// as `WouldBlock` on Unix and `TimedOut` on Windows.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn handle_connection(
    stream: TcpStream,
    inner: &Arc<Inner>,
    (read_timeout, write_timeout): (Option<Duration>, Option<Duration>),
    lane: &mut Track,
) -> Result<(), ServeError> {
    stream.set_read_timeout(read_timeout)?;
    stream.set_write_timeout(write_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let body = match wire::read_frame(&mut reader) {
            Ok(b) => b,
            Err(ServeError::Io(e)) if e.kind() == ErrorKind::UnexpectedEof => {
                return Ok(()); // peer closed between requests
            }
            Err(ServeError::Io(e)) if is_timeout(&e) => {
                // Idle peer: say why we are hanging up (best-effort; the
                // write shares the deadline) and free the worker.
                inner.stats.idle_disconnects.fetch_add(1, Ordering::Relaxed);
                let bye = Response::Error(ServeError::IdleTimeout.to_string());
                let _ = wire::write_frame(&mut writer, &bye.encode());
                return Err(ServeError::IdleTimeout);
            }
            Err(e) => {
                // Bad frame: report it if the socket still works, then
                // drop the connection — framing is unrecoverable.
                inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                let _ = wire::write_frame(&mut writer, &Response::Error(e.to_string()).encode());
                return Err(e);
            }
        };
        let response = match Request::decode(&body) {
            Ok(req) => dispatch(req, inner, lane),
            Err(e) => {
                inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                Response::Error(e.to_string())
            }
        };
        // Publish the request's spans before answering, so a STATS
        // scrape arriving next sees them in the phase totals.
        lane.flush();
        let closing = matches!(response, Response::ShuttingDown);
        match wire::write_frame(&mut writer, &response.encode()) {
            Ok(()) => {}
            Err(ServeError::Io(e)) if is_timeout(&e) => {
                // Slow consumer blew the write deadline: drop it.
                inner.stats.idle_disconnects.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::IdleTimeout);
            }
            Err(e) => return Err(e),
        }
        if closing {
            initiate_shutdown(inner);
            return Ok(());
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            // Shutdown raised while serving: finish this response, then
            // close so the pool can drain.
            return Ok(());
        }
    }
}

fn dispatch(req: Request, inner: &Arc<Inner>, lane: &mut Track) -> Response {
    match req {
        Request::Query(src) => {
            let span = lane.begin(Phase::Query, NO_ROUND);
            let started = Instant::now();
            // The whole query runs against one frozen snapshot: parsing
            // against its dictionary (read-only), executing against its
            // store. Updates published meanwhile are invisible — the
            // client learns which epoch answered via the response.
            let snapshot = inner.kb.snapshot();
            let response = match parse_query_frozen(&src, &snapshot.dict) {
                Ok(q) => {
                    let rows = execute(&snapshot.store, &q);
                    let columns: Vec<String> =
                        q.projected_names().iter().map(|s| s.to_string()).collect();
                    let rendered: Vec<Vec<String>> = rows
                        .iter()
                        .map(|r| render_row(&snapshot.dict, r))
                        .collect();
                    inner.stats.queries.fetch_add(1, Ordering::Relaxed);
                    inner.stats.query_latency.record(started.elapsed());
                    Response::Rows {
                        epoch: snapshot.epoch,
                        columns,
                        rows: rendered,
                    }
                }
                Err(e) => {
                    inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                    Response::Error(ServeError::BadQuery(e.to_string()).to_string())
                }
            };
            lane.end(span);
            response
        }
        Request::Insert(nt) => {
            // Once shutdown has been requested, new INSERTs are rejected
            // whole — never started and half-applied. (An insert already
            // inside `insert_ntriples` completes and is logged normally.)
            if inner.shutdown.load(Ordering::SeqCst) {
                inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                return Response::Error(
                    ServeError::Protocol("server is shutting down; insert rejected".into())
                        .to_string(),
                );
            }
            let span = lane.begin(Phase::Insert, NO_ROUND);
            let started = Instant::now();
            let response = match inner.kb.insert_ntriples(&nt) {
                Ok(out) => {
                    inner.stats.inserts.fetch_add(1, Ordering::Relaxed);
                    inner.stats.insert_latency.record(started.elapsed());
                    Response::Inserted {
                        epoch: out.epoch,
                        added: out.added as u32,
                        derived: out.derived as u32,
                        schema_changed: out.schema_changed,
                    }
                }
                Err(e) => {
                    inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                    Response::Error(e.to_string())
                }
            };
            lane.end(span);
            response
        }
        Request::Stats => {
            let snapshot = inner.kb.snapshot();
            let durability = inner.kb.durability_status();
            let prom = inner.stats.prometheus(&owlpar_obs::global());
            Response::Stats(inner.stats.to_json(
                snapshot.epoch,
                snapshot.store.len(),
                snapshot.dict.len(),
                &inner.run,
                durability.as_deref(),
                &prom,
            ))
        }
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::ShuttingDown,
    }
}

fn initiate_shutdown(inner: &Arc<Inner>) {
    if inner.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    // Wake the acceptor, which is parked in accept(2).
    if let Ok(addrs) = inner.addr.to_socket_addrs() {
        for a in addrs {
            let _ = TcpStream::connect(a);
        }
    }
}
