//! A UOBM-style generator: LUBM plus dense cross-university social links.
//!
//! UOBM ("Unified Ontology Benchmark") was designed to fix LUBM's
//! unrealistically clean per-university clustering: its individuals are
//! socially linked *across* universities. That is exactly the property the
//! paper leans on to explain UOBM's sub-linear speedups — high edge-cut,
//! high input replication, more duplicated work. We reproduce it by
//! sprinkling symmetric `isFriendOf` and transitive+symmetric
//! `hasSameHomeTownWith` edges between random people of different
//! universities.

use crate::lubm::{generate_lubm_into, LubmConfig};
use crate::ontology::{univ, univ_bench_tbox, uobm_extension_tbox};
use owlpar_rdf::vocab::RDF_TYPE;
use owlpar_rdf::{Graph, NodeId, Term, TriplePattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct UobmConfig {
    /// The LUBM core universe.
    pub lubm: LubmConfig,
    /// Cross-university friendship edges per person (≥ this, Poisson-ish).
    pub friends_per_person: f64,
    /// Fraction of people that share a home town with someone at another
    /// university (feeds the transitive `hasSameHomeTownWith` rule).
    pub hometown_fraction: f64,
}

impl Default for UobmConfig {
    fn default() -> Self {
        UobmConfig {
            lubm: LubmConfig::default(),
            friends_per_person: 2.0,
            hometown_fraction: 0.1,
        }
    }
}

impl UobmConfig {
    /// UOBM-N at full scale.
    pub fn paper(universities: usize) -> Self {
        UobmConfig {
            lubm: LubmConfig::paper(universities),
            ..Self::default()
        }
    }

    /// Test-size universe.
    pub fn mini(universities: usize) -> Self {
        UobmConfig {
            lubm: LubmConfig::mini(universities),
            ..Self::default()
        }
    }
}

/// Generate a UOBM-like dataset.
pub fn generate_uobm(cfg: &UobmConfig) -> Graph {
    let mut g = Graph::new();
    univ_bench_tbox(&mut g);
    uobm_extension_tbox(&mut g);
    generate_lubm_into(&mut g, &cfg.lubm);

    let mut rng = StdRng::seed_from_u64(cfg.lubm.seed ^ 0x0b_0b);
    let rdf_type = g.intern(Term::iri(RDF_TYPE));

    // Collect people grouped by university (from the IRI authority).
    let person_classes = ["UndergraduateStudent", "GraduateStudent", "FullProfessor",
        "AssociateProfessor", "AssistantProfessor", "Lecturer"];
    let mut people: Vec<(usize, NodeId)> = Vec::new();
    for cls in person_classes {
        let Some(cid) = g.dict.id(&Term::iri(univ(cls))) else { continue };
        for t in g.matches(TriplePattern::new(None, Some(rdf_type), Some(cid))) {
            let uni = g
                .term(t.s)
                .and_then(|term| term.as_iri().map(university_of))
                .unwrap_or(0);
            people.push((uni, t.s));
        }
    }
    if people.len() < 2 {
        return g;
    }

    let is_friend = g.intern_iri(univ("isFriendOf"));
    let hometown = g.intern_iri(univ("hasSameHomeTownWith"));

    // friendships: mostly cross-university
    let n_friend_edges = (people.len() as f64 * cfg.friends_per_person) as usize;
    for _ in 0..n_friend_edges {
        let (ua, a) = people[rng.gen_range(0..people.len())];
        // try to find a partner at another university
        let mut partner = people[rng.gen_range(0..people.len())];
        for _ in 0..4 {
            if partner.0 != ua {
                break;
            }
            partner = people[rng.gen_range(0..people.len())];
        }
        let (_, b) = partner;
        if a != b {
            g.insert(a, is_friend, b);
        }
    }

    // home towns: small cross-university cliques via a shared chain
    let n_hometown = (people.len() as f64 * cfg.hometown_fraction) as usize;
    let mut prev: Option<NodeId> = None;
    for i in 0..n_hometown {
        let (_, p) = people[rng.gen_range(0..people.len())];
        if let Some(q) = prev {
            if p != q {
                g.insert(q, hometown, p);
            }
        }
        // start a new chain every few people so cliques stay bounded
        prev = if i % 6 == 5 { None } else { Some(p) };
    }
    g
}

/// Parse the university index out of an entity IRI
/// (`http://www.univ{u}.edu/...`); 0 if the shape is unexpected.
fn university_of(iri: &str) -> usize {
    iri.strip_prefix("http://www.univ")
        .and_then(|rest| rest.split('.').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn university_of_parses() {
        assert_eq!(university_of("http://www.univ3.edu/dept1/x"), 3);
        assert_eq!(university_of("http://www.univ12.edu/university"), 12);
        assert_eq!(university_of("http://other.org/x"), 0);
    }

    #[test]
    fn uobm_is_superset_shape_of_lubm() {
        let lubm = crate::generate_lubm(&LubmConfig::mini(2));
        let uobm = generate_uobm(&UobmConfig::mini(2));
        assert!(uobm.len() > lubm.len(), "{} vs {}", uobm.len(), lubm.len());
    }

    #[test]
    fn has_cross_university_friendships() {
        let g = generate_uobm(&UobmConfig::mini(2));
        let f = g.dict.id(&Term::iri(univ("isFriendOf"))).unwrap();
        let friends = g.matches(TriplePattern::new(None, Some(f), None));
        assert!(!friends.is_empty());
        let cross = friends
            .iter()
            .filter(|t| {
                let ua = g.term(t.s).and_then(|x| x.as_iri().map(university_of));
                let ub = g.term(t.o).and_then(|x| x.as_iri().map(university_of));
                ua != ub
            })
            .count();
        assert!(
            cross * 2 > friends.len(),
            "friendships should be mostly cross-university: {cross}/{}",
            friends.len()
        );
    }

    #[test]
    fn deterministic() {
        let a = generate_uobm(&UobmConfig::mini(2));
        let b = generate_uobm(&UobmConfig::mini(2));
        assert_eq!(a.term_fingerprint(), b.term_fingerprint());
    }

    #[test]
    fn hometown_chains_exist() {
        let g = generate_uobm(&UobmConfig::mini(2));
        let h = g.dict.id(&Term::iri(univ("hasSameHomeTownWith"))).unwrap();
        assert!(!g.matches(TriplePattern::new(None, Some(h), None)).is_empty());
    }
}
