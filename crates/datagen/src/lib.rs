//! Synthetic benchmark data generators.
//!
//! The paper evaluates on LUBM-10, UOBM-4 and a proprietary oilfield
//! dataset (MDC). We rebuild all three as seeded generators:
//!
//! * [`lubm`] — the Lehigh University Benchmark universe: universities,
//!   departments, faculty, students, courses, publications, following the
//!   UBA generator's distributions. Entities cluster per university, so
//!   graph/domain partitioning finds low-cut partitions (the super-linear
//!   regime of Fig. 1).
//! * [`uobm`] — a UOBM-style extension: the LUBM universe plus dense
//!   *cross-university* social links (`isFriendOf`, symmetric;
//!   `hasSameHomeTownWith`, transitive+symmetric). The high inter-cluster
//!   connectivity drives up edge-cut and input replication, reproducing
//!   the sub-linear UOBM regime of Fig. 1.
//! * [`mdc`] — an MDC-like synthetic oilfield: fields, wells, equipment,
//!   sensors with a deep transitive `partOf` hierarchy and per-field
//!   clustering (the paper's other super-linear dataset).
//!
//! All generators are deterministic given their seed, and emit schema
//! (TBox) triples alongside instance data, exactly like loading an OWL
//! file plus its ontology into a real KB.

#![forbid(unsafe_code)]

pub mod lubm;
pub mod mdc;
pub mod ontology;
pub mod uobm;

pub use lubm::{generate_lubm, LubmConfig};
pub use mdc::{generate_mdc, MdcConfig};
pub use uobm::{generate_uobm, UobmConfig};
