//! TBox builders for the three benchmark universes.
//!
//! The univ-bench ontology here is a faithful OWL-Horst-expressible subset
//! of LUBM's `univ-bench.owl`: the class tree, the property hierarchy, the
//! domains/ranges, and the property characteristics the rule engine can
//! act on (`subOrganizationOf` transitive, `degreeFrom`/`hasAlumnus`
//! inverse, etc.).

use owlpar_rdf::vocab::*;
use owlpar_rdf::Graph;

/// Namespace of the university ontologies.
pub const UNIV_NS: &str = "http://swat.lehigh.edu/onto/univ-bench.owl#";
/// Namespace of the oilfield ontology.
pub const MDC_NS: &str = "http://cisoft.usc.edu/onto/mdc.owl#";

/// IRI of a univ-bench class or property.
pub fn univ(name: &str) -> String {
    format!("{UNIV_NS}{name}")
}

/// IRI of an mdc class or property.
pub fn mdc(name: &str) -> String {
    format!("{MDC_NS}{name}")
}

/// Insert the univ-bench TBox into `g`. Returns the number of schema
/// triples inserted.
pub fn univ_bench_tbox(g: &mut Graph) -> usize {
    let before = g.len();
    let class = |g: &mut Graph, c: &str| {
        g.insert_iris(univ(c), RDF_TYPE, OWL_CLASS);
    };
    let sub = |g: &mut Graph, c: &str, d: &str| {
        g.insert_iris(univ(c), RDFS_SUBCLASSOF, univ(d));
    };
    let subp = |g: &mut Graph, p: &str, q: &str| {
        g.insert_iris(univ(p), RDFS_SUBPROPERTYOF, univ(q));
    };
    let dom = |g: &mut Graph, p: &str, c: &str| {
        g.insert_iris(univ(p), RDFS_DOMAIN, univ(c));
    };
    let rng = |g: &mut Graph, p: &str, c: &str| {
        g.insert_iris(univ(p), RDFS_RANGE, univ(c));
    };

    for c in [
        "University",
        "Organization",
        "Department",
        "ResearchGroup",
        "Person",
        "Employee",
        "Faculty",
        "Professor",
        "FullProfessor",
        "AssociateProfessor",
        "AssistantProfessor",
        "Lecturer",
        "Chair",
        "Student",
        "UndergraduateStudent",
        "GraduateStudent",
        "TeachingAssistant",
        "ResearchAssistant",
        "Course",
        "GraduateCourse",
        "Publication",
    ] {
        class(g, c);
    }
    sub(g, "University", "Organization");
    sub(g, "Department", "Organization");
    sub(g, "ResearchGroup", "Organization");
    sub(g, "Employee", "Person");
    sub(g, "Faculty", "Employee");
    sub(g, "Professor", "Faculty");
    sub(g, "FullProfessor", "Professor");
    sub(g, "AssociateProfessor", "Professor");
    sub(g, "AssistantProfessor", "Professor");
    sub(g, "Lecturer", "Faculty");
    sub(g, "Chair", "Professor");
    sub(g, "Student", "Person");
    sub(g, "UndergraduateStudent", "Student");
    sub(g, "GraduateStudent", "Student");
    sub(g, "TeachingAssistant", "Person");
    sub(g, "ResearchAssistant", "Person");
    sub(g, "GraduateCourse", "Course");

    // property hierarchy
    subp(g, "headOf", "worksFor");
    subp(g, "worksFor", "memberOf");
    subp(g, "undergraduateDegreeFrom", "degreeFrom");
    subp(g, "mastersDegreeFrom", "degreeFrom");
    subp(g, "doctoralDegreeFrom", "degreeFrom");

    // characteristics
    g.insert_iris(univ("subOrganizationOf"), RDF_TYPE, OWL_TRANSITIVE);
    g.insert_iris(univ("degreeFrom"), OWL_INVERSE_OF, univ("hasAlumnus"));

    // domains/ranges (the ones the benchmark queries rely on)
    dom(g, "memberOf", "Person");
    rng(g, "memberOf", "Organization");
    dom(g, "teacherOf", "Faculty");
    rng(g, "teacherOf", "Course");
    dom(g, "takesCourse", "Student");
    rng(g, "takesCourse", "Course");
    dom(g, "advisor", "Person");
    rng(g, "advisor", "Professor");
    dom(g, "publicationAuthor", "Publication");
    rng(g, "publicationAuthor", "Person");
    rng(g, "degreeFrom", "University");
    rng(g, "subOrganizationOf", "Organization");

    g.len() - before
}

/// Additional UOBM-style social-property axioms (on top of univ-bench).
pub fn uobm_extension_tbox(g: &mut Graph) -> usize {
    let before = g.len();
    g.insert_iris(univ("isFriendOf"), RDF_TYPE, OWL_SYMMETRIC);
    g.insert_iris(univ("hasSameHomeTownWith"), RDF_TYPE, OWL_SYMMETRIC);
    g.insert_iris(univ("hasSameHomeTownWith"), RDF_TYPE, OWL_TRANSITIVE);
    g.insert_iris(univ("isFriendOf"), RDFS_DOMAIN, univ("Person"));
    g.insert_iris(univ("isFriendOf"), RDFS_RANGE, univ("Person"));
    g.len() - before
}

/// Insert the MDC-like oilfield TBox into `g`.
pub fn mdc_tbox(g: &mut Graph) -> usize {
    let before = g.len();
    for c in [
        "Asset",
        "Field",
        "Well",
        "Equipment",
        "Pump",
        "Valve",
        "Sensor",
        "PressureSensor",
        "TemperatureSensor",
        "Measurement",
    ] {
        g.insert_iris(mdc(c), RDF_TYPE, OWL_CLASS);
    }
    for (c, d) in [
        ("Field", "Asset"),
        ("Well", "Asset"),
        ("Equipment", "Asset"),
        ("Pump", "Equipment"),
        ("Valve", "Equipment"),
        ("Sensor", "Asset"),
        ("PressureSensor", "Sensor"),
        ("TemperatureSensor", "Sensor"),
    ] {
        g.insert_iris(mdc(c), RDFS_SUBCLASSOF, mdc(d));
    }
    g.insert_iris(mdc("partOf"), RDF_TYPE, OWL_TRANSITIVE);
    g.insert_iris(mdc("connectedTo"), RDF_TYPE, OWL_SYMMETRIC);
    g.insert_iris(mdc("feeds"), RDFS_SUBPROPERTYOF, mdc("connectedTo"));
    g.insert_iris(mdc("monitors"), OWL_INVERSE_OF, mdc("monitoredBy"));
    g.insert_iris(mdc("partOf"), RDFS_RANGE, mdc("Asset"));
    g.insert_iris(mdc("measurementOf"), RDFS_DOMAIN, mdc("Measurement"));
    g.len() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlpar_rdf::Term;

    #[test]
    fn univ_bench_tbox_inserts_schema() {
        let mut g = Graph::new();
        let n = univ_bench_tbox(&mut g);
        assert!(n > 40);
        assert!(g.contains_terms(
            &Term::iri(univ("GraduateStudent")),
            &Term::iri(RDFS_SUBCLASSOF),
            &Term::iri(univ("Student"))
        ));
        assert!(g.contains_terms(
            &Term::iri(univ("subOrganizationOf")),
            &Term::iri(RDF_TYPE),
            &Term::iri(OWL_TRANSITIVE)
        ));
    }

    #[test]
    fn tbox_is_idempotent() {
        let mut g = Graph::new();
        univ_bench_tbox(&mut g);
        let len = g.len();
        let added = univ_bench_tbox(&mut g);
        assert_eq!(added, 0);
        assert_eq!(g.len(), len);
    }

    #[test]
    fn uobm_extension_adds_social_axioms() {
        let mut g = Graph::new();
        univ_bench_tbox(&mut g);
        let n = uobm_extension_tbox(&mut g);
        assert_eq!(n, 5);
        assert!(g.contains_terms(
            &Term::iri(univ("hasSameHomeTownWith")),
            &Term::iri(RDF_TYPE),
            &Term::iri(OWL_TRANSITIVE)
        ));
    }

    #[test]
    fn mdc_tbox_has_transitive_part_of() {
        let mut g = Graph::new();
        mdc_tbox(&mut g);
        assert!(g.contains_terms(
            &Term::iri(mdc("partOf")),
            &Term::iri(RDF_TYPE),
            &Term::iri(OWL_TRANSITIVE)
        ));
        assert!(g.contains_terms(
            &Term::iri(mdc("PressureSensor")),
            &Term::iri(RDFS_SUBCLASSOF),
            &Term::iri(mdc("Sensor"))
        ));
    }
}
