//! An MDC-like synthetic oilfield dataset.
//!
//! The paper's MDC dataset (Chevron, via the CiSoft smart-oilfield
//! project) is proprietary; per the reproduction rules we substitute a
//! synthetic equivalent preserving the two properties the paper relies
//! on: (1) entities cluster per oil *field* the way LUBM entities cluster
//! per university — so graph partitioning finds clean cuts and speedups
//! are super-linear — and (2) a deep transitive `partOf` containment
//! hierarchy (sensor → equipment → well → field) exercises the
//! transitive-closure rules much harder than LUBM does.

use crate::ontology::{mdc, mdc_tbox};
use owlpar_rdf::vocab::RDF_TYPE;
use owlpar_rdf::{Graph, NodeId, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct MdcConfig {
    /// Number of oil fields (the clustering unit).
    pub fields: usize,
    /// Wells per field.
    pub wells_per_field: usize,
    /// Equipment chain length under each well (the transitive depth).
    pub equipment_chain: usize,
    /// Sensors per equipment item.
    pub sensors_per_equipment: usize,
    /// Measurements per sensor.
    pub measurements_per_sensor: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MdcConfig {
    fn default() -> Self {
        MdcConfig {
            fields: 4,
            wells_per_field: 12,
            equipment_chain: 6,
            sensors_per_equipment: 2,
            measurements_per_sensor: 3,
            seed: 42,
        }
    }
}

impl MdcConfig {
    /// A small universe for unit tests.
    pub fn mini() -> Self {
        MdcConfig {
            fields: 2,
            wells_per_field: 3,
            equipment_chain: 3,
            sensors_per_equipment: 1,
            measurements_per_sensor: 1,
            ..Self::default()
        }
    }

    /// A paper-scale universe (hundreds of thousands of triples).
    pub fn paper() -> Self {
        MdcConfig {
            fields: 8,
            wells_per_field: 40,
            equipment_chain: 8,
            sensors_per_equipment: 3,
            measurements_per_sensor: 5,
            ..Self::default()
        }
    }
}

/// Generate the MDC-like dataset.
pub fn generate_mdc(cfg: &MdcConfig) -> Graph {
    let mut g = Graph::new();
    mdc_tbox(&mut g);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let rdf_type = g.intern_iri(RDF_TYPE);
    let part_of = g.intern_iri(mdc("partOf"));
    let feeds = g.intern_iri(mdc("feeds"));
    let monitors = g.intern_iri(mdc("monitors"));
    let measurement_of = g.intern_iri(mdc("measurementOf"));
    let value = g.intern_iri(mdc("hasValue"));

    let typed = |g: &mut Graph, iri: String, class: &str| -> NodeId {
        let id = g.intern_iri(iri);
        let cls = g.intern_iri(mdc(class));
        g.insert(id, rdf_type, cls);
        id
    };

    for f in 0..cfg.fields {
        let base = format!("http://www.field{f}.mdc.org");
        let field = typed(&mut g, format!("{base}/field"), "Field");
        let mut prev_well: Option<NodeId> = None;
        for w in 0..cfg.wells_per_field {
            let well = typed(&mut g, format!("{base}/well{w}"), "Well");
            g.insert(well, part_of, field);
            // pipeline topology: wells feed their neighbor (symmetric via
            // feeds ⊑ connectedTo + connectedTo symmetric)
            if let Some(pw) = prev_well {
                g.insert(pw, feeds, well);
            }
            prev_well = Some(well);

            // equipment chain: eq0 partOf well, eq1 partOf eq0, ...
            let mut parent = well;
            for e in 0..cfg.equipment_chain {
                let class = if e % 2 == 0 { "Pump" } else { "Valve" };
                let eq = typed(&mut g, format!("{base}/well{w}/eq{e}"), class);
                g.insert(eq, part_of, parent);
                parent = eq;

                for s in 0..cfg.sensors_per_equipment {
                    let sclass = if rng.gen_bool(0.5) {
                        "PressureSensor"
                    } else {
                        "TemperatureSensor"
                    };
                    let sensor =
                        typed(&mut g, format!("{base}/well{w}/eq{e}/sensor{s}"), sclass);
                    g.insert(sensor, part_of, eq);
                    g.insert(sensor, monitors, eq);
                    for m in 0..cfg.measurements_per_sensor {
                        let meas = typed(
                            &mut g,
                            format!("{base}/well{w}/eq{e}/sensor{s}/m{m}"),
                            "Measurement",
                        );
                        g.insert(meas, measurement_of, sensor);
                        let v = g.intern(Term::literal(format!(
                            "{:.2}",
                            rng.gen_range(0.0..1000.0)
                        )));
                        g.insert(meas, value, v);
                    }
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_rdf::TriplePattern;

    #[test]
    fn deterministic() {
        let a = generate_mdc(&MdcConfig::mini());
        let b = generate_mdc(&MdcConfig::mini());
        assert_eq!(a.term_fingerprint(), b.term_fingerprint());
    }

    #[test]
    fn contains_deep_part_of_chains() {
        let cfg = MdcConfig::mini();
        let g = generate_mdc(&cfg);
        let part_of = g.dict.id(&Term::iri(mdc("partOf"))).unwrap();
        let chains = g.matches(TriplePattern::new(None, Some(part_of), None));
        // wells + equipment + sensors all partOf something
        let expected = cfg.fields
            * cfg.wells_per_field
            * (1 + cfg.equipment_chain * (1 + cfg.sensors_per_equipment));
        assert_eq!(chains.len(), expected);
    }

    #[test]
    fn fields_are_iri_clusters() {
        let g = generate_mdc(&MdcConfig::mini());
        let field0 = g.dict.id(&Term::iri("http://www.field0.mdc.org/field"));
        assert!(field0.is_some());
    }

    #[test]
    fn config_scales_size() {
        let small = generate_mdc(&MdcConfig::mini());
        let big = generate_mdc(&MdcConfig::default());
        assert!(big.len() > small.len() * 4);
    }

    #[test]
    fn wells_form_feed_chains() {
        let g = generate_mdc(&MdcConfig::mini());
        let feeds = g.dict.id(&Term::iri(mdc("feeds"))).unwrap();
        let cfg = MdcConfig::mini();
        let n = g.matches(TriplePattern::new(None, Some(feeds), None)).len();
        assert_eq!(n, cfg.fields * (cfg.wells_per_field - 1));
    }
}
