//! The LUBM (Lehigh University Benchmark) data generator.
//!
//! Reimplements the UBA generator's structure: per university a set of
//! departments; per department full/associate/assistant professors,
//! lecturers, under/graduate students, courses and publications, wired up
//! with the univ-bench properties. Counts follow the UBA ranges scaled by
//! [`LubmConfig::scale`] so test- and laptop-sized universes keep the same
//! shape. `LUBM-N` = `LubmConfig::paper(N)`.
//!
//! Entity IRIs put the university in the authority
//! (`http://www.univ{u}.edu/dept{d}/...`), which is both what the real
//! generator does and what the domain-specific partitioner keys on.

use crate::ontology::{univ, univ_bench_tbox};
use owlpar_rdf::vocab::RDF_TYPE;
use owlpar_rdf::{Graph, NodeId, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct LubmConfig {
    /// Number of universities (the N in LUBM-N).
    pub universities: usize,
    /// RNG seed; same seed ⇒ identical dataset.
    pub seed: u64,
    /// Multiplier on all per-department entity counts (1.0 = UBA-like).
    pub scale: f64,
}

impl Default for LubmConfig {
    fn default() -> Self {
        LubmConfig {
            universities: 1,
            seed: 42,
            scale: 1.0,
        }
    }
}

impl LubmConfig {
    /// Full-size LUBM-N (≈100k triples per university).
    pub fn paper(universities: usize) -> Self {
        LubmConfig {
            universities,
            ..Self::default()
        }
    }

    /// A reduced universe (~1/20 of a full university) for unit tests and
    /// laptop-scale experiment defaults.
    pub fn mini(universities: usize) -> Self {
        LubmConfig {
            universities,
            scale: 0.05,
            ..Self::default()
        }
    }
}

struct Gen<'a> {
    g: &'a mut Graph,
    rng: StdRng,
    rdf_type: NodeId,
    props: Props,
}

struct Props {
    sub_org: NodeId,
    works_for: NodeId,
    head_of: NodeId,
    member_of: NodeId,
    teacher_of: NodeId,
    takes_course: NodeId,
    advisor: NodeId,
    pub_author: NodeId,
    ug_degree: NodeId,
    ms_degree: NodeId,
    phd_degree: NodeId,
    email: NodeId,
    name: NodeId,
}

impl<'a> Gen<'a> {
    fn new(g: &'a mut Graph, seed: u64) -> Self {
        let rdf_type = g.intern_iri(RDF_TYPE);
        let props = Props {
            sub_org: g.intern_iri(univ("subOrganizationOf")),
            works_for: g.intern_iri(univ("worksFor")),
            head_of: g.intern_iri(univ("headOf")),
            member_of: g.intern_iri(univ("memberOf")),
            teacher_of: g.intern_iri(univ("teacherOf")),
            takes_course: g.intern_iri(univ("takesCourse")),
            advisor: g.intern_iri(univ("advisor")),
            pub_author: g.intern_iri(univ("publicationAuthor")),
            ug_degree: g.intern_iri(univ("undergraduateDegreeFrom")),
            ms_degree: g.intern_iri(univ("mastersDegreeFrom")),
            phd_degree: g.intern_iri(univ("doctoralDegreeFrom")),
            email: g.intern_iri(univ("emailAddress")),
            name: g.intern_iri(univ("name")),
        };
        Gen {
            g,
            rng: StdRng::seed_from_u64(seed),
            rdf_type,
            props,
        }
    }

    fn range(&mut self, lo: usize, hi: usize, scale: f64) -> usize {
        let n = self.rng.gen_range(lo..=hi);
        ((n as f64 * scale).round() as usize).max(1)
    }

    fn typed(&mut self, iri: String, class: &str) -> NodeId {
        let id = self.g.intern_iri(iri);
        let cls = self.g.intern_iri(univ(class));
        self.g.insert(id, self.rdf_type, cls);
        id
    }
}

/// University IRI for index `u`.
pub fn university_iri(u: usize) -> String {
    format!("http://www.univ{u}.edu/university")
}

/// Department IRI prefix for `(u, d)`.
pub fn department_iri(u: usize, d: usize) -> String {
    format!("http://www.univ{u}.edu/dept{d}")
}

/// Generate a LUBM dataset (schema + instance triples) into a fresh graph.
pub fn generate_lubm(cfg: &LubmConfig) -> Graph {
    let mut g = Graph::new();
    univ_bench_tbox(&mut g);
    generate_lubm_into(&mut g, cfg);
    g
}

/// Generate LUBM instance data into an existing graph (the TBox must have
/// been inserted by the caller). Shared by the UOBM generator.
pub fn generate_lubm_into(g: &mut Graph, cfg: &LubmConfig) {
    let mut gen = Gen::new(g, cfg.seed);
    let s = cfg.scale;

    // Universities exist up front so degreeFrom can point anywhere.
    let universities: Vec<NodeId> = (0..cfg.universities)
        .map(|u| gen.typed(university_iri(u), "University"))
        .collect();

    for u in 0..cfg.universities {
        let n_dept = gen.range(15, 25, s);
        for d in 0..n_dept {
            generate_department(&mut gen, &universities, u, d, s, cfg.universities);
        }
    }
}

fn generate_department(
    gen: &mut Gen<'_>,
    universities: &[NodeId],
    u: usize,
    d: usize,
    s: f64,
    n_univ: usize,
) {
    let base = department_iri(u, d);
    let dept = gen.typed(base.clone(), "Department");
    gen.g.insert(dept, gen.props.sub_org, universities[u]);

    // research groups: dept -> group chains extend the subOrganizationOf
    // transitive workload
    let n_groups = gen.range(10, 20, s);
    let mut groups = Vec::with_capacity(n_groups);
    for i in 0..n_groups {
        let grp = gen.typed(format!("{base}/group{i}"), "ResearchGroup");
        gen.g.insert(grp, gen.props.sub_org, dept);
        groups.push(grp);
    }

    let n_full = gen.range(7, 10, s);
    let n_assoc = gen.range(10, 14, s);
    let n_assist = gen.range(8, 11, s);
    let n_lect = gen.range(5, 7, s);

    let mut faculty: Vec<NodeId> = Vec::new();
    let mk_faculty = |gen: &mut Gen<'_>, class: &str, tag: &str, count: usize| {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let f = gen.typed(format!("{base}/{tag}{i}"), class);
            gen.g.insert(f, gen.props.works_for, dept);
            // a degree from a random university (cross-university edge)
            let from = universities[gen.rng.gen_range(0..universities.len().max(1))];
            gen.g.insert(f, gen.props.phd_degree, from);
            let email = gen
                .g
                .intern(Term::literal(format!("{tag}{i}@univ{u}.edu")));
            gen.g.insert(f, gen.props.email, email);
            out.push(f);
        }
        out
    };
    let fulls = mk_faculty(gen, "FullProfessor", "fullprof", n_full);
    faculty.extend(&fulls);
    faculty.extend(mk_faculty(gen, "AssociateProfessor", "assocprof", n_assoc));
    faculty.extend(mk_faculty(gen, "AssistantProfessor", "assistprof", n_assist));
    faculty.extend(mk_faculty(gen, "Lecturer", "lecturer", n_lect));
    let _ = n_univ;

    // the chair heads the department (headOf ⊑ worksFor ⊑ memberOf)
    gen.g.insert(fulls[0], gen.props.head_of, dept);

    // courses: each faculty teaches 1-2, plus graduate courses
    let mut courses = Vec::new();
    for (i, &f) in faculty.iter().enumerate() {
        let n_c = gen.rng.gen_range(1..=2);
        for c in 0..n_c {
            let class = if gen.rng.gen_bool(0.3) {
                "GraduateCourse"
            } else {
                "Course"
            };
            let crs = gen.typed(format!("{base}/course{i}_{c}"), class);
            gen.g.insert(f, gen.props.teacher_of, crs);
            courses.push(crs);
        }
    }

    // students
    let n_ugrad = gen.range(80, 120, s);
    let n_grad = gen.range(25, 40, s);
    let mut grads = Vec::with_capacity(n_grad);
    for i in 0..n_ugrad {
        let st = gen.typed(format!("{base}/ugstudent{i}"), "UndergraduateStudent");
        gen.g.insert(st, gen.props.member_of, dept);
        for _ in 0..gen.rng.gen_range(2..=4) {
            let crs = courses[gen.rng.gen_range(0..courses.len())];
            gen.g.insert(st, gen.props.takes_course, crs);
        }
        if gen.rng.gen_bool(0.2) {
            let adv = faculty[gen.rng.gen_range(0..faculty.len())];
            gen.g.insert(st, gen.props.advisor, adv);
        }
    }
    for i in 0..n_grad {
        let st = gen.typed(format!("{base}/gstudent{i}"), "GraduateStudent");
        gen.g.insert(st, gen.props.member_of, dept);
        for _ in 0..gen.rng.gen_range(1..=3) {
            let crs = courses[gen.rng.gen_range(0..courses.len())];
            gen.g.insert(st, gen.props.takes_course, crs);
        }
        let adv = faculty[gen.rng.gen_range(0..faculty.len())];
        gen.g.insert(st, gen.props.advisor, adv);
        // undergraduate degree from a random (usually other) university
        let from = universities[gen.rng.gen_range(0..universities.len())];
        gen.g.insert(st, gen.props.ug_degree, from);
        if gen.rng.gen_bool(0.25) {
            let from = universities[gen.rng.gen_range(0..universities.len())];
            gen.g.insert(st, gen.props.ms_degree, from);
        }
        grads.push(st);
    }

    // publications: authored by faculty and grad students
    for (i, &f) in faculty.iter().enumerate() {
        let n_pub = gen.range(5, 15, s.max(0.2));
        for p in 0..n_pub {
            let pb = gen.typed(format!("{base}/pub{i}_{p}"), "Publication");
            gen.g.insert(pb, gen.props.pub_author, f);
            if !grads.is_empty() && gen.rng.gen_bool(0.5) {
                let co = grads[gen.rng.gen_range(0..grads.len())];
                gen.g.insert(pb, gen.props.pub_author, co);
            }
        }
    }

    // a name literal per department keeps literals in the node mix
    let name = gen.g.intern(Term::literal(format!("Department {d} of University {u}")));
    gen.g.insert(dept, gen.props.name, name);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_rdf::TriplePattern;

    fn mini() -> Graph {
        generate_lubm(&LubmConfig::mini(2))
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate_lubm(&LubmConfig::mini(1));
        let b = generate_lubm(&LubmConfig::mini(1));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.term_fingerprint(), b.term_fingerprint());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_lubm(&LubmConfig::mini(1));
        let b = generate_lubm(&LubmConfig {
            seed: 7,
            ..LubmConfig::mini(1)
        });
        assert_ne!(a.term_fingerprint(), b.term_fingerprint());
    }

    #[test]
    fn scale_controls_size() {
        let small = generate_lubm(&LubmConfig::mini(1));
        let big = generate_lubm(&LubmConfig {
            scale: 0.15,
            ..LubmConfig::mini(1)
        });
        assert!(big.len() > small.len() * 2, "{} vs {}", big.len(), small.len());
    }

    #[test]
    fn more_universities_more_triples() {
        let one = generate_lubm(&LubmConfig::mini(1));
        let three = generate_lubm(&LubmConfig::mini(3));
        assert!(three.len() > one.len() * 2);
    }

    #[test]
    fn contains_expected_structure() {
        let g = mini();
        let type_id = g.dict.id(&Term::iri(RDF_TYPE)).unwrap();
        let dept_class = g.dict.id(&Term::iri(univ("Department"))).unwrap();
        let depts = g.matches(TriplePattern::new(None, Some(type_id), Some(dept_class)));
        assert!(!depts.is_empty());

        let sub_org = g.dict.id(&Term::iri(univ("subOrganizationOf"))).unwrap();
        let sub_orgs = g.matches(TriplePattern::new(None, Some(sub_org), None));
        // every dept + research group has a subOrganizationOf link
        assert!(sub_orgs.len() > depts.len());
    }

    #[test]
    fn universities_in_iri_authority() {
        let g = mini();
        let u0 = g.dict.id(&Term::iri(university_iri(0))).unwrap();
        assert_eq!(
            g.term(u0).unwrap().namespace(),
            Some("http://www.univ0.edu/")
        );
    }

    #[test]
    fn every_grad_student_has_advisor_and_degree() {
        let g = mini();
        let type_id = g.dict.id(&Term::iri(RDF_TYPE)).unwrap();
        let grad = g.dict.id(&Term::iri(univ("GraduateStudent"))).unwrap();
        let advisor = g.dict.id(&Term::iri(univ("advisor"))).unwrap();
        let ug = g.dict.id(&Term::iri(univ("undergraduateDegreeFrom"))).unwrap();
        for t in g.matches(TriplePattern::new(None, Some(type_id), Some(grad))) {
            assert!(
                !g.matches(TriplePattern::new(Some(t.s), Some(advisor), None)).is_empty(),
                "grad student without advisor"
            );
            assert!(
                !g.matches(TriplePattern::new(Some(t.s), Some(ug), None)).is_empty(),
                "grad student without undergraduate degree"
            );
        }
    }
}
