//! A Turtle-lite parser: the pragmatic subset real ontology files use.
//!
//! Supported beyond N-Triples:
//!
//! * `@prefix p: <iri> .` declarations and prefixed names `p:local`;
//! * `@base <iri> .` and relative IRI resolution (simple concatenation);
//! * the keyword `a` for `rdf:type`;
//! * predicate lists `s p1 o1 ; p2 o2 .` and object lists `s p o1 , o2 .`;
//! * comments, multi-line statements, and the literal forms N-Triples has.
//!
//! Not supported (rejected, never silently misparsed): blank-node
//! property lists `[...]`, collections `(...)`, and numeric/boolean
//! abbreviations.

use crate::graph::Graph;
use crate::term::Term;
use std::collections::HashMap;

/// Turtle parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurtleError {
    /// Line of the failure.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for TurtleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Turtle parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TurtleError {}

/// Parse a Turtle-lite document into `graph`; returns #new triples.
pub fn parse_turtle(input: &str, graph: &mut Graph) -> Result<usize, TurtleError> {
    let mut p = Tp {
        bytes: input.as_bytes(),
        src: input,
        pos: 0,
        line: 1,
        base: String::new(),
        prefixes: HashMap::new(),
        added: 0,
    };
    p.prefixes
        .insert("rdf".into(), crate::vocab::RDF_NS.into());
    p.prefixes
        .insert("rdfs".into(), crate::vocab::RDFS_NS.into());
    p.prefixes.insert("owl".into(), crate::vocab::OWL_NS.into());
    p.prefixes.insert("xsd".into(), crate::vocab::XSD_NS.into());
    p.document(graph)?;
    Ok(p.added)
}

struct Tp<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
    line: usize,
    base: String,
    prefixes: HashMap<String, String>,
    added: usize,
}

impl Tp<'_> {
    fn err(&self, m: impl Into<String>) -> TurtleError {
        TurtleError {
            line: self.line,
            message: m.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), TurtleError> {
        self.ws();
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn document(&mut self, g: &mut Graph) -> Result<(), TurtleError> {
        loop {
            self.ws();
            if self.peek().is_none() {
                return Ok(());
            }
            if self.src[self.pos..].starts_with("@prefix") {
                self.pos += "@prefix".len();
                self.ws();
                let name = self.pname_prefix()?;
                self.expect(b':')?;
                let iri = self.iri_ref()?;
                self.expect(b'.')?;
                self.prefixes.insert(name, iri);
            } else if self.src[self.pos..].starts_with("@base") {
                self.pos += "@base".len();
                self.base = self.iri_ref()?;
                self.expect(b'.')?;
            } else {
                self.statement(g)?;
            }
        }
    }

    fn statement(&mut self, g: &mut Graph) -> Result<(), TurtleError> {
        let subject = self.term(true)?;
        loop {
            // predicate-object pairs separated by ';'
            self.ws();
            let predicate = self.term_predicate()?;
            loop {
                let object = self.term(false)?;
                if predicate.is_literal() || predicate.is_blank() {
                    return Err(self.err("predicate must be an IRI"));
                }
                if subject.is_literal() {
                    return Err(self.err("subject must not be a literal"));
                }
                if g.insert_terms(subject.clone(), predicate.clone(), object) {
                    self.added += 1;
                }
                self.ws();
                if !self.eat(b',') {
                    break;
                }
            }
            self.ws();
            if self.eat(b';') {
                // a dangling ';' may be followed directly by '.'
                self.ws();
                if self.eat(b'.') {
                    return Ok(());
                }
                continue;
            }
            if self.eat(b'.') {
                return Ok(());
            }
            return Err(self.err("expected ';', ',' or '.' after object"));
        }
    }

    fn pname_prefix(&mut self) -> Result<String, TurtleError> {
        self.ws();
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
        {
            self.bump();
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn iri_ref(&mut self) -> Result<String, TurtleError> {
        self.ws();
        if !self.eat(b'<') {
            return Err(self.err("expected '<'"));
        }
        let start = self.pos;
        while self.peek().is_some_and(|c| c != b'>') {
            self.bump();
        }
        if self.peek().is_none() {
            return Err(self.err("unterminated IRI"));
        }
        let raw = &self.src[start..self.pos];
        self.bump();
        // resolve against @base when relative (no scheme)
        Ok(if raw.contains(':') || self.base.is_empty() {
            raw.to_string()
        } else {
            format!("{}{raw}", self.base)
        })
    }

    fn term_predicate(&mut self) -> Result<Term, TurtleError> {
        self.ws();
        if self.src[self.pos..].starts_with('a')
            && self
                .bytes
                .get(self.pos + 1)
                .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.bump();
            return Ok(Term::iri(crate::vocab::RDF_TYPE));
        }
        self.term(true)
    }

    fn term(&mut self, subject_position: bool) -> Result<Term, TurtleError> {
        self.ws();
        match self.peek() {
            Some(b'<') => Ok(Term::iri(self.iri_ref()?)),
            Some(b'_') => {
                self.bump();
                if !self.eat(b':') {
                    return Err(self.err("blank node needs '_:'"));
                }
                let start = self.pos;
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
                {
                    self.bump();
                }
                if self.pos == start {
                    return Err(self.err("empty blank node label"));
                }
                Ok(Term::blank(&self.src[start..self.pos]))
            }
            Some(b'"') if !subject_position => self.literal(),
            Some(b'"') => Err(self.err("literal not allowed here")),
            Some(b'[') | Some(b'(') => {
                Err(self.err("blank-node property lists / collections not supported"))
            }
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                let prefix = self.pname_prefix()?;
                if !self.eat(b':') {
                    return Err(self.err(format!("bare word '{prefix}'")));
                }
                let local_start = self.pos;
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.')
                {
                    self.bump();
                }
                // trailing '.' is the statement terminator
                let mut end = self.pos;
                while end > local_start && self.bytes[end - 1] == b'.' {
                    end -= 1;
                }
                self.pos = end;
                let ns = self
                    .prefixes
                    .get(&prefix)
                    .ok_or_else(|| self.err(format!("unknown prefix '{prefix}'")))?;
                Ok(Term::iri(format!("{ns}{}", &self.src[local_start..end])))
            }
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self) -> Result<Term, TurtleError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.bump();
        let mut lex = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated literal")),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => lex.push('"'),
                    Some(b'\\') => lex.push('\\'),
                    Some(b'n') => lex.push('\n'),
                    Some(b't') => lex.push('\t'),
                    Some(b'r') => lex.push('\r'),
                    _ => return Err(self.err("unknown escape")),
                },
                Some(c) if c < 0x80 => lex.push(c as char),
                Some(first) => {
                    // re-assemble a multi-byte UTF-8 scalar
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    lex.push_str(s);
                }
            }
        }
        if self.eat(b'@') {
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'-')
            {
                self.bump();
            }
            return Ok(Term::lang_literal(lex, &self.src[start..self.pos]));
        }
        if self.peek() == Some(b'^') {
            self.bump();
            if !self.eat(b'^') {
                return Err(self.err("expected '^^'"));
            }
            self.ws();
            let dt = match self.peek() {
                Some(b'<') => self.iri_ref()?,
                _ => {
                    let t = self.term(true)?;
                    t.as_iri()
                        .ok_or_else(|| self.err("datatype must be an IRI"))?
                        .to_string()
                }
            };
            return Ok(Term::typed_literal(lex, dt));
        }
        Ok(Term::literal(lex))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::vocab::{OWL_TRANSITIVE, RDF_TYPE, RDFS_SUBCLASSOF};

    fn parse(src: &str) -> Graph {
        let mut g = Graph::new();
        parse_turtle(src, &mut g).unwrap();
        g
    }

    fn has(g: &Graph, s: &str, p: &str, o: &str) -> bool {
        g.contains_terms(&Term::iri(s), &Term::iri(p), &Term::iri(o))
    }

    #[test]
    fn prefix_declarations_and_pnames() {
        let g = parse(
            "@prefix ex: <http://x.org/> .\n\
             ex:a ex:p ex:b .",
        );
        assert!(has(&g, "http://x.org/a", "http://x.org/p", "http://x.org/b"));
    }

    #[test]
    fn keyword_a_is_rdf_type() {
        let g = parse(
            "@prefix ex: <http://x.org/> .\n\
             ex:alice a ex:Student .",
        );
        assert!(has(&g, "http://x.org/alice", RDF_TYPE, "http://x.org/Student"));
    }

    #[test]
    fn builtin_prefixes_predeclared() {
        let g = parse(
            "@prefix ex: <http://x.org/> .\n\
             ex:Student rdfs:subClassOf ex:Person .\n\
             ex:partOf a owl:TransitiveProperty .",
        );
        assert!(has(&g, "http://x.org/Student", RDFS_SUBCLASSOF, "http://x.org/Person"));
        assert!(has(&g, "http://x.org/partOf", RDF_TYPE, OWL_TRANSITIVE));
    }

    #[test]
    fn predicate_and_object_lists() {
        let g = parse(
            "@prefix ex: <http://x.org/> .\n\
             ex:a ex:p ex:b , ex:c ;\n\
                  ex:q ex:d ;\n\
                  a ex:Thing .",
        );
        assert_eq!(g.len(), 4);
        assert!(has(&g, "http://x.org/a", "http://x.org/p", "http://x.org/c"));
        assert!(has(&g, "http://x.org/a", "http://x.org/q", "http://x.org/d"));
        assert!(has(&g, "http://x.org/a", RDF_TYPE, "http://x.org/Thing"));
    }

    #[test]
    fn base_resolution() {
        let g = parse(
            "@base <http://base.org/> .\n\
             <alice> <knows> <bob> .",
        );
        assert!(has(&g, "http://base.org/alice", "http://base.org/knows", "http://base.org/bob"));
    }

    #[test]
    fn literals_with_lang_and_datatype() {
        let mut g = Graph::new();
        parse_turtle(
            "@prefix ex: <http://x.org/> .\n\
             ex:a ex:name \"Ada\"@en ; ex:age \"36\"^^xsd:integer ; ex:note \"hi\\nthere ☃\" .",
            &mut g,
        )
        .unwrap();
        assert!(g.contains_terms(
            &Term::iri("http://x.org/a"),
            &Term::iri("http://x.org/name"),
            &Term::lang_literal("Ada", "en")
        ));
        assert!(g.contains_terms(
            &Term::iri("http://x.org/a"),
            &Term::iri("http://x.org/age"),
            &Term::typed_literal("36", "http://www.w3.org/2001/XMLSchema#integer")
        ));
        assert!(g.contains_terms(
            &Term::iri("http://x.org/a"),
            &Term::iri("http://x.org/note"),
            &Term::literal("hi\nthere ☃")
        ));
    }

    #[test]
    fn blank_nodes_and_comments() {
        let g = parse(
            "# a comment\n\
             _:b0 <http://x.org/p> _:b1 . # trailing comment\n",
        );
        assert!(g.contains_terms(
            &Term::blank("b0"),
            &Term::iri("http://x.org/p"),
            &Term::blank("b1")
        ));
    }

    #[test]
    fn dangling_semicolon_before_dot() {
        let g = parse(
            "@prefix ex: <http://x.org/> .\n\
             ex:a ex:p ex:b ; .",
        );
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn ntriples_is_valid_turtle_lite() {
        let nt = "<http://x/a> <http://x/p> <http://x/b> .\n<http://x/a> <http://x/p> \"lit\" .\n";
        let g = parse(nt);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn error_cases() {
        for (src, why) in [
            ("ex:a ex:p ex:b .", "unknown prefix"),
            ("@prefix ex: <http://x/> .\nex:a ex:p [ ex:q ex:r ] .", "bnode list"),
            ("@prefix ex: <http://x/> .\nex:a ex:p ex:b", "missing dot"),
            ("@prefix ex: <http://x/> .\n\"lit\" ex:p ex:b .", "literal subject"),
            ("@prefix ex: <http://x/> .\nex:a \"lit\" ex:b .", "literal predicate"),
        ] {
            let mut g = Graph::new();
            assert!(parse_turtle(src, &mut g).is_err(), "{why}");
        }
    }

    #[test]
    fn error_line_numbers() {
        let mut g = Graph::new();
        let e = parse_turtle(
            "@prefix ex: <http://x/> .\nex:a ex:p ex:b .\nbro ken\n",
            &mut g,
        )
        .unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn roundtrip_with_ntriples_writer() {
        let g = parse(
            "@prefix ex: <http://x.org/> .\n\
             ex:a ex:p ex:b , ex:c ; a ex:T .",
        );
        let text = crate::ntriples::write_ntriples(&g);
        let mut back = Graph::new();
        crate::ntriples::parse_ntriples(&text, &mut back).unwrap();
        assert_eq!(back.term_fingerprint(), g.term_fingerprint());
    }
}
