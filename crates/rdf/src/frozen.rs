//! Frozen, read-optimized triple storage for lock-free parallel joins.
//!
//! The mutable [`TripleStore`](crate::TripleStore) is built for cheap
//! inserts: three nested hash maps. That shape is hostile to the parallel
//! closure engine — hash maps scatter the posting lists across the heap,
//! and sharing `&TripleStore` from many threads still pays pointer-chasing
//! on every probe. [`FrozenStore`] is the read path's answer: the triples
//! laid out **three times as sorted flat columns** (SPO, POS, OSP order)
//! with CSR-style offset indexes over the leading component. Every one of
//! the eight [`TriplePattern`] shapes resolves to a contiguous slice scan
//! (plus at most one in-row binary search), the whole structure is
//! immutable and `Sync`, and concurrent `for_each_match` from any number
//! of threads is wait-free.
//!
//! Mutation is layered on top, LSM-style, instead of in place:
//!
//! * [`FrozenView`] — a borrowed overlay `frozen base ∪ small mutable
//!   delta` used inside a closure round (the base is shared read-only by
//!   the worker threads; the delta is the around-the-loop accumulator).
//! * [`OverlayStore`] — the owned, cheaply-clonable variant
//!   (`Arc<FrozenStore>` + `Arc<TripleStore>`) that the serving layer
//!   publishes as a snapshot: publishing no longer clones the whole KB,
//!   only the small delta.
//! * [`FrozenStore::merge`] — compaction: folding a delta into the base is
//!   a linear merge of already-sorted runs, not a rebuild.
//!
//! The [`TripleSource`] trait abstracts over all of these (and the mutable
//! store), so the datalog joins and the query engine run unchanged against
//! whichever representation holds the data.

// Shared read path of the parallel closure: never panic (same discipline
// as owlpar-core; enforced in CI by clippy).
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use crate::dictionary::NodeId;
use crate::store::{TriplePattern, TripleStore};
use crate::triple::Triple;
use std::sync::Arc;

/// Read access to an indexed set of triples: the interface the datalog
/// joins and the query engine actually need. Implemented by the mutable
/// [`TripleStore`], the immutable [`FrozenStore`], and the overlay types.
pub trait TripleSource {
    /// Invoke `f` for every triple matching `pat`.
    fn for_each_match(&self, pat: TriplePattern, f: impl FnMut(Triple));

    /// Membership test.
    fn contains(&self, t: &Triple) -> bool;

    /// Number of distinct triples.
    fn len(&self) -> usize;

    /// `true` iff no triples are held.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collect all matches of `pat` into a vector.
    fn matches(&self, pat: TriplePattern) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_match(pat, |t| out.push(t));
        out
    }
}

impl TripleSource for TripleStore {
    fn for_each_match(&self, pat: TriplePattern, f: impl FnMut(Triple)) {
        TripleStore::for_each_match(self, pat, f);
    }

    fn contains(&self, t: &Triple) -> bool {
        TripleStore::contains(self, t)
    }

    fn len(&self) -> usize {
        TripleStore::len(self)
    }
}

/// One sorted column family: the triples permuted into `(k0, k1, k2)`
/// order plus a CSR index over the distinct leading keys.
#[derive(Debug, Clone, Default)]
struct SortedIndex {
    /// Triples as `(k0, k1, k2)` key tuples, sorted lexicographically.
    rows: Vec<[NodeId; 3]>,
    /// Distinct leading keys, ascending.
    keys: Vec<NodeId>,
    /// `keys.len() + 1` offsets into `rows`: the triples whose leading
    /// key is `keys[i]` live in `rows[offs[i] .. offs[i + 1]]`.
    offs: Vec<u32>,
}

impl SortedIndex {
    /// Build from rows already sorted in `(k0, k1, k2)` order.
    fn from_sorted(rows: Vec<[NodeId; 3]>) -> Self {
        let mut keys = Vec::new();
        let mut offs = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            if keys.last() != Some(&row[0]) {
                keys.push(row[0]);
                offs.push(i as u32);
            }
        }
        offs.push(rows.len() as u32);
        SortedIndex { rows, keys, offs }
    }

    /// The contiguous row block for leading key `k0` (empty if absent).
    fn row(&self, k0: NodeId) -> &[[NodeId; 3]] {
        match self.keys.binary_search(&k0) {
            Ok(i) => {
                let a = self.offs[i] as usize;
                let b = self.offs[i + 1] as usize;
                &self.rows[a..b]
            }
            Err(_) => &[],
        }
    }

    /// The sub-block of `row(k0)` whose second component equals `k1`.
    fn row2(&self, k0: NodeId, k1: NodeId) -> &[[NodeId; 3]] {
        let row = self.row(k0);
        let a = row.partition_point(|r| r[1] < k1);
        let b = row.partition_point(|r| r[1] <= k1);
        &row[a..b]
    }

    /// Is the exact key tuple present?
    fn contains(&self, key: [NodeId; 3]) -> bool {
        self.row(key[0]).binary_search(&[key[0], key[1], key[2]]).is_ok()
    }
}

/// An immutable triple store: sorted flat columns + CSR offset indexes in
/// SPO, POS and OSP order. `Send + Sync`; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct FrozenStore {
    spo: SortedIndex,
    pos: SortedIndex,
    osp: SortedIndex,
}

fn spo_key(t: &Triple) -> [NodeId; 3] {
    [t.s, t.p, t.o]
}

fn pos_key(t: &Triple) -> [NodeId; 3] {
    [t.p, t.o, t.s]
}

fn osp_key(t: &Triple) -> [NodeId; 3] {
    [t.o, t.s, t.p]
}

/// Merge two sorted, duplicate-free runs into one.
fn merge_sorted(a: &[[NodeId; 3]], b: &[[NodeId; 3]]) -> Vec<[NodeId; 3]> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl FrozenStore {
    /// An empty frozen store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Freeze the contents of a mutable store.
    ///
    /// Exploits the store's nested indexes: each column family is emitted
    /// key-run by key-run, so only the (much smaller) key sets and the
    /// per-run posting lists get sorted — never the full triple set.
    pub fn from_store(store: &TripleStore) -> Self {
        let build = |nested: &crate::store::Nested| {
            let mut k0s: Vec<NodeId> = nested.keys().copied().collect();
            k0s.sort_unstable();
            let mut rows: Vec<[NodeId; 3]> = Vec::with_capacity(store.len());
            for k0 in k0s {
                let Some(inner) = nested.get(&k0) else { continue };
                let mut k1s: Vec<NodeId> = inner.keys().copied().collect();
                k1s.sort_unstable();
                for k1 in k1s {
                    let Some(k2s) = inner.get(&k1) else { continue };
                    let start = rows.len();
                    for &k2 in k2s {
                        rows.push([k0, k1, k2]);
                    }
                    // within a (k0, k1) run only k2 varies, and posting
                    // lists are duplicate-free by store invariant
                    rows[start..].sort_unstable();
                }
            }
            SortedIndex::from_sorted(rows)
        };
        let [spo_n, pos_n, osp_n] = store.nested_indexes();
        Self::build_families(store.len(), || build(spo_n), || build(pos_n), || {
            build(osp_n)
        })
    }

    /// Freeze an arbitrary collection of triples (duplicates tolerated).
    pub fn from_triples(triples: impl IntoIterator<Item = Triple>) -> Self {
        let triples: Vec<Triple> = triples.into_iter().collect();
        let build = |key: fn(&Triple) -> [NodeId; 3]| {
            let mut rows: Vec<[NodeId; 3]> = triples.iter().map(key).collect();
            rows.sort_unstable();
            rows.dedup();
            SortedIndex::from_sorted(rows)
        };
        Self::build_families(triples.len(), || build(spo_key), || build(pos_key), || {
            build(osp_key)
        })
    }

    /// Compaction: fold `delta` into a new frozen store. Each column
    /// family is a linear merge of two sorted runs — O(n + |delta| log
    /// |delta|), not a full rebuild's O(n log n).
    pub fn merge(&self, delta: &TripleStore) -> FrozenStore {
        let triples: Vec<Triple> = delta.iter().copied().collect();
        self.merge_triples(&triples)
    }

    /// [`FrozenStore::merge`] for a plain batch of triples (any order,
    /// duplicates tolerated).
    pub fn merge_triples(&self, delta: &[Triple]) -> FrozenStore {
        let merge_one = |idx: &SortedIndex, key: fn(&Triple) -> [NodeId; 3]| {
            let mut rows: Vec<[NodeId; 3]> = delta.iter().map(key).collect();
            rows.sort_unstable();
            rows.dedup();
            SortedIndex::from_sorted(merge_sorted(&idx.rows, &rows))
        };
        Self::build_families(
            self.len() + delta.len(),
            || merge_one(&self.spo, spo_key),
            || merge_one(&self.pos, pos_key),
            || merge_one(&self.osp, osp_key),
        )
    }

    /// Build the three column families, on three threads when the row
    /// count makes the sorts/merges worth a spawn. The families are
    /// independent, so this is the freeze path's free parallelism.
    fn build_families(
        rows: usize,
        spo: impl FnOnce() -> SortedIndex + Send,
        pos: impl FnOnce() -> SortedIndex + Send,
        osp: impl FnOnce() -> SortedIndex + Send,
    ) -> FrozenStore {
        /// Below this size, spawn overhead beats the sort work saved.
        const PARALLEL_BUILD_FLOOR: usize = 1 << 14;
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        if rows < PARALLEL_BUILD_FLOOR || cores < 2 {
            return FrozenStore {
                spo: spo(),
                pos: pos(),
                osp: osp(),
            };
        }
        std::thread::scope(|scope| {
            let pos = scope.spawn(pos);
            let osp = scope.spawn(osp);
            let spo = spo();
            match (pos.join(), osp.join()) {
                (Ok(pos), Ok(osp)) => FrozenStore { spo, pos, osp },
                (Err(payload), _) | (_, Err(payload)) => std::panic::resume_unwind(payload),
            }
        })
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.spo.rows.len()
    }

    /// `true` iff the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.rows.is_empty()
    }

    /// Membership test (binary search inside one CSR row).
    #[inline]
    pub fn contains(&self, t: &Triple) -> bool {
        self.spo.contains(spo_key(t))
    }

    /// Iterate all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.rows.iter().map(|r| Triple::new(r[0], r[1], r[2]))
    }

    /// All triples, sorted SPO (already the storage order).
    pub fn iter_sorted(&self) -> Vec<Triple> {
        self.iter().collect()
    }

    /// Thaw back into a mutable store (used by the schema-recompile path
    /// of the serving layer; O(n)).
    pub fn to_store(&self) -> TripleStore {
        self.iter().collect()
    }

    /// Invoke `f` for every triple matching `pat`. Every pattern shape is
    /// a contiguous slice scan; no locks, no hashing.
    pub fn for_each_match(&self, pat: TriplePattern, mut f: impl FnMut(Triple)) {
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple::new(s, p, o);
                if self.contains(&t) {
                    f(t);
                }
            }
            (Some(s), Some(p), None) => {
                for r in self.spo.row2(s, p) {
                    f(Triple::new(r[0], r[1], r[2]));
                }
            }
            (Some(s), None, None) => {
                for r in self.spo.row(s) {
                    f(Triple::new(r[0], r[1], r[2]));
                }
            }
            (None, Some(p), Some(o)) => {
                for r in self.pos.row2(p, o) {
                    f(Triple::new(r[2], r[0], r[1]));
                }
            }
            (None, Some(p), None) => {
                for r in self.pos.row(p) {
                    f(Triple::new(r[2], r[0], r[1]));
                }
            }
            (Some(s), None, Some(o)) => {
                for r in self.osp.row2(o, s) {
                    f(Triple::new(r[1], r[2], r[0]));
                }
            }
            (None, None, Some(o)) => {
                for r in self.osp.row(o) {
                    f(Triple::new(r[1], r[2], r[0]));
                }
            }
            (None, None, None) => {
                for r in &self.spo.rows {
                    f(Triple::new(r[0], r[1], r[2]));
                }
            }
        }
    }

    /// Number of matches — pure index arithmetic, no iteration.
    pub fn count_matches(&self, pat: TriplePattern) -> usize {
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains(&Triple::new(s, p, o))),
            (Some(s), Some(p), None) => self.spo.row2(s, p).len(),
            (Some(s), None, None) => self.spo.row(s).len(),
            (None, Some(p), Some(o)) => self.pos.row2(p, o).len(),
            (None, Some(p), None) => self.pos.row(p).len(),
            (Some(s), None, Some(o)) => self.osp.row2(o, s).len(),
            (None, None, Some(o)) => self.osp.row(o).len(),
            (None, None, None) => self.len(),
        }
    }
}

impl TripleSource for FrozenStore {
    fn for_each_match(&self, pat: TriplePattern, f: impl FnMut(Triple)) {
        FrozenStore::for_each_match(self, pat, f);
    }

    fn contains(&self, t: &Triple) -> bool {
        FrozenStore::contains(self, t)
    }

    fn len(&self) -> usize {
        FrozenStore::len(self)
    }
}

impl FromIterator<Triple> for FrozenStore {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        FrozenStore::from_triples(iter)
    }
}

/// A borrowed LSM-style overlay: a frozen base plus a small mutable-side
/// delta, read as their union. Invariant (maintained by the closure
/// engine): `delta` holds no triple already in `base`, so match callbacks
/// fire exactly once per distinct triple.
#[derive(Debug, Clone, Copy)]
pub struct FrozenView<'a> {
    /// The frozen bulk of the data.
    pub base: &'a FrozenStore,
    /// Recent insertions not yet compacted into `base`.
    pub delta: &'a TripleStore,
}

impl TripleSource for FrozenView<'_> {
    fn for_each_match(&self, pat: TriplePattern, mut f: impl FnMut(Triple)) {
        self.base.for_each_match(pat, &mut f);
        self.delta.for_each_match(pat, f);
    }

    fn contains(&self, t: &Triple) -> bool {
        self.base.contains(t) || self.delta.contains(t)
    }

    fn len(&self) -> usize {
        self.base.len() + self.delta.len()
    }
}

/// The owned, cheaply-clonable overlay the serving layer publishes as a
/// snapshot: two `Arc`s. Same disjointness invariant as [`FrozenView`].
#[derive(Debug, Clone)]
pub struct OverlayStore {
    /// The frozen bulk of the data.
    pub base: Arc<FrozenStore>,
    /// Recent insertions not yet compacted into `base`.
    pub delta: Arc<TripleStore>,
}

impl OverlayStore {
    /// Wrap a fully-frozen store with an empty delta.
    pub fn frozen(base: Arc<FrozenStore>) -> Self {
        OverlayStore {
            base,
            delta: Arc::new(TripleStore::new()),
        }
    }

    /// Build from base and delta parts.
    pub fn new(base: Arc<FrozenStore>, delta: Arc<TripleStore>) -> Self {
        OverlayStore { base, delta }
    }

    /// All triples, sorted SPO.
    pub fn iter_sorted(&self) -> Vec<Triple> {
        let mut v: Vec<Triple> = self.base.iter().chain(self.delta.iter().copied()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// All triples (base then delta), unordered.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.base.iter().chain(self.delta.iter().copied())
    }

    /// Total triple count (exact: base and delta are disjoint).
    pub fn len(&self) -> usize {
        self.base.len() + self.delta.len()
    }

    /// Whether both layers are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership across both layers.
    pub fn contains(&self, t: &Triple) -> bool {
        self.base.contains(t) || self.delta.contains(t)
    }
}

impl TripleSource for OverlayStore {
    fn for_each_match(&self, pat: TriplePattern, mut f: impl FnMut(Triple)) {
        self.base.for_each_match(pat, &mut f);
        self.delta.for_each_match(pat, f);
    }

    fn contains(&self, t: &Triple) -> bool {
        self.base.contains(t) || self.delta.contains(t)
    }

    fn len(&self) -> usize {
        self.base.len() + self.delta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    fn sample() -> Vec<Triple> {
        vec![t(0, 1, 2), t(0, 1, 3), t(0, 2, 2), t(4, 1, 2), t(4, 2, 0), t(7, 9, 7)]
    }

    fn pat(s: Option<u32>, p: Option<u32>, o: Option<u32>) -> TriplePattern {
        TriplePattern::new(s.map(NodeId), p.map(NodeId), o.map(NodeId))
    }

    /// Every pattern over every sample subset must agree with a linear
    /// scan of the frozen contents.
    fn assert_matches_scan(fs: &FrozenStore, all: &[Triple], p: TriplePattern) {
        let mut via_index = fs.matches(p);
        via_index.sort_unstable();
        let mut via_scan: Vec<Triple> = all.iter().copied().filter(|t| p.matches(t)).collect();
        via_scan.sort_unstable();
        assert_eq!(via_index, via_scan, "pattern {p:?}");
        assert_eq!(fs.count_matches(p), via_scan.len(), "count for {p:?}");
    }

    #[test]
    fn all_eight_shapes_agree_with_scan() {
        let all = sample();
        let fs: FrozenStore = all.iter().copied().collect();
        let opts = [None, Some(0), Some(1), Some(2), Some(4), Some(7), Some(9)];
        for s in opts {
            for p in opts {
                for o in opts {
                    assert_matches_scan(&fs, &all, pat(s, p, o));
                }
            }
        }
    }

    #[test]
    fn dedup_on_construction() {
        let fs = FrozenStore::from_triples(vec![t(1, 2, 3), t(1, 2, 3), t(1, 2, 4)]);
        assert_eq!(fs.len(), 2);
        assert!(fs.contains(&t(1, 2, 3)));
        assert!(!fs.contains(&t(1, 2, 5)));
    }

    #[test]
    fn roundtrips_through_mutable_store() {
        let all = sample();
        let ts: TripleStore = all.iter().copied().collect();
        let fs = FrozenStore::from_store(&ts);
        assert_eq!(fs.iter_sorted(), ts.iter_sorted());
        assert_eq!(fs.to_store().iter_sorted(), ts.iter_sorted());
    }

    #[test]
    fn merge_equals_rebuild() {
        let base: FrozenStore = sample().into_iter().collect();
        let delta: TripleStore =
            [t(9, 9, 9), t(0, 1, 2), t(5, 5, 5)].into_iter().collect();
        let merged = base.merge(&delta);
        let mut expect: Vec<Triple> = sample();
        expect.extend([t(9, 9, 9), t(5, 5, 5)]);
        expect.sort_unstable();
        assert_eq!(merged.iter_sorted(), expect);
        // merged store still answers every pattern correctly
        assert_matches_scan(&merged, &expect, pat(Some(9), None, None));
        assert_matches_scan(&merged, &expect, pat(None, Some(1), None));
        assert_matches_scan(&merged, &expect, pat(None, None, None));
    }

    #[test]
    fn frozen_view_unions_base_and_delta() {
        let base: FrozenStore = sample().into_iter().collect();
        let delta: TripleStore = [t(8, 1, 2)].into_iter().collect();
        let view = FrozenView {
            base: &base,
            delta: &delta,
        };
        assert_eq!(view.len(), 7);
        assert!(TripleSource::contains(&view, &t(8, 1, 2)));
        assert!(TripleSource::contains(&view, &t(0, 1, 2)));
        let mut m = view.matches(pat(None, Some(1), Some(2)));
        m.sort_unstable();
        assert_eq!(m, vec![t(0, 1, 2), t(4, 1, 2), t(8, 1, 2)]);
    }

    #[test]
    fn overlay_store_iter_sorted_is_union() {
        let base = Arc::new(sample().into_iter().collect::<FrozenStore>());
        let delta: TripleStore = [t(9, 1, 1)].into_iter().collect();
        let ov = OverlayStore::new(base, Arc::new(delta));
        let v = ov.iter_sorted();
        assert_eq!(v.len(), 7);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_store_is_well_behaved() {
        let fs = FrozenStore::new();
        assert!(fs.is_empty());
        assert_eq!(fs.count_matches(TriplePattern::any()), 0);
        assert!(fs.matches(pat(Some(1), None, None)).is_empty());
        assert!(!fs.contains(&t(1, 2, 3)));
        let merged = fs.merge(&[t(1, 2, 3)].into_iter().collect());
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn concurrent_reads_are_consistent() {
        let all: Vec<Triple> = (0..200u32).map(|i| t(i % 17, i % 5, i % 23)).collect();
        let fs: FrozenStore = all.iter().copied().collect();
        let expect = fs.count_matches(pat(None, Some(1), None));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        assert_eq!(fs.count_matches(pat(None, Some(1), None)), expect);
                    }
                });
            }
        });
    }
}
