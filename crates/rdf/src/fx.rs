//! A small, fast, non-cryptographic hasher (the rustc "Fx" multiply-xor
//! scheme) plus type aliases used throughout the workspace.
//!
//! The dictionary and the triple-store indexes hash millions of small
//! integer keys on the closure hot path; SipHash's HashDoS protection is
//! unnecessary there (all keys are internally generated dense ids), so we
//! trade it for raw speed, as recommended by the Rust Performance Book.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher; extremely fast for short keys such as `u32`/`u64`
/// ids and short byte strings.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    // `chunks_exact(8)` guarantees every chunk converts to [u8; 8].
    #[allow(clippy::unwrap_used)]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(42u32), hash_of(42u32));
        assert_eq!(hash_of("abc"), hash_of("abc"));
    }

    #[test]
    fn distinct_small_integers_hash_distinctly() {
        let hashes: FxHashSet<u64> = (0u32..1000).map(hash_of).collect();
        assert_eq!(hashes.len(), 1000, "no collisions expected on tiny range");
    }

    #[test]
    fn byte_remainder_paths_differ() {
        // exercises the chunks_exact remainder handling
        assert_ne!(hash_of(&b"1234567"[..]), hash_of(&b"12345678"[..]));
        assert_ne!(hash_of(&b"12345678"[..]), hash_of(&b"123456789"[..]));
    }

    #[test]
    fn map_and_set_are_usable() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        m.insert(1, 2);
        assert_eq!(m.get(&1), Some(&2));
        let mut s: FxHashSet<(u32, u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2, 3)));
        assert!(!s.insert((1, 2, 3)));
    }

    #[test]
    fn tuple_keys_have_no_trivial_symmetry_collisions() {
        // (a,b,c) permutations should not collide for typical ids
        let a = hash_of((1u32, 2u32, 3u32));
        let b = hash_of((3u32, 2u32, 1u32));
        let c = hash_of((2u32, 1u32, 3u32));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
