//! Dictionary encoding: a two-way interner mapping [`Term`]s to dense
//! `u32` ids.
//!
//! All reasoning, partitioning and communication operate on ids; the
//! dictionary is consulted only at system edges. Ids are allocated densely
//! from 0, which lets the partitioners use plain vectors indexed by id
//! instead of hash maps.

use crate::fx::FxHashMap;
use crate::term::Term;
use serde::{Deserialize, Serialize};

/// Dense identifier of an interned term. `NodeId(u32)` keeps encoded
/// triples at 12 bytes, well under the 128-byte memcpy threshold.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize`, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A two-way `Term` ↔ `NodeId` mapping.
///
/// Interning an already-present term returns its existing id; the mapping
/// is injective in both directions.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: FxHashMap<Term, NodeId>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Intern a term, returning its (possibly pre-existing) id.
    ///
    /// Panics if the dictionary would exceed 2^32 terms — ids are `u32`
    /// by design (three-word triples), and no supported dataset comes
    /// within two orders of magnitude of that.
    #[allow(clippy::expect_used)]
    pub fn intern(&mut self, term: Term) -> NodeId {
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let id = NodeId(
            u32::try_from(self.terms.len()).expect("dictionary overflow: more than 2^32 terms"),
        );
        self.terms.push(term.clone());
        self.ids.insert(term, id);
        id
    }

    /// Convenience: intern an IRI given as a string.
    pub fn intern_iri(&mut self, iri: impl AsRef<str>) -> NodeId {
        self.intern(Term::iri(iri))
    }

    /// Look up the id of a term without interning.
    pub fn id(&self, term: &Term) -> Option<NodeId> {
        self.ids.get(term).copied()
    }

    /// Look up the term for an id.
    pub fn term(&self, id: NodeId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Iterate over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (NodeId(i as u32), t))
    }

    /// Merge another dictionary into this one, returning a remapping table
    /// `other_id -> self_id`. Used when the master aggregates partition
    /// outputs that were encoded against per-worker dictionaries.
    pub fn merge(&mut self, other: &Dictionary) -> Vec<NodeId> {
        other
            .terms
            .iter()
            .map(|t| self.intern(t.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(Term::iri("http://x/a"));
        let b = d.intern(Term::iri("http://x/a"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_from_zero() {
        let mut d = Dictionary::new();
        for i in 0..100 {
            let id = d.intern(Term::iri(format!("http://x/{i}")));
            assert_eq!(id, NodeId(i));
        }
    }

    #[test]
    fn roundtrip_id_term() {
        let mut d = Dictionary::new();
        let t = Term::lang_literal("bonjour", "fr");
        let id = d.intern(t.clone());
        assert_eq!(d.term(id), Some(&t));
        assert_eq!(d.id(&t), Some(id));
        assert_eq!(d.id(&Term::literal("bonjour")), None);
    }

    #[test]
    fn term_lookup_out_of_range_is_none() {
        let d = Dictionary::new();
        assert_eq!(d.term(NodeId(5)), None);
        assert!(d.is_empty());
    }

    #[test]
    fn distinct_literal_kinds_get_distinct_ids() {
        let mut d = Dictionary::new();
        let a = d.intern(Term::literal("x"));
        let b = d.intern(Term::lang_literal("x", "en"));
        let c = d.intern(Term::typed_literal("x", "http://dt"));
        let e = d.intern(Term::iri("x"));
        let f = d.intern(Term::blank("x"));
        let all = [a, b, c, e, f];
        for (i, x) in all.iter().enumerate() {
            for y in &all[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn merge_produces_correct_remap() {
        let mut d1 = Dictionary::new();
        d1.intern_iri("http://x/a");
        d1.intern_iri("http://x/b");

        let mut d2 = Dictionary::new();
        d2.intern_iri("http://x/b"); // id 0 in d2, id 1 in d1
        d2.intern_iri("http://x/c"); // id 1 in d2, new in d1

        let remap = d1.merge(&d2);
        assert_eq!(remap, vec![NodeId(1), NodeId(2)]);
        assert_eq!(d1.len(), 3);
        assert_eq!(d1.term(NodeId(2)), Some(&Term::iri("http://x/c")));
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dictionary::new();
        d.intern_iri("http://x/a");
        d.intern_iri("http://x/b");
        let pairs: Vec<_> = d.iter().map(|(id, _)| id).collect();
        assert_eq!(pairs, vec![NodeId(0), NodeId(1)]);
    }
}
