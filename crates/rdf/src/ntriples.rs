//! N-Triples parsing and serialization.
//!
//! The paper's implementation exchanged partitions over a shared
//! filesystem; our file-based communication backend serializes triples as
//! N-Triples, so the parser/writer pair here is a load-bearing substrate,
//! not a convenience. The subset implemented covers IRIs, blank nodes,
//! plain/lang-tagged/typed literals and the standard string escapes.

use crate::graph::Graph;
use crate::term::Term;
use std::fmt::Write as _;

/// Parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtError {
    /// Line the error occurred on (1-based).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for NtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N-Triples parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NtError {}

fn err(line: usize, message: impl Into<String>) -> NtError {
    NtError {
        line,
        message: message.into(),
    }
}

/// Parse an N-Triples document into (and interning against) `graph`.
/// Returns the number of triples inserted (duplicates not counted).
pub fn parse_ntriples(input: &str, graph: &mut Graph) -> Result<usize, NtError> {
    let mut added = 0;
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cur = Cursor {
            bytes: line.as_bytes(),
            pos: 0,
            line: lineno,
        };
        let s = cur.parse_term()?;
        cur.skip_ws();
        let p = cur.parse_term()?;
        cur.skip_ws();
        let o = cur.parse_term()?;
        cur.skip_ws();
        if !cur.eat(b'.') {
            return Err(err(lineno, "expected terminating '.'"));
        }
        cur.skip_ws();
        if !cur.at_end() {
            return Err(err(lineno, "trailing content after '.'"));
        }
        if p.is_literal() || p.is_blank() {
            return Err(err(lineno, "predicate must be an IRI"));
        }
        if s.is_literal() {
            return Err(err(lineno, "subject must not be a literal"));
        }
        if graph.insert_terms(s, p, o) {
            added += 1;
        }
    }
    Ok(added)
}

/// Serialize a graph as N-Triples, sorted for determinism.
pub fn write_ntriples(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph.store.iter_sorted() {
        let (s, p, o) = graph.decode(t);
        write_term(&mut out, &s);
        out.push(' ');
        write_term(&mut out, &p);
        out.push(' ');
        write_term(&mut out, &o);
        out.push_str(" .\n");
    }
    out
}

fn write_term(out: &mut String, t: &Term) {
    match t {
        Term::Iri(iri) => {
            let _ = write!(out, "<{iri}>");
        }
        Term::Blank(l) => {
            let _ = write!(out, "_:{l}");
        }
        Term::Literal {
            lexical,
            lang,
            datatype,
        } => {
            out.push('"');
            for c in lexical.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('"');
            if let Some(lang) = lang {
                let _ = write!(out, "@{lang}");
            } else if let Some(dt) = datatype {
                let _ = write!(out, "^^<{dt}>");
            }
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn parse_term(&mut self) -> Result<Term, NtError> {
        match self.peek() {
            Some(b'<') => self.parse_iri(),
            Some(b'_') => self.parse_blank(),
            Some(b'"') => self.parse_literal(),
            Some(c) => Err(err(self.line, format!("unexpected character '{}'", c as char))),
            None => Err(err(self.line, "unexpected end of line")),
        }
    }

    fn parse_iri(&mut self) -> Result<Term, NtError> {
        let opened = self.eat(b'<');
        debug_assert!(opened, "parse_iri called off a '<'");
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'>' {
                let iri = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| err(self.line, "invalid UTF-8 in IRI"))?;
                self.pos += 1;
                if iri.is_empty() {
                    return Err(err(self.line, "empty IRI"));
                }
                return Ok(Term::iri(iri));
            }
            self.pos += 1;
        }
        Err(err(self.line, "unterminated IRI"))
    }

    fn parse_blank(&mut self) -> Result<Term, NtError> {
        let opened = self.eat(b'_');
        debug_assert!(opened, "parse_blank called off a '_'");
        if !self.eat(b':') {
            return Err(err(self.line, "blank node must start with '_:'"));
        }
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        // A trailing '.' belongs to the statement terminator, not the label.
        let mut end = self.pos;
        while end > start && self.bytes[end - 1] == b'.' {
            end -= 1;
        }
        self.pos = end;
        if end == start {
            return Err(err(self.line, "empty blank node label"));
        }
        let label = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| err(self.line, "invalid UTF-8 in blank node label"))?;
        Ok(Term::blank(label))
    }

    fn parse_literal(&mut self) -> Result<Term, NtError> {
        let opened = self.eat(b'"');
        debug_assert!(opened, "parse_literal called off a '\"'");
        let mut lex = String::new();
        loop {
            match self.peek() {
                None => return Err(err(self.line, "unterminated literal")),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => lex.push('"'),
                        Some(b'\\') => lex.push('\\'),
                        Some(b'n') => lex.push('\n'),
                        Some(b'r') => lex.push('\r'),
                        Some(b't') => lex.push('\t'),
                        Some(b'u') | Some(b'U') => {
                            let long = self.peek() == Some(b'U');
                            self.pos += 1;
                            let n = if long { 8 } else { 4 };
                            if self.pos + n > self.bytes.len() {
                                return Err(err(self.line, "truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + n])
                                    .map_err(|_| err(self.line, "bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| err(self.line, "bad hex in \\u escape"))?;
                            let c = char::from_u32(cp)
                                .ok_or_else(|| err(self.line, "invalid code point"))?;
                            lex.push(c);
                            self.pos += n - 1; // the final +1 happens below
                        }
                        _ => return Err(err(self.line, "unknown escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| err(self.line, "invalid UTF-8 in literal"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| err(self.line, "truncated literal"))?;
                    lex.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        // language tag or datatype?
        if self.eat(b'@') {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'-' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.pos == start {
                return Err(err(self.line, "empty language tag"));
            }
            let lang = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| err(self.line, "invalid UTF-8 in language tag"))?;
            return Ok(Term::lang_literal(lex, lang));
        }
        if self.peek() == Some(b'^') {
            self.pos += 1;
            if !self.eat(b'^') {
                return Err(err(self.line, "expected '^^' before datatype"));
            }
            let dt = self.parse_iri()?;
            let Term::Iri(dt) = dt else { unreachable!() };
            return Ok(Term::Literal {
                lexical: lex.into(),
                lang: None,
                datatype: Some(dt),
            });
        }
        Ok(Term::literal(lex))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn roundtrip(src: &str) -> String {
        let mut g = Graph::new();
        parse_ntriples(src, &mut g).unwrap();
        write_ntriples(&g)
    }

    #[test]
    fn parses_simple_triple() {
        let mut g = Graph::new();
        let n = parse_ntriples("<http://x/a> <http://x/p> <http://x/b> .\n", &mut g).unwrap();
        assert_eq!(n, 1);
        assert!(g.contains_terms(
            &Term::iri("http://x/a"),
            &Term::iri("http://x/p"),
            &Term::iri("http://x/b")
        ));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let src = "# a comment\n\n<http://x/a> <http://x/p> <http://x/b> .\n   \n";
        let mut g = Graph::new();
        assert_eq!(parse_ntriples(src, &mut g).unwrap(), 1);
    }

    #[test]
    fn parses_literals_with_escapes() {
        let src = r#"<http://x/a> <http://x/p> "line1\nline2 \"quoted\" \\ tab\t" ."#;
        let mut g = Graph::new();
        parse_ntriples(src, &mut g).unwrap();
        let t = *g.store.iter().next().unwrap();
        let (_, _, o) = g.decode(t);
        assert_eq!(o.as_literal(), Some("line1\nline2 \"quoted\" \\ tab\t"));
    }

    #[test]
    fn parses_lang_and_typed_literals() {
        let src = concat!(
            "<http://x/a> <http://x/p> \"hello\"@en .\n",
            "<http://x/a> <http://x/q> \"3\"^^<http://www.w3.org/2001/XMLSchema#int> .\n"
        );
        let mut g = Graph::new();
        assert_eq!(parse_ntriples(src, &mut g).unwrap(), 2);
        assert!(g.contains_terms(
            &Term::iri("http://x/a"),
            &Term::iri("http://x/p"),
            &Term::lang_literal("hello", "en")
        ));
        assert!(g.contains_terms(
            &Term::iri("http://x/a"),
            &Term::iri("http://x/q"),
            &Term::typed_literal("3", "http://www.w3.org/2001/XMLSchema#int")
        ));
    }

    #[test]
    fn parses_unicode_escapes() {
        let src = r#"<http://x/a> <http://x/p> "snowman ☃ and \U0001F600" ."#;
        let mut g = Graph::new();
        parse_ntriples(src, &mut g).unwrap();
        let t = *g.store.iter().next().unwrap();
        let (_, _, o) = g.decode(t);
        assert_eq!(o.as_literal(), Some("snowman ☃ and 😀"));
    }

    #[test]
    fn parses_blank_nodes() {
        let src = "_:b0 <http://x/p> _:b1 .";
        let mut g = Graph::new();
        parse_ntriples(src, &mut g).unwrap();
        assert!(g.contains_terms(
            &Term::blank("b0"),
            &Term::iri("http://x/p"),
            &Term::blank("b1")
        ));
    }

    #[test]
    fn blank_node_object_without_space_before_dot() {
        let src = "_:b0 <http://x/p> _:b1.";
        let mut g = Graph::new();
        parse_ntriples(src, &mut g).unwrap();
        assert!(g.contains_terms(
            &Term::blank("b0"),
            &Term::iri("http://x/p"),
            &Term::blank("b1")
        ));
    }

    #[test]
    fn rejects_malformed_lines() {
        let cases = [
            ("<http://x/a> <http://x/p> <http://x/b>", "missing dot"),
            ("<http://x/a> <http://x/p> .", "missing object"),
            ("<http://x/a> \"lit\" <http://x/b> .", "literal predicate"),
            ("\"lit\" <http://x/p> <http://x/b> .", "literal subject"),
            ("<http://x/a> <http://x/p> <http://x/b> . extra", "trailing"),
            ("<unterminated <http://x/p> <http://x/b> .", "unterminated iri is eaten"),
        ];
        for (src, why) in cases {
            let mut g = Graph::new();
            assert!(parse_ntriples(src, &mut g).is_err(), "{why}: {src}");
        }
    }

    #[test]
    fn error_reports_line_number() {
        let src = "<http://x/a> <http://x/p> <http://x/b> .\nbogus line\n";
        let mut g = Graph::new();
        let e = parse_ntriples(src, &mut g).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn write_then_parse_is_identity() {
        let src = concat!(
            "<http://x/a> <http://x/p> <http://x/b> .\n",
            "<http://x/a> <http://x/p> \"esc\\\"aped\\n\" .\n",
            "_:b0 <http://x/p> \"v\"@en-GB .\n",
        );
        let first = roundtrip(src);
        let second = roundtrip(&first);
        assert_eq!(first, second);
        // and parsing the output yields the same triple count
        let mut g = Graph::new();
        assert_eq!(parse_ntriples(&first, &mut g).unwrap(), 3);
    }

    #[test]
    fn duplicate_lines_counted_once() {
        let src = "<http://x/a> <http://x/p> <http://x/b> .\n<http://x/a> <http://x/p> <http://x/b> .\n";
        let mut g = Graph::new();
        assert_eq!(parse_ntriples(src, &mut g).unwrap(), 1);
        assert_eq!(g.len(), 1);
    }
}
