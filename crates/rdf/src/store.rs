//! An indexed, in-memory triple store over dictionary-encoded triples.
//!
//! Three nested-map indexes (SPO, POS, OSP) give O(1)-ish access for every
//! bound/unbound combination of a [`TriplePattern`], which is what the
//! datalog engine's joins need. Insertion maintains all three indexes and
//! a membership set used for duplicate suppression during closure
//! computation.

use crate::dictionary::NodeId;
use crate::fx::{FxHashMap, FxHashSet};
use crate::triple::Triple;

pub(crate) type Nested = FxHashMap<NodeId, FxHashMap<NodeId, Vec<NodeId>>>;

/// A match pattern: `None` positions are wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TriplePattern {
    /// Subject constraint.
    pub s: Option<NodeId>,
    /// Predicate constraint.
    pub p: Option<NodeId>,
    /// Object constraint.
    pub o: Option<NodeId>,
}

impl TriplePattern {
    /// A pattern with every position wildcarded.
    pub fn any() -> Self {
        Self::default()
    }

    /// Construct from options.
    pub fn new(s: Option<NodeId>, p: Option<NodeId>, o: Option<NodeId>) -> Self {
        TriplePattern { s, p, o }
    }

    /// Does `t` satisfy this pattern?
    #[inline]
    pub fn matches(&self, t: &Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }

    /// Number of bound positions (0–3).
    pub fn bound_count(&self) -> usize {
        usize::from(self.s.is_some()) + usize::from(self.p.is_some()) + usize::from(self.o.is_some())
    }
}

/// The indexed triple store.
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    all: FxHashSet<Triple>,
    spo: Nested, // s -> p -> [o]
    pos: Nested, // p -> o -> [s]
    osp: Nested, // o -> s -> [p]
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// `true` iff the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Insert a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        if !self.all.insert(t) {
            return false;
        }
        self.spo.entry(t.s).or_default().entry(t.p).or_default().push(t.o);
        self.pos.entry(t.p).or_default().entry(t.o).or_default().push(t.s);
        self.osp.entry(t.o).or_default().entry(t.s).or_default().push(t.p);
        true
    }

    /// Insert every triple from an iterator; returns how many were new.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = Triple>) -> usize {
        iter.into_iter().filter(|&t| self.insert(t)).count()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, t: &Triple) -> bool {
        self.all.contains(t)
    }

    /// Iterate over all triples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.all.iter()
    }

    /// All triples, sorted SPO — deterministic order for tests/serialization.
    pub fn iter_sorted(&self) -> Vec<Triple> {
        let mut v: Vec<Triple> = self.all.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Invoke `f` for every triple matching `pat`, using the cheapest
    /// available index. This is the workhorse of the datalog joins.
    pub fn for_each_match(&self, pat: TriplePattern, mut f: impl FnMut(Triple)) {
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple::new(s, p, o);
                if self.all.contains(&t) {
                    f(t);
                }
            }
            (Some(s), Some(p), None) => {
                if let Some(os) = self.spo.get(&s).and_then(|m| m.get(&p)) {
                    for &o in os {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (Some(s), None, Some(o)) => {
                if let Some(ps) = self.osp.get(&o).and_then(|m| m.get(&s)) {
                    for &p in ps {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (None, Some(p), Some(o)) => {
                if let Some(ss) = self.pos.get(&p).and_then(|m| m.get(&o)) {
                    for &s in ss {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (Some(s), None, None) => {
                if let Some(pm) = self.spo.get(&s) {
                    for (&p, os) in pm {
                        for &o in os {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, Some(p), None) => {
                if let Some(om) = self.pos.get(&p) {
                    for (&o, ss) in om {
                        for &s in ss {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, None, Some(o)) => {
                if let Some(sm) = self.osp.get(&o) {
                    for (&s, ps) in sm {
                        for &p in ps {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, None, None) => {
                for &t in &self.all {
                    f(t);
                }
            }
        }
    }

    /// Collect all matches of `pat` into a vector.
    pub fn matches(&self, pat: TriplePattern) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_match(pat, |t| out.push(t));
        out
    }

    /// Number of matches without materializing them. Patterns with at
    /// least one bound position are answered from posting-list lengths —
    /// no iteration, no callback.
    pub fn count_matches(&self, pat: TriplePattern) -> usize {
        fn row_len(nested: &Nested, k0: NodeId) -> usize {
            nested
                .get(&k0)
                .map_or(0, |m| m.values().map(Vec::len).sum())
        }
        fn list_len(nested: &Nested, k0: NodeId, k1: NodeId) -> usize {
            nested
                .get(&k0)
                .and_then(|m| m.get(&k1))
                .map_or(0, Vec::len)
        }
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => {
                usize::from(self.all.contains(&Triple::new(s, p, o)))
            }
            (Some(s), Some(p), None) => list_len(&self.spo, s, p),
            (None, Some(p), Some(o)) => list_len(&self.pos, p, o),
            (Some(s), None, Some(o)) => list_len(&self.osp, o, s),
            (Some(s), None, None) => row_len(&self.spo, s),
            (None, Some(p), None) => row_len(&self.pos, p),
            (None, None, Some(o)) => row_len(&self.osp, o),
            (None, None, None) => self.all.len(),
        }
    }

    /// The three nested indexes in `(spo, pos, osp)` order — the freeze
    /// path walks them to emit each column family in nearly-sorted runs
    /// instead of fully re-sorting the triple set.
    pub(crate) fn nested_indexes(&self) -> [&Nested; 3] {
        [&self.spo, &self.pos, &self.osp]
    }

    /// Every distinct node appearing in subject or object position.
    /// (Predicates are deliberately excluded: the paper's partitioners own
    /// *resources*, i.e. graph vertices.)
    pub fn nodes(&self) -> FxHashSet<NodeId> {
        let mut set = FxHashSet::default();
        for t in &self.all {
            set.insert(t.s);
            set.insert(t.o);
        }
        set
    }

    /// Every distinct subject.
    pub fn subjects(&self) -> FxHashSet<NodeId> {
        self.spo.keys().copied().collect()
    }

    /// Every distinct predicate.
    pub fn predicates(&self) -> FxHashSet<NodeId> {
        self.pos.keys().copied().collect()
    }

    /// Histogram `predicate -> triple count`; feeds the edge weights of the
    /// rule-dependency partitioner.
    pub fn predicate_counts(&self) -> FxHashMap<NodeId, usize> {
        let mut h: FxHashMap<NodeId, usize> = FxHashMap::default();
        for t in &self.all {
            *h.entry(t.p).or_default() += 1;
        }
        h
    }

    /// Merge all triples of `other` into `self`; returns how many were new.
    pub fn union_with(&mut self, other: &TripleStore) -> usize {
        self.extend(other.iter().copied())
    }
}

impl FromIterator<Triple> for TripleStore {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut s = TripleStore::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    fn sample() -> TripleStore {
        [t(0, 1, 2), t(0, 1, 3), t(0, 2, 2), t(4, 1, 2), t(4, 2, 0)]
            .into_iter()
            .collect()
    }

    #[test]
    fn insert_deduplicates() {
        let mut s = TripleStore::new();
        assert!(s.insert(t(1, 2, 3)));
        assert!(!s.insert(t(1, 2, 3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn contains_and_len() {
        let s = sample();
        assert_eq!(s.len(), 5);
        assert!(s.contains(&t(0, 1, 2)));
        assert!(!s.contains(&t(9, 9, 9)));
    }

    #[test]
    fn all_eight_pattern_shapes() {
        let s = sample();
        let pat = |a: Option<u32>, b: Option<u32>, c: Option<u32>| {
            TriplePattern::new(a.map(NodeId), b.map(NodeId), c.map(NodeId))
        };
        // fully bound
        assert_eq!(s.matches(pat(Some(0), Some(1), Some(2))), vec![t(0, 1, 2)]);
        assert!(s.matches(pat(Some(0), Some(1), Some(9))).is_empty());
        // s p ?
        let mut m = s.matches(pat(Some(0), Some(1), None));
        m.sort_unstable();
        assert_eq!(m, vec![t(0, 1, 2), t(0, 1, 3)]);
        // s ? o
        let mut m = s.matches(pat(Some(0), None, Some(2)));
        m.sort_unstable();
        assert_eq!(m, vec![t(0, 1, 2), t(0, 2, 2)]);
        // ? p o
        let mut m = s.matches(pat(None, Some(1), Some(2)));
        m.sort_unstable();
        assert_eq!(m, vec![t(0, 1, 2), t(4, 1, 2)]);
        // s ? ?
        assert_eq!(s.matches(pat(Some(4), None, None)).len(), 2);
        // ? p ?
        assert_eq!(s.matches(pat(None, Some(1), None)).len(), 3);
        // ? ? o
        assert_eq!(s.matches(pat(None, None, Some(2))).len(), 3);
        // ? ? ?
        assert_eq!(s.matches(TriplePattern::any()).len(), 5);
    }

    #[test]
    fn matches_agree_with_linear_scan() {
        let s = sample();
        let pats = [
            TriplePattern::new(Some(NodeId(0)), None, None),
            TriplePattern::new(None, Some(NodeId(2)), None),
            TriplePattern::new(None, None, Some(NodeId(0))),
            TriplePattern::new(Some(NodeId(4)), Some(NodeId(2)), None),
            TriplePattern::any(),
        ];
        for pat in pats {
            let mut via_index = s.matches(pat);
            via_index.sort_unstable();
            let mut via_scan: Vec<Triple> =
                s.iter().copied().filter(|t| pat.matches(t)).collect();
            via_scan.sort_unstable();
            assert_eq!(via_index, via_scan, "pattern {pat:?}");
        }
    }

    #[test]
    fn nodes_excludes_predicates() {
        let s: TripleStore = [t(10, 99, 11)].into_iter().collect();
        let nodes = s.nodes();
        assert!(nodes.contains(&NodeId(10)));
        assert!(nodes.contains(&NodeId(11)));
        assert!(!nodes.contains(&NodeId(99)));
    }

    #[test]
    fn predicate_counts_histogram() {
        let s = sample();
        let h = s.predicate_counts();
        assert_eq!(h.get(&NodeId(1)), Some(&3));
        assert_eq!(h.get(&NodeId(2)), Some(&2));
    }

    #[test]
    fn union_with_counts_only_new() {
        let mut a = sample();
        let b: TripleStore = [t(0, 1, 2), t(7, 7, 7)].into_iter().collect();
        assert_eq!(a.union_with(&b), 1);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn iter_sorted_is_deterministic_and_complete() {
        let s = sample();
        let v = s.iter_sorted();
        assert_eq!(v.len(), 5);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pattern_bound_count() {
        assert_eq!(TriplePattern::any().bound_count(), 0);
        assert_eq!(
            TriplePattern::new(Some(NodeId(0)), None, Some(NodeId(1))).bound_count(),
            2
        );
    }

    #[test]
    fn count_matches_equals_matches_len_for_all_shapes() {
        let s = sample();
        let opts = [None, Some(0), Some(1), Some(2), Some(4), Some(9)];
        for a in opts {
            for b in opts {
                for c in opts {
                    let pat =
                        TriplePattern::new(a.map(NodeId), b.map(NodeId), c.map(NodeId));
                    assert_eq!(
                        s.count_matches(pat),
                        s.matches(pat).len(),
                        "pattern {pat:?}"
                    );
                }
            }
        }
    }
}
