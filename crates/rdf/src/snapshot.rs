//! Binary knowledge-base snapshots.
//!
//! A materialized KB exists to be loaded again and queried; this module
//! gives the repository a real persistence story: a compact binary format
//! holding the dictionary followed by the 12-byte encoded triples.
//! Loading restores exact ids, so snapshots taken before/after
//! materialization stay comparable.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "OWLPAR1\n" | u32 term_count | terms... | u64 triple_count | triples...
//! term := tag u8 (0 iri, 1 blank, 2 literal, 3 lang literal, 4 typed literal)
//!         + (u32 len + utf8)×(1 or 2 strings)
//! triple := 3 × u32 (s, p, o)
//! ```

use crate::graph::Graph;
use crate::term::Term;
use crate::triple::Triple;
use crate::NodeId;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"OWLPAR1\n";

/// Snapshot load error.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the bytes.
    Format(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Format(m) => write!(f, "snapshot format error: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn format_err(m: impl Into<String>) -> SnapshotError {
    SnapshotError::Format(m.into())
}

/// Write `graph` as a snapshot.
pub fn save(graph: &Graph, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(graph.dict.len() as u32).to_le_bytes())?;
    for (_, term) in graph.dict.iter() {
        match term {
            Term::Iri(s) => {
                w.write_all(&[0])?;
                write_str(w, s)?;
            }
            Term::Blank(s) => {
                w.write_all(&[1])?;
                write_str(w, s)?;
            }
            Term::Literal {
                lexical,
                lang: None,
                datatype: None,
            } => {
                w.write_all(&[2])?;
                write_str(w, lexical)?;
            }
            Term::Literal {
                lexical,
                lang: Some(lang),
                ..
            } => {
                w.write_all(&[3])?;
                write_str(w, lexical)?;
                write_str(w, lang)?;
            }
            Term::Literal {
                lexical,
                datatype: Some(dt),
                ..
            } => {
                w.write_all(&[4])?;
                write_str(w, lexical)?;
                write_str(w, dt)?;
            }
        }
    }
    let triples = graph.store.iter_sorted();
    w.write_all(&(triples.len() as u64).to_le_bytes())?;
    for t in triples {
        w.write_all(&t.s.0.to_le_bytes())?;
        w.write_all(&t.p.0.to_le_bytes())?;
        w.write_all(&t.o.0.to_le_bytes())?;
    }
    Ok(())
}

/// Read a snapshot back into a fresh graph.
pub fn load(r: &mut impl Read) -> Result<Graph, SnapshotError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(format_err("bad magic (not an owlpar snapshot)"));
    }
    let term_count = read_u32(r)? as usize;
    let mut graph = Graph::new();
    for i in 0..term_count {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let term = match tag[0] {
            0 => Term::iri(read_str(r)?),
            1 => Term::blank(read_str(r)?),
            2 => Term::literal(read_str(r)?),
            3 => {
                let lex = read_str(r)?;
                let lang = read_str(r)?;
                Term::lang_literal(lex, lang)
            }
            4 => {
                let lex = read_str(r)?;
                let dt = read_str(r)?;
                Term::typed_literal(lex, dt)
            }
            t => return Err(format_err(format!("unknown term tag {t}"))),
        };
        let id = graph.intern(term);
        if id.index() != i {
            return Err(format_err("duplicate term in snapshot dictionary"));
        }
    }
    let triple_count = read_u64(r)?;
    for _ in 0..triple_count {
        let s = read_u32(r)?;
        let p = read_u32(r)?;
        let o = read_u32(r)?;
        for id in [s, p, o] {
            if id as usize >= term_count {
                return Err(format_err(format!("triple id {id} out of range")));
            }
        }
        graph
            .store
            .insert(Triple::new(NodeId(s), NodeId(p), NodeId(o)));
    }
    Ok(graph)
}

/// Serialize `graph` into an in-memory snapshot image — the payload the
/// serve-layer checkpoint format wraps with a checksum.
pub fn save_to_vec(graph: &Graph) -> Result<Vec<u8>, SnapshotError> {
    let mut buf = Vec::new();
    save(graph, &mut buf)?;
    Ok(buf)
}

/// Load a snapshot from an in-memory image, rejecting trailing bytes
/// (a length mismatch means the container that carried the image lied).
pub fn load_from_slice(bytes: &[u8]) -> Result<Graph, SnapshotError> {
    let mut r = bytes;
    let g = load(&mut r)?;
    if !r.is_empty() {
        return Err(format_err(format!(
            "{} trailing byte(s) after snapshot",
            r.len()
        )));
    }
    Ok(g)
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_u32(r: &mut impl Read) -> Result<u32, SnapshotError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, SnapshotError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_str(r: &mut impl Read) -> Result<String, SnapshotError> {
    let len = read_u32(r)? as usize;
    if len > 64 * 1024 * 1024 {
        return Err(format_err("unreasonable string length"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| format_err("invalid UTF-8 in snapshot string"))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert_iris("http://x/a", "http://x/p", "http://x/b");
        g.insert_terms(
            Term::iri("http://x/a"),
            Term::iri("http://x/name"),
            Term::lang_literal("Ada", "en"),
        );
        g.insert_terms(
            Term::blank("b0"),
            Term::iri("http://x/age"),
            Term::typed_literal("42", "http://www.w3.org/2001/XMLSchema#integer"),
        );
        g.insert_terms(
            Term::iri("http://x/a"),
            Term::iri("http://x/note"),
            Term::literal("plain"),
        );
        g
    }

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        save(g, &mut buf).unwrap();
        load(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let back = roundtrip(&g);
        assert_eq!(back.len(), g.len());
        assert_eq!(back.dict.len(), g.dict.len());
        assert_eq!(back.term_fingerprint(), g.term_fingerprint());
        // exact id preservation
        for (id, term) in g.dict.iter() {
            assert_eq!(back.dict.term(id), Some(term));
        }
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::new();
        let back = roundtrip(&g);
        assert!(back.is_empty());
        assert!(back.dict.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        save(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(SnapshotError::Format(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        save(&sample(), &mut buf).unwrap();
        for cut in [4, buf.len() / 2, buf.len() - 3] {
            assert!(
                load(&mut &buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn out_of_range_triple_id_rejected() {
        let mut g = Graph::new();
        g.insert_iris("http://x/a", "http://x/p", "http://x/b");
        let mut buf = Vec::new();
        save(&g, &mut buf).unwrap();
        // corrupt the last triple's object id to a huge value
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(SnapshotError::Format(m)) if m.contains("out of range")
        ));
    }

    #[test]
    fn vec_roundtrip_and_trailing_bytes_rejected() {
        let g = sample();
        let img = save_to_vec(&g).unwrap();
        let back = load_from_slice(&img).unwrap();
        assert_eq!(back.term_fingerprint(), g.term_fingerprint());
        let mut padded = img.clone();
        padded.push(0);
        assert!(matches!(
            load_from_slice(&padded),
            Err(SnapshotError::Format(m)) if m.contains("trailing")
        ));
    }

    #[test]
    fn snapshot_is_compact() {
        let g = sample();
        let mut bin = Vec::new();
        save(&g, &mut bin).unwrap();
        let text = crate::ntriples::write_ntriples(&g);
        assert!(
            bin.len() < text.len() * 2,
            "binary ({}) should be in the same ballpark or smaller than text ({})",
            bin.len(),
            text.len()
        );
    }
}
