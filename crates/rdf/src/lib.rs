//! RDF substrate for the owlpar parallel OWL reasoner.
//!
//! This crate provides the data-representation layer that the paper's
//! implementation obtained from Jena: an RDF term model, a dictionary
//! (string interner) that maps terms to dense integer ids, an indexed
//! in-memory triple store with pattern matching, and N-Triples
//! parsing/serialization used by the shared-file communication backend.
//!
//! Everything downstream (the datalog engine, the partitioners, the
//! parallel reasoner) operates on dictionary-encoded [`Triple`]s — three
//! `u32` ids — which keeps the hot joins allocation-free and cache
//! friendly, per the hpc-parallel guides.
//!
//! # Quick example
//!
//! ```
//! use owlpar_rdf::{Graph, Term};
//!
//! let mut g = Graph::new();
//! let s = g.intern_iri("http://example.org/alice");
//! let p = g.intern_iri("http://example.org/knows");
//! let o = g.intern_iri("http://example.org/bob");
//! g.insert(s, p, o);
//! assert_eq!(g.len(), 1);
//! assert_eq!(g.term(s), Some(&Term::iri("http://example.org/alice")));
//! ```

#![forbid(unsafe_code)]

pub mod dictionary;
pub mod frozen;
pub mod fx;
pub mod graph;
pub mod ntriples;
pub mod snapshot;
pub mod store;
pub mod term;
pub mod turtle;
pub mod triple;
pub mod vocab;

pub use dictionary::{Dictionary, NodeId};
pub use frozen::{FrozenStore, FrozenView, OverlayStore, TripleSource};
pub use graph::Graph;
pub use ntriples::{parse_ntriples, write_ntriples, NtError};
pub use store::{TriplePattern, TripleStore};
pub use term::Term;
pub use triple::Triple;
