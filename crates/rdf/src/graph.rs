//! [`Graph`]: a triple store paired with its dictionary.
//!
//! This is the unit the public API hands around: generators produce a
//! `Graph`, the reasoner closes a `Graph`, partitioners split a `Graph`.

use crate::dictionary::{Dictionary, NodeId};
use crate::store::{TriplePattern, TripleStore};
use crate::term::Term;
use crate::triple::Triple;

/// A dictionary-encoded RDF graph.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    /// The term ↔ id mapping.
    pub dict: Dictionary,
    /// The encoded triples.
    pub store: TripleStore,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` iff the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Intern a term.
    pub fn intern(&mut self, t: Term) -> NodeId {
        self.dict.intern(t)
    }

    /// Intern an IRI string.
    pub fn intern_iri(&mut self, iri: impl AsRef<str>) -> NodeId {
        self.dict.intern_iri(iri)
    }

    /// Term for an id.
    pub fn term(&self, id: NodeId) -> Option<&Term> {
        self.dict.term(id)
    }

    /// Insert an encoded triple. Returns `true` if new.
    pub fn insert(&mut self, s: NodeId, p: NodeId, o: NodeId) -> bool {
        self.store.insert(Triple::new(s, p, o))
    }

    /// Insert a triple of terms, interning as needed. Returns `true` if new.
    pub fn insert_terms(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.dict.intern(s);
        let p = self.dict.intern(p);
        let o = self.dict.intern(o);
        self.insert(s, p, o)
    }

    /// Insert a triple of IRIs given as strings. Returns `true` if new.
    pub fn insert_iris(
        &mut self,
        s: impl AsRef<str>,
        p: impl AsRef<str>,
        o: impl AsRef<str>,
    ) -> bool {
        self.insert_terms(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// Does the graph contain the triple of terms?
    pub fn contains_terms(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.dict.id(s), self.dict.id(p), self.dict.id(o)) {
            (Some(s), Some(p), Some(o)) => self.store.contains(&Triple::new(s, p, o)),
            _ => false,
        }
    }

    /// Pattern matching re-exported at graph level.
    pub fn matches(&self, pat: TriplePattern) -> Vec<Triple> {
        self.store.matches(pat)
    }

    /// Decode a triple back into terms (panics if ids are foreign to this
    /// graph's dictionary — a programming error).
    #[allow(clippy::expect_used)]
    pub fn decode(&self, t: Triple) -> (Term, Term, Term) {
        (
            self.dict.term(t.s).expect("unknown subject id").clone(),
            self.dict.term(t.p).expect("unknown predicate id").clone(),
            self.dict.term(t.o).expect("unknown object id").clone(),
        )
    }

    /// Import every triple of `other` (different dictionary) into `self`,
    /// remapping ids. Returns the number of new triples.
    pub fn absorb(&mut self, other: &Graph) -> usize {
        let remap = self.dict.merge(&other.dict);
        let mut added = 0;
        for t in other.store.iter() {
            if self.store.insert(Triple::new(
                remap[t.s.index()],
                remap[t.p.index()],
                remap[t.o.index()],
            )) {
                added += 1;
            }
        }
        added
    }

    /// A deterministic fingerprint of the triple set *as terms* (not ids),
    /// usable to compare closures computed with different dictionaries.
    pub fn term_fingerprint(&self) -> u64 {
        use std::hash::BuildHasher;
        let bh = crate::fx::FxBuildHasher::default();
        let mut acc: u64 = 0;
        for t in self.store.iter() {
            // XOR-fold so the fingerprint is order independent.
            acc ^= bh.hash_one(self.decode(*t));
        }
        acc ^ (self.store.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn insert_and_contains_via_terms() {
        let mut g = Graph::new();
        assert!(g.insert_iris("http://x/a", "http://x/p", "http://x/b"));
        assert!(!g.insert_iris("http://x/a", "http://x/p", "http://x/b"));
        assert!(g.contains_terms(
            &Term::iri("http://x/a"),
            &Term::iri("http://x/p"),
            &Term::iri("http://x/b")
        ));
        assert!(!g.contains_terms(
            &Term::iri("http://x/b"),
            &Term::iri("http://x/p"),
            &Term::iri("http://x/a")
        ));
    }

    #[test]
    fn decode_roundtrip() {
        let mut g = Graph::new();
        g.insert_terms(Term::iri("http://x/s"), Term::iri("http://x/p"), Term::literal("42"));
        let t = *g.store.iter().next().unwrap();
        let (s, p, o) = g.decode(t);
        assert_eq!(s, Term::iri("http://x/s"));
        assert_eq!(p, Term::iri("http://x/p"));
        assert_eq!(o, Term::literal("42"));
    }

    #[test]
    fn absorb_remaps_foreign_ids() {
        let mut g1 = Graph::new();
        g1.insert_iris("http://x/a", "http://x/p", "http://x/b");

        let mut g2 = Graph::new();
        // Insert in a different order so ids differ between dictionaries.
        g2.intern_iri("http://x/zzz");
        g2.insert_iris("http://x/b", "http://x/p", "http://x/c");
        g2.insert_iris("http://x/a", "http://x/p", "http://x/b"); // duplicate of g1's

        let added = g1.absorb(&g2);
        assert_eq!(added, 1);
        assert_eq!(g1.len(), 2);
        assert!(g1.contains_terms(
            &Term::iri("http://x/b"),
            &Term::iri("http://x/p"),
            &Term::iri("http://x/c")
        ));
    }

    #[test]
    fn fingerprint_is_dictionary_independent() {
        let mut g1 = Graph::new();
        g1.insert_iris("http://x/a", "http://x/p", "http://x/b");
        g1.insert_iris("http://x/c", "http://x/p", "http://x/d");

        let mut g2 = Graph::new();
        g2.intern_iri("http://unrelated/padding"); // shift all ids
        g2.insert_iris("http://x/c", "http://x/p", "http://x/d");
        g2.insert_iris("http://x/a", "http://x/p", "http://x/b");

        assert_eq!(g1.term_fingerprint(), g2.term_fingerprint());

        g2.insert_iris("http://x/e", "http://x/p", "http://x/f");
        assert_ne!(g1.term_fingerprint(), g2.term_fingerprint());
    }

    #[test]
    fn empty_graph_properties() {
        let g = Graph::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.matches(TriplePattern::any()), vec![]);
    }
}
