//! RDF terms: IRIs, blank nodes and literals.
//!
//! Terms are only materialized at the edges of the system (parsing,
//! serialization, data generation, reporting). The reasoning core works on
//! dictionary-encoded [`crate::NodeId`]s.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An RDF term in the positions subject/predicate/object.
///
/// Strings are held behind `Arc<str>` so that cloning a term (which happens
/// when a term is both stored in the dictionary and handed back to callers)
/// never copies the text.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Term {
    /// An IRI reference, stored without the enclosing `<` `>`.
    Iri(Arc<str>),
    /// A blank node label, stored without the leading `_:`.
    Blank(Arc<str>),
    /// A literal with optional language tag or datatype IRI.
    Literal {
        /// The lexical form (unescaped).
        lexical: Arc<str>,
        /// Language tag (mutually exclusive with `datatype` per RDF 1.0).
        lang: Option<Arc<str>>,
        /// Datatype IRI, if any.
        datatype: Option<Arc<str>>,
    },
}

impl Term {
    /// Build an IRI term.
    pub fn iri(s: impl AsRef<str>) -> Self {
        Term::Iri(Arc::from(s.as_ref()))
    }

    /// Build a blank-node term from its label (no `_:` prefix).
    pub fn blank(label: impl AsRef<str>) -> Self {
        Term::Blank(Arc::from(label.as_ref()))
    }

    /// Build a plain literal (no language, no datatype).
    pub fn literal(lexical: impl AsRef<str>) -> Self {
        Term::Literal {
            lexical: Arc::from(lexical.as_ref()),
            lang: None,
            datatype: None,
        }
    }

    /// Build a language-tagged literal.
    pub fn lang_literal(lexical: impl AsRef<str>, lang: impl AsRef<str>) -> Self {
        Term::Literal {
            lexical: Arc::from(lexical.as_ref()),
            lang: Some(Arc::from(lang.as_ref())),
            datatype: None,
        }
    }

    /// Build a typed literal.
    pub fn typed_literal(lexical: impl AsRef<str>, datatype: impl AsRef<str>) -> Self {
        Term::Literal {
            lexical: Arc::from(lexical.as_ref()),
            lang: None,
            datatype: Some(Arc::from(datatype.as_ref())),
        }
    }

    /// `true` iff this term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// `true` iff this term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// `true` iff this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// The IRI text if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The lexical form if this term is a literal.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Term::Literal { lexical, .. } => Some(lexical),
            _ => None,
        }
    }

    /// Namespace prefix of an IRI: everything up to and including the last
    /// `#` or `/`. Used by the domain-specific partitioner.
    pub fn namespace(&self) -> Option<&str> {
        let iri = self.as_iri()?;
        let cut = iri.rfind(['#', '/'])? + 1;
        Some(&iri[..cut])
    }

    /// Local name of an IRI: everything after the last `#` or `/`.
    pub fn local_name(&self) -> Option<&str> {
        let iri = self.as_iri()?;
        match iri.rfind(['#', '/']) {
            Some(cut) => Some(&iri[cut + 1..]),
            None => Some(iri),
        }
    }
}

impl fmt::Display for Term {
    /// N-Triples-compatible rendering (escaping handled by the writer).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Blank(l) => write!(f, "_:{l}"),
            Term::Literal {
                lexical,
                lang,
                datatype,
            } => {
                write!(f, "\"{lexical}\"")?;
                if let Some(lang) = lang {
                    write!(f, "@{lang}")?;
                } else if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        assert!(Term::iri("http://x/a").is_iri());
        assert!(Term::blank("b0").is_blank());
        assert!(Term::literal("hi").is_literal());
        assert!(!Term::literal("hi").is_iri());
        assert_eq!(Term::iri("http://x/a").as_iri(), Some("http://x/a"));
        assert_eq!(Term::literal("hi").as_literal(), Some("hi"));
        assert_eq!(Term::iri("http://x/a").as_literal(), None);
    }

    #[test]
    fn namespace_splits_on_hash_and_slash() {
        assert_eq!(
            Term::iri("http://ex.org/ont#Student").namespace(),
            Some("http://ex.org/ont#")
        );
        assert_eq!(
            Term::iri("http://ex.org/data/alice").namespace(),
            Some("http://ex.org/data/")
        );
        assert_eq!(Term::literal("x").namespace(), None);
        assert_eq!(Term::iri("urn:uuid").namespace(), None);
    }

    #[test]
    fn local_name_extraction() {
        assert_eq!(
            Term::iri("http://ex.org/ont#Student").local_name(),
            Some("Student")
        );
        assert_eq!(Term::iri("nocolon").local_name(), Some("nocolon"));
    }

    #[test]
    fn display_renders_ntriples_shapes() {
        assert_eq!(Term::iri("http://x/a").to_string(), "<http://x/a>");
        assert_eq!(Term::blank("b7").to_string(), "_:b7");
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
        assert_eq!(Term::lang_literal("hi", "en").to_string(), "\"hi\"@en");
        assert_eq!(
            Term::typed_literal("3", "http://www.w3.org/2001/XMLSchema#int").to_string(),
            "\"3\"^^<http://www.w3.org/2001/XMLSchema#int>"
        );
    }

    #[test]
    fn literals_with_different_tags_are_distinct() {
        assert_ne!(Term::literal("a"), Term::lang_literal("a", "en"));
        assert_ne!(
            Term::literal("a"),
            Term::typed_literal("a", "http://x/dt")
        );
        assert_ne!(
            Term::lang_literal("a", "en"),
            Term::lang_literal("a", "fr")
        );
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![
            Term::literal("z"),
            Term::iri("http://a"),
            Term::blank("b"),
        ];
        v.sort();
        let w = v.clone();
        v.sort();
        assert_eq!(v, w);
    }
}
