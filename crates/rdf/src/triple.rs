//! Dictionary-encoded triples and their wire encoding.

use crate::dictionary::NodeId;
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// A dictionary-encoded RDF triple: subject, predicate, object ids.
///
/// 12 bytes, `Copy`, hashable — the unit of work everywhere in the system.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Triple {
    /// Subject id.
    pub s: NodeId,
    /// Predicate id.
    pub p: NodeId,
    /// Object id.
    pub o: NodeId,
}

impl Triple {
    /// Construct from the three ids.
    #[inline]
    pub fn new(s: NodeId, p: NodeId, o: NodeId) -> Self {
        Triple { s, p, o }
    }

    /// The triple's components as an array `[s, p, o]`.
    #[inline]
    pub fn as_array(&self) -> [NodeId; 3] {
        [self.s, self.p, self.o]
    }

    /// Serialize into a byte buffer (12 bytes little-endian). Used by the
    /// communication layer of the parallel reasoner.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.s.0);
        buf.put_u32_le(self.p.0);
        buf.put_u32_le(self.o.0);
    }

    /// Inverse of [`Triple::encode`]. Returns `None` if fewer than 12
    /// bytes remain.
    pub fn decode(buf: &mut impl Buf) -> Option<Self> {
        if buf.remaining() < 12 {
            return None;
        }
        Some(Triple {
            s: NodeId(buf.get_u32_le()),
            p: NodeId(buf.get_u32_le()),
            o: NodeId(buf.get_u32_le()),
        })
    }
}

impl From<(NodeId, NodeId, NodeId)> for Triple {
    fn from((s, p, o): (NodeId, NodeId, NodeId)) -> Self {
        Triple { s, p, o }
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({} {} {})", self.s, self.p, self.o)
    }
}

/// Encode a batch of triples into a fresh byte vector.
pub fn encode_batch(triples: &[Triple]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(triples.len() * 12);
    for t in triples {
        t.encode(&mut buf);
    }
    buf
}

/// Decode a batch previously produced by [`encode_batch`].
pub fn decode_batch(mut bytes: &[u8]) -> Vec<Triple> {
    let mut out = Vec::with_capacity(bytes.len() / 12);
    while let Some(t) = Triple::decode(&mut bytes) {
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    #[test]
    fn size_is_12_bytes() {
        assert_eq!(std::mem::size_of::<Triple>(), 12);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let orig = t(1, u32::MAX, 7);
        let mut buf = Vec::new();
        orig.encode(&mut buf);
        assert_eq!(buf.len(), 12);
        let got = Triple::decode(&mut buf.as_slice()).unwrap();
        assert_eq!(got, orig);
    }

    #[test]
    fn decode_short_buffer_is_none() {
        let buf = [0u8; 11];
        assert_eq!(Triple::decode(&mut &buf[..]), None);
    }

    #[test]
    fn batch_roundtrip() {
        let batch = vec![t(0, 1, 2), t(3, 4, 5), t(6, 7, 8)];
        let bytes = encode_batch(&batch);
        assert_eq!(bytes.len(), 36);
        assert_eq!(decode_batch(&bytes), batch);
    }

    #[test]
    fn batch_decode_ignores_trailing_garbage() {
        let mut bytes = encode_batch(&[t(1, 2, 3)]);
        bytes.extend_from_slice(&[0xde, 0xad]); // 2 stray bytes
        assert_eq!(decode_batch(&bytes), vec![t(1, 2, 3)]);
    }

    #[test]
    fn tuple_conversion_and_array() {
        let tr: Triple = (NodeId(1), NodeId(2), NodeId(3)).into();
        assert_eq!(tr.as_array(), [NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn ordering_is_spo_lexicographic() {
        assert!(t(0, 9, 9) < t(1, 0, 0));
        assert!(t(1, 0, 9) < t(1, 1, 0));
        assert!(t(1, 1, 0) < t(1, 1, 1));
    }
}
