//! RDF / RDFS / OWL / XSD vocabulary IRIs used by the OWL-Horst rule set
//! and by schema/instance triple separation.

/// The `rdf:` namespace.
pub const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
/// The `rdfs:` namespace.
pub const RDFS_NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
/// The `owl:` namespace.
pub const OWL_NS: &str = "http://www.w3.org/2002/07/owl#";
/// The `xsd:` namespace.
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema#";

/// `rdf:type`
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// `rdf:Property`
pub const RDF_PROPERTY: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";

/// `rdfs:subClassOf`
pub const RDFS_SUBCLASSOF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
/// `rdfs:subPropertyOf`
pub const RDFS_SUBPROPERTYOF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
/// `rdfs:domain`
pub const RDFS_DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
/// `rdfs:range`
pub const RDFS_RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
/// `rdfs:Class`
pub const RDFS_CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";
/// `rdfs:Resource`
pub const RDFS_RESOURCE: &str = "http://www.w3.org/2000/01/rdf-schema#Resource";

/// `owl:Class`
pub const OWL_CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
/// `owl:ObjectProperty`
pub const OWL_OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ObjectProperty";
/// `owl:DatatypeProperty`
pub const OWL_DATATYPE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#DatatypeProperty";
/// `owl:TransitiveProperty`
pub const OWL_TRANSITIVE: &str = "http://www.w3.org/2002/07/owl#TransitiveProperty";
/// `owl:SymmetricProperty`
pub const OWL_SYMMETRIC: &str = "http://www.w3.org/2002/07/owl#SymmetricProperty";
/// `owl:FunctionalProperty`
pub const OWL_FUNCTIONAL: &str = "http://www.w3.org/2002/07/owl#FunctionalProperty";
/// `owl:InverseFunctionalProperty`
pub const OWL_INVERSE_FUNCTIONAL: &str =
    "http://www.w3.org/2002/07/owl#InverseFunctionalProperty";
/// `owl:inverseOf`
pub const OWL_INVERSE_OF: &str = "http://www.w3.org/2002/07/owl#inverseOf";
/// `owl:equivalentClass`
pub const OWL_EQUIVALENT_CLASS: &str = "http://www.w3.org/2002/07/owl#equivalentClass";
/// `owl:equivalentProperty`
pub const OWL_EQUIVALENT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#equivalentProperty";
/// `owl:sameAs`
pub const OWL_SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";
/// `owl:Ontology`
pub const OWL_ONTOLOGY: &str = "http://www.w3.org/2002/07/owl#Ontology";
/// `owl:Restriction`
pub const OWL_RESTRICTION: &str = "http://www.w3.org/2002/07/owl#Restriction";
/// `owl:onProperty`
pub const OWL_ON_PROPERTY: &str = "http://www.w3.org/2002/07/owl#onProperty";
/// `owl:someValuesFrom`
pub const OWL_SOME_VALUES_FROM: &str = "http://www.w3.org/2002/07/owl#someValuesFrom";
/// `owl:hasValue`
pub const OWL_HAS_VALUE: &str = "http://www.w3.org/2002/07/owl#hasValue";

/// `xsd:string`
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
/// `xsd:integer`
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";

/// Is `iri` in one of the RDF/RDFS/OWL/XSD builtin namespaces?
///
/// Used by Algorithm 1 step 1 ("remove all the tuples involving the schema
/// elements"): a triple whose predicate is a builtin schema predicate (other
/// than `rdf:type` pointing at a user class) describes the ontology, not
/// the instance graph.
pub fn is_builtin(iri: &str) -> bool {
    iri.starts_with(RDF_NS)
        || iri.starts_with(RDFS_NS)
        || iri.starts_with(OWL_NS)
        || iri.starts_with(XSD_NS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_detection() {
        assert!(is_builtin(RDF_TYPE));
        assert!(is_builtin(RDFS_SUBCLASSOF));
        assert!(is_builtin(OWL_TRANSITIVE));
        assert!(is_builtin(XSD_STRING));
        assert!(!is_builtin("http://example.org/ont#Student"));
    }

    #[test]
    fn namespaces_are_prefixes_of_their_terms() {
        assert!(RDF_TYPE.starts_with(RDF_NS));
        assert!(RDFS_DOMAIN.starts_with(RDFS_NS));
        assert!(OWL_SAME_AS.starts_with(OWL_NS));
    }
}
