//! Property tests for the RDF substrate: the store against a naive model,
//! N-Triples and snapshot round-trips over arbitrary graphs.

// Tests assert on infallible setup; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_rdf::snapshot;
use owlpar_rdf::{parse_ntriples, write_ntriples, Graph, NodeId, Term, Triple, TriplePattern, TripleStore};
use proptest::prelude::*;
use std::collections::HashSet;

fn term_strategy() -> impl Strategy<Value = Term> {
    // modest alphabets keep collision probability (and thus join cases) high
    prop_oneof![
        (0u32..40).prop_map(|i| Term::iri(format!("http://ex.org/n{i}"))),
        (0u32..10).prop_map(|i| Term::blank(format!("b{i}"))),
        "[a-z \\\\\"\n\t]{0,12}".prop_map(Term::literal),
        ("[a-z]{1,8}", "[a-z]{2,3}").prop_map(|(l, t)| Term::lang_literal(l, t)),
        "[a-z0-9]{1,8}"
            .prop_map(|l| Term::typed_literal(l, "http://www.w3.org/2001/XMLSchema#string")),
    ]
}

fn subjectish() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u32..40).prop_map(|i| Term::iri(format!("http://ex.org/n{i}"))),
        (0u32..10).prop_map(|i| Term::blank(format!("b{i}"))),
    ]
}

fn predicate() -> impl Strategy<Value = Term> {
    (0u32..8).prop_map(|i| Term::iri(format!("http://ex.org/p{i}")))
}

fn graph_strategy() -> impl Strategy<Value = Graph> {
    prop::collection::vec((subjectish(), predicate(), term_strategy()), 0..60).prop_map(
        |triples| {
            let mut g = Graph::new();
            for (s, p, o) in triples {
                g.insert_terms(s, p, o);
            }
            g
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The indexed store behaves exactly like a set of triples with a
    /// linear-scan matcher.
    #[test]
    fn store_matches_naive_model(
        triples in prop::collection::vec((0u32..30, 0u32..6, 0u32..30), 0..100),
        qs in 0u32..30, qp in 0u32..6, qo in 0u32..30,
    ) {
        let enc: Vec<Triple> = triples
            .iter()
            .map(|&(s, p, o)| Triple::new(NodeId(s), NodeId(100 + p), NodeId(o)))
            .collect();
        let store: TripleStore = enc.iter().copied().collect();
        let model: HashSet<Triple> = enc.iter().copied().collect();
        prop_assert_eq!(store.len(), model.len());

        // all 8 pattern shapes agree with the linear scan
        for mask in 0..8u8 {
            let pat = TriplePattern::new(
                (mask & 1 != 0).then_some(NodeId(qs)),
                (mask & 2 != 0).then_some(NodeId(100 + qp)),
                (mask & 4 != 0).then_some(NodeId(qo)),
            );
            let mut via_index = store.matches(pat);
            via_index.sort_unstable();
            let mut via_scan: Vec<Triple> =
                model.iter().copied().filter(|t| pat.matches(t)).collect();
            via_scan.sort_unstable();
            prop_assert_eq!(via_index, via_scan, "mask {}", mask);
        }
    }

    /// write → parse reproduces the same term-level graph.
    #[test]
    fn ntriples_roundtrip(g in graph_strategy()) {
        let text = write_ntriples(&g);
        let mut back = Graph::new();
        let n = parse_ntriples(&text, &mut back).expect("own output parses");
        prop_assert_eq!(n, g.len());
        prop_assert_eq!(back.term_fingerprint(), g.term_fingerprint());
    }

    /// snapshot save → load is the identity (including ids).
    #[test]
    fn snapshot_roundtrip(g in graph_strategy()) {
        let mut buf = Vec::new();
        snapshot::save(&g, &mut buf).expect("save");
        let back = snapshot::load(&mut buf.as_slice()).expect("load");
        prop_assert_eq!(back.len(), g.len());
        prop_assert_eq!(back.dict.len(), g.dict.len());
        prop_assert_eq!(back.term_fingerprint(), g.term_fingerprint());
    }

    /// Fingerprints are invariant under dictionary reordering and
    /// sensitive to any triple change.
    #[test]
    fn fingerprint_properties(g in graph_strategy()) {
        // re-insert in sorted term order with a shifted dictionary
        let mut shuffled = Graph::new();
        shuffled.intern_iri("http://pad/0");
        let mut decoded: Vec<(Term, Term, Term)> =
            g.store.iter().map(|t| g.decode(*t)).collect();
        decoded.sort();
        decoded.reverse();
        for (s, p, o) in decoded {
            shuffled.insert_terms(s, p, o);
        }
        prop_assert_eq!(shuffled.term_fingerprint(), g.term_fingerprint());

        let mut extended = g.clone();
        if extended.insert_iris("http://ex.org/fresh-s", "http://ex.org/fresh-p", "http://ex.org/fresh-o") {
            prop_assert_ne!(extended.term_fingerprint(), g.term_fingerprint());
        }
    }

    /// Triple batch encode/decode round-trips.
    #[test]
    fn triple_batch_roundtrip(ids in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..64)) {
        let batch: Vec<Triple> = ids
            .iter()
            .map(|&(s, p, o)| Triple::new(NodeId(s), NodeId(p), NodeId(o)))
            .collect();
        let bytes = owlpar_rdf::triple::encode_batch(&batch);
        prop_assert_eq!(owlpar_rdf::triple::decode_batch(&bytes), batch);
    }
}
