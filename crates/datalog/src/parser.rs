//! A Jena-inspired textual rule syntax.
//!
//! ```text
//! # comment
//! [transKnows: (?a <http://x/knows> ?b) (?b <http://x/knows> ?c)
//!              -> (?a <http://x/knows> ?c)]
//! [typing: (?x rdf:type <http://x/Student>) -> (?x rdf:type <http://x/Person>)]
//! ```
//!
//! * variables are `?name`;
//! * IRIs are `<...>` or use the builtin prefixes `rdf:`, `rdfs:`, `owl:`,
//!   `xsd:`;
//! * string literals `"..."` are allowed in subject-independent positions;
//! * each rule has exactly one head atom after `->`.
//!
//! Parsing interns constants into the supplied [`Dictionary`], so rules are
//! immediately evaluable against stores sharing that dictionary.
//!
//! ## Lint annotations
//!
//! A comment of the form `# lint: allow(OWL007, OWL008)` immediately
//! before a rule suppresses those lint codes for that rule only
//! (consumed by `owlpar-lint`). [`parse_rules_annotated`] surfaces the
//! annotations and the source variable names; [`parse_rules`] ignores
//! them. Any other comment text is skipped as before.

use crate::ast::{Atom, Rule, TermPat};
use owlpar_rdf::vocab;
use owlpar_rdf::{Dictionary, Term};
use std::collections::HashMap;

/// Error raised while parsing rule text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rule parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed rule plus the source-level metadata the linter consumes.
#[derive(Debug, Clone)]
pub struct ParsedRule {
    /// The rule itself.
    pub rule: Rule,
    /// Lint codes suppressed for this rule via `# lint: allow(...)`
    /// annotations directly above it.
    pub suppress: Vec<String>,
    /// Source variable names, indexed by the rule's dense variable ids
    /// (`var_names[i]` named `?v{i}` in the normalized rule).
    pub var_names: Vec<String>,
}

/// Parse a rule document into a rule set, interning constants in `dict`.
pub fn parse_rules(input: &str, dict: &mut Dictionary) -> Result<Vec<Rule>, ParseError> {
    Ok(parse_rules_annotated(input, dict)?
        .into_iter()
        .map(|p| p.rule)
        .collect())
}

/// [`parse_rules`] keeping per-rule lint suppressions and variable names.
pub fn parse_rules_annotated(
    input: &str,
    dict: &mut Dictionary,
) -> Result<Vec<ParsedRule>, ParseError> {
    Parser::new(input, dict).parse_all()
}

struct Parser<'a, 'd> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    dict: &'d mut Dictionary,
    prefixes: HashMap<&'static str, &'static str>,
}

impl<'a, 'd> Parser<'a, 'd> {
    fn new(src: &'a str, dict: &'d mut Dictionary) -> Self {
        let mut prefixes = HashMap::new();
        prefixes.insert("rdf", vocab::RDF_NS);
        prefixes.insert("rdfs", vocab::RDFS_NS);
        prefixes.insert("owl", vocab::OWL_NS);
        prefixes.insert("xsd", vocab::XSD_NS);
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            dict,
            prefixes,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            while matches!(
                self.bytes.get(self.pos),
                Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') | Some(b',')
            ) {
                self.pos += 1;
            }
            if self.bytes.get(self.pos) == Some(&b'#') {
                while !matches!(self.bytes.get(self.pos), None | Some(b'\n')) {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_all(&mut self) -> Result<Vec<ParsedRule>, ParseError> {
        let mut rules = Vec::new();
        loop {
            let suppress = self.collect_annotations()?;
            if self.pos >= self.bytes.len() {
                // Trailing annotations with no rule to attach to.
                if !suppress.is_empty() {
                    return Err(self.err("lint annotation not followed by a rule"));
                }
                return Ok(rules);
            }
            let (rule, var_names) = self.parse_rule()?;
            rules.push(ParsedRule {
                rule,
                suppress,
                var_names,
            });
        }
    }

    /// Skip trivia ahead of a rule, collecting `# lint: allow(...)`
    /// annotation comments into a suppression list for that rule.
    fn collect_annotations(&mut self) -> Result<Vec<String>, ParseError> {
        let mut suppress = Vec::new();
        loop {
            while matches!(
                self.bytes.get(self.pos),
                Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') | Some(b',')
            ) {
                self.pos += 1;
            }
            if self.bytes.get(self.pos) != Some(&b'#') {
                return Ok(suppress);
            }
            let start = self.pos + 1;
            while !matches!(self.bytes.get(self.pos), None | Some(b'\n')) {
                self.pos += 1;
            }
            let comment = self.src[start..self.pos].trim();
            if let Some(directive) = comment.strip_prefix("lint:") {
                let directive = directive.trim();
                let codes = directive
                    .strip_prefix("allow(")
                    .and_then(|r| r.strip_suffix(')'))
                    .ok_or_else(|| {
                        self.err(format!(
                            "malformed lint annotation '{comment}' (expected 'lint: allow(CODE, ...)')"
                        ))
                    })?;
                for code in codes.split(',') {
                    let code = code.trim();
                    if code.is_empty()
                        || !code.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
                    {
                        return Err(self.err(format!(
                            "malformed lint code '{code}' in annotation '{comment}'"
                        )));
                    }
                    suppress.push(code.to_string());
                }
            }
        }
    }

    fn parse_rule(&mut self) -> Result<(Rule, Vec<String>), ParseError> {
        if !self.eat(b'[') {
            return Err(self.err("expected '[' starting a rule"));
        }
        self.skip_trivia();
        let name = self.parse_ident()?;
        self.skip_trivia();
        if !self.eat(b':') {
            return Err(self.err("expected ':' after rule name"));
        }

        let mut vars: HashMap<String, u16> = HashMap::new();
        let mut body = Vec::new();
        loop {
            self.skip_trivia();
            if self.src[self.pos..].starts_with("->") {
                self.pos += 2;
                break;
            }
            body.push(self.parse_atom(&mut vars)?);
        }
        self.skip_trivia();
        let head = self.parse_atom(&mut vars)?;
        self.skip_trivia();
        if !self.eat(b']') {
            return Err(self.err("expected ']' closing the rule (exactly one head atom)"));
        }
        let mut var_names = vec![String::new(); vars.len()];
        for (name, idx) in &vars {
            var_names[*idx as usize] = name.clone();
        }
        let rule = Rule::new(name, head, body).map_err(|m| self.err(m))?;
        Ok((rule, var_names))
    }

    fn parse_ident(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(&c) = self.bytes.get(self.pos) {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn parse_atom(&mut self, vars: &mut HashMap<String, u16>) -> Result<Atom, ParseError> {
        self.skip_trivia();
        if !self.eat(b'(') {
            return Err(self.err("expected '(' starting an atom"));
        }
        let s = self.parse_term_pat(vars)?;
        let p = self.parse_term_pat(vars)?;
        let o = self.parse_term_pat(vars)?;
        self.skip_trivia();
        if !self.eat(b')') {
            return Err(self.err("expected ')' closing an atom"));
        }
        Ok(Atom::new(s, p, o))
    }

    fn parse_term_pat(&mut self, vars: &mut HashMap<String, u16>) -> Result<TermPat, ParseError> {
        self.skip_trivia();
        match self.bytes.get(self.pos) {
            Some(b'?') => {
                self.pos += 1;
                let name = self.parse_ident()?;
                let next = vars.len() as u16;
                Ok(TermPat::Var(*vars.entry(name).or_insert(next)))
            }
            Some(b'<') => {
                self.pos += 1;
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&c| c != b'>') {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return Err(self.err("unterminated IRI"));
                }
                let iri = &self.src[start..self.pos];
                self.pos += 1;
                Ok(TermPat::Const(self.dict.intern(Term::iri(iri))))
            }
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&c| c != b'"') {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return Err(self.err("unterminated literal"));
                }
                let lit = &self.src[start..self.pos];
                self.pos += 1;
                Ok(TermPat::Const(self.dict.intern(Term::literal(lit))))
            }
            Some(c) if c.is_ascii_alphabetic() => {
                let ident = self.parse_ident()?;
                if !self.eat(b':') {
                    return Err(self.err(format!("expected ':' after prefix '{ident}'")));
                }
                let local = self.parse_ident()?;
                let ns = self
                    .prefixes
                    .get(ident.as_str())
                    .ok_or_else(|| self.err(format!("unknown prefix '{ident}'")))?;
                let iri = format!("{ns}{local}");
                Ok(TermPat::Const(self.dict.intern(Term::iri(iri))))
            }
            _ => Err(self.err("expected term (?var, <iri>, prefix:name or \"literal\")")),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ast::TermPat;

    #[test]
    fn parses_transitive_rule() {
        let mut d = Dictionary::new();
        let rules = parse_rules(
            "[t: (?a <http://x/p> ?b) (?b <http://x/p> ?c) -> (?a <http://x/p> ?c)]",
            &mut d,
        )
        .unwrap();
        assert_eq!(rules.len(), 1);
        let r = &rules[0];
        assert_eq!(r.name, "t");
        assert_eq!(r.body.len(), 2);
        assert_eq!(r.var_count, 3);
        // shared variable ?b is var 1 in both atoms
        assert_eq!(r.body[0].o, r.body[1].s);
    }

    #[test]
    fn parses_multiple_rules_and_comments() {
        let mut d = Dictionary::new();
        let src = r#"
            # subclass
            [sc: (?x rdf:type <http://x/Student>) -> (?x rdf:type <http://x/Person>)]
            # symmetric
            [sym: (?a <http://x/near> ?b) -> (?b <http://x/near> ?a)]
        "#;
        let rules = parse_rules(src, &mut d).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[1].name, "sym");
    }

    #[test]
    fn prefixes_expand() {
        let mut d = Dictionary::new();
        let rules =
            parse_rules("[r: (?x rdf:type owl:Class) -> (?x rdf:type rdfs:Class)]", &mut d)
                .unwrap();
        let head_o = rules[0].head.o.as_const().unwrap();
        assert_eq!(
            d.term(head_o).unwrap(),
            &Term::iri("http://www.w3.org/2000/01/rdf-schema#Class")
        );
    }

    #[test]
    fn same_var_name_same_index() {
        let mut d = Dictionary::new();
        let rules = parse_rules(
            "[r: (?x <http://x/p> ?x) -> (?x <http://x/q> ?x)]",
            &mut d,
        )
        .unwrap();
        let r = &rules[0];
        assert_eq!(r.var_count, 1);
        assert_eq!(r.body[0].s, TermPat::Var(0));
        assert_eq!(r.body[0].o, TermPat::Var(0));
    }

    #[test]
    fn literal_constants() {
        let mut d = Dictionary::new();
        let rules = parse_rules(
            "[r: (?x <http://x/status> \"active\") -> (?x rdf:type <http://x/Active>)]",
            &mut d,
        )
        .unwrap();
        let c = rules[0].body[0].o.as_const().unwrap();
        assert_eq!(d.term(c).unwrap(), &Term::literal("active"));
    }

    #[test]
    fn error_on_unknown_prefix() {
        let mut d = Dictionary::new();
        let e = parse_rules("[r: (?x foo:bar ?y) -> (?x foo:bar ?y)]", &mut d).unwrap_err();
        assert!(e.message.contains("unknown prefix"));
    }

    #[test]
    fn error_on_missing_arrow_head() {
        let mut d = Dictionary::new();
        assert!(parse_rules("[r: (?x rdf:type ?y)]", &mut d).is_err());
    }

    #[test]
    fn error_on_two_head_atoms() {
        let mut d = Dictionary::new();
        let e = parse_rules(
            "[r: (?x rdf:type ?y) -> (?x rdf:type ?y) (?y rdf:type ?x)]",
            &mut d,
        )
        .unwrap_err();
        assert!(e.message.contains("one head"));
    }

    #[test]
    fn error_reports_offset() {
        let mut d = Dictionary::new();
        let e = parse_rules("   @bogus", &mut d).unwrap_err();
        assert_eq!(e.offset, 3);
    }

    #[test]
    fn empty_input_yields_no_rules() {
        let mut d = Dictionary::new();
        assert!(parse_rules("  # only a comment\n", &mut d).unwrap().is_empty());
    }

    #[test]
    fn annotation_attaches_to_next_rule_only() {
        let mut d = Dictionary::new();
        let src = r#"
            # lint: allow(OWL007)
            [a: (?x rdf:type ?y) -> (?x rdf:type ?y)]
            [b: (?x rdf:type ?y) -> (?x rdf:type ?y)]
        "#;
        let parsed = parse_rules_annotated(src, &mut d).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].suppress, vec!["OWL007".to_string()]);
        assert!(parsed[1].suppress.is_empty());
    }

    #[test]
    fn annotations_accumulate_and_split_on_commas() {
        let mut d = Dictionary::new();
        let src = r#"
            # ordinary comment, ignored
            # lint: allow(OWL007, OWL008)
            # lint: allow(OWL003)
            [a: (?x rdf:type ?y) -> (?x rdf:type ?y)]
        "#;
        let parsed = parse_rules_annotated(src, &mut d).unwrap();
        assert_eq!(parsed[0].suppress, vec!["OWL007", "OWL008", "OWL003"]);
    }

    #[test]
    fn var_names_follow_dense_indices() {
        let mut d = Dictionary::new();
        let parsed = parse_rules_annotated(
            "[t: (?sub <http://x/p> ?mid) (?mid <http://x/p> ?obj) -> (?sub <http://x/p> ?obj)]",
            &mut d,
        )
        .unwrap();
        assert_eq!(parsed[0].var_names, vec!["sub", "mid", "obj"]);
        assert_eq!(parsed[0].rule.var_count, 3);
    }

    #[test]
    fn malformed_annotation_is_an_error() {
        let mut d = Dictionary::new();
        let e = parse_rules_annotated(
            "# lint: deny(OWL001)\n[a: (?x rdf:type ?y) -> (?x rdf:type ?y)]",
            &mut d,
        )
        .unwrap_err();
        assert!(e.message.contains("malformed lint annotation"), "{e}");
        let e = parse_rules_annotated(
            "# lint: allow(OWL 001)\n[a: (?x rdf:type ?y) -> (?x rdf:type ?y)]",
            &mut d,
        )
        .unwrap_err();
        assert!(e.message.contains("malformed lint code"), "{e}");
    }

    #[test]
    fn dangling_annotation_is_an_error() {
        let mut d = Dictionary::new();
        let e = parse_rules_annotated("# lint: allow(OWL007)\n", &mut d).unwrap_err();
        assert!(e.message.contains("not followed by a rule"), "{e}");
    }

    #[test]
    fn plain_parse_rules_ignores_annotations() {
        let mut d = Dictionary::new();
        let rules = parse_rules(
            "# lint: allow(OWL007)\n[a: (?x rdf:type ?y) -> (?x rdf:type ?y)]",
            &mut d,
        )
        .unwrap();
        assert_eq!(rules.len(), 1);
    }
}
