//! A negation-free datalog engine over dictionary-encoded RDF triples.
//!
//! This crate replaces the role Jena's hybrid rule engine plays in the
//! paper. It provides:
//!
//! * a rule AST ([`ast::Rule`], [`ast::Atom`], [`ast::TermPat`]) where every
//!   rule has a single head atom and a conjunctive body (negation-free
//!   datalog, exactly the semantics the paper assumes, cf. Vianu 1997);
//! * a Jena-style textual rule [`parser`];
//! * a **semi-naive forward-chaining** evaluator ([`forward`]) — the
//!   efficient "bottom-up datalog evaluation" the paper mentions as an
//!   alternative strategy, and our ground-truth closure;
//! * a **tabled SLD backward-chaining** evaluator ([`backward`]) that
//!   emulates Jena's LP engine materializing the KB by issuing
//!   one query per resource; its per-resource cost profile is what gives
//!   the paper its super-linear speedups;
//! * rule [`analysis`]: the single-join classification underpinning the
//!   data-partitioning correctness argument, and the rule-dependency graph
//!   used by rule partitioning (Algorithm 2).
//!
//! ```
//! use owlpar_rdf::Graph;
//! use owlpar_datalog::{parser::parse_rules, forward::forward_closure};
//!
//! let mut g = Graph::new();
//! g.insert_iris("http://x/a", "http://x/knows", "http://x/b");
//! g.insert_iris("http://x/b", "http://x/knows", "http://x/c");
//! let rules = parse_rules(
//!     "[trans: (?a <http://x/knows> ?b) (?b <http://x/knows> ?c) -> (?a <http://x/knows> ?c)]",
//!     &mut g.dict,
//! ).unwrap();
//! let derived = forward_closure(&mut g.store, &rules);
//! assert_eq!(derived, 1); // a knows c
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod ast;
pub mod backward;
pub mod engine;
pub mod forward;
pub mod parallel;
pub mod parser;

pub use ast::{Atom, Rule, TermPat};
pub use engine::{MaterializationStrategy, Reasoner};
pub use parallel::{parallel_closure, parallel_closure_delta};
pub use parser::{parse_rules, parse_rules_annotated, ParsedRule};
