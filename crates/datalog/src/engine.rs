//! The reasoner facade: a rule set plus a materialization strategy.
//!
//! The paper's parallel algorithm is "built as a wrapper over an existing
//! reasoner" (§IV); [`Reasoner`] is the seam that wrapper plugs into. The
//! two strategies correspond to the two engines the paper discusses:
//! bottom-up datalog evaluation and Jena's per-resource backward chaining.

use crate::ast::Rule;
use crate::backward::{BackwardEngine, TableScope};
use crate::forward::{forward_closure, forward_closure_delta};
use crate::parallel::{parallel_closure, parallel_closure_delta};
use owlpar_rdf::{Triple, TripleStore};

/// How a [`Reasoner`] computes the closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaterializationStrategy {
    /// Semi-naive bottom-up evaluation — efficient, near-linear in the
    /// size of the output.
    #[default]
    ForwardSemiNaive,
    /// Semi-naive bottom-up evaluation with each round's delta sharded
    /// across `threads` in-node worker threads joining against a frozen
    /// CSR base (`threads == 0` ⇒ all available parallelism). Identical
    /// fixpoint to [`ForwardSemiNaive`](Self::ForwardSemiNaive).
    ForwardParallel {
        /// In-node thread budget; `0` means auto-detect.
        threads: usize,
    },
    /// Jena emulation: per-resource queries through a tabled SLD engine.
    /// Super-linear in KB size; the strategy behind the paper's Fig. 1/4.
    BackwardPerResource(TableScope),
    /// Faithful Jena cost model: per resource, enumerate a candidate
    /// triple for every (predicate, object) pair in the KB and prove each
    /// (§VI-A of the paper) — Θ(resources × triples) per sweep, the
    /// strongly super-linear regime that the paper's Fig. 1/3/4 exhibit.
    BackwardJena(TableScope),
}

/// A rule set bound to a materialization strategy.
#[derive(Debug, Clone)]
pub struct Reasoner {
    /// The compiled rule-base.
    pub rules: Vec<Rule>,
    /// Closure strategy.
    pub strategy: MaterializationStrategy,
}

impl Reasoner {
    /// Create a reasoner with the given strategy.
    pub fn new(rules: Vec<Rule>, strategy: MaterializationStrategy) -> Self {
        Reasoner { rules, strategy }
    }

    /// Forward semi-naive reasoner.
    pub fn forward(rules: Vec<Rule>) -> Self {
        Self::new(rules, MaterializationStrategy::ForwardSemiNaive)
    }

    /// Jena-style backward reasoner (per-query tabling).
    pub fn backward(rules: Vec<Rule>) -> Self {
        Self::new(
            rules,
            MaterializationStrategy::BackwardPerResource(TableScope::PerQuery),
        )
    }

    /// Compute the closure of `store` in place; returns #derived triples.
    pub fn materialize(&self, store: &mut TripleStore) -> usize {
        match self.strategy {
            MaterializationStrategy::ForwardSemiNaive => forward_closure(store, &self.rules),
            MaterializationStrategy::ForwardParallel { threads } => {
                parallel_closure(store, &self.rules, threads)
            }
            MaterializationStrategy::BackwardPerResource(scope) => {
                BackwardEngine::new(&self.rules, scope).materialize(store)
            }
            MaterializationStrategy::BackwardJena(scope) => {
                BackwardEngine::new(&self.rules, scope).materialize_jena(store)
            }
        }
    }

    /// Incremental closure: `store` was closed, then the triples in
    /// `delta` were inserted. Returns the derived consequences.
    ///
    /// The forward strategy is natively incremental (semi-naive seeded
    /// with the delta). The backward strategies re-query, but — when every
    /// rule is single-join, which compiled OWL-Horst rule-bases guarantee —
    /// only the delta's single-join neighbourhood needs re-querying; with
    /// any non-single-join rule present they fall back to a full
    /// re-materialization.
    pub fn materialize_delta(&self, store: &mut TripleStore, delta: Vec<Triple>) -> Vec<Triple> {
        let scope = match self.strategy {
            MaterializationStrategy::ForwardSemiNaive => {
                return forward_closure_delta(store, &self.rules, delta);
            }
            MaterializationStrategy::ForwardParallel { threads } => {
                return parallel_closure_delta(store, &self.rules, delta, threads);
            }
            MaterializationStrategy::BackwardPerResource(scope)
            | MaterializationStrategy::BackwardJena(scope) => scope,
        };
        let jena = matches!(self.strategy, MaterializationStrategy::BackwardJena(_));
        let mut engine = BackwardEngine::new(&self.rules, scope);
        if self.rules.iter().all(crate::analysis::is_single_join) {
            if jena {
                engine.materialize_delta_jena(store, &delta)
            } else {
                engine.materialize_delta(store, &delta)
            }
        } else {
            // conservative: full re-materialization + diff
            let before_set: owlpar_rdf::fx::FxHashSet<Triple> =
                store.iter().copied().collect();
            if jena {
                engine.materialize_jena(store);
            } else {
                engine.materialize(store);
            }
            store
                .iter()
                .copied()
                .filter(|t| !before_set.contains(t))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ast::build::*;
    use owlpar_rdf::NodeId;

    const P: u32 = 10;

    fn nid(i: u32) -> NodeId {
        NodeId(i)
    }

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(nid(s), nid(p), nid(o))
    }

    fn trans() -> Vec<Rule> {
        vec![Rule::new(
            "trans",
            atom(v(0), c(nid(P)), v(2)),
            vec![atom(v(0), c(nid(P)), v(1)), atom(v(1), c(nid(P)), v(2))],
        )
        .unwrap()]
    }

    #[test]
    fn strategies_agree() {
        let base = [t(0, P, 1), t(1, P, 2), t(2, P, 3)];
        let mut fwd: TripleStore = base.into_iter().collect();
        Reasoner::forward(trans()).materialize(&mut fwd);
        let mut bwd: TripleStore = base.into_iter().collect();
        Reasoner::backward(trans()).materialize(&mut bwd);
        assert_eq!(fwd.iter_sorted(), bwd.iter_sorted());
        let mut jena: TripleStore = base.into_iter().collect();
        Reasoner::new(
            trans(),
            MaterializationStrategy::BackwardJena(crate::backward::TableScope::PerQuery),
        )
        .materialize(&mut jena);
        assert_eq!(fwd.iter_sorted(), jena.iter_sorted());
    }

    #[test]
    fn delta_falls_back_for_non_single_join_rules() {
        use crate::ast::build::*;
        // a 3-atom rule forces the conservative full re-materialization
        let multi = Rule::new(
            "multi",
            atom(v(0), c(nid(P)), v(2)),
            vec![
                atom(v(0), c(nid(P)), v(1)),
                atom(v(1), c(nid(P)), v(2)),
                atom(v(2), c(nid(P)), v(3)),
            ],
        )
        .unwrap();
        let r = Reasoner::backward(vec![multi]);
        let mut s: TripleStore = [t(0, P, 1), t(1, P, 2)].into_iter().collect();
        r.materialize(&mut s);
        s.insert(t(2, P, 3));
        let derived = r.materialize_delta(&mut s, vec![t(2, P, 3)]);
        // body 0→1→2→3 fires with head (v0, P, v2) = (0, P, 2)
        assert_eq!(derived, vec![t(0, P, 2)]);
    }

    #[test]
    fn delta_materialization_forward() {
        let r = Reasoner::forward(trans());
        let mut s: TripleStore = [t(0, P, 1)].into_iter().collect();
        r.materialize(&mut s);
        s.insert(t(1, P, 2));
        let derived = r.materialize_delta(&mut s, vec![t(1, P, 2)]);
        assert_eq!(derived, vec![t(0, P, 2)]);
    }

    #[test]
    fn delta_materialization_backward_reports_new() {
        let r = Reasoner::backward(trans());
        let mut s: TripleStore = [t(0, P, 1)].into_iter().collect();
        r.materialize(&mut s);
        s.insert(t(1, P, 2));
        let mut derived = r.materialize_delta(&mut s, vec![t(1, P, 2)]);
        derived.sort_unstable();
        assert_eq!(derived, vec![t(0, P, 2)]);
    }

    #[test]
    fn default_strategy_is_forward() {
        assert_eq!(
            MaterializationStrategy::default(),
            MaterializationStrategy::ForwardSemiNaive
        );
    }
}
