//! Top-down (backward-chaining) evaluation with tabling — the Jena
//! hybrid-engine emulation.
//!
//! Jena materializes an OWL KB by issuing, for every resource, the query
//! *"all triples with this resource as subject"* against its SLD-resolution
//! LP engine (with tabling). The cost of this strategy is polynomial in the
//! number of resources — the very property the paper leans on to explain
//! its super-linear speedups (§VI-A). [`BackwardEngine::materialize`]
//! reproduces that strategy faithfully:
//!
//! * one goal `(r ?p ?o)` per resource,
//! * SLD resolution over the rule set with memoization (tabling) of
//!   intermediate goals and cycle cut-offs,
//! * repeated sweeps until a sweep derives nothing new (the sweep loop
//!   restores completeness that per-query tabling scopes give up).
//!
//! The [`TableScope`] knob (per-query / per-sweep / none) is the ablation
//! axis for `bench_tabling_ablation`.

use crate::ast::{Atom, Bindings, Rule, TermPat};
use owlpar_rdf::fx::{FxHashMap, FxHashSet};
use owlpar_rdf::{NodeId, Triple, TriplePattern, TripleStore};

/// How long tabled answers survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableScope {
    /// Table cleared before every top-level query (Jena-like; the most
    /// expensive, most "worst-case polynomial" behaviour).
    #[default]
    PerQuery,
    /// Table cleared once per materialization sweep.
    PerSweep,
    /// No memoization at all; only cycle cut-offs. Exponential in the
    /// worst case — ablation use only.
    None,
}

/// Counters exposed for benchmarks and the performance model (Fig. 4).
#[derive(Debug, Default, Clone, Copy)]
pub struct BackwardStats {
    /// Top-level queries issued.
    pub queries: usize,
    /// Goals answered from the table.
    pub table_hits: usize,
    /// Goals expanded through rules.
    pub expansions: usize,
    /// Materialization sweeps performed.
    pub sweeps: usize,
}

/// A tabled SLD evaluator over a fixed rule set.
pub struct BackwardEngine<'r> {
    rules: &'r [Rule],
    scope: TableScope,
    table: FxHashMap<TriplePattern, Vec<Triple>>,
    in_progress: FxHashSet<TriplePattern>,
    last_inserted: Vec<Triple>,
    /// Evaluation counters (reset by [`BackwardEngine::reset_stats`]).
    pub stats: BackwardStats,
}

impl<'r> BackwardEngine<'r> {
    /// Create an engine over `rules` with the given tabling scope.
    pub fn new(rules: &'r [Rule], scope: TableScope) -> Self {
        BackwardEngine {
            rules,
            scope,
            table: FxHashMap::default(),
            in_progress: FxHashSet::default(),
            last_inserted: Vec::new(),
            stats: BackwardStats::default(),
        }
    }

    /// Zero the counters.
    pub fn reset_stats(&mut self) {
        self.stats = BackwardStats::default();
    }

    /// Answer a single goal against `store`. Answers include derived
    /// triples reachable under the engine's tabling scope; on a
    /// materialized store this is exactly the set of matching triples.
    pub fn query(&mut self, store: &TripleStore, pattern: TriplePattern) -> Vec<Triple> {
        if self.scope == TableScope::PerQuery {
            self.table.clear();
        }
        self.in_progress.clear();
        self.stats.queries += 1;
        self.solve(store, pattern)
    }

    /// Materialize `store`: per-resource queries, sweeping until fixpoint.
    /// Returns the number of derived triples.
    pub fn materialize(&mut self, store: &mut TripleStore) -> usize {
        let mut total = 0;
        loop {
            self.stats.sweeps += 1;
            self.table.clear();
            let subjects = self.query_subjects(store);
            let added = self.sweep(store, &subjects, false);
            total += added;
            if added == 0 {
                return total;
            }
        }
    }

    /// Jena-faithful materialization: for every resource the engine
    /// "creates kn triples, where each triple has the given resource as
    /// subject and each of the n triples as the object. It then tries to
    /// prove that the KB entails such a triple" (§VI-A). We enumerate the
    /// distinct (predicate, object) pairs of the KB as candidate goals for
    /// every resource and prove each ground goal — a Θ(resources ×
    /// triples) sweep — and additionally issue the open per-resource query
    /// so the closure stays exact. This is the cost profile behind the
    /// paper's worst-case-polynomial scaling and its super-linear
    /// partitioned speedups.
    pub fn materialize_jena(&mut self, store: &mut TripleStore) -> usize {
        let mut total = 0;
        loop {
            self.stats.sweeps += 1;
            self.table.clear();
            let subjects = self.query_subjects(store);
            let added = self.sweep(store, &subjects, true);
            total += added;
            if added == 0 {
                return total;
            }
        }
    }

    /// Incremental re-materialization after `delta` was inserted into an
    /// otherwise-closed `store`.
    ///
    /// **Requires every rule to be single-join** (the caller checks): a
    /// new derivation must consume at least one delta atom, so its head
    /// subject is a node of the delta or of a triple incident to the
    /// delta. Only that affected neighbourhood is re-queried, sweeping as
    /// the affected region grows. Returns the newly derived triples.
    pub fn materialize_delta(&mut self, store: &mut TripleStore, delta: &[Triple]) -> Vec<Triple> {
        let mut all_new: Vec<Triple> = Vec::new();
        let mut frontier: Vec<Triple> = delta.to_vec();
        loop {
            self.stats.sweeps += 1;
            self.table.clear();
            let affected = self.affected_resources(store, &frontier);
            let before = store.len();
            let added = self.sweep(store, &affected, false);
            if added == 0 {
                return all_new;
            }
            // the sweep inserted `added` triples; recover them for the
            // next frontier (sweep() records them via last_inserted)
            let _ = before;
            frontier = std::mem::take(&mut self.last_inserted);
            all_new.extend(frontier.iter().copied());
        }
    }

    /// [`BackwardEngine::materialize_delta`] with the Jena candidate-
    /// enumeration cost profile.
    pub fn materialize_delta_jena(
        &mut self,
        store: &mut TripleStore,
        delta: &[Triple],
    ) -> Vec<Triple> {
        let mut all_new: Vec<Triple> = Vec::new();
        let mut frontier: Vec<Triple> = delta.to_vec();
        loop {
            self.stats.sweeps += 1;
            self.table.clear();
            let affected = self.affected_resources(store, &frontier);
            let added = self.sweep(store, &affected, true);
            if added == 0 {
                return all_new;
            }
            frontier = std::mem::take(&mut self.last_inserted);
            all_new.extend(frontier.iter().copied());
        }
    }

    /// One materialization sweep over `resources`. Inserts what it
    /// derives, records the insertions in `self.last_inserted`, and
    /// returns their count. `jena` enables the candidate-enumeration cost
    /// model.
    fn sweep(&mut self, store: &mut TripleStore, resources: &[NodeId], jena: bool) -> usize {
        let mut collected: Vec<Triple> = Vec::new();
        // Distinct (predicate, object) pairs — "the n triples as object".
        let po_pairs: Vec<(NodeId, NodeId)> = if jena {
            let mut pairs: Vec<(NodeId, NodeId)> =
                store.iter().map(|t| (t.p, t.o)).collect();
            pairs.sort_unstable();
            pairs.dedup();
            pairs
        } else {
            Vec::new()
        };
        for &r in resources {
            if jena {
                // prove every candidate (r, p, o); tabling is scoped to
                // this resource's query exactly like a Jena goal table
                if self.scope == TableScope::PerQuery {
                    self.table.clear();
                }
                self.in_progress.clear();
                for &(p, o) in &po_pairs {
                    let ground = TriplePattern::new(Some(r), Some(p), Some(o));
                    let t = Triple::new(r, p, o);
                    if store.contains(&t) {
                        continue;
                    }
                    self.stats.queries += 1;
                    if !self.solve(store, ground).is_empty() {
                        collected.push(t);
                    }
                }
            }
            let pat = TriplePattern::new(Some(r), None, None);
            for t in self.query(store, pat) {
                if !store.contains(&t) {
                    collected.push(t);
                }
            }
        }
        self.last_inserted.clear();
        for t in collected {
            if store.insert(t) {
                self.last_inserted.push(t);
            }
        }
        self.last_inserted.len()
    }

    /// Resources whose per-subject query could yield something new after
    /// `frontier` was inserted: every node of a frontier triple plus every
    /// node sharing a triple with such a node (single-join reach), plus
    /// the constant head subjects.
    fn affected_resources(&self, store: &TripleStore, frontier: &[Triple]) -> Vec<NodeId> {
        let mut delta_nodes: FxHashSet<NodeId> = FxHashSet::default();
        for t in frontier {
            delta_nodes.insert(t.s);
            delta_nodes.insert(t.o);
            delta_nodes.insert(t.p); // predicates can be resources too
        }
        let mut affected = delta_nodes.clone();
        for &n in &delta_nodes {
            store.for_each_match(TriplePattern::new(Some(n), None, None), |t| {
                affected.insert(t.o);
            });
            store.for_each_match(TriplePattern::new(None, None, Some(n)), |t| {
                affected.insert(t.s);
            });
        }
        for r in self.rules {
            if let TermPat::Const(c) = r.head.s {
                affected.insert(c);
            }
        }
        let mut v: Vec<NodeId> = affected.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// The set of resources to issue per-resource queries for: every graph
    /// node, every predicate, and every constant subject of a rule head
    /// (sorted for determinism).
    fn query_subjects(&self, store: &TripleStore) -> Vec<NodeId> {
        let mut set = store.nodes();
        set.extend(store.predicates());
        for r in self.rules {
            if let TermPat::Const(c) = r.head.s {
                set.insert(c);
            }
        }
        let mut v: Vec<NodeId> = set.into_iter().collect();
        v.sort_unstable();
        v
    }

    fn solve(&mut self, store: &TripleStore, pat: TriplePattern) -> Vec<Triple> {
        if self.scope != TableScope::None {
            if let Some(ans) = self.table.get(&pat) {
                self.stats.table_hits += 1;
                return ans.clone();
            }
        }
        if !self.in_progress.insert(pat) {
            // Cycle: fall back to the facts currently in the store. The
            // sweep loop makes up for the lost derivations.
            return store.matches(pat);
        }
        self.stats.expansions += 1;

        let mut answers: FxHashSet<Triple> = store.matches(pat).into_iter().collect();
        loop {
            let before = answers.len();
            for ri in 0..self.rules.len() {
                let rule = &self.rules[ri];
                let mut bindings = rule.empty_bindings();
                if !bind_head(&rule.head, pat, &mut bindings) {
                    continue;
                }
                let mut derived: Vec<Triple> = Vec::new();
                self.solve_body(store, ri, 0, bindings, &mut derived);
                for t in derived {
                    if pat.matches(&t) {
                        answers.insert(t);
                    }
                }
            }
            if answers.len() == before {
                break;
            }
        }

        self.in_progress.remove(&pat);
        let mut out: Vec<Triple> = answers.into_iter().collect();
        out.sort_unstable();
        if self.scope != TableScope::None {
            self.table.insert(pat, out.clone());
        }
        out
    }

    fn solve_body(
        &mut self,
        store: &TripleStore,
        rule_idx: usize,
        atom_idx: usize,
        bindings: Bindings,
        out: &mut Vec<Triple>,
    ) {
        let rule = &self.rules[rule_idx];
        if atom_idx == rule.body.len() {
            if let Some(t) = rule.head.instantiate(&bindings) {
                out.push(t);
            }
            return;
        }
        let atom = rule.body[atom_idx];
        let subpat = atom.to_pattern(&bindings);
        let sub_answers = self.solve(store, subpat);
        for t in sub_answers {
            if let Some(b) = atom.match_triple(&t, &bindings) {
                self.solve_body(store, rule_idx, atom_idx + 1, b, out);
            }
        }
    }
}

/// Bind head variables from the goal pattern's constants. Returns `false`
/// if a head constant conflicts with the goal or the same variable would
/// need two different values.
fn bind_head(head: &Atom, pat: TriplePattern, bindings: &mut Bindings) -> bool {
    let pairs = [(head.s, pat.s), (head.p, pat.p), (head.o, pat.o)];
    for (hp, gp) in pairs {
        let Some(goal_const) = gp else { continue };
        match hp {
            TermPat::Const(c) => {
                if c != goal_const {
                    return false;
                }
            }
            TermPat::Var(v) => match bindings[v as usize] {
                None => bindings[v as usize] = Some(goal_const),
                Some(existing) => {
                    if existing != goal_const {
                        return false;
                    }
                }
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ast::build::*;
    use crate::forward::forward_closure;

    const P: u32 = 100;
    const Q: u32 = 101;
    const TYPE: u32 = 102;
    const STUDENT: u32 = 103;
    const PERSON: u32 = 104;

    fn nid(i: u32) -> NodeId {
        NodeId(i)
    }

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(nid(s), nid(p), nid(o))
    }

    fn trans_rule(p: u32) -> Rule {
        Rule::new(
            "trans",
            atom(v(0), c(nid(p)), v(2)),
            vec![atom(v(0), c(nid(p)), v(1)), atom(v(1), c(nid(p)), v(2))],
        )
        .unwrap()
    }

    fn subclass_rule() -> Rule {
        Rule::new(
            "sc",
            atom(v(0), c(nid(TYPE)), c(nid(PERSON))),
            vec![atom(v(0), c(nid(TYPE)), c(nid(STUDENT)))],
        )
        .unwrap()
    }

    fn assert_same_closure(base: &[Triple], rules: &[Rule], scope: TableScope) {
        let mut fwd: TripleStore = base.iter().copied().collect();
        forward_closure(&mut fwd, rules);

        let mut bwd: TripleStore = base.iter().copied().collect();
        let mut eng = BackwardEngine::new(rules, scope);
        eng.materialize(&mut bwd);

        assert_eq!(fwd.iter_sorted(), bwd.iter_sorted(), "scope {scope:?}");
    }

    #[test]
    fn query_answers_ground_goal() {
        let store: TripleStore = [t(0, P, 1)].into_iter().collect();
        let rules = [trans_rule(P)];
        let mut eng = BackwardEngine::new(&rules, TableScope::PerQuery);
        let pat = TriplePattern::new(Some(nid(0)), Some(nid(P)), Some(nid(1)));
        assert_eq!(eng.query(&store, pat), vec![t(0, P, 1)]);
    }

    #[test]
    fn query_derives_transitive_hop() {
        let store: TripleStore = [t(0, P, 1), t(1, P, 2)].into_iter().collect();
        let rules = [trans_rule(P)];
        let mut eng = BackwardEngine::new(&rules, TableScope::PerQuery);
        let ans = eng.query(&store, TriplePattern::new(Some(nid(0)), None, None));
        assert!(ans.contains(&t(0, P, 1)));
        assert!(ans.contains(&t(0, P, 2)));
    }

    #[test]
    fn materialize_matches_forward_on_chain() {
        let base = [t(0, P, 1), t(1, P, 2), t(2, P, 3), t(3, P, 4)];
        for scope in [TableScope::PerQuery, TableScope::PerSweep, TableScope::None] {
            assert_same_closure(&base, &[trans_rule(P)], scope);
        }
    }

    #[test]
    fn materialize_matches_forward_on_cycle() {
        let base = [t(0, P, 1), t(1, P, 2), t(2, P, 0)];
        for scope in [TableScope::PerQuery, TableScope::PerSweep, TableScope::None] {
            assert_same_closure(&base, &[trans_rule(P)], scope);
        }
    }

    #[test]
    fn materialize_matches_forward_multi_rule() {
        // promote q into p, p transitive, plus a typing rule
        let promote = Rule::new(
            "promote",
            atom(v(0), c(nid(P)), v(1)),
            vec![atom(v(0), c(nid(Q)), v(1))],
        )
        .unwrap();
        let base = [t(0, Q, 1), t(1, P, 2), t(2, P, 3), t(5, TYPE, STUDENT)];
        let rules = [promote, trans_rule(P), subclass_rule()];
        for scope in [TableScope::PerQuery, TableScope::PerSweep] {
            assert_same_closure(&base, &rules, scope);
        }
    }

    #[test]
    fn materialize_handles_variable_predicates() {
        // full symmetry rule with variable predicate
        let sym = Rule::new(
            "sym_all",
            atom(v(2), v(1), v(0)),
            vec![atom(v(0), v(1), v(2))],
        )
        .unwrap();
        let base = [t(0, P, 1), t(2, Q, 3)];
        assert_same_closure(&base, &[sym], TableScope::PerQuery);
    }

    #[test]
    fn materialize_is_idempotent() {
        let rules = [trans_rule(P)];
        let mut s: TripleStore = [t(0, P, 1), t(1, P, 2)].into_iter().collect();
        let mut eng = BackwardEngine::new(&rules, TableScope::PerQuery);
        let first = eng.materialize(&mut s);
        assert_eq!(first, 1);
        let second = eng.materialize(&mut s);
        assert_eq!(second, 0);
    }

    #[test]
    fn stats_accumulate() {
        let rules = [trans_rule(P)];
        let mut s: TripleStore = [t(0, P, 1), t(1, P, 2)].into_iter().collect();
        let mut eng = BackwardEngine::new(&rules, TableScope::PerQuery);
        eng.materialize(&mut s);
        assert!(eng.stats.queries > 0);
        assert!(eng.stats.expansions > 0);
        assert!(eng.stats.sweeps >= 2); // final sweep derives nothing
        eng.reset_stats();
        assert_eq!(eng.stats.queries, 0);
    }

    #[test]
    fn per_sweep_tabling_hits_table() {
        let rules = [trans_rule(P)];
        let mut s: TripleStore = [t(0, P, 1), t(1, P, 2), t(2, P, 3)].into_iter().collect();
        let mut eng = BackwardEngine::new(&rules, TableScope::PerSweep);
        eng.materialize(&mut s);
        assert!(eng.stats.table_hits > 0);
    }

    #[test]
    fn constant_head_subject_rule() {
        // (x type STUDENT) -> (STUDENT type CLASS-ish marker) — head subject
        // constant never appears in the data beforehand.
        const MARKER: u32 = 999;
        let r = Rule::new(
            "marker",
            atom(c(nid(STUDENT)), c(nid(TYPE)), c(nid(MARKER))),
            vec![atom(v(0), c(nid(TYPE)), c(nid(STUDENT)))],
        )
        .unwrap();
        let base = [t(1, TYPE, STUDENT)];
        assert_same_closure(&base, &[r], TableScope::PerQuery);
    }

    #[test]
    fn jena_mode_matches_forward_closure() {
        let cases: Vec<Vec<Triple>> = vec![
            vec![t(0, P, 1), t(1, P, 2), t(2, P, 3)],
            vec![t(0, P, 1), t(1, P, 2), t(2, P, 0)], // cycle
            vec![t(5, TYPE, STUDENT), t(0, P, 1)],
        ];
        for base in cases {
            let rules = [trans_rule(P), subclass_rule()];
            let mut fwd: TripleStore = base.iter().copied().collect();
            forward_closure(&mut fwd, &rules);
            let mut jena: TripleStore = base.iter().copied().collect();
            let mut eng = BackwardEngine::new(&rules, TableScope::PerQuery);
            eng.materialize_jena(&mut jena);
            assert_eq!(fwd.iter_sorted(), jena.iter_sorted());
        }
    }

    #[test]
    fn jena_mode_issues_many_more_queries() {
        let base = [t(0, P, 1), t(1, P, 2), t(2, P, 3), t(3, P, 4)];
        let rules = [trans_rule(P)];
        let mut a: TripleStore = base.into_iter().collect();
        let mut plain = BackwardEngine::new(&rules, TableScope::PerQuery);
        plain.materialize(&mut a);
        let mut b: TripleStore = base.into_iter().collect();
        let mut jena = BackwardEngine::new(&rules, TableScope::PerQuery);
        jena.materialize_jena(&mut b);
        assert_eq!(a.iter_sorted(), b.iter_sorted());
        assert!(
            jena.stats.queries > plain.stats.queries * 3,
            "jena {} vs plain {}",
            jena.stats.queries,
            plain.stats.queries
        );
    }

    fn assert_delta_matches_scratch(base: &[Triple], delta: &[Triple], rules: &[Rule]) {
        // oracle: close everything from scratch
        let mut scratch: TripleStore = base.iter().chain(delta).copied().collect();
        BackwardEngine::new(rules, TableScope::PerQuery).materialize(&mut scratch);

        // system: close base, then add delta incrementally
        let mut inc: TripleStore = base.iter().copied().collect();
        let mut eng = BackwardEngine::new(rules, TableScope::PerQuery);
        eng.materialize(&mut inc);
        let mut fresh = Vec::new();
        for &d in delta {
            if inc.insert(d) {
                fresh.push(d);
            }
        }
        let derived = eng.materialize_delta(&mut inc, &fresh);
        assert_eq!(scratch.iter_sorted(), inc.iter_sorted());
        // and the returned list is exactly the difference beyond delta
        for d in derived {
            assert!(inc.contains(&d));
        }
    }

    #[test]
    fn delta_extends_transitive_chain_forward() {
        // base closed chain 0→1→2; delta adds 2→3
        assert_delta_matches_scratch(
            &[t(0, P, 1), t(1, P, 2)],
            &[t(2, P, 3)],
            &[trans_rule(P)],
        );
    }

    #[test]
    fn delta_extends_transitive_chain_backward() {
        // the in-neighbor case: base has z→a; delta adds a→b; derivation
        // (z,P,b) has subject z which is NOT a node of the delta
        assert_delta_matches_scratch(
            &[t(9, P, 10)],
            &[t(10, P, 11)],
            &[trans_rule(P)],
        );
    }

    #[test]
    fn delta_joins_two_closed_chains() {
        // two closed chains bridged by the delta: cascades both ways
        assert_delta_matches_scratch(
            &[t(0, P, 1), t(1, P, 2), t(10, P, 11), t(11, P, 12)],
            &[t(2, P, 10)],
            &[trans_rule(P)],
        );
    }

    #[test]
    fn delta_with_symmetric_rule() {
        let sym = Rule::new(
            "sym",
            atom(v(1), c(nid(P)), v(0)),
            vec![atom(v(0), c(nid(P)), v(1))],
        )
        .unwrap();
        assert_delta_matches_scratch(&[t(0, P, 1)], &[t(2, P, 3)], &[sym]);
    }

    #[test]
    fn delta_with_multiple_interacting_rules() {
        let promote = Rule::new(
            "promote",
            atom(v(0), c(nid(P)), v(1)),
            vec![atom(v(0), c(nid(Q)), v(1))],
        )
        .unwrap();
        assert_delta_matches_scratch(
            &[t(0, P, 1), t(1, P, 2)],
            &[t(2, Q, 3)], // becomes p(2,3), then cascades transitively
            &[promote, trans_rule(P)],
        );
    }

    #[test]
    fn delta_noop_when_consequences_known() {
        let rules = [trans_rule(P)];
        let mut s: TripleStore = [t(0, P, 1), t(1, P, 2)].into_iter().collect();
        let mut eng = BackwardEngine::new(&rules, TableScope::PerQuery);
        eng.materialize(&mut s);
        let derived = eng.materialize_delta(&mut s, &[t(0, P, 1)]);
        assert!(derived.is_empty());
    }

    #[test]
    fn delta_jena_matches_delta_plain() {
        let base = [t(0, P, 1), t(1, P, 2)];
        let delta = [t(2, P, 3)];
        let rules = [trans_rule(P)];

        let run = |jena: bool| -> Vec<Triple> {
            let mut s: TripleStore = base.iter().copied().collect();
            let mut eng = BackwardEngine::new(&rules, TableScope::PerQuery);
            eng.materialize(&mut s);
            for &d in &delta {
                s.insert(d);
            }
            if jena {
                eng.materialize_delta_jena(&mut s, &delta);
            } else {
                eng.materialize_delta(&mut s, &delta);
            }
            s.iter_sorted()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn empty_store_materializes_to_empty() {
        let rules = [trans_rule(P)];
        let mut s = TripleStore::new();
        let mut eng = BackwardEngine::new(&rules, TableScope::PerQuery);
        assert_eq!(eng.materialize(&mut s), 0);
        assert!(s.is_empty());
    }
}
