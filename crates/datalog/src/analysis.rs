//! Static rule analysis.
//!
//! Two analyses from the paper:
//!
//! 1. **Single-join classification** (§II): a rule is *single-join* when
//!    its body has at most two atoms and, if two, the atoms share at least
//!    one variable. The paper's data-partitioning correctness argument
//!    rests on every OWL-Horst rule (bar one) being single-join: if both
//!    endpoints of every triple mentioning a resource live on that
//!    resource's owner, every possible join is locally evaluable.
//! 2. **Rule-dependency graph** (Algorithm 2): vertex per rule, edge
//!    `r1 → r2` when the head of `r1` may unify with a body atom of `r2`
//!    (a triple produced by `r1` can trigger `r2`). Optionally weighted by
//!    an estimate of how many triples `r1` will produce, taken from the
//!    dataset's predicate histogram.

use crate::ast::{Rule, TermPat};
use owlpar_rdf::fx::FxHashMap;
use owlpar_rdf::NodeId;

/// Join-structure classification of a rule body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinClass {
    /// No body atoms at all. [`Rule::new`] rejects this, but `Rule`'s
    /// fields are public, so a hand-built rule can still carry an empty
    /// body; classify it explicitly instead of lumping it with multi-joins.
    EmptyBody,
    /// One body atom — no join at all.
    SingleAtom,
    /// Exactly two body atoms sharing at least one variable.
    SingleJoin {
        /// The shared (join) variables.
        join_vars: Vec<u16>,
    },
    /// Two atoms sharing no variable (a cross product).
    CrossProduct,
    /// Three or more body atoms.
    MultiJoin,
}

/// Classify a rule's body join structure.
pub fn classify(rule: &Rule) -> JoinClass {
    match rule.body.len() {
        0 => JoinClass::EmptyBody,
        1 => JoinClass::SingleAtom,
        2 => {
            let a = rule.body[0].variables();
            let b = rule.body[1].variables();
            let join_vars: Vec<u16> = a.into_iter().filter(|v| b.contains(v)).collect();
            if join_vars.is_empty() {
                JoinClass::CrossProduct
            } else {
                JoinClass::SingleJoin { join_vars }
            }
        }
        _ => JoinClass::MultiJoin,
    }
}

/// `true` iff the rule is evaluable under the paper's data-partitioning
/// scheme without communication beyond the ownership protocol (single atom
/// or single join; an empty body joins nothing and is trivially local).
pub fn is_single_join(rule: &Rule) -> bool {
    matches!(
        classify(rule),
        JoinClass::EmptyBody | JoinClass::SingleAtom | JoinClass::SingleJoin { .. }
    )
}

/// A rule-dependency graph: adjacency `edges[i]` lists `(j, weight)` for
/// every rule `j` whose body may consume what rule `i` produces.
#[derive(Debug, Clone)]
pub struct RuleDependencyGraph {
    /// Number of rules (vertices).
    pub n: usize,
    /// Outgoing edges per rule, `(target, weight)`.
    pub edges: Vec<Vec<(usize, u64)>>,
}

impl RuleDependencyGraph {
    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Symmetrize into an undirected weighted edge list, merging weights of
    /// antiparallel edges — the input the graph partitioner expects.
    pub fn undirected_edges(&self) -> Vec<(usize, usize, u64)> {
        let mut acc: FxHashMap<(usize, usize), u64> = FxHashMap::default();
        for (i, outs) in self.edges.iter().enumerate() {
            for &(j, w) in outs {
                if i == j {
                    continue; // self-loop: no partitioning pressure
                }
                let key = (i.min(j), i.max(j));
                *acc.entry(key).or_default() += w;
            }
        }
        let mut v: Vec<(usize, usize, u64)> =
            acc.into_iter().map(|((a, b), w)| (a, b, w)).collect();
        v.sort_unstable();
        v
    }
}

/// Build the unweighted dependency graph (all weights 1).
pub fn dependency_graph(rules: &[Rule]) -> RuleDependencyGraph {
    weighted_dependency_graph(rules, &FxHashMap::default(), 1)
}

/// Build the dependency graph weighting each edge `r1 → r2` by the
/// estimated number of triples `r1` produces: the dataset count of the
/// head predicate when it is a constant with a known histogram entry,
/// `default_weight` otherwise (paper §III-B: "a priori knowledge about the
/// distribution of different predicates ... can be used to weigh the
/// edges").
pub fn weighted_dependency_graph(
    rules: &[Rule],
    predicate_counts: &FxHashMap<NodeId, usize>,
    default_weight: u64,
) -> RuleDependencyGraph {
    let mut edges = vec![Vec::new(); rules.len()];
    for (i, producer) in rules.iter().enumerate() {
        let weight = match producer.head.p {
            TermPat::Const(p) => predicate_counts
                .get(&p)
                .map(|&c| (c as u64).max(1))
                .unwrap_or(default_weight),
            TermPat::Var(_) => default_weight,
        };
        for (j, consumer) in rules.iter().enumerate() {
            if consumer
                .body
                .iter()
                .any(|atom| producer.head.may_unify(atom))
            {
                edges[i].push((j, weight));
            }
        }
    }
    RuleDependencyGraph {
        n: rules.len(),
        edges,
    }
}

/// Strongly-connected-component condensation order of the dependency
/// graph (Tarjan). Rules inside one SCC are mutually recursive; the
/// returned vector maps each rule to its component id, components numbered
/// in reverse topological order. Useful for scheduling and diagnostics.
pub fn sccs(graph: &RuleDependencyGraph) -> Vec<usize> {
    struct Tarjan<'g> {
        g: &'g RuleDependencyGraph,
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next_index: usize,
        comp: Vec<usize>,
        next_comp: usize,
    }
    impl Tarjan<'_> {
        fn visit(&mut self, v: usize) {
            self.index[v] = Some(self.next_index);
            self.low[v] = self.next_index;
            self.next_index += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for &(w, _) in &self.g.edges[v] {
                match self.index[w] {
                    None => {
                        self.visit(w);
                        self.low[v] = self.low[v].min(self.low[w]);
                    }
                    Some(iw) if self.on_stack[w] => {
                        self.low[v] = self.low[v].min(iw);
                    }
                    Some(_) => {}
                }
            }
            if Some(self.low[v]) == self.index[v] {
                while let Some(w) = self.stack.pop() {
                    self.on_stack[w] = false;
                    self.comp[w] = self.next_comp;
                    if w == v {
                        break;
                    }
                }
                self.next_comp += 1;
            }
        }
    }
    let n = graph.n;
    let mut t = Tarjan {
        g: graph,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next_index: 0,
        comp: vec![0; n],
        next_comp: 0,
    };
    for v in 0..n {
        if t.index[v].is_none() {
            t.visit(v);
        }
    }
    t.comp
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ast::build::*;

    fn nid(i: u32) -> NodeId {
        NodeId(i)
    }

    const P: u32 = 1;
    const Q: u32 = 2;
    const R: u32 = 3;

    fn trans(p: u32) -> Rule {
        Rule::new(
            format!("trans{p}"),
            atom(v(0), c(nid(p)), v(2)),
            vec![atom(v(0), c(nid(p)), v(1)), atom(v(1), c(nid(p)), v(2))],
        )
        .unwrap()
    }

    fn promote(from: u32, to: u32) -> Rule {
        Rule::new(
            format!("promote{from}_{to}"),
            atom(v(0), c(nid(to)), v(1)),
            vec![atom(v(0), c(nid(from)), v(1))],
        )
        .unwrap()
    }

    #[test]
    fn classify_single_atom() {
        assert_eq!(classify(&promote(P, Q)), JoinClass::SingleAtom);
        assert!(is_single_join(&promote(P, Q)));
    }

    #[test]
    fn classify_single_join_finds_join_var() {
        let r = trans(P);
        match classify(&r) {
            JoinClass::SingleJoin { join_vars } => assert_eq!(join_vars, vec![1]),
            other => panic!("expected SingleJoin, got {other:?}"),
        }
        assert!(is_single_join(&r));
    }

    #[test]
    fn classify_cross_product() {
        let r = Rule::new(
            "cross",
            atom(v(0), c(nid(P)), v(1)),
            vec![atom(v(0), c(nid(P)), v(1)), atom(v(2), c(nid(Q)), v(3))],
        )
        .unwrap();
        assert_eq!(classify(&r), JoinClass::CrossProduct);
        assert!(!is_single_join(&r));
    }

    #[test]
    fn classify_multi_join() {
        let r = Rule::new(
            "multi",
            atom(v(0), c(nid(P)), v(2)),
            vec![
                atom(v(0), c(nid(P)), v(1)),
                atom(v(1), c(nid(P)), v(2)),
                atom(v(2), c(nid(Q)), v(0)),
            ],
        )
        .unwrap();
        assert_eq!(classify(&r), JoinClass::MultiJoin);
        assert!(!is_single_join(&r));
    }

    #[test]
    fn dependency_edges_follow_head_to_body() {
        // promote P→Q feeds trans(Q); trans(Q) feeds itself.
        let rules = [promote(P, Q), trans(Q)];
        let g = dependency_graph(&rules);
        assert!(g.edges[0].iter().any(|&(j, _)| j == 1), "promote -> trans");
        assert!(g.edges[1].iter().any(|&(j, _)| j == 1), "trans self-loop");
        assert!(
            !g.edges[1].iter().any(|&(j, _)| j == 0),
            "trans does not feed promote"
        );
    }

    #[test]
    fn no_edge_between_unrelated_predicates() {
        let rules = [promote(P, Q), promote(R, P)];
        let g = dependency_graph(&rules);
        // promote(R,P) produces P-triples consumed by promote(P,Q): edge 1->0
        assert!(g.edges[1].iter().any(|&(j, _)| j == 0));
        // promote(P,Q) produces Q-triples; nothing consumes Q
        assert!(g.edges[0].is_empty());
    }

    #[test]
    fn weighted_edges_use_predicate_histogram() {
        let rules = [promote(P, Q), trans(Q)];
        let mut hist: FxHashMap<NodeId, usize> = FxHashMap::default();
        hist.insert(nid(Q), 500);
        let g = weighted_dependency_graph(&rules, &hist, 1);
        let w = g.edges[0].iter().find(|&&(j, _)| j == 1).unwrap().1;
        assert_eq!(w, 500);
    }

    #[test]
    fn undirected_edges_merge_and_drop_self_loops() {
        let rules = [trans(P), promote(P, P)];
        // trans(P) -> trans(P) self loop dropped; trans(P) <-> promote(P,P)
        let g = dependency_graph(&rules);
        let und = g.undirected_edges();
        assert!(und.iter().all(|&(a, b, _)| a != b));
        assert!(und.iter().any(|&(a, b, _)| (a, b) == (0, 1)));
    }

    mod random_rules {
        use super::*;
        use crate::ast::Atom;
        use proptest::prelude::*;

        fn term_strategy() -> impl Strategy<Value = TermPat> {
            prop_oneof![
                (0u16..4).prop_map(TermPat::Var),
                (1u32..6).prop_map(|i| TermPat::Const(NodeId(i))),
            ]
        }

        fn atom_strategy() -> impl Strategy<Value = Atom> {
            (term_strategy(), term_strategy(), term_strategy())
                .prop_map(|(s, p, o)| Atom::new(s, p, o))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn classify_agrees_with_is_single_join(
                head in atom_strategy(),
                body in prop::collection::vec(atom_strategy(), 0..5),
            ) {
                // Hand-built on purpose: random rules need not be dense
                // or range-restricted, and classify must not care.
                let r = Rule { name: "rand".to_string(), head, body, var_count: 4 };
                let class = classify(&r);
                prop_assert_eq!(
                    is_single_join(&r),
                    matches!(
                        class,
                        JoinClass::EmptyBody
                            | JoinClass::SingleAtom
                            | JoinClass::SingleJoin { .. }
                    )
                );
                match r.body.len() {
                    0 => prop_assert_eq!(class, JoinClass::EmptyBody),
                    1 => prop_assert_eq!(class, JoinClass::SingleAtom),
                    2 => {
                        let a = r.body[0].variables();
                        let b = r.body[1].variables();
                        let shares = a.iter().any(|v| b.contains(v));
                        prop_assert_eq!(
                            shares,
                            matches!(class, JoinClass::SingleJoin { .. })
                        );
                        prop_assert_eq!(
                            !shares,
                            matches!(class, JoinClass::CrossProduct)
                        );
                    }
                    _ => prop_assert_eq!(class, JoinClass::MultiJoin),
                }
            }
        }
    }

    #[test]
    fn sccs_group_mutually_recursive_rules() {
        // p -> q and q -> p are mutually recursive; r -> r alone.
        let rules = [promote(P, Q), promote(Q, P), trans(R)];
        let g = dependency_graph(&rules);
        let comp = sccs(&g);
        assert_eq!(comp[0], comp[1], "mutual recursion in one SCC");
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn classify_empty_body() {
        // Rule::new rejects empty bodies, but the fields are public.
        let r = Rule {
            name: "fact".to_string(),
            head: atom(c(nid(P)), c(nid(Q)), c(nid(R))),
            body: vec![],
            var_count: 0,
        };
        assert_eq!(classify(&r), JoinClass::EmptyBody);
        assert!(is_single_join(&r), "an empty body joins nothing");
    }

    #[test]
    fn classify_head_only_variables() {
        // A head variable with no body occurrence (not range-restricted;
        // again only constructible by hand). Classification looks at the
        // body alone, so this is still a single atom.
        let r = Rule {
            name: "unrestricted".to_string(),
            head: atom(v(0), c(nid(P)), v(1)),
            body: vec![atom(v(0), c(nid(P)), v(0))],
            var_count: 2,
        };
        assert_eq!(classify(&r), JoinClass::SingleAtom);
        assert!(is_single_join(&r));
    }

    #[test]
    fn self_dependent_rule_has_self_loop() {
        // trans(P)'s head (?0 P ?2) unifies with both of its own body
        // atoms: the dependency graph must carry the self-loop, and the
        // rule must be its own (singleton) SCC.
        let rules = [trans(P)];
        let g = dependency_graph(&rules);
        assert!(g.edges[0].iter().any(|&(j, _)| j == 0), "self-loop");
        let comp = sccs(&g);
        assert_eq!(comp, vec![0]);
    }

    #[test]
    fn two_atom_duplicate_body_is_single_join() {
        // Both body atoms identical: every variable is shared.
        let r = Rule::new(
            "dup",
            atom(v(0), c(nid(P)), v(1)),
            vec![atom(v(0), c(nid(P)), v(1)), atom(v(0), c(nid(P)), v(1))],
        )
        .unwrap();
        match classify(&r) {
            JoinClass::SingleJoin { join_vars } => assert_eq!(join_vars, vec![0, 1]),
            other => panic!("expected SingleJoin, got {other:?}"),
        }
    }

    #[test]
    fn variable_predicate_heads_conservatively_connect() {
        let sym = Rule::new(
            "sym_all",
            atom(v(2), v(1), v(0)),
            vec![atom(v(0), v(1), v(2))],
        )
        .unwrap();
        let rules = [sym, trans(P)];
        let g = dependency_graph(&rules);
        // a variable-predicate head may unify with anything
        assert!(g.edges[0].iter().any(|&(j, _)| j == 1));
    }
}
