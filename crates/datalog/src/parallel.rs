//! Multi-threaded semi-naive evaluation over a frozen base store.
//!
//! The serial engine in [`forward`](crate::forward) spends each round
//! joining the delta against the store. Those joins are independent per
//! delta triple, so this module shards the round's delta across a scoped
//! thread pool: every thread joins its shard against a shared, immutable
//! [`FrozenStore`] base (plus a small mutable overlay of recent
//! derivations) into a thread-local candidate buffer, then a single
//! merge + dedup + insert step on the coordinating thread produces the
//! next delta. The fixpoint is identical to the serial engine's — only
//! derivation order differs — because semi-naive evaluation is confluent:
//! any instantiation with at least one body atom in the delta has a pivot
//! in exactly the shards holding that atom's triple, and the remaining
//! atoms are joined against the full base ∪ overlay ∪ delta view.
//!
//! The base is maintained LSM-style: rounds insert into the overlay, and
//! once the overlay outgrows a fraction of the base the two are merged
//! into a fresh frozen store (a linear merge of sorted runs, not a
//! rebuild). Reads stay lock-free throughout — threads only ever see the
//! frozen base and an overlay that is not mutated during a round.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use crate::ast::Rule;
use crate::forward::{apply_rule_delta, forward_closure_delta};
use owlpar_obs::{global as obs_global, Phase, Track};
use owlpar_rdf::{FrozenStore, Triple, TripleStore};

/// Below this delta size a round is evaluated on the calling thread:
/// spawn + merge overhead dwarfs the join work.
const MIN_PARALLEL_DELTA: usize = 256;

/// Resolve a configured thread budget: `0` means "all available
/// parallelism" (clamped to at least 1).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
}

/// Compute the closure of `store` under `rules` using up to `threads`
/// worker threads (0 = auto). Returns the number of derived triples.
///
/// Produces exactly the same fixpoint as
/// [`forward_closure`](crate::forward::forward_closure).
pub fn parallel_closure(store: &mut TripleStore, rules: &[Rule], threads: usize) -> usize {
    let threads = resolve_threads(threads);
    if threads <= 1 || store.len() < MIN_PARALLEL_DELTA {
        let seed: Vec<Triple> = store.iter().copied().collect();
        return forward_closure_delta(store, rules, seed).len();
    }
    let base = FrozenStore::from_store(store);
    // Seed in SPO order: shard chunks are then sorted runs, so the
    // per-shard index builds are near-linear (and chunking is
    // deterministic, independent of hash iteration order).
    let seed = base.iter_sorted();
    let (_, derived) = closure_delta_over(base, rules, seed, threads);
    for &t in &derived {
        store.insert(t);
    }
    derived.len()
}

/// `store` is closed under `rules` except that the triples in `delta`
/// were just inserted. Derives all consequences with up to `threads`
/// worker threads (0 = auto), inserts them, and returns them (cascades
/// included). Same contract as
/// [`forward_closure_delta`](crate::forward::forward_closure_delta).
pub fn parallel_closure_delta(
    store: &mut TripleStore,
    rules: &[Rule],
    delta: Vec<Triple>,
    threads: usize,
) -> Vec<Triple> {
    let threads = resolve_threads(threads);
    if threads <= 1 || delta.len() < MIN_PARALLEL_DELTA {
        return forward_closure_delta(store, rules, delta);
    }
    let base = FrozenStore::from_store(store);
    let (_, derived) = closure_delta_over(base, rules, delta, threads);
    for &t in &derived {
        store.insert(t);
    }
    derived
}

/// Core round loop over a frozen base store.
///
/// `seed` must already be contained in `base`. Each round joins the delta
/// shards against the frozen base, then folds the round's new triples
/// into it with a linear merge of sorted runs (LSM-style: freezing is a
/// merge, never a rebuild) — no per-triple hash maintenance anywhere on
/// the hot path. Returns the final frozen store (the closure) and every
/// newly derived triple.
pub fn closure_delta_over(
    mut base: FrozenStore,
    rules: &[Rule],
    seed: Vec<Triple>,
    threads: usize,
) -> (FrozenStore, Vec<Triple>) {
    let threads = resolve_threads(threads).max(1);
    // Ambient tracing: one coordinator track plus one stable lane per
    // shard slot, forked into the scoped threads each round (disabled
    // recorder: every span call is a single branch).
    let rec = obs_global();
    let mut track = rec.track("closure");
    let shard_tracks: Vec<Track> = (0..threads)
        .map(|i| rec.track(&format!("shard {i}")))
        .collect();
    let mut all_derived: Vec<Triple> = Vec::new();
    let mut delta = seed;
    let mut round_no: u32 = 0;
    while !delta.is_empty() {
        let round_span = track.begin(Phase::Round, round_no);
        // Sorted, deduplicated, *novel* heads from the sharded joins
        // (each shard filters against the frozen base before returning).
        let new = round_candidates(&base, rules, &delta, threads, &shard_tracks, &mut track, round_no);
        if !new.is_empty() {
            let freeze = track.begin(Phase::Freeze, round_no);
            base = base.merge_triples(&new);
            track.end(freeze);
            all_derived.extend_from_slice(&new);
        }
        track.end(round_span);
        delta = new;
        round_no += 1;
    }
    (base, all_derived)
}

/// One round: shard `delta`, join each shard against the frozen `view`
/// on its own thread, and return the sorted, deduplicated triples that
/// are *not yet* in `view`.
///
/// Each shard sorts, dedupes and novelty-filters its own candidates
/// before handing them to the coordinator, so the per-candidate
/// `contains` probes run in parallel and walk the base coherently
/// (ascending probes). The coordinator only resolves cross-shard
/// duplicates.
fn round_candidates(
    view: &FrozenStore,
    rules: &[Rule],
    delta: &[Triple],
    threads: usize,
    shard_tracks: &[Track],
    track: &mut Track,
    round_no: u32,
) -> Vec<Triple> {
    let join_shard = |shard: &[Triple], mut lane: Track| {
        // CSR shard: sorting a slice is much cheaper than building hash
        // indexes, and pivot scans are cache-local.
        let join = lane.begin(Phase::Join, round_no);
        let shard_store = FrozenStore::from_triples(shard.iter().copied());
        let mut out = Vec::new();
        for rule in rules {
            apply_rule_delta(view, &shard_store, rule, &mut out);
        }
        lane.end(join);
        let dedup = lane.begin(Phase::Dedup, round_no);
        out.sort_unstable();
        out.dedup();
        out.retain(|t| !view.contains(t));
        lane.end(dedup);
        out
    };

    let shards = threads.min(delta.len().div_ceil(MIN_PARALLEL_DELTA / 4)).max(1);
    if shards <= 1 {
        return join_shard(delta, track.fork());
    }
    let chunk = delta.len().div_ceil(shards);
    let mut locals: Vec<Vec<Triple>> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for (i, shard) in delta.chunks(chunk).enumerate() {
            let lane = shard_tracks.get(i).map_or_else(|| track.fork(), Track::fork);
            handles.push(scope.spawn(move || join_shard(shard, lane)));
        }
        for handle in handles {
            match handle.join() {
                Ok(out) => locals.push(out),
                // A panicking shard (rule bug, OOM abort path) must not
                // silently drop derivations: re-raise on the coordinator
                // so callers see the original panic.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let total = locals.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for mut local in locals {
        out.append(&mut local);
    }
    // Per-shard runs are sorted and duplicate-free; one more sort + dedup
    // resolves cross-shard duplicates (pdqsort is near-linear on
    // concatenated sorted runs).
    let dedup = track.begin(Phase::Dedup, round_no);
    out.sort_unstable();
    out.dedup();
    track.end(dedup);
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ast::build::*;
    use crate::forward::forward_closure;
    use owlpar_rdf::NodeId;

    const P: u32 = 100;
    const Q: u32 = 101;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    fn trans_rule(p: u32) -> Rule {
        Rule::new(
            "trans",
            atom(v(0), c(NodeId(p)), v(2)),
            vec![atom(v(0), c(NodeId(p)), v(1)), atom(v(1), c(NodeId(p)), v(2))],
        )
        .unwrap()
    }

    fn chain(n: u32) -> Vec<Triple> {
        (0..n).map(|i| t(i, P, i + 1)).collect()
    }

    #[test]
    fn matches_serial_on_transitive_chain() {
        for threads in [1, 2, 4, 8] {
            let mut serial: TripleStore = chain(60).into_iter().collect();
            forward_closure(&mut serial, &[trans_rule(P)]);

            let mut par: TripleStore = chain(60).into_iter().collect();
            let n = parallel_closure(&mut par, &[trans_rule(P)], threads);
            assert_eq!(par.iter_sorted(), serial.iter_sorted(), "threads={threads}");
            assert_eq!(n, 60 * 61 / 2 - 60, "threads={threads}");
        }
    }

    #[test]
    fn delta_matches_serial_delta() {
        let rules = [trans_rule(P)];
        // close a chain, then extend it with a batch of fresh links
        let mut serial: TripleStore = chain(40).into_iter().collect();
        forward_closure(&mut serial, &rules);
        let mut par = serial.clone();

        let fresh: Vec<Triple> = (41..80).map(|i| t(i, P, i + 1)).collect();
        for &f in &fresh {
            serial.insert(f);
            par.insert(f);
        }
        let mut a = forward_closure_delta(&mut serial, &rules, fresh.clone());
        let mut b = parallel_closure_delta(&mut par, &rules, fresh, 4);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(par.iter_sorted(), serial.iter_sorted());
    }

    #[test]
    fn small_deltas_fall_back_to_serial_and_agree() {
        let rules = [trans_rule(P)];
        let mut s: TripleStore = [t(0, P, 1), t(1, P, 2)].into_iter().collect();
        let n = parallel_closure(&mut s, &rules, 8);
        assert_eq!(n, 1);
        assert!(s.contains(&t(0, P, 2)));
    }

    #[test]
    fn cascading_rule_mix_matches_serial() {
        // q(x,y) -> p(x,y), p transitive: cascades across rounds
        let promote = Rule::new(
            "promote",
            atom(v(0), c(NodeId(P)), v(1)),
            vec![atom(v(0), c(NodeId(Q)), v(1))],
        )
        .unwrap();
        let rules = [promote, trans_rule(P)];
        let facts: Vec<Triple> = (0..400).map(|i| t(i % 37, Q, (i * 7) % 37)).collect();

        let mut serial: TripleStore = facts.iter().copied().collect();
        forward_closure(&mut serial, &rules);
        for threads in [2, 8] {
            let mut par: TripleStore = facts.iter().copied().collect();
            parallel_closure(&mut par, &rules, threads);
            assert_eq!(par.iter_sorted(), serial.iter_sorted(), "threads={threads}");
        }
    }

    #[test]
    fn closure_delta_over_returns_closed_frozen_store() {
        let rules = [trans_rule(P)];
        let facts = chain(150);
        let mut serial: TripleStore = facts.iter().copied().collect();
        forward_closure(&mut serial, &rules);

        let base = FrozenStore::from_triples(facts.iter().copied());
        let (closed, derived) = closure_delta_over(base, &rules, facts.clone(), 4);
        let expected = 150 * 151 / 2 - 150;
        assert_eq!(derived.len(), expected);
        assert_eq!(closed.iter_sorted(), serial.iter_sorted());
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
