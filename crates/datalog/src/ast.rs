//! Rule abstract syntax: term patterns, atoms and rules.
//!
//! Rules are normalized so that their variables are numbered densely from
//! zero; a rule's `var_count` then sizes the binding frame used during
//! evaluation (a plain `Vec<Option<NodeId>>`, no hashing on the hot path).

use owlpar_rdf::{NodeId, Triple, TriplePattern};
use serde::{Deserialize, Serialize};

/// A position in an atom: either a variable (dense index within the rule)
/// or a constant node id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TermPat {
    /// Variable with rule-local index.
    Var(u16),
    /// Dictionary-encoded constant.
    Const(NodeId),
}

impl TermPat {
    /// The variable index, if this is a variable.
    pub fn as_var(&self) -> Option<u16> {
        match self {
            TermPat::Var(v) => Some(*v),
            TermPat::Const(_) => None,
        }
    }

    /// The constant id, if this is a constant.
    pub fn as_const(&self) -> Option<NodeId> {
        match self {
            TermPat::Const(c) => Some(*c),
            TermPat::Var(_) => None,
        }
    }
}

/// A triple atom `(s p o)` over [`TermPat`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// Subject pattern.
    pub s: TermPat,
    /// Predicate pattern.
    pub p: TermPat,
    /// Object pattern.
    pub o: TermPat,
}

/// Variable bindings for one rule instantiation, indexed by variable id.
pub type Bindings = Vec<Option<NodeId>>;

/// Undo record for [`Atom::match_triple_in_place`]: the (at most three)
/// variable indices that call newly bound, to be cleared when the caller
/// backtracks past the match.
#[derive(Debug, Default, Clone, Copy)]
pub struct MatchUndo {
    vars: [u16; 3],
    len: u8,
}

impl MatchUndo {
    fn push(&mut self, var: u16) {
        self.vars[self.len as usize] = var;
        self.len += 1;
    }

    /// Clear the bindings this match introduced.
    pub fn undo(&self, bindings: &mut Bindings) {
        for &v in &self.vars[..self.len as usize] {
            bindings[v as usize] = None;
        }
    }
}

impl Atom {
    /// Construct an atom.
    pub fn new(s: TermPat, p: TermPat, o: TermPat) -> Self {
        Atom { s, p, o }
    }

    /// The atom's positions as an array.
    pub fn positions(&self) -> [TermPat; 3] {
        [self.s, self.p, self.o]
    }

    /// All distinct variable indices in this atom.
    pub fn variables(&self) -> Vec<u16> {
        let mut vs: Vec<u16> = self.positions().iter().filter_map(TermPat::as_var).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Turn this atom into a store pattern under `bindings`: bound vars and
    /// constants become concrete, unbound vars become wildcards.
    pub fn to_pattern(&self, bindings: &Bindings) -> TriplePattern {
        let resolve = |tp: TermPat| match tp {
            TermPat::Const(c) => Some(c),
            TermPat::Var(v) => bindings[v as usize],
        };
        TriplePattern::new(resolve(self.s), resolve(self.p), resolve(self.o))
    }

    /// Try to extend `bindings` so that this atom matches triple `t`.
    /// Returns `false` (leaving bindings possibly partially updated — use
    /// [`Atom::match_triple`] for the checked variant) on conflict.
    fn unify_into(&self, t: &Triple, bindings: &mut Bindings) -> bool {
        for (pat, val) in self.positions().into_iter().zip(t.as_array()) {
            match pat {
                TermPat::Const(c) => {
                    if c != val {
                        return false;
                    }
                }
                TermPat::Var(v) => match bindings[v as usize] {
                    None => bindings[v as usize] = Some(val),
                    Some(existing) => {
                        if existing != val {
                            return false;
                        }
                    }
                },
            }
        }
        true
    }

    /// Extend a copy of `bindings` to match triple `t`; `None` on conflict.
    pub fn match_triple(&self, t: &Triple, bindings: &Bindings) -> Option<Bindings> {
        let mut b = bindings.clone();
        if self.unify_into(t, &mut b) {
            Some(b)
        } else {
            None
        }
    }

    /// Allocation-free variant of [`Atom::match_triple`]: extend
    /// `bindings` in place. On success returns the undo record for the
    /// variables this call newly bound; on conflict rolls back its own
    /// partial bindings and returns `None`. Either way `bindings` is
    /// consistent when this returns.
    pub fn match_triple_in_place(&self, t: &Triple, bindings: &mut Bindings) -> Option<MatchUndo> {
        let mut undo = MatchUndo::default();
        for (pat, val) in self.positions().into_iter().zip(t.as_array()) {
            match pat {
                TermPat::Const(c) => {
                    if c != val {
                        undo.undo(bindings);
                        return None;
                    }
                }
                TermPat::Var(v) => match bindings[v as usize] {
                    None => {
                        bindings[v as usize] = Some(val);
                        undo.push(v);
                    }
                    Some(existing) => {
                        if existing != val {
                            undo.undo(bindings);
                            return None;
                        }
                    }
                },
            }
        }
        Some(undo)
    }

    /// Instantiate this atom into a ground triple; `None` if any variable
    /// is unbound.
    pub fn instantiate(&self, bindings: &Bindings) -> Option<Triple> {
        let resolve = |tp: TermPat| match tp {
            TermPat::Const(c) => Some(c),
            TermPat::Var(v) => bindings[v as usize],
        };
        Some(Triple::new(
            resolve(self.s)?,
            resolve(self.p)?,
            resolve(self.o)?,
        ))
    }

    /// Can this atom possibly match triple `t` ignoring variable
    /// consistency (i.e. constants agree positionally)? Used by the rule
    /// partitioner's triple-routing test.
    pub fn could_match(&self, t: &Triple) -> bool {
        self.positions()
            .into_iter()
            .zip(t.as_array())
            .all(|(pat, val)| match pat {
                TermPat::Const(c) => c == val,
                TermPat::Var(_) => true,
            })
    }

    /// Do two atoms potentially unify (var matches anything, constants must
    /// be equal)? Conservative test used to build the rule-dependency graph.
    pub fn may_unify(&self, other: &Atom) -> bool {
        self.positions()
            .into_iter()
            .zip(other.positions())
            .all(|(a, b)| match (a, b) {
                (TermPat::Const(x), TermPat::Const(y)) => x == y,
                _ => true,
            })
    }
}

/// A datalog rule: one head atom, conjunctive body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// Rule label for diagnostics and reporting.
    pub name: String,
    /// The single head atom (derived triple template).
    pub head: Atom,
    /// Conjunctive body (sub-goals).
    pub body: Vec<Atom>,
    /// Number of distinct variables (they are densely numbered `0..var_count`).
    pub var_count: u16,
}

impl Rule {
    /// Build a rule, computing `var_count` and validating:
    /// * the body is non-empty,
    /// * variable indices are dense,
    /// * the rule is range-restricted (every head variable occurs in the body).
    pub fn new(name: impl Into<String>, head: Atom, body: Vec<Atom>) -> Result<Self, String> {
        let name = name.into();
        if body.is_empty() {
            return Err(format!("rule {name}: empty body not supported"));
        }
        let mut seen: Vec<u16> = body
            .iter()
            .chain(std::iter::once(&head))
            .flat_map(|a| a.variables())
            .collect();
        seen.sort_unstable();
        seen.dedup();
        for (i, v) in seen.iter().enumerate() {
            if *v as usize != i {
                return Err(format!("rule {name}: variable indices not dense"));
            }
        }
        let var_count = seen.len() as u16;
        let body_vars: Vec<u16> = {
            let mut vs: Vec<u16> = body.iter().flat_map(|a| a.variables()).collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        };
        for v in head.variables() {
            if !body_vars.contains(&v) {
                return Err(format!(
                    "rule {name}: head variable ?{v} not bound in body (not range-restricted)"
                ));
            }
        }
        Ok(Rule {
            name,
            head,
            body,
            var_count,
        })
    }

    /// A fresh all-unbound binding frame for this rule.
    pub fn empty_bindings(&self) -> Bindings {
        vec![None; self.var_count as usize]
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn pat(tp: TermPat) -> String {
            match tp {
                TermPat::Var(v) => format!("?v{v}"),
                TermPat::Const(c) => format!("{c}"),
            }
        }
        write!(f, "[{}: ", self.name)?;
        for a in &self.body {
            write!(f, "({} {} {}) ", pat(a.s), pat(a.p), pat(a.o))?;
        }
        write!(
            f,
            "-> ({} {} {})]",
            pat(self.head.s),
            pat(self.head.p),
            pat(self.head.o)
        )
    }
}

/// Shorthand constructors used heavily in tests and the OWL rule templates.
pub mod build {
    use super::*;

    /// Variable pattern.
    pub fn v(i: u16) -> TermPat {
        TermPat::Var(i)
    }

    /// Constant pattern.
    pub fn c(id: NodeId) -> TermPat {
        TermPat::Const(id)
    }

    /// Atom from three patterns.
    pub fn atom(s: TermPat, p: TermPat, o: TermPat) -> Atom {
        Atom::new(s, p, o)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::build::*;
    use super::*;

    fn nid(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn rule_construction_counts_vars() {
        let r = Rule::new(
            "t",
            atom(v(0), c(nid(9)), v(2)),
            vec![atom(v(0), c(nid(9)), v(1)), atom(v(1), c(nid(9)), v(2))],
        )
        .unwrap();
        assert_eq!(r.var_count, 3);
        assert_eq!(r.empty_bindings(), vec![None, None, None]);
    }

    #[test]
    fn rejects_empty_body() {
        assert!(Rule::new("e", atom(v(0), v(0), v(0)), vec![]).is_err());
    }

    #[test]
    fn rejects_non_dense_vars() {
        let r = Rule::new(
            "nd",
            atom(v(0), c(nid(1)), v(5)),
            vec![atom(v(0), c(nid(1)), v(5))],
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_unbound_head_var() {
        let r = Rule::new(
            "ur",
            atom(v(0), c(nid(1)), v(1)),
            vec![atom(v(0), c(nid(1)), v(0))],
        );
        assert!(r.unwrap_err().contains("range-restricted"));
    }

    #[test]
    fn match_triple_binds_and_checks_consistency() {
        let a = atom(v(0), c(nid(5)), v(0)); // reflexive pattern
        let b0 = vec![None];
        assert!(a
            .match_triple(&Triple::new(nid(1), nid(5), nid(1)), &b0)
            .is_some());
        assert!(a
            .match_triple(&Triple::new(nid(1), nid(5), nid(2)), &b0)
            .is_none());
        assert!(a
            .match_triple(&Triple::new(nid(1), nid(6), nid(1)), &b0)
            .is_none());
    }

    #[test]
    fn match_respects_existing_bindings() {
        let a = atom(v(0), c(nid(5)), v(1));
        let b = vec![Some(nid(7)), None];
        assert!(a
            .match_triple(&Triple::new(nid(7), nid(5), nid(8)), &b)
            .is_some());
        assert!(a
            .match_triple(&Triple::new(nid(9), nid(5), nid(8)), &b)
            .is_none());
    }

    #[test]
    fn instantiate_requires_full_bindings() {
        let a = atom(v(0), c(nid(5)), v(1));
        assert_eq!(a.instantiate(&vec![Some(nid(1)), None]), None);
        assert_eq!(
            a.instantiate(&vec![Some(nid(1)), Some(nid(2))]),
            Some(Triple::new(nid(1), nid(5), nid(2)))
        );
    }

    #[test]
    fn to_pattern_mixes_bound_and_wild() {
        let a = atom(v(0), c(nid(5)), v(1));
        let p = a.to_pattern(&vec![Some(nid(3)), None]);
        assert_eq!(p.s, Some(nid(3)));
        assert_eq!(p.p, Some(nid(5)));
        assert_eq!(p.o, None);
    }

    #[test]
    fn could_match_ignores_var_consistency() {
        let a = atom(v(0), c(nid(5)), v(0));
        // var consistency (s == o) is NOT checked by could_match
        assert!(a.could_match(&Triple::new(nid(1), nid(5), nid(2))));
        assert!(!a.could_match(&Triple::new(nid(1), nid(6), nid(2))));
    }

    #[test]
    fn may_unify_is_conservative() {
        let a = atom(v(0), c(nid(5)), v(1));
        let b = atom(c(nid(9)), c(nid(5)), v(0));
        let c_ = atom(c(nid(9)), c(nid(6)), v(0));
        assert!(a.may_unify(&b));
        assert!(!a.may_unify(&c_));
    }

    #[test]
    fn display_renders_rule() {
        let r = Rule::new(
            "trans",
            atom(v(0), c(nid(9)), v(2)),
            vec![atom(v(0), c(nid(9)), v(1)), atom(v(1), c(nid(9)), v(2))],
        )
        .unwrap();
        let s = r.to_string();
        assert!(s.contains("trans"));
        assert!(s.contains("->"));
    }
}
