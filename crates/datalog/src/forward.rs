//! Bottom-up (forward-chaining) evaluation.
//!
//! [`forward_closure`] runs **semi-naive** evaluation: after the first
//! round, a rule only fires if at least one body atom matches a triple
//! derived in the previous round (the *delta*). [`naive_closure`] re-derives
//! everything every round and exists purely as the ablation baseline for
//! `bench_forward_ablation`.
//!
//! The delta-aware entry point [`forward_closure_delta`] is what the
//! parallel reasoner's rounds use: a worker whose store is already closed
//! receives a batch of foreign triples, inserts them, and only needs to
//! propagate consequences of that batch.

use crate::ast::{Bindings, Rule};
use owlpar_rdf::{Triple, TripleSource, TripleStore};

/// Compute the closure of `store` under `rules`. Returns the number of
/// derived (new) triples. Semi-naive: cost proportional to work actually
/// producing new facts.
pub fn forward_closure(store: &mut TripleStore, rules: &[Rule]) -> usize {
    let seed: Vec<Triple> = store.iter().copied().collect();
    run_rounds(store, rules, seed).len()
}

/// `store` is assumed closed under `rules` except that the triples in
/// `delta` were just inserted. Derives all consequences, inserts them, and
/// returns them (cascades included).
///
/// Precondition: every triple of `delta` is already present in `store`.
pub fn forward_closure_delta(
    store: &mut TripleStore,
    rules: &[Rule],
    delta: Vec<Triple>,
) -> Vec<Triple> {
    debug_assert!(delta.iter().all(|t| store.contains(t)));
    run_rounds(store, rules, delta)
}

/// Naive evaluation: every round applies every rule to the whole store.
/// Kept as an ablation baseline; produces the same closure as
/// [`forward_closure`].
pub fn naive_closure(store: &mut TripleStore, rules: &[Rule]) -> usize {
    let mut derived_total = 0;
    loop {
        let mut new: Vec<Triple> = Vec::new();
        for rule in rules {
            apply_rule_delta(store, store, rule, &mut new);
        }
        let mut added = 0;
        for t in new {
            if store.insert(t) {
                added += 1;
            }
        }
        if added == 0 {
            return derived_total;
        }
        derived_total += added;
    }
}

fn run_rounds(store: &mut TripleStore, rules: &[Rule], seed: Vec<Triple>) -> Vec<Triple> {
    let mut all_derived: Vec<Triple> = Vec::new();
    let mut delta_store: TripleStore = seed.into_iter().collect();
    while !delta_store.is_empty() {
        let mut candidates: Vec<Triple> = Vec::new();
        for rule in rules {
            apply_rule_delta(store, &delta_store, rule, &mut candidates);
        }
        // On transitive-heavy workloads most candidates are duplicates;
        // deduping here saves a 4-index hash probe per duplicate.
        candidates.sort_unstable();
        candidates.dedup();
        let mut next_delta = TripleStore::new();
        for t in candidates {
            if store.insert(t) {
                next_delta.insert(t);
                all_derived.push(t);
            }
        }
        delta_store = next_delta;
    }
    all_derived
}

/// Fire `rule` requiring at least one body atom to match inside `delta`;
/// the remaining atoms are joined against the full `store`. Candidate head
/// instantiations are appended to `out` (duplicates possible; the caller
/// dedupes via store insertion).
///
/// Generic over the store representation so the same join runs against a
/// mutable [`TripleStore`], a frozen base, or a frozen-base + overlay view
/// (the parallel engine shares it across threads).
pub(crate) fn apply_rule_delta<S, D>(store: &S, delta: &D, rule: &Rule, out: &mut Vec<Triple>)
where
    S: TripleSource + ?Sized,
    D: TripleSource + ?Sized,
{
    let mut bindings = rule.empty_bindings();
    let mut remaining: Vec<usize> = Vec::with_capacity(rule.body.len());
    for pivot in 0..rule.body.len() {
        let atom = &rule.body[pivot];
        let pat = atom.to_pattern(&bindings);
        // `join_remaining` restores `remaining` to the same set on return,
        // so one buffer serves every match of this pivot. Likewise every
        // match undoes its bindings, so `bindings` is all-unbound between
        // pivots and no per-match frame is ever allocated.
        remaining.clear();
        remaining.extend((0..rule.body.len()).filter(|&i| i != pivot));
        delta.for_each_match(pat, |t| {
            if let Some(undo) = atom.match_triple_in_place(&t, &mut bindings) {
                join_remaining(store, rule, &mut remaining, &mut bindings, out);
                undo.undo(&mut bindings);
            }
        });
    }
}

/// Recursively join the remaining body atoms against `store`, most-bound
/// atom first (greedy index selection), emitting head instantiations.
///
/// Backtracking is push/pop on the shared `remaining` buffer and
/// bind/undo on the shared `bindings` frame: the chosen atom is
/// swap-removed before recursing and pushed back after, and each match
/// clears exactly the variables it bound — so no per-match allocation
/// happens anywhere on the join spine.
fn join_remaining<S>(
    store: &S,
    rule: &Rule,
    remaining: &mut Vec<usize>,
    bindings: &mut Bindings,
    out: &mut Vec<Triple>,
) where
    S: TripleSource + ?Sized,
{
    if remaining.is_empty() {
        if let Some(t) = rule.head.instantiate(bindings) {
            out.push(t);
        }
        return;
    }
    // Pick the atom with the most bound positions under current bindings:
    // the store lookup for it is cheapest.
    let Some((slot, _)) = remaining
        .iter()
        .enumerate()
        .max_by_key(|(_, &i)| rule.body[i].to_pattern(bindings).bound_count())
    else {
        return;
    };
    let atom_idx = remaining.swap_remove(slot);
    let atom = &rule.body[atom_idx];
    let pat = atom.to_pattern(bindings);
    store.for_each_match(pat, |t| {
        if let Some(undo) = atom.match_triple_in_place(&t, bindings) {
            join_remaining(store, rule, remaining, bindings, out);
            undo.undo(bindings);
        }
    });
    remaining.push(atom_idx); // restore for the caller's other branches
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ast::build::*;
    use crate::ast::Rule;
    use owlpar_rdf::NodeId;

    const P: u32 = 100; // transitive predicate
    const Q: u32 = 101;
    const TYPE: u32 = 102;
    const STUDENT: u32 = 103;
    const PERSON: u32 = 104;

    fn nid(i: u32) -> NodeId {
        NodeId(i)
    }

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(nid(s), nid(p), nid(o))
    }

    fn trans_rule(p: u32) -> Rule {
        Rule::new(
            "trans",
            atom(v(0), c(nid(p)), v(2)),
            vec![atom(v(0), c(nid(p)), v(1)), atom(v(1), c(nid(p)), v(2))],
        )
        .unwrap()
    }

    fn subclass_rule() -> Rule {
        Rule::new(
            "sc",
            atom(v(0), c(nid(TYPE)), c(nid(PERSON))),
            vec![atom(v(0), c(nid(TYPE)), c(nid(STUDENT)))],
        )
        .unwrap()
    }

    #[test]
    fn transitive_chain_closure() {
        // 0 -P-> 1 -P-> 2 -P-> 3  yields 3 derived triples
        let mut s: TripleStore = [t(0, P, 1), t(1, P, 2), t(2, P, 3)].into_iter().collect();
        let n = forward_closure(&mut s, &[trans_rule(P)]);
        assert_eq!(n, 3);
        assert!(s.contains(&t(0, P, 2)));
        assert!(s.contains(&t(0, P, 3)));
        assert!(s.contains(&t(1, P, 3)));
    }

    #[test]
    fn transitive_cycle_terminates() {
        let mut s: TripleStore = [t(0, P, 1), t(1, P, 2), t(2, P, 0)].into_iter().collect();
        forward_closure(&mut s, &[trans_rule(P)]);
        // complete digraph on {0,1,2} including self loops
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn single_atom_rule_fires() {
        let mut s: TripleStore = [t(7, TYPE, STUDENT)].into_iter().collect();
        let n = forward_closure(&mut s, &[subclass_rule()]);
        assert_eq!(n, 1);
        assert!(s.contains(&t(7, TYPE, PERSON)));
    }

    #[test]
    fn cascading_rules_interact() {
        // q(x,y) -> p(x,y); p transitive
        let promote = Rule::new(
            "promote",
            atom(v(0), c(nid(P)), v(1)),
            vec![atom(v(0), c(nid(Q)), v(1))],
        )
        .unwrap();
        let mut s: TripleStore = [t(0, Q, 1), t(1, P, 2)].into_iter().collect();
        let n = forward_closure(&mut s, &[promote, trans_rule(P)]);
        // derive p(0,1), then p(0,2)
        assert_eq!(n, 2);
        assert!(s.contains(&t(0, P, 2)));
    }

    #[test]
    fn closure_is_idempotent() {
        let mut s: TripleStore = [t(0, P, 1), t(1, P, 2)].into_iter().collect();
        let rules = [trans_rule(P)];
        let first = forward_closure(&mut s, &rules);
        assert_eq!(first, 1);
        let second = forward_closure(&mut s, &rules);
        assert_eq!(second, 0);
    }

    #[test]
    fn naive_matches_semi_naive() {
        let base = [t(0, P, 1), t(1, P, 2), t(2, P, 3), t(3, P, 4), t(9, TYPE, STUDENT)];
        let rules = [trans_rule(P), subclass_rule()];

        let mut a: TripleStore = base.into_iter().collect();
        forward_closure(&mut a, &rules);
        let mut b: TripleStore = base.into_iter().collect();
        naive_closure(&mut b, &rules);

        assert_eq!(a.iter_sorted(), b.iter_sorted());
    }

    #[test]
    fn delta_closure_propagates_cascades() {
        let rules = [trans_rule(P)];
        let mut s: TripleStore = [t(0, P, 1), t(1, P, 2)].into_iter().collect();
        forward_closure(&mut s, &rules);
        assert_eq!(s.len(), 3);

        // Now a foreign triple arrives linking 2 -> 3.
        let new = t(2, P, 3);
        s.insert(new);
        let derived = forward_closure_delta(&mut s, &rules, vec![new]);
        let mut derived_sorted = derived.clone();
        derived_sorted.sort_unstable();
        assert_eq!(derived_sorted, vec![t(0, P, 3), t(1, P, 3)]);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn delta_closure_noop_for_known_consequences() {
        let rules = [trans_rule(P)];
        let mut s: TripleStore = [t(0, P, 1), t(1, P, 2)].into_iter().collect();
        forward_closure(&mut s, &rules);
        // Re-adding an existing triple as delta derives nothing new.
        let derived = forward_closure_delta(&mut s, &rules, vec![t(0, P, 1)]);
        assert!(derived.is_empty());
    }

    #[test]
    fn three_atom_body_joins() {
        // r: p(x,y) q(y,z) p(z,w) -> q(x,w)  — exercises recursive join with 3 atoms
        let r = Rule::new(
            "three",
            atom(v(0), c(nid(Q)), v(3)),
            vec![
                atom(v(0), c(nid(P)), v(1)),
                atom(v(1), c(nid(Q)), v(2)),
                atom(v(2), c(nid(P)), v(3)),
            ],
        )
        .unwrap();
        let mut s: TripleStore = [t(0, P, 1), t(1, Q, 2), t(2, P, 3)].into_iter().collect();
        let n = forward_closure(&mut s, &[r]);
        assert_eq!(n, 1);
        assert!(s.contains(&t(0, Q, 3)));
    }

    #[test]
    fn same_variable_twice_in_atom() {
        // reflexive detector: p(x,x) -> type(x, STUDENT)
        let r = Rule::new(
            "refl",
            atom(v(0), c(nid(TYPE)), c(nid(STUDENT))),
            vec![atom(v(0), c(nid(P)), v(0))],
        )
        .unwrap();
        let mut s: TripleStore = [t(1, P, 1), t(2, P, 3)].into_iter().collect();
        let n = forward_closure(&mut s, &[r]);
        assert_eq!(n, 1);
        assert!(s.contains(&t(1, TYPE, STUDENT)));
        assert!(!s.contains(&t(2, TYPE, STUDENT)));
    }

    #[test]
    fn variable_predicate_rules() {
        // "every predicate used between typed things is symmetric"-style
        // rule with a variable in predicate position:
        // (?a ?p ?b) -> (?b ?p ?a) restricted by nothing (pure symmetry)
        let r = Rule::new(
            "sym_all",
            atom(v(2), v(1), v(0)),
            vec![atom(v(0), v(1), v(2))],
        )
        .unwrap();
        let mut s: TripleStore = [t(0, P, 1), t(5, Q, 6)].into_iter().collect();
        let n = forward_closure(&mut s, &[r]);
        assert_eq!(n, 2);
        assert!(s.contains(&t(1, P, 0)));
        assert!(s.contains(&t(6, Q, 5)));
    }

    #[test]
    fn empty_store_closure_is_empty() {
        let mut s = TripleStore::new();
        assert_eq!(forward_closure(&mut s, &[trans_rule(P)]), 0);
    }

    #[test]
    fn no_rules_closure_is_identity() {
        let mut s: TripleStore = [t(0, P, 1)].into_iter().collect();
        assert_eq!(forward_closure(&mut s, &[]), 0);
        assert_eq!(s.len(), 1);
    }
}
