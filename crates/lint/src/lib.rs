//! `owlpar-lint` — static rule-base verification.
//!
//! The paper's data-partitioning correctness argument (§II, Algorithm 1)
//! rests on a *static* property of the rule-base: every rule is
//! **single-join**, so if both endpoints of every triple mentioning a
//! resource live on that resource's owner, every join is locally
//! evaluable. A rule-base violating the property silently produces an
//! *incomplete* closure in a distributed run — exactly the class of bug a
//! static check proves away at load time.
//!
//! This crate runs a battery of static analyses over any rule-base
//! (compiled from an ontology or parsed from a rule file) and emits
//! structured [`Diagnostic`]s with stable lint codes, severities
//! ([`Severity::Deny`] / [`Severity::Warn`] / [`Severity::Allow`]),
//! human and JSON renderers, and per-rule suppressions parsed from
//! rule-file annotations (`# lint: allow(OWL007)`).
//!
//! | code | check | default severity |
//! |--------|--------------------------------------------|------------------|
//! | OWL001 | non-single-join rule (≥3 body atoms)       | deny under data partitioning, warn otherwise |
//! | OWL002 | cross-product body (2 atoms, no shared var)| deny under data partitioning, warn otherwise |
//! | OWL003 | dead rule (body never derivable nor in base vocabulary) | warn |
//! | OWL004 | head variable unbound in body (not range-restricted) | deny |
//! | OWL005 | empty rule body                            | deny |
//! | OWL006 | variable bookkeeping broken (sparse indices / wrong `var_count`) | deny |
//! | OWL007 | duplicate rule                             | warn |
//! | OWL008 | subsumed rule                              | warn |
//! | OWL009 | mutually recursive rule group (SCC ≥ 2)    | allow (informational) |
//! | OWL010 | bad suppression (unknown code, or deny-level target) | warn |
//!
//! The **plan-analysis pass** ([`analyze_plan`]) extends the battery
//! with pre-run cost/skew prediction over a concrete partition plan
//! (worker count, per-worker base sizes, routing strategy):
//!
//! | code | check | default severity |
//! |--------|--------------------------------------------|------------------|
//! | OWL011 | one worker owns > 80% of the estimated firing load | deny |
//! | OWL012 | max worker load > 2× the mean (moderate skew) | warn |
//! | OWL013 | a rule's cross-partition exchange estimate exceeds the whole base | deny |
//! | OWL014 | a rule's exchange estimate exceeds a quarter of the base | warn |
//! | OWL015 | idle workers (zero estimated load); deny when a majority idles | warn |
//! | OWL016 | recursive rule with cross-partition exchange (round count data-dependent) | allow (informational) |
//! | OWL017 | measured round skew exceeds predicted (traced runs, [`check_skew_tolerance`]) | warn |
//!
//! Deny-level findings are correctness findings: the master refuses to
//! spawn workers over such a rule-base (or falls back to full data
//! replication when configured to). They can *not* be suppressed.
//! Plan-level deny findings (OWL011/OWL013, escalated OWL015) are
//! likewise non-overridable: under `--strategy auto` the master only
//! runs a deny-free plan.

#![forbid(unsafe_code)]

mod checks;
mod plan;
mod render;

pub use plan::{
    analyze_plan, check_skew_tolerance, render_comparison, PlanInputs, PlanReport, RoundBound,
    RouteModel, RuleTraffic, WireCostModel, WorkerLoad,
};

use owlpar_datalog::analysis::JoinClass;
use owlpar_datalog::ParsedRule;
use owlpar_datalog::Rule;
use owlpar_rdf::fx::{FxHashMap, FxHashSet};
use owlpar_rdf::NodeId;

/// How the rule-base will be deployed — decides whether a non-local join
/// is a correctness problem or merely a locality concern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionContext {
    /// Algorithm 1: instance data is split by resource ownership and each
    /// worker sees only its shard. Non-single-join rules are **unsound**
    /// here (a derivation could need triples from two shards at once).
    #[default]
    DataPartitioned,
    /// Algorithm 2: the rule-base is split but every worker holds the
    /// complete data, so any join shape is evaluable — non-single-join
    /// rules are only a locality/cost warning.
    RulePartitioned,
    /// Serial or fully replicated evaluation; same as rule partitioning
    /// for safety purposes.
    Replicated,
}

impl PartitionContext {
    /// Stable label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            PartitionContext::DataPartitioned => "data-partitioned",
            PartitionContext::RulePartitioned => "rule-partitioned",
            PartitionContext::Replicated => "replicated",
        }
    }
}

/// Diagnostic severity, ordered `Allow < Warn < Deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: reported, never fails a run.
    Allow,
    /// Suspicious but safe: reported, fails only opt-in strict gates.
    Warn,
    /// Correctness violation: the master refuses the rule-base.
    Deny,
}

impl Severity {
    /// Stable label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// Every lint this crate can emit. The discriminant order matches the
/// `OWLxxx` code numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// OWL001 — ≥3 body atoms: not evaluable under data partitioning.
    NonSingleJoin,
    /// OWL002 — two body atoms sharing no variable (cross product).
    CrossProduct,
    /// OWL003 — a body atom no rule head can derive and whose predicate
    /// is absent from the base vocabulary: the rule can never fire.
    DeadRule,
    /// OWL004 — head variable that never occurs in the body.
    NotRangeRestricted,
    /// OWL005 — empty body.
    EmptyBody,
    /// OWL006 — sparse variable indices or a wrong `var_count`.
    BrokenVariables,
    /// OWL007 — structurally identical to an earlier rule.
    DuplicateRule,
    /// OWL008 — an earlier rule with the same head and a subset of this
    /// body fires whenever this rule would.
    SubsumedRule,
    /// OWL009 — the rule sits in a mutually recursive group (SCC ≥ 2).
    RecursiveGroup,
    /// OWL010 — a suppression annotation that names an unknown code or a
    /// deny-level (non-suppressible) one.
    BadSuppression,
    /// OWL011 — one worker owns more than 80% of the estimated
    /// rule-firing load: the "parallel" run degenerates to serial plus
    /// exchange overhead.
    LoadImbalance,
    /// OWL012 — the most loaded worker carries more than twice the mean
    /// estimated load (moderate skew).
    LoadSkew,
    /// OWL013 — a single rule's cross-partition exchange estimate
    /// exceeds the whole instance base: the plan ships more than it
    /// stores, so partitioning costs more than replication.
    ExchangeExceedsBase,
    /// OWL014 — a rule's exchange estimate exceeds a quarter of the
    /// instance base (heavy but not pathological traffic).
    HeavyExchange,
    /// OWL015 — workers with zero estimated load (no rules to fire, or
    /// an empty base share); deny when a majority of the cluster idles.
    IdleWorkers,
    /// OWL016 — a recursive rule (SCC with a cycle) ships derivations
    /// cross-partition: the round count is bounded only by derivation
    /// depth, not by the rule-dependency condensation.
    RecursiveExchange,
    /// OWL017 — a traced run measured worse per-round skew than the
    /// analyzer predicted (beyond tolerance): the static load model is
    /// underestimating the straggler, so the plan's speedup projection
    /// is optimistic.
    SkewExceedsPredicted,
}

/// All codes, in `OWLxxx` order (used by renderers and `from_id`).
pub const ALL_CODES: [LintCode; 17] = [
    LintCode::NonSingleJoin,
    LintCode::CrossProduct,
    LintCode::DeadRule,
    LintCode::NotRangeRestricted,
    LintCode::EmptyBody,
    LintCode::BrokenVariables,
    LintCode::DuplicateRule,
    LintCode::SubsumedRule,
    LintCode::RecursiveGroup,
    LintCode::BadSuppression,
    LintCode::LoadImbalance,
    LintCode::LoadSkew,
    LintCode::ExchangeExceedsBase,
    LintCode::HeavyExchange,
    LintCode::IdleWorkers,
    LintCode::RecursiveExchange,
    LintCode::SkewExceedsPredicted,
];

impl LintCode {
    /// The stable `OWLxxx` identifier.
    pub fn id(self) -> &'static str {
        match self {
            LintCode::NonSingleJoin => "OWL001",
            LintCode::CrossProduct => "OWL002",
            LintCode::DeadRule => "OWL003",
            LintCode::NotRangeRestricted => "OWL004",
            LintCode::EmptyBody => "OWL005",
            LintCode::BrokenVariables => "OWL006",
            LintCode::DuplicateRule => "OWL007",
            LintCode::SubsumedRule => "OWL008",
            LintCode::RecursiveGroup => "OWL009",
            LintCode::BadSuppression => "OWL010",
            LintCode::LoadImbalance => "OWL011",
            LintCode::LoadSkew => "OWL012",
            LintCode::ExchangeExceedsBase => "OWL013",
            LintCode::HeavyExchange => "OWL014",
            LintCode::IdleWorkers => "OWL015",
            LintCode::RecursiveExchange => "OWL016",
            LintCode::SkewExceedsPredicted => "OWL017",
        }
    }

    /// Short human title for the code table.
    pub fn title(self) -> &'static str {
        match self {
            LintCode::NonSingleJoin => "non-single-join rule",
            LintCode::CrossProduct => "cross-product rule body",
            LintCode::DeadRule => "dead rule",
            LintCode::NotRangeRestricted => "head variable unbound in body",
            LintCode::EmptyBody => "empty rule body",
            LintCode::BrokenVariables => "broken variable bookkeeping",
            LintCode::DuplicateRule => "duplicate rule",
            LintCode::SubsumedRule => "subsumed rule",
            LintCode::RecursiveGroup => "mutually recursive rule group",
            LintCode::BadSuppression => "bad lint suppression",
            LintCode::LoadImbalance => "severe worker load imbalance",
            LintCode::LoadSkew => "moderate worker load skew",
            LintCode::HeavyExchange => "heavy cross-partition exchange",
            LintCode::ExchangeExceedsBase => "exchange estimate exceeds the base",
            LintCode::IdleWorkers => "idle workers in the plan",
            LintCode::RecursiveExchange => "recursive cross-partition exchange",
            LintCode::SkewExceedsPredicted => "measured round skew exceeds predicted",
        }
    }

    /// Resolve a `OWLxxx` identifier (as written in an annotation).
    pub fn from_id(id: &str) -> Option<Self> {
        ALL_CODES.into_iter().find(|c| c.id() == id)
    }

    /// Default severity of this code under a deployment context.
    pub fn default_severity(self, context: PartitionContext) -> Severity {
        match self {
            LintCode::NonSingleJoin | LintCode::CrossProduct => match context {
                PartitionContext::DataPartitioned => Severity::Deny,
                PartitionContext::RulePartitioned | PartitionContext::Replicated => Severity::Warn,
            },
            LintCode::NotRangeRestricted | LintCode::EmptyBody | LintCode::BrokenVariables => {
                Severity::Deny
            }
            LintCode::DeadRule
            | LintCode::DuplicateRule
            | LintCode::SubsumedRule
            | LintCode::BadSuppression => Severity::Warn,
            LintCode::RecursiveGroup => Severity::Allow,
            // Plan-analysis codes: severity is plan-shape-dependent, not
            // deployment-context-dependent (see `plan::analyze_plan`;
            // OWL015 escalates to deny when a majority of workers idle).
            LintCode::LoadImbalance | LintCode::ExchangeExceedsBase => Severity::Deny,
            LintCode::LoadSkew | LintCode::HeavyExchange | LintCode::IdleWorkers => Severity::Warn,
            LintCode::RecursiveExchange => Severity::Allow,
            // Measured-vs-predicted comparison (fed by a traced run's
            // telemetry, `plan::check_skew_tolerance`): the run already
            // happened, so this can only ever advise.
            LintCode::SkewExceedsPredicted => Severity::Warn,
        }
    }
}

/// Typed explanation of a partition-safety violation (OWL001/OWL002).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinViolation {
    /// Two body atoms share no variable: the join degenerates into a
    /// cross product, whose operands can live on different owners.
    CrossProduct,
    /// Three or more body atoms: the intermediate join result is not
    /// anchored to any single resource's owner.
    MultiJoin {
        /// Number of body atoms.
        body_atoms: usize,
    },
    /// The paper's known exception: a rule the operator vouches for by
    /// name (§II keeps exactly one OWL-Horst rule outside the single-join
    /// class). Downgraded to a warning; the runtime must replicate the
    /// triples this rule consumes.
    KnownException,
}

impl JoinViolation {
    /// Stable label used by both renderers.
    pub fn label(&self) -> &'static str {
        match self {
            JoinViolation::CrossProduct => "cross-product",
            JoinViolation::MultiJoin { .. } => "multi-join",
            JoinViolation::KnownException => "known-exception",
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Effective severity (after context mapping and suppression).
    pub severity: Severity,
    /// Name of the offending rule, when the finding is per-rule.
    pub rule: Option<String>,
    /// Index of the offending rule in the linted slice.
    pub rule_index: Option<usize>,
    /// Human message.
    pub message: String,
    /// Typed partition-safety explanation (OWL001/OWL002 only).
    pub violation: Option<JoinViolation>,
    /// The concrete evidence the finding rests on — a join witness for
    /// safety lints, a measured share/estimate for plan lints (e.g.
    /// `"worker 0 owns 92.3% of the estimated load"`). Shared between
    /// `owlpar lint --json` and `owlpar plan --json`.
    pub witness: Option<String>,
    /// True when a rule-file annotation suppressed this finding; the
    /// severity is then [`Severity::Allow`] regardless of the default.
    pub suppressed: bool,
}

/// Per-rule summary: the proof artifact for the partition-safety pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSummary {
    /// Rule name.
    pub name: String,
    /// Join classification label: `empty-body`, `single-atom`,
    /// `single-join`, `cross-product` or `multi-join`.
    pub join_class: String,
    /// The **locality witness** for a single-join rule: the join
    /// variable(s) whose binding anchors both body atoms to one owner.
    /// `Some` exactly when `join_class == "single-join"`.
    pub witness: Option<String>,
    /// Estimated triple production of this rule (head-predicate count
    /// from the dataset histogram, 1 when unknown) — the weight rule
    /// partitioning assigns to this rule's outgoing dependency edges.
    pub weight: u64,
    /// Strongly-connected component id in the rule-dependency graph.
    pub scc: usize,
}

/// Everything the linter needs besides the rules themselves.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Deployment context the severity mapping is checked against.
    pub context: PartitionContext,
    /// Rule names accepted as the paper's known exception: their
    /// OWL001/OWL002 findings downgrade to warnings with a
    /// [`JoinViolation::KnownException`] explanation.
    pub known_exceptions: Vec<String>,
    /// Dataset predicate histogram for production-estimate weights.
    pub predicate_counts: Option<FxHashMap<NodeId, usize>>,
    /// Predicates present in the base (asserted) data. Enables the
    /// dead-rule check; `None` disables it (a rule file alone cannot
    /// know what data it will meet).
    pub base_predicates: Option<FxHashSet<NodeId>>,
    /// Per-rule suppressed codes, parallel to the rule slice (shorter is
    /// fine — missing entries mean no suppressions).
    pub suppressions: Vec<Vec<String>>,
    /// Per-rule source variable names for witness rendering, parallel to
    /// the rule slice. Rules without names render variables as `?v{i}`.
    pub var_names: Vec<Vec<String>>,
}

impl LintOptions {
    /// Options for a given context, everything else defaulted.
    pub fn for_context(context: PartitionContext) -> Self {
        LintOptions {
            context,
            ..LintOptions::default()
        }
    }

    /// Carry the annotations of a parsed rule file (suppressions and
    /// source variable names) into the options.
    pub fn with_parsed(mut self, parsed: &[ParsedRule]) -> Self {
        self.suppressions = parsed.iter().map(|p| p.suppress.clone()).collect();
        self.var_names = parsed.iter().map(|p| p.var_names.clone()).collect();
        self
    }
}

/// The result of linting one rule-base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Context the severities were mapped against.
    pub context: PartitionContext,
    /// Per-rule partition-safety summary (witnesses, weights, SCCs).
    pub rules: Vec<RuleSummary>,
    /// All findings, in rule order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Findings at deny severity (suppressed findings never count —
    /// deny-level codes are not suppressible in the first place).
    pub fn deny_findings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
    }

    /// Number of deny findings.
    pub fn deny_count(&self) -> usize {
        self.deny_findings().count()
    }

    /// Number of warn findings (unsuppressed).
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Does the rule-base fail the gate?
    pub fn has_deny(&self) -> bool {
        self.deny_count() > 0
    }

    /// Names of rules with a deny-level partition-safety finding —
    /// the drop-in replacement for the old `verify_single_join`.
    pub fn unsafe_rule_names(&self) -> Vec<String> {
        self.diagnostics
            .iter()
            .filter(|d| {
                matches!(d.code, LintCode::NonSingleJoin | LintCode::CrossProduct)
                    && d.severity == Severity::Deny
            })
            .filter_map(|d| d.rule.clone())
            .collect()
    }

    /// JSON rendering (stable shape; see DESIGN.md §10).
    pub fn to_json(&self) -> serde_json::Value {
        render::to_json(self)
    }

    /// Human rendering, one line per finding.
    pub fn render_human(&self) -> String {
        render::render_human(self)
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render_human())
    }
}

/// Run every analysis over `rules` and collect the report.
pub fn lint_rules(rules: &[Rule], opts: &LintOptions) -> LintReport {
    checks::run(rules, opts)
}

/// Convenience: lint the output of [`parse_rules_annotated`]
/// (suppressions and variable names wired through).
///
/// [`parse_rules_annotated`]: owlpar_datalog::parse_rules_annotated
pub fn lint_parsed(parsed: &[ParsedRule], opts: LintOptions) -> LintReport {
    let rules: Vec<Rule> = parsed.iter().map(|p| p.rule.clone()).collect();
    let opts = opts.with_parsed(parsed);
    lint_rules(&rules, &opts)
}

pub(crate) fn join_class_label(class: &JoinClass) -> &'static str {
    match class {
        JoinClass::EmptyBody => "empty-body",
        JoinClass::SingleAtom => "single-atom",
        JoinClass::SingleJoin { .. } => "single-join",
        JoinClass::CrossProduct => "cross-product",
        JoinClass::MultiJoin => "multi-join",
    }
}
