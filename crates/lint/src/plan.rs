//! Plan analysis — pre-run cost/skew prediction over a partition plan.
//!
//! WawPart-style workload-aware reasoning: given the rule-base, the
//! dataset's predicate histogram (or better per-rule firing estimates),
//! the worker count and a routing strategy, predict — **before any
//! worker exists** — per-worker firing load, per-rule cross-partition
//! traffic (triples and wire bytes), and round-count bounds from the
//! rule-dependency SCC condensation. Pathological plans surface as
//! deny-level diagnostics (OWL011, OWL013, escalated OWL015) that the
//! master treats exactly like partition-safety denials: refuse before
//! shipping a byte.
//!
//! ## Cost model
//!
//! Everything is estimated in **triples**, then converted to wire bytes
//! with [`WireCostModel`] (mirroring the `WireLedger` conventions of
//! `owlpar-core`'s `stats` module: 12 B/triple v1 floor, 8 B frame
//! overhead, measured v2 delta/varint round encoding).
//!
//! * a rule's *production estimate* `w_r` is the caller's per-rule
//!   firing estimate when given (`PlanInputs::productions`, typically
//!   the smallest body-atom match count against the actual base), else
//!   the dataset count of the head predicate (the same weight rule
//!   partitioning uses), else 1;
//! * *data routing* ships a derived triple to the owners of its subject
//!   and object when remote: expected remote destinations =
//!   `instance endpoints × cross_fraction`, where `cross_fraction` is
//!   the caller's boundary estimate (ownership replication excess for
//!   graph partitions, `(k−1)/k` for hash ownership);
//! * *rule routing* is exact statically: a triple produced by rule `r`
//!   ships to every partition holding a consumer of `r`'s head (from
//!   the weighted dependency graph), excluding `r`'s own;
//! * *hybrid routing* multiplies consumer groups by the expected owner
//!   shards per triple;
//! * the star topology relays every exchanged triple through the
//!   master, so round bytes charge each triple **twice**, plus one
//!   `Deliver` frame per worker per round.

use crate::{
    checks, Diagnostic, LintCode, LintOptions, LintReport, PartitionContext, Severity,
};
use owlpar_datalog::analysis::{sccs, weighted_dependency_graph};
use owlpar_datalog::ast::TermPat;
use owlpar_datalog::Rule;
use owlpar_rdf::fx::FxHashMap;
use serde_json::{json, Value};
use std::fmt::Write as _;

/// Byte-cost constants mirroring the cluster wire format (see
/// `owlpar_core::stats::plan_cost_model`, which constructs this from the
/// `WireLedger` conventions).
#[derive(Debug, Clone, PartialEq)]
pub struct WireCostModel {
    /// Length-prefix + CRC framing per frame (`len u32 | crc u32`).
    pub frame_overhead: u64,
    /// v1 baseline: raw 12-byte triple records.
    pub v1_triple_bytes: f64,
    /// Measured v2 delta/varint bytes per triple in a round batch
    /// (sorted triple blocks; ~3.4 B on the bench KB).
    pub round_triple_bytes: f64,
    /// Fixed cost of one `Deliver` verdict frame (header + framing),
    /// paid per worker per round even when the batch is empty.
    pub deliver_frame_bytes: f64,
}

impl Default for WireCostModel {
    fn default() -> Self {
        WireCostModel {
            frame_overhead: 8,
            v1_triple_bytes: 12.0,
            round_triple_bytes: 3.5,
            deliver_frame_bytes: 18.0,
        }
    }
}

/// Static image of how the plan routes a fresh derivation — the
/// analyzable shadow of `owlpar_core`'s `Routing`.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteModel {
    /// Data partitioning: a derived triple ships to the remote owners
    /// of its instance endpoints. `cross_fraction` estimates the
    /// probability one endpoint's owner is remote.
    Data {
        /// Boundary estimate in `[0, 1]`.
        cross_fraction: f64,
    },
    /// Rule partitioning: a triple produced by rule `r` ships to every
    /// partition holding a consumer of `r`'s head.
    Rule {
        /// Partition id per rule index.
        assignment: Vec<u32>,
    },
    /// Hybrid: consumer rule-groups × expected owner shards.
    Hybrid {
        /// Boundary estimate for the shard dimension.
        cross_fraction: f64,
        /// Rule-group id per rule index.
        groups_assignment: Vec<u32>,
        /// Data shards per group (`k / groups`).
        data_shards: usize,
    },
}

/// Everything the analyzer needs about a concrete plan, beyond the
/// rules themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanInputs {
    /// Strategy label (`data` / `rule` / `hybrid`) for the report.
    pub strategy: String,
    /// Worker count.
    pub k: usize,
    /// Schema (replicated) triples per worker.
    pub schema_triples: usize,
    /// Per-worker shipped base sizes (`k` entries; all equal to
    /// `total_base` under rule partitioning; empty when unknown —
    /// structure-only analysis).
    pub base_sizes: Vec<usize>,
    /// Distinct instance triples in the KB (0 when unknown).
    pub total_base: usize,
    /// Routing shadow.
    pub route: RouteModel,
    /// Per-rule firing estimates overriding the histogram weights.
    pub productions: Option<Vec<u64>>,
    /// Duplicate-suppression discount in `(0, 1]` applied to every
    /// exchange estimate: the runtime ships each *new* remote triple
    /// once, while the firing estimates count raw productions —
    /// re-derivations and triples the receiver already holds are
    /// silently dropped before the wire. `1.0` charges raw productions
    /// (structure-only analysis); graph-aware callers pass a measured
    /// calibration (see `owlpar_core::plan`).
    pub exchange_discount: f64,
    /// Caller's estimate of total encoded+framed `Setup` bytes across
    /// all workers (`None` when no KB is at hand).
    pub setup_bytes: Option<u64>,
    /// v1 baseline for the same payloads.
    pub setup_v1_bytes: Option<u64>,
    /// Byte-cost constants.
    pub cost: WireCostModel,
}

/// Round-count bounds derived from the rule-dependency SCC condensation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundBound {
    /// Every run takes at least this many rounds.
    pub min: usize,
    /// Best estimate used for the fixed per-round wire overhead.
    pub expected: usize,
    /// Static upper bound (condensation depth + quiescence round), or
    /// `None` when a recursive rule ships cross-partition — then the
    /// round count is bounded only by derivation depth (data-dependent).
    pub bounded: Option<usize>,
}

/// Predicted load of one worker.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerLoad {
    /// Worker index.
    pub worker: usize,
    /// Shipped base partition size (triples).
    pub base: usize,
    /// Rules this worker evaluates.
    pub rules: usize,
    /// Estimated rule-firing load (triple productions).
    pub load: f64,
    /// `load / Σ load` (0 when the total is 0).
    pub share: f64,
}

/// Predicted cross-partition traffic of one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleTraffic {
    /// Rule name.
    pub name: String,
    /// Production estimate (triples this rule fires).
    pub weight: u64,
    /// Expected remote destinations per produced triple.
    pub remote_dests: f64,
    /// Estimated cross-partition triples (one wire leg).
    pub exchange_triples: f64,
    /// v2 wire bytes for that exchange (star relay: both legs).
    pub exchange_bytes: f64,
    /// v1 baseline bytes for the same exchange.
    pub exchange_v1_bytes: f64,
}

/// The plan-analysis verdict: predicted loads, traffic, round bounds
/// and OWL011–OWL016 diagnostics (plus any deny-level rule-base
/// findings that make the plan infeasible outright).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Strategy label (`data` / `rule` / `hybrid`).
    pub strategy: String,
    /// Deployment context the rule-base was linted under.
    pub context: PartitionContext,
    /// Worker count.
    pub k: usize,
    /// False when the rule-base lint denies this strategy's context —
    /// the plan is unsound regardless of cost.
    pub feasible: bool,
    /// Per-worker predicted loads (empty for an infeasible plan).
    pub workers: Vec<WorkerLoad>,
    /// Per-rule predicted traffic (empty for an infeasible plan).
    pub rules: Vec<RuleTraffic>,
    /// Distinct instance triples (0 when unknown).
    pub total_base: u64,
    /// Schema triples replicated per worker.
    pub schema_triples: u64,
    /// Largest worker's share of the total estimated load.
    pub max_load_share: f64,
    /// Total estimated cross-partition triples (one wire leg).
    pub exchange_triples: f64,
    /// Predicted `Setup` phase wire bytes (0 when unknown).
    pub setup_bytes: u64,
    /// v1 baseline for the setup phase.
    pub setup_v1_bytes: u64,
    /// Predicted round-phase wire bytes (star relay, both legs, plus
    /// per-round `Deliver` overhead).
    pub round_bytes: f64,
    /// v1 baseline for the round phase.
    pub round_v1_bytes: f64,
    /// Round-count bounds.
    pub rounds: RoundBound,
    /// Scalar cost in triple-equivalents — what `--strategy auto`
    /// minimizes: `max worker load + 2 × exchange + shipped triples`.
    /// Infinite for infeasible plans.
    pub total_cost: f64,
    /// Plan diagnostics (OWL011–OWL016), plus copied deny-level
    /// rule-base findings when the plan is infeasible.
    pub diagnostics: Vec<Diagnostic>,
}

impl PlanReport {
    /// Deny findings in this plan (plan-level or copied rule-base ones).
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Warn findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Does this plan fail the gate? (Deny diagnostics are never
    /// overridable — same contract as the OWL001–OWL010 lint gate.)
    pub fn has_deny(&self) -> bool {
        !self.feasible || self.deny_count() > 0
    }

    /// Stable JSON rendering; diagnostics use the **same schema** as
    /// `LintReport::to_json` (see `render::diagnostic_json`).
    pub fn to_json(&self) -> Value {
        let total_cost = if self.total_cost.is_finite() {
            Some(self.total_cost)
        } else {
            None
        };
        let rounds = json!({
            "min": (self.rounds.min as u64),
            "expected": (self.rounds.expected as u64),
            "bounded": (self.rounds.bounded.map(|b| b as u64)),
        });
        let plan = json!({
            "strategy": (self.strategy.clone()),
            "context": (self.context.label()),
            "k": (self.k as u64),
            "feasible": (self.feasible),
            "total_base": (self.total_base),
            "schema_triples": (self.schema_triples),
            "max_load_share": (self.max_load_share),
            "exchange_triples": (self.exchange_triples),
            "setup_bytes": (self.setup_bytes),
            "setup_v1_bytes": (self.setup_v1_bytes),
            "round_bytes": (self.round_bytes),
            "round_v1_bytes": (self.round_v1_bytes),
            "rounds": rounds,
            "total_cost": total_cost,
        });
        let workers: Vec<Value> = self
            .workers
            .iter()
            .map(|w| {
                json!({
                    "worker": (w.worker as u64),
                    "base": (w.base as u64),
                    "rules": (w.rules as u64),
                    "load": (w.load),
                    "share": (w.share),
                })
            })
            .collect();
        let rules: Vec<Value> = self
            .rules
            .iter()
            .map(|r| {
                json!({
                    "name": (r.name.clone()),
                    "weight": (r.weight),
                    "remote_dests": (r.remote_dests),
                    "exchange_triples": (r.exchange_triples),
                    "exchange_bytes": (r.exchange_bytes),
                    "exchange_v1_bytes": (r.exchange_v1_bytes),
                })
            })
            .collect();
        let summary = json!({
            "deny": (self.deny_count() as u64),
            "warn": (self.warn_count() as u64),
            "ok": (!self.has_deny()),
        });
        let diagnostics: Vec<Value> = self
            .diagnostics
            .iter()
            .map(|d| crate::render::diagnostic_json(d, self.context.label()))
            .collect();
        json!({
            "plan": plan,
            "workers": (Value::Array(workers)),
            "rules": (Value::Array(rules)),
            "summary": summary,
            "diagnostics": (Value::Array(diagnostics)),
        })
    }

    /// Human rendering, one plan per call (see [`render_comparison`]
    /// for the side-by-side table).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan {} (k={}, {} context): {}",
            self.strategy,
            self.k,
            self.context.label(),
            if self.feasible { "feasible" } else { "INFEASIBLE" },
        );
        let _ = writeln!(
            out,
            "  load: max share {:.1}%  exchange {:.0} triple(s)  rounds {}..{}",
            self.max_load_share * 100.0,
            self.exchange_triples,
            self.rounds.min,
            self.rounds
                .bounded
                .map_or_else(|| "data-dependent".to_string(), |b| b.to_string()),
        );
        let _ = writeln!(
            out,
            "  wire: setup ~{} B (v1 {} B)  rounds ~{:.0} B (v1 {:.0} B)  cost {:.0}",
            self.setup_bytes,
            self.setup_v1_bytes,
            self.round_bytes,
            self.round_v1_bytes,
            self.total_cost,
        );
        for d in &self.diagnostics {
            let at = d
                .rule
                .as_deref()
                .map(|n| format!(" [{n}]"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{:>5} {}{}: {}",
                d.severity.label(),
                d.code.id(),
                at,
                d.message
            );
        }
        let _ = write!(
            out,
            "verdict: {}",
            if self.has_deny() { "DENY" } else { "ok" }
        );
        out
    }
}

/// Side-by-side comparison table over several analyzed strategies —
/// what `owlpar plan` prints. `chosen` marks the auto-selected row.
pub fn render_comparison(reports: &[PlanReport], chosen: Option<usize>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>11} {:>13} {:>11} {:>12} {:>8} {:>12}  verdict",
        "strategy", "feasible", "max-share", "exchange(t)", "setup(B)", "rounds(B)", "rounds", "cost"
    );
    for (i, r) in reports.iter().enumerate() {
        let mark = if chosen == Some(i) { "*" } else { " " };
        let verdict = if r.has_deny() { "DENY" } else { "ok" };
        let _ = writeln!(
            out,
            "{mark}{:<9} {:>9} {:>10.1}% {:>13.0} {:>11} {:>12.0} {:>8} {:>12.0}  {}",
            r.strategy,
            if r.feasible { "yes" } else { "no" },
            r.max_load_share * 100.0,
            r.exchange_triples,
            r.setup_bytes,
            r.round_bytes,
            r.rounds
                .bounded
                .map_or_else(|| "≤?".to_string(), |b| format!("≤{b}")),
            r.total_cost,
            verdict,
        );
    }
    match chosen {
        Some(i) => {
            let _ = write!(out, "auto: chose {} (argmin cost)", reports[i].strategy);
        }
        None => {
            let _ = write!(out, "auto: no feasible deny-free plan");
        }
    }
    out
}

/// How many of a head atom's endpoints (subject/object) are instance
/// positions a data router would look up: variables bind instance
/// resources; constants are schema/class nodes outside the ownership
/// table.
fn instance_endpoints(rule: &Rule) -> usize {
    [rule.head.s, rule.head.o]
        .iter()
        .filter(|t| matches!(t, TermPat::Var(_)))
        .count()
}

/// Run the plan-analysis pass. Lints the rule-base under
/// `opts.context` first: a deny finding there makes every cost moot
/// (the plan is unsound), so the report comes back infeasible with the
/// blocking findings copied in and an infinite cost.
pub fn analyze_plan(rules: &[Rule], opts: &LintOptions, inputs: &PlanInputs) -> PlanReport {
    let lint: LintReport = checks::run(rules, opts);
    let feasible = !lint.has_deny();

    // Production estimates: caller's firing estimates, else the head
    // predicate histogram (the rule-partitioning weight), else 1.
    let empty_hist = FxHashMap::default();
    let hist = opts.predicate_counts.as_ref().unwrap_or(&empty_hist);
    let weights: Vec<u64> = match &inputs.productions {
        Some(p) if p.len() == rules.len() => p.clone(),
        _ => rules
            .iter()
            .map(|r| match r.head.p {
                TermPat::Const(p) => hist.get(&p).map(|&c| (c as u64).max(1)).unwrap_or(1),
                TermPat::Var(_) => 1,
            })
            .collect(),
    };

    // Dependency structure: consumers, SCCs, condensation depth.
    let dep = weighted_dependency_graph(rules, hist, 1);
    let comp = sccs(&dep);
    let ncomp = comp.iter().copied().max().map_or(0, |m| m + 1);
    let mut comp_size = vec![0usize; ncomp];
    for &c in &comp {
        comp_size[c] += 1;
    }
    let recursive: Vec<bool> = (0..rules.len())
        .map(|i| comp_size[comp[i]] > 1 || dep.edges[i].iter().any(|&(j, _)| j == i))
        .collect();
    // Longest path over the condensation DAG. Tarjan numbers components
    // in reverse topological order (an edge's target component id never
    // exceeds its source's), so ascending component order sees every
    // child before its parents.
    let mut depth = vec![1usize; ncomp];
    let mut rules_by_comp: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for (i, &c) in comp.iter().enumerate() {
        rules_by_comp[c].push(i);
    }
    for c in 0..ncomp {
        for &i in &rules_by_comp[c] {
            for &(j, _) in &dep.edges[i] {
                if comp[j] != c {
                    depth[c] = depth[c].max(depth[comp[j]] + 1);
                }
            }
        }
    }
    let levels = depth.iter().copied().max().unwrap_or(1);

    if !feasible {
        // Unsound plan: copy the blocking findings, skip the cost pass.
        let diagnostics: Vec<Diagnostic> = lint.deny_findings().cloned().collect();
        return PlanReport {
            strategy: inputs.strategy.clone(),
            context: opts.context,
            k: inputs.k,
            feasible: false,
            workers: Vec::new(),
            rules: Vec::new(),
            total_base: inputs.total_base as u64,
            schema_triples: inputs.schema_triples as u64,
            max_load_share: 0.0,
            exchange_triples: 0.0,
            setup_bytes: inputs.setup_bytes.unwrap_or(0),
            setup_v1_bytes: inputs.setup_v1_bytes.unwrap_or(0),
            round_bytes: 0.0,
            round_v1_bytes: 0.0,
            rounds: RoundBound {
                min: 1,
                expected: 1,
                bounded: None,
            },
            total_cost: f64::INFINITY,
            diagnostics,
        };
    }

    let k = inputs.k.max(1);
    let total_weight: f64 = weights.iter().map(|&w| w as f64).sum();
    let base_known = inputs.base_sizes.len() == k;
    let total_shipped_base: usize = inputs.base_sizes.iter().sum();

    // --- per-worker loads -------------------------------------------
    let mut loads = vec![0.0f64; k];
    let mut rule_counts = vec![0usize; k];
    // Share of the (deduplicated) base each worker holds; uniform when
    // the base is unknown (structure-only mode).
    let share_of = |w: usize| -> f64 {
        if base_known && inputs.total_base > 0 {
            inputs.base_sizes[w] as f64 / inputs.total_base as f64
        } else {
            1.0 / k as f64
        }
    };
    match &inputs.route {
        RouteModel::Data { .. } => {
            for (w, load) in loads.iter_mut().enumerate() {
                *load = share_of(w) * total_weight;
            }
            rule_counts = vec![rules.len(); k];
        }
        RouteModel::Rule { assignment } => {
            for (r, &part) in assignment.iter().enumerate() {
                let p = (part as usize).min(k - 1);
                loads[p] += weights.get(r).copied().unwrap_or(1) as f64;
                rule_counts[p] += 1;
            }
        }
        RouteModel::Hybrid {
            groups_assignment,
            data_shards,
            ..
        } => {
            let d = (*data_shards).max(1);
            let mut group_weight = vec![0.0f64; k.div_ceil(d)];
            let mut group_rules = vec![0usize; k.div_ceil(d)];
            for (r, &g) in groups_assignment.iter().enumerate() {
                let g = (g as usize).min(group_weight.len() - 1);
                group_weight[g] += weights.get(r).copied().unwrap_or(1) as f64;
                group_rules[g] += 1;
            }
            for w in 0..k {
                let g = w / d;
                loads[w] = group_weight.get(g).copied().unwrap_or(0.0) * share_of(w);
                rule_counts[w] = group_rules.get(g).copied().unwrap_or(0);
            }
        }
    }
    let total_load: f64 = loads.iter().sum();
    let max_load = loads.iter().copied().fold(0.0f64, f64::max);
    let max_load_share = if total_load > 0.0 {
        max_load / total_load
    } else {
        0.0
    };

    // --- per-rule cross-partition traffic ---------------------------
    let mut rule_traffic = Vec::with_capacity(rules.len());
    let mut total_exchange = 0.0f64;
    for (r, rule) in rules.iter().enumerate() {
        let w = weights[r] as f64;
        let remote = match &inputs.route {
            RouteModel::Data { cross_fraction } => {
                instance_endpoints(rule) as f64 * cross_fraction.clamp(0.0, 1.0)
            }
            RouteModel::Rule { assignment } => {
                let me = assignment.get(r).copied().unwrap_or(0);
                let mut parts: Vec<u32> = dep.edges[r]
                    .iter()
                    .filter_map(|&(j, _)| assignment.get(j).copied())
                    .filter(|&p| p != me)
                    .collect();
                parts.sort_unstable();
                parts.dedup();
                parts.len() as f64
            }
            RouteModel::Hybrid {
                cross_fraction,
                groups_assignment,
                ..
            } => {
                let me = groups_assignment.get(r).copied().unwrap_or(0);
                let mut groups: Vec<u32> = dep.edges[r]
                    .iter()
                    .filter_map(|&(j, _)| groups_assignment.get(j).copied())
                    .collect();
                groups.sort_unstable();
                groups.dedup();
                let own = if groups.contains(&me) { 1.0 } else { 0.0 };
                let shard_mult = 1.0
                    + cross_fraction.clamp(0.0, 1.0)
                        * instance_endpoints(rule).saturating_sub(1) as f64;
                (groups.len() as f64 * shard_mult - own).max(0.0)
            }
        };
        let exchange = w * remote * inputs.exchange_discount.clamp(f64::EPSILON, 1.0);
        total_exchange += exchange;
        rule_traffic.push(RuleTraffic {
            name: rule.name.clone(),
            weight: weights[r],
            remote_dests: remote,
            exchange_triples: exchange,
            // Star relay: each exchanged triple crosses the wire twice.
            exchange_bytes: 2.0 * exchange * inputs.cost.round_triple_bytes,
            exchange_v1_bytes: 2.0 * exchange * inputs.cost.v1_triple_bytes,
        });
    }

    // --- rounds ------------------------------------------------------
    let recursive_exchange = rule_traffic
        .iter()
        .enumerate()
        .any(|(r, t)| recursive[r] && t.exchange_triples > 0.0);
    let rounds = if total_exchange <= f64::EPSILON {
        RoundBound {
            min: 1,
            expected: 1,
            bounded: Some(1),
        }
    } else {
        RoundBound {
            min: 2,
            expected: 2,
            bounded: (!recursive_exchange).then_some(levels + 1),
        }
    };

    // --- wire totals -------------------------------------------------
    let round_bytes = 2.0 * total_exchange * inputs.cost.round_triple_bytes
        + (rounds.expected * k) as f64 * inputs.cost.deliver_frame_bytes;
    let round_v1_bytes = 2.0 * total_exchange * inputs.cost.v1_triple_bytes;
    let shipped = total_shipped_base as f64 + (k * inputs.schema_triples) as f64;
    let total_cost = max_load + 2.0 * total_exchange + shipped;

    // --- diagnostics -------------------------------------------------
    let mut diagnostics = Vec::new();
    let mut push = |code: LintCode,
                    severity: Severity,
                    rule: Option<(usize, &str)>,
                    message: String,
                    witness: String| {
        diagnostics.push(Diagnostic {
            code,
            severity,
            rule: rule.map(|(_, n)| n.to_string()),
            rule_index: rule.map(|(i, _)| i),
            message,
            violation: None,
            witness: Some(witness),
            suppressed: false,
        });
    };
    if k >= 2 && total_load > 0.0 {
        let mean = total_load / k as f64;
        let (max_w, _) = loads
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap_or((0, &0.0));
        if max_load_share > 0.8 {
            push(
                LintCode::LoadImbalance,
                Severity::Deny,
                None,
                format!(
                    "worker {max_w} owns {:.1}% of the estimated firing load; \
                     the parallel run degenerates to serial plus exchange overhead",
                    max_load_share * 100.0
                ),
                format!("worker {max_w} share {:.3}", max_load_share),
            );
        } else if max_load > 2.0 * mean {
            push(
                LintCode::LoadSkew,
                Severity::Warn,
                None,
                format!(
                    "worker {max_w} carries {:.1}× the mean estimated load \
                     ({:.0} vs {:.0})",
                    max_load / mean,
                    max_load,
                    mean
                ),
                format!("worker {max_w} load {max_load:.0} mean {mean:.0}"),
            );
        }
        let idle: Vec<usize> = loads
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 0.0)
            .map(|(w, _)| w)
            .collect();
        if !idle.is_empty() {
            let severity = if idle.len() * 2 > k {
                Severity::Deny
            } else {
                Severity::Warn
            };
            push(
                LintCode::IdleWorkers,
                severity,
                None,
                format!(
                    "{} of {k} worker(s) have zero estimated load (first idle: worker {}); \
                     shrink k or change strategy",
                    idle.len(),
                    idle[0]
                ),
                format!("{} idle of {k}", idle.len()),
            );
        }
    }
    if inputs.total_base > 0 {
        for (r, t) in rule_traffic.iter().enumerate() {
            let at = Some((r, rules[r].name.as_str()));
            if t.exchange_triples > inputs.total_base as f64 {
                push(
                    LintCode::ExchangeExceedsBase,
                    Severity::Deny,
                    at,
                    format!(
                        "estimated exchange of {:.0} triple(s) exceeds the whole base \
                         ({}); this plan ships more than it stores",
                        t.exchange_triples, inputs.total_base
                    ),
                    format!("{:.0} > base {}", t.exchange_triples, inputs.total_base),
                );
            } else if t.exchange_triples > inputs.total_base as f64 / 4.0 {
                push(
                    LintCode::HeavyExchange,
                    Severity::Warn,
                    at,
                    format!(
                        "estimated exchange of {:.0} triple(s) exceeds a quarter of \
                         the base ({})",
                        t.exchange_triples, inputs.total_base
                    ),
                    format!("{:.0} > base/4", t.exchange_triples),
                );
            }
        }
    }
    for (r, t) in rule_traffic.iter().enumerate() {
        if recursive[r] && t.exchange_triples > 0.0 {
            push(
                LintCode::RecursiveExchange,
                Severity::Allow,
                Some((r, rules[r].name.as_str())),
                "recursive rule ships derivations cross-partition; round count is \
                 bounded by derivation depth, not the dependency condensation"
                    .to_string(),
                format!("scc {} exchange {:.0}", comp[r], t.exchange_triples),
            );
        }
    }

    let workers = (0..k)
        .map(|w| WorkerLoad {
            worker: w,
            base: if base_known { inputs.base_sizes[w] } else { 0 },
            rules: rule_counts[w],
            load: loads[w],
            share: if total_load > 0.0 {
                loads[w] / total_load
            } else {
                0.0
            },
        })
        .collect();

    PlanReport {
        strategy: inputs.strategy.clone(),
        context: opts.context,
        k: inputs.k,
        feasible: true,
        workers,
        rules: rule_traffic,
        total_base: inputs.total_base as u64,
        schema_triples: inputs.schema_triples as u64,
        max_load_share,
        exchange_triples: total_exchange,
        setup_bytes: inputs.setup_bytes.unwrap_or(0),
        setup_v1_bytes: inputs.setup_v1_bytes.unwrap_or(0),
        round_bytes,
        round_v1_bytes,
        rounds,
        total_cost,
        diagnostics,
    }
}

/// OWL017 — compare a traced run's measured per-round skew against the
/// analyzer's prediction.
///
/// `measured` holds one ratio per round: the slowest worker's round
/// time over the mean (`max/mean`), the live analog of the analyzer's
/// predicted skew ratio ([`PlanReport::max_load_share`] × k). The
/// finding fires — always [`Severity::Warn`]: the run already happened,
/// so this can only advise — when the worst measured ratio exceeds
/// `predicted × tolerance` (`tolerance` ≥ 1, e.g. `1.25` for 25%
/// headroom; lower values are clamped to exact). Returns `None` when
/// the measurement is within tolerance or either side is degenerate
/// (no finite rounds, non-positive prediction).
pub fn check_skew_tolerance(
    measured: &[f64],
    predicted: f64,
    tolerance: f64,
) -> Option<Diagnostic> {
    if predicted <= 0.0 || !predicted.is_finite() {
        return None;
    }
    let worst = measured
        .iter()
        .copied()
        .filter(|m| m.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    if !worst.is_finite() {
        return None;
    }
    let tolerance = tolerance.max(1.0);
    let bound = predicted * tolerance;
    if worst <= bound {
        return None;
    }
    Some(Diagnostic {
        code: LintCode::SkewExceedsPredicted,
        severity: Severity::Warn,
        rule: None,
        rule_index: None,
        message: format!(
            "measured round skew {worst:.2}x exceeds the predicted {predicted:.2}x \
             (tolerance {tolerance:.2}x): the static load model is underestimating \
             the straggler"
        ),
        violation: None,
        witness: Some(format!(
            "worst of {} round(s) measured {worst:.2}x; bound {bound:.2}x",
            measured.len()
        )),
        suppressed: false,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ALL_CODES;
    use owlpar_datalog::ast::{Atom, TermPat};
    use owlpar_rdf::NodeId;

    fn v(i: u16) -> TermPat {
        TermPat::Var(i)
    }

    fn c(i: u32) -> TermPat {
        TermPat::Const(NodeId(i))
    }

    fn rule(name: &str, head: Atom, body: Vec<Atom>) -> Rule {
        Rule::new(name, head, body).unwrap()
    }

    fn atom(s: TermPat, p: TermPat, o: TermPat) -> Atom {
        Atom::new(s, p, o)
    }

    /// Two chained safe rules: `p(x,y) → q(x,y)` and `q(x,y) → r(x,y)`.
    fn chain_rules() -> Vec<Rule> {
        vec![
            rule("pq", atom(v(0), c(11), v(1)), vec![atom(v(0), c(10), v(1))]),
            rule("qr", atom(v(0), c(12), v(1)), vec![atom(v(0), c(11), v(1))]),
        ]
    }

    fn inputs(strategy: &str, k: usize, route: RouteModel) -> PlanInputs {
        PlanInputs {
            strategy: strategy.to_string(),
            k,
            schema_triples: 5,
            base_sizes: vec![50; k],
            total_base: 100,
            route,
            productions: None,
            exchange_discount: 1.0,
            setup_bytes: None,
            setup_v1_bytes: None,
            cost: WireCostModel::default(),
        }
    }

    #[test]
    fn new_codes_roundtrip_ids() {
        assert_eq!(ALL_CODES.len(), 17);
        for code in ALL_CODES {
            assert_eq!(LintCode::from_id(code.id()), Some(code));
        }
        assert_eq!(LintCode::from_id("OWL011"), Some(LintCode::LoadImbalance));
        assert_eq!(
            LintCode::from_id("OWL016"),
            Some(LintCode::RecursiveExchange)
        );
        assert_eq!(
            LintCode::from_id("OWL017"),
            Some(LintCode::SkewExceedsPredicted)
        );
    }

    #[test]
    fn skew_tolerance_fires_only_beyond_the_bound() {
        // Within tolerance: 1.4 measured vs 1.2 predicted × 1.25 = 1.5.
        assert!(check_skew_tolerance(&[1.1, 1.4], 1.2, 1.25).is_none());
        // Beyond it: worst round 1.9 > 1.5.
        let d = check_skew_tolerance(&[1.1, 1.9], 1.2, 1.25).expect("fires");
        assert_eq!(d.code, LintCode::SkewExceedsPredicted);
        assert_eq!(d.severity, Severity::Warn);
        assert_eq!(d.code.id(), "OWL017");
        assert!(d.message.contains("1.90x"), "{}", d.message);
        // Degenerate inputs never fire: no rounds, NaN rounds, bad
        // prediction; sub-1 tolerances clamp to exact comparison.
        assert!(check_skew_tolerance(&[], 1.2, 1.25).is_none());
        assert!(check_skew_tolerance(&[f64::NAN], 1.2, 1.25).is_none());
        assert!(check_skew_tolerance(&[2.0], 0.0, 1.25).is_none());
        assert!(check_skew_tolerance(&[1.3], 1.2, 0.5).is_some());
    }

    #[test]
    fn balanced_data_plan_is_clean() {
        let rules = chain_rules();
        let opts = LintOptions::for_context(PartitionContext::DataPartitioned);
        let report = analyze_plan(
            &rules,
            &opts,
            &inputs("data", 2, RouteModel::Data { cross_fraction: 0.1 }),
        );
        assert!(report.feasible);
        assert!(!report.has_deny(), "{:?}", report.diagnostics);
        assert!((report.max_load_share - 0.5).abs() < 1e-9);
        // Acyclic 2-level chain, some exchange: statically bounded.
        assert_eq!(report.rounds.bounded, Some(3));
    }

    #[test]
    fn severe_imbalance_denies_owl011() {
        let rules = chain_rules();
        let opts = LintOptions::for_context(PartitionContext::RulePartitioned);
        // Both rules on worker 0, worker 1 idle: 100% share + idle worker.
        let report = analyze_plan(
            &rules,
            &opts,
            &inputs(
                "rule",
                2,
                RouteModel::Rule {
                    assignment: vec![0, 0],
                },
            ),
        );
        assert!(report.has_deny());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::LoadImbalance && d.severity == Severity::Deny));
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.witness.is_some()));
    }

    #[test]
    fn majority_idle_escalates_owl015_to_deny() {
        let rules = chain_rules();
        let opts = LintOptions::for_context(PartitionContext::RulePartitioned);
        // 2 rules over k=8: at least 6 idle workers — a majority.
        let report = analyze_plan(
            &rules,
            &opts,
            &inputs(
                "rule",
                8,
                RouteModel::Rule {
                    assignment: vec![0, 1],
                },
            ),
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::IdleWorkers && d.severity == Severity::Deny));
    }

    #[test]
    fn exchange_beyond_base_denies_owl013() {
        let rules = chain_rules();
        let mut opts = LintOptions::for_context(PartitionContext::RulePartitioned);
        // Huge production estimate for rule 0, whose consumer lives on
        // the other partition: exchange ≈ 500 > base 100.
        opts.predicate_counts = Some(
            [(NodeId(11), 500usize)]
                .into_iter()
                .collect(),
        );
        let report = analyze_plan(
            &rules,
            &opts,
            &inputs(
                "rule",
                2,
                RouteModel::Rule {
                    assignment: vec![0, 1],
                },
            ),
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::ExchangeExceedsBase
                && d.severity == Severity::Deny
                && d.rule.as_deref() == Some("pq")));
    }

    #[test]
    fn recursive_exchange_is_informational_and_unbounded() {
        // Transitive rule: t(x,y) ∧ t(y,z) → t(x,z), self-recursive.
        let rules = vec![rule(
            "trans",
            atom(v(0), c(10), v(2)),
            vec![atom(v(0), c(10), v(1)), atom(v(1), c(10), v(2))],
        )];
        let opts = LintOptions::for_context(PartitionContext::DataPartitioned);
        let report = analyze_plan(
            &rules,
            &opts,
            &inputs("data", 2, RouteModel::Data { cross_fraction: 0.2 }),
        );
        assert!(report.rounds.bounded.is_none());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::RecursiveExchange && d.severity == Severity::Allow));
        assert!(!report.has_deny());
    }

    #[test]
    fn infeasible_context_copies_lint_denials_and_costs_infinity() {
        // A 3-atom rule is deny-level under data partitioning.
        let rules = vec![rule(
            "tri",
            atom(v(0), c(30), v(2)),
            vec![
                atom(v(0), c(10), v(1)),
                atom(v(1), c(11), v(2)),
                atom(v(2), c(12), v(0)),
            ],
        )];
        let opts = LintOptions::for_context(PartitionContext::DataPartitioned);
        let report = analyze_plan(
            &rules,
            &opts,
            &inputs("data", 2, RouteModel::Data { cross_fraction: 0.1 }),
        );
        assert!(!report.feasible);
        assert!(report.has_deny());
        assert!(report.total_cost.is_infinite());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::NonSingleJoin));
    }

    #[test]
    fn comparison_table_marks_the_chosen_row() {
        let rules = chain_rules();
        let opts = LintOptions::for_context(PartitionContext::DataPartitioned);
        let a = analyze_plan(
            &rules,
            &opts,
            &inputs("data", 2, RouteModel::Data { cross_fraction: 0.1 }),
        );
        let opts_r = LintOptions::for_context(PartitionContext::RulePartitioned);
        let b = analyze_plan(
            &rules,
            &opts_r,
            &inputs(
                "rule",
                2,
                RouteModel::Rule {
                    assignment: vec![0, 1],
                },
            ),
        );
        let table = render_comparison(&[a, b], Some(0));
        assert!(table.contains("auto: chose data"));
        assert!(table.contains("*data"));
    }
}
