//! Human-readable and JSON renderers for [`LintReport`].

use crate::{Diagnostic, LintReport};
use serde_json::{json, Value};
use std::fmt::Write as _;

/// The **one** JSON shape a diagnostic ever takes — shared by
/// `owlpar lint --json` and `owlpar plan --json` so downstream tooling
/// parses both with a single schema
/// (`code/title/severity/context/rule/rule_index/message/violation/witness/suppressed`).
pub(crate) fn diagnostic_json(d: &Diagnostic, context: &str) -> Value {
    json!({
        "code": d.code.id(),
        "title": d.code.title(),
        "severity": d.severity.label(),
        "context": context,
        "rule": d.rule,
        "rule_index": (d.rule_index.map(|i| i as u64)),
        "message": d.message,
        "violation": (d.violation.as_ref().map(|v| v.label())),
        "witness": d.witness,
        "suppressed": d.suppressed,
    })
}

pub(crate) fn render_human(report: &LintReport) -> String {
    let mut out = String::new();
    let suppressed = report
        .diagnostics
        .iter()
        .filter(|d| d.suppressed)
        .count();
    let single_join = report
        .rules
        .iter()
        .filter(|r| matches!(r.join_class.as_str(), "single-join" | "single-atom"))
        .count();
    let _ = writeln!(
        out,
        "linted {} rule(s) under the {} context: {} locally evaluable, {} deny, {} warn, {} suppressed",
        report.rules.len(),
        report.context.label(),
        single_join,
        report.deny_count(),
        report.warn_count(),
        suppressed,
    );
    for d in &report.diagnostics {
        let at = d
            .rule
            .as_deref()
            .map(|n| format!(" [{n}]"))
            .unwrap_or_default();
        let tail = if d.suppressed { " (suppressed)" } else { "" };
        let _ = writeln!(
            out,
            "{:>5} {}{}: {}{}",
            d.severity.label(),
            d.code.id(),
            at,
            d.message,
            tail
        );
    }
    if !report.rules.is_empty() {
        let _ = writeln!(out, "rules:");
        for r in &report.rules {
            let witness = match &r.witness {
                Some(w) => format!(", witness {w}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  {}: {}{}, weight {}, scc {}",
                r.name, r.join_class, witness, r.weight, r.scc
            );
        }
    }
    let _ = write!(
        out,
        "verdict: {}",
        if report.has_deny() { "DENY" } else { "ok" }
    );
    out
}

pub(crate) fn to_json(report: &LintReport) -> Value {
    let rules: Vec<Value> = report
        .rules
        .iter()
        .map(|r| {
            json!({
                "name": r.name,
                "join_class": r.join_class,
                "witness": r.witness,
                "weight": r.weight,
                "scc": r.scc,
            })
        })
        .collect();
    let diagnostics: Vec<Value> = report
        .diagnostics
        .iter()
        .map(|d| diagnostic_json(d, report.context.label()))
        .collect();
    json!({
        "context": (report.context.label()),
        "summary": (json!({
            "rules": (report.rules.len() as u64),
            "deny": (report.deny_count() as u64),
            "warn": (report.warn_count() as u64),
            "ok": (!report.has_deny()),
        })),
        "rules": (Value::Array(rules)),
        "diagnostics": (Value::Array(diagnostics)),
    })
}
