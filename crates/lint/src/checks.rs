//! The analyses behind [`lint_rules`](crate::lint_rules).

use crate::{
    Diagnostic, JoinViolation, LintCode, LintOptions, LintReport, RuleSummary, Severity,
};
use owlpar_datalog::analysis::{classify, sccs, weighted_dependency_graph, JoinClass};
use owlpar_datalog::ast::{Atom, TermPat};
use owlpar_datalog::Rule;
use owlpar_rdf::fx::FxHashMap;

/// Renumber a rule's variables in first-occurrence order (head first,
/// then body atoms in the order given) so structurally identical rules
/// compare equal regardless of how their authors numbered variables.
struct Canon {
    map: FxHashMap<u16, u16>,
    next: u16,
}

impl Canon {
    fn new() -> Self {
        Canon {
            map: FxHashMap::default(),
            next: 0,
        }
    }

    fn term(&mut self, tp: TermPat) -> TermPat {
        match tp {
            TermPat::Var(v) => {
                let next = &mut self.next;
                let id = *self.map.entry(v).or_insert_with(|| {
                    let n = *next;
                    *next += 1;
                    n
                });
                TermPat::Var(id)
            }
            c @ TermPat::Const(_) => c,
        }
    }

    fn atom(&mut self, a: &Atom) -> Atom {
        Atom::new(self.term(a.s), self.term(a.p), self.term(a.o))
    }
}

fn canonicalize(rule: &Rule) -> (Atom, Vec<Atom>) {
    let mut c = Canon::new();
    let head = c.atom(&rule.head);
    let body = rule.body.iter().map(|a| c.atom(a)).collect();
    (head, body)
}

/// Render a variable for diagnostics: its source name when the parser
/// captured one, `?v{i}` otherwise (the normalized form `Display` uses).
fn var_label(opts: &LintOptions, rule_index: usize, var: u16) -> String {
    opts.var_names
        .get(rule_index)
        .and_then(|names| names.get(var as usize))
        .filter(|n| !n.is_empty())
        .map(|n| format!("?{n}"))
        .unwrap_or_else(|| format!("?v{var}"))
}

pub(crate) fn run(rules: &[Rule], opts: &LintOptions) -> LintReport {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let push = |code: LintCode,
                    severity: Severity,
                    rule: Option<(usize, &str)>,
                    message: String,
                    violation: Option<JoinViolation>,
                    diags: &mut Vec<Diagnostic>| {
        let witness = violation.as_ref().map(|v| v.label().to_string());
        diags.push(Diagnostic {
            code,
            severity,
            rule: rule.map(|(_, n)| n.to_string()),
            rule_index: rule.map(|(i, _)| i),
            message,
            violation,
            witness,
            suppressed: false,
        });
    };

    // Dependency graph, SCCs and production weights (shared by several
    // checks and by the per-rule summary).
    let empty_hist = FxHashMap::default();
    let hist = opts.predicate_counts.as_ref().unwrap_or(&empty_hist);
    let graph = weighted_dependency_graph(rules, hist, 1);
    let comp = sccs(&graph);

    let mut summaries = Vec::with_capacity(rules.len());
    for (i, rule) in rules.iter().enumerate() {
        let at = Some((i, rule.name.as_str()));
        let class = classify(rule);

        // --- structural checks (lifted from the ad-hoc `Rule::new`
        // validation into reported diagnostics; `Rule`'s fields are
        // public, so hand-built rules can violate any of these) ---
        if rule.body.is_empty() {
            push(
                LintCode::EmptyBody,
                LintCode::EmptyBody.default_severity(opts.context),
                at,
                "rule has an empty body; ground facts belong in the data, not the rule-base"
                    .to_string(),
                None,
                &mut diags,
            );
        }
        let mut vars: Vec<u16> = rule
            .body
            .iter()
            .chain(std::iter::once(&rule.head))
            .flat_map(|a| a.variables())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        let dense = vars.iter().enumerate().all(|(n, v)| *v as usize == n);
        if !dense || vars.len() != rule.var_count as usize {
            push(
                LintCode::BrokenVariables,
                LintCode::BrokenVariables.default_severity(opts.context),
                at,
                format!(
                    "variable bookkeeping broken: {} distinct variable(s) ({}dense), var_count = {}",
                    vars.len(),
                    if dense { "" } else { "non-" },
                    rule.var_count
                ),
                None,
                &mut diags,
            );
        }
        let body_vars: Vec<u16> = {
            let mut vs: Vec<u16> = rule.body.iter().flat_map(|a| a.variables()).collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        };
        let unbound: Vec<String> = rule
            .head
            .variables()
            .into_iter()
            .filter(|v| !body_vars.contains(v))
            .map(|v| var_label(opts, i, v))
            .collect();
        if !unbound.is_empty() && !rule.body.is_empty() {
            push(
                LintCode::NotRangeRestricted,
                LintCode::NotRangeRestricted.default_severity(opts.context),
                at,
                format!(
                    "head variable(s) {} never occur in the body (rule is not range-restricted)",
                    unbound.join(", ")
                ),
                None,
                &mut diags,
            );
        }

        // --- partition-safety proof ---
        let known_exception = opts.known_exceptions.iter().any(|n| n == &rule.name);
        match &class {
            JoinClass::CrossProduct => {
                let (severity, violation) = if known_exception {
                    (Severity::Warn, JoinViolation::KnownException)
                } else {
                    (
                        LintCode::CrossProduct.default_severity(opts.context),
                        JoinViolation::CrossProduct,
                    )
                };
                push(
                    LintCode::CrossProduct,
                    severity,
                    at,
                    format!(
                        "body atoms share no variable (cross product): the operands can live on \
                         different owners, so the join is not locally evaluable under data \
                         partitioning{}",
                        if known_exception {
                            " — accepted as a known exception; its inputs must be replicated"
                        } else {
                            ""
                        }
                    ),
                    Some(violation),
                    &mut diags,
                );
            }
            JoinClass::MultiJoin => {
                let (severity, violation) = if known_exception {
                    (Severity::Warn, JoinViolation::KnownException)
                } else {
                    (
                        LintCode::NonSingleJoin.default_severity(opts.context),
                        JoinViolation::MultiJoin {
                            body_atoms: rule.body.len(),
                        },
                    )
                };
                push(
                    LintCode::NonSingleJoin,
                    severity,
                    at,
                    format!(
                        "body has {} atoms (single-join allows at most 2): intermediate join \
                         results are not anchored to any single owner, so a distributed run can \
                         silently miss derivations{}",
                        rule.body.len(),
                        if known_exception {
                            " — accepted as a known exception; its inputs must be replicated"
                        } else {
                            ""
                        }
                    ),
                    Some(violation),
                    &mut diags,
                );
            }
            JoinClass::EmptyBody | JoinClass::SingleAtom | JoinClass::SingleJoin { .. } => {}
        }

        // --- per-rule summary: witness + weight + SCC ---
        let witness = match &class {
            JoinClass::SingleJoin { join_vars } => Some(
                join_vars
                    .iter()
                    .map(|v| var_label(opts, i, *v))
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
            _ => None,
        };
        let weight = match rule.head.p {
            TermPat::Const(p) => hist.get(&p).map(|&c| (c as u64).max(1)).unwrap_or(1),
            TermPat::Var(_) => 1,
        };
        summaries.push(RuleSummary {
            name: rule.name.clone(),
            join_class: crate::join_class_label(&class).to_string(),
            witness,
            weight,
            scc: comp[i],
        });
    }

    // --- dead-rule detection (needs to know the base vocabulary) ---
    if let Some(base) = &opts.base_predicates {
        for (i, rule) in rules.iter().enumerate() {
            let dead_atom = rule.body.iter().find(|atom| {
                let TermPat::Const(p) = atom.p else {
                    return false; // variable predicate matches anything
                };
                let derivable = rules.iter().any(|r| r.head.may_unify(atom));
                !derivable && !base.contains(&p)
            });
            if let Some(atom) = dead_atom {
                let TermPat::Const(p) = atom.p else {
                    continue;
                };
                push(
                    LintCode::DeadRule,
                    LintCode::DeadRule.default_severity(opts.context),
                    Some((i, rule.name.as_str())),
                    format!(
                        "body predicate {p} is neither derivable by any rule head nor present \
                         in the base data: the rule can never fire"
                    ),
                    None,
                    &mut diags,
                );
            }
        }
    }

    // --- duplicate / subsumed rules ---
    let canon: Vec<(Atom, Vec<Atom>)> = rules.iter().map(canonicalize).collect();
    let mut first_of: FxHashMap<&(Atom, Vec<Atom>), usize> = FxHashMap::default();
    let mut duplicate = vec![false; rules.len()];
    for (i, key) in canon.iter().enumerate() {
        if let Some(&first) = first_of.get(key) {
            duplicate[i] = true;
            push(
                LintCode::DuplicateRule,
                LintCode::DuplicateRule.default_severity(opts.context),
                Some((i, rules[i].name.as_str())),
                format!(
                    "structurally identical to rule '{}' (same head and body up to variable \
                     renaming)",
                    rules[first].name
                ),
                None,
                &mut diags,
            );
        } else {
            first_of.insert(key, i);
        }
    }
    for i in 0..rules.len() {
        for j in 0..rules.len() {
            if i == j || duplicate[i] || duplicate[j] {
                continue;
            }
            // i subsumes j: same head, i's body a strict subset of j's.
            if canon[i].0 == canon[j].0
                && canon[i].1.len() < canon[j].1.len()
                && canon[i].1.iter().all(|a| canon[j].1.contains(a))
            {
                push(
                    LintCode::SubsumedRule,
                    LintCode::SubsumedRule.default_severity(opts.context),
                    Some((j, rules[j].name.as_str())),
                    format!(
                        "rule '{}' has the same head and a subset of this body, so it fires \
                         whenever this rule would: this rule is redundant",
                        rules[i].name
                    ),
                    None,
                    &mut diags,
                );
            }
        }
    }

    // --- mutually recursive groups (informational) ---
    let mut groups: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for (i, &c) in comp.iter().enumerate() {
        groups.entry(c).or_default().push(i);
    }
    let mut group_ids: Vec<usize> = groups.keys().copied().collect();
    group_ids.sort_unstable();
    for c in group_ids {
        let members = &groups[&c];
        if members.len() >= 2 {
            let names: Vec<&str> = members.iter().map(|&i| rules[i].name.as_str()).collect();
            push(
                LintCode::RecursiveGroup,
                LintCode::RecursiveGroup.default_severity(opts.context),
                None,
                format!(
                    "rules {{{}}} are mutually recursive (dependency SCC #{c}); they reach their \
                     fixpoint together and should stay in one rule partition",
                    names.join(", ")
                ),
                None,
                &mut diags,
            );
        }
    }

    // --- apply suppressions ---
    apply_suppressions(rules, opts, &mut diags);

    // Stable order: per-rule findings first (by rule, then code), then
    // rule-base-wide ones.
    diags.sort_by_key(|d| (d.rule_index.unwrap_or(usize::MAX), d.code.id()));

    LintReport {
        context: opts.context,
        rules: summaries,
        diagnostics: diags,
    }
}

fn apply_suppressions(rules: &[Rule], opts: &LintOptions, diags: &mut Vec<Diagnostic>) {
    let mut extra: Vec<Diagnostic> = Vec::new();
    for (i, codes) in opts.suppressions.iter().enumerate() {
        let rule_name = rules.get(i).map(|r| r.name.clone());
        for code_str in codes {
            let Some(code) = LintCode::from_id(code_str) else {
                extra.push(Diagnostic {
                    code: LintCode::BadSuppression,
                    severity: LintCode::BadSuppression.default_severity(opts.context),
                    rule: rule_name.clone(),
                    rule_index: Some(i),
                    message: format!("suppression names unknown lint code '{code_str}'"),
                    violation: None,
                    witness: Some(code_str.clone()),
                    suppressed: false,
                });
                continue;
            };
            // Deny-level codes are correctness findings: a rule-file
            // comment must not be able to wave them through.
            if code.default_severity(opts.context) == Severity::Deny {
                extra.push(Diagnostic {
                    code: LintCode::BadSuppression,
                    severity: LintCode::BadSuppression.default_severity(opts.context),
                    rule: rule_name.clone(),
                    rule_index: Some(i),
                    message: format!(
                        "{} ({}) is deny-level under the {} context and cannot be suppressed",
                        code.id(),
                        code.title(),
                        opts.context.label()
                    ),
                    violation: None,
                    witness: Some(code.id().to_string()),
                    suppressed: false,
                });
                continue;
            }
            for d in diags.iter_mut() {
                if d.rule_index == Some(i) && d.code == code {
                    d.suppressed = true;
                    d.severity = Severity::Allow;
                }
            }
        }
    }
    diags.extend(extra);
}
