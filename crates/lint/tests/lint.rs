//! End-to-end tests of the lint analyses over parsed rule files.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_datalog::ast::build::{atom, c, v};
use owlpar_datalog::{parse_rules, parse_rules_annotated, Rule};
use owlpar_lint::{
    lint_parsed, lint_rules, JoinViolation, LintCode, LintOptions, PartitionContext, Severity,
};
use owlpar_rdf::fx::{FxHashMap, FxHashSet};
use owlpar_rdf::{Dictionary, NodeId};

const P: &str = "<http://x/p>";
const Q: &str = "<http://x/q>";
const R: &str = "<http://x/r>";

fn lint_text(text: &str, opts: &LintOptions) -> owlpar_lint::LintReport {
    let mut dict = Dictionary::new();
    let rules = parse_rules(text, &mut dict).unwrap();
    lint_rules(&rules, opts)
}

#[test]
fn clean_single_join_rulebase_passes_with_named_witness() {
    let report = lint_text(
        &format!("[trans: (?a {P} ?b) (?b {P} ?c) -> (?a {P} ?c)]"),
        &LintOptions::default(),
    );
    assert!(!report.has_deny(), "{report}");
    assert_eq!(report.rules.len(), 1);
    assert_eq!(report.rules[0].join_class, "single-join");
    // Parsed without annotations: no source names, normalized form.
    assert_eq!(report.rules[0].witness.as_deref(), Some("?v1"));
}

#[test]
fn witness_uses_source_variable_names_when_annotated_parse_is_used() {
    let mut dict = Dictionary::new();
    let parsed = parse_rules_annotated(
        &format!("[trans: (?x {P} ?mid) (?mid {P} ?z) -> (?x {P} ?z)]"),
        &mut dict,
    )
    .unwrap();
    let report = lint_parsed(&parsed, LintOptions::default());
    assert_eq!(report.rules[0].witness.as_deref(), Some("?mid"));
}

#[test]
fn multi_join_denied_under_data_partitioning() {
    let report = lint_text(
        &format!("[multi: (?a {P} ?b) (?b {P} ?c) (?c {Q} ?a) -> (?a {R} ?c)]"),
        &LintOptions::default(),
    );
    assert!(report.has_deny());
    let d = report.deny_findings().next().unwrap();
    assert_eq!(d.code, LintCode::NonSingleJoin);
    assert_eq!(
        d.violation,
        Some(JoinViolation::MultiJoin { body_atoms: 3 })
    );
    assert_eq!(report.unsafe_rule_names(), vec!["multi".to_string()]);
}

#[test]
fn multi_join_only_warns_under_rule_partitioning() {
    let report = lint_text(
        &format!("[multi: (?a {P} ?b) (?b {P} ?c) (?c {Q} ?a) -> (?a {R} ?c)]"),
        &LintOptions::for_context(PartitionContext::RulePartitioned),
    );
    assert!(!report.has_deny());
    assert_eq!(report.warn_count(), 1);
    assert!(report.unsafe_rule_names().is_empty());
}

#[test]
fn known_exception_downgrades_to_warning_with_typed_explanation() {
    let mut opts = LintOptions::default();
    opts.known_exceptions.push("multi".to_string());
    let report = lint_text(
        &format!("[multi: (?a {P} ?b) (?b {P} ?c) (?c {Q} ?a) -> (?a {R} ?c)]"),
        &opts,
    );
    assert!(!report.has_deny(), "{report}");
    let d = &report.diagnostics[0];
    assert_eq!(d.code, LintCode::NonSingleJoin);
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(d.violation, Some(JoinViolation::KnownException));
}

#[test]
fn cross_product_denied_with_typed_explanation() {
    let report = lint_text(
        &format!("[cross: (?a {P} ?b) (?c {Q} ?d) -> (?a {R} ?c)]"),
        &LintOptions::default(),
    );
    let d = report.deny_findings().next().unwrap();
    assert_eq!(d.code, LintCode::CrossProduct);
    assert_eq!(d.violation, Some(JoinViolation::CrossProduct));
    assert_eq!(report.rules[0].join_class, "cross-product");
    assert!(report.rules[0].witness.is_none());
}

#[test]
fn structural_lints_catch_hand_built_rules() {
    // The parser can't produce these; hand-built rules can.
    let empty = Rule {
        name: "fact".into(),
        head: atom(c(NodeId(1)), c(NodeId(2)), c(NodeId(3))),
        body: vec![],
        var_count: 0,
    };
    let sparse = Rule {
        name: "sparse".into(),
        head: atom(v(0), c(NodeId(2)), v(5)),
        body: vec![atom(v(0), c(NodeId(2)), v(5))],
        var_count: 2,
    };
    let unrestricted = Rule {
        name: "unrestricted".into(),
        head: atom(v(0), c(NodeId(2)), v(1)),
        body: vec![atom(v(0), c(NodeId(2)), v(0))],
        var_count: 2,
    };
    let report = lint_rules(&[empty, sparse, unrestricted], &LintOptions::default());
    let codes: Vec<LintCode> = report.deny_findings().map(|d| d.code).collect();
    assert!(codes.contains(&LintCode::EmptyBody));
    assert!(codes.contains(&LintCode::BrokenVariables));
    assert!(codes.contains(&LintCode::NotRangeRestricted));
}

#[test]
fn dead_rule_detected_against_base_vocabulary() {
    let mut dict = Dictionary::new();
    let rules = parse_rules(
        &format!(
            "[live: (?a {P} ?b) -> (?a {Q} ?b)]\n\
             [dead: (?a {R} ?b) -> (?a {Q} ?b)]"
        ),
        &mut dict,
    )
    .unwrap();
    let p = dict.intern_iri("http://x/p");
    let mut base = FxHashSet::default();
    base.insert(p);
    let opts = LintOptions {
        base_predicates: Some(base),
        ..LintOptions::default()
    };
    let report = lint_rules(&rules, &opts);
    let dead: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == LintCode::DeadRule)
        .collect();
    assert_eq!(dead.len(), 1);
    assert_eq!(dead[0].rule.as_deref(), Some("dead"));
    assert_eq!(dead[0].severity, Severity::Warn);
}

#[test]
fn duplicate_detected_up_to_variable_renaming() {
    let report = lint_text(
        &format!(
            "[one: (?a {P} ?b) -> (?a {Q} ?b)]\n\
             [two: (?x {P} ?y) -> (?x {Q} ?y)]"
        ),
        &LintOptions::default(),
    );
    let dups: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == LintCode::DuplicateRule)
        .collect();
    assert_eq!(dups.len(), 1);
    assert_eq!(dups[0].rule.as_deref(), Some("two"));
    assert!(dups[0].message.contains("'one'"));
}

#[test]
fn subsumed_rule_detected() {
    let report = lint_text(
        &format!(
            "[narrow: (?a {P} ?b) (?a {R} ?b) -> (?a {Q} ?b)]\n\
             [wide: (?a {P} ?b) -> (?a {Q} ?b)]"
        ),
        &LintOptions::default(),
    );
    let subs: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == LintCode::SubsumedRule)
        .collect();
    assert_eq!(subs.len(), 1);
    assert_eq!(subs[0].rule.as_deref(), Some("narrow"));
    assert!(subs[0].message.contains("'wide'"));
}

#[test]
fn mutually_recursive_group_reported_as_allow() {
    let report = lint_text(
        &format!(
            "[pq: (?a {P} ?b) -> (?a {Q} ?b)]\n\
             [qp: (?a {Q} ?b) -> (?a {P} ?b)]"
        ),
        &LintOptions::default(),
    );
    let rec: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == LintCode::RecursiveGroup)
        .collect();
    assert_eq!(rec.len(), 1);
    assert_eq!(rec[0].severity, Severity::Allow);
    assert!(rec[0].message.contains("pq") && rec[0].message.contains("qp"));
    assert_eq!(report.rules[0].scc, report.rules[1].scc);
    assert!(!report.has_deny());
}

#[test]
fn production_weights_come_from_predicate_histogram() {
    let mut dict = Dictionary::new();
    let rules = parse_rules(&format!("[pq: (?a {P} ?b) -> (?a {Q} ?b)]"), &mut dict).unwrap();
    let q = dict.intern_iri("http://x/q");
    let mut hist = FxHashMap::default();
    hist.insert(q, 321usize);
    let opts = LintOptions {
        predicate_counts: Some(hist),
        ..LintOptions::default()
    };
    let report = lint_rules(&rules, &opts);
    assert_eq!(report.rules[0].weight, 321);
}

#[test]
fn suppression_round_trip_from_rule_file_annotation() {
    let mut dict = Dictionary::new();
    let text = format!(
        "[one: (?a {P} ?b) -> (?a {Q} ?b)]\n\
         # lint: allow(OWL007)\n\
         [two: (?x {P} ?y) -> (?x {Q} ?y)]"
    );
    let parsed = parse_rules_annotated(&text, &mut dict).unwrap();
    assert_eq!(parsed[1].suppress, vec!["OWL007".to_string()]);
    let report = lint_parsed(&parsed, LintOptions::default());
    let dup = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::DuplicateRule)
        .unwrap();
    assert!(dup.suppressed);
    assert_eq!(dup.severity, Severity::Allow);
    assert_eq!(report.warn_count(), 0);
    assert!(!report.has_deny());
}

#[test]
fn unknown_suppression_code_reports_owl010() {
    let opts = LintOptions {
        suppressions: vec![vec!["OWL999".to_string()]],
        ..LintOptions::default()
    };
    let report = lint_text(&format!("[pq: (?a {P} ?b) -> (?a {Q} ?b)]"), &opts);
    let bad = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::BadSuppression)
        .unwrap();
    assert!(bad.message.contains("OWL999"));
}

#[test]
fn deny_level_codes_cannot_be_suppressed() {
    let opts = LintOptions {
        suppressions: vec![vec!["OWL001".to_string()]],
        ..LintOptions::default()
    };
    let report = lint_text(
        &format!("[multi: (?a {P} ?b) (?b {P} ?c) (?c {Q} ?a) -> (?a {R} ?c)]"),
        &opts,
    );
    // The deny finding survives AND the suppression attempt is flagged.
    assert!(report.has_deny());
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::BadSuppression));
}

#[test]
fn json_rendering_has_stable_shape() {
    let report = lint_text(
        &format!("[multi: (?a {P} ?b) (?b {P} ?c) (?c {Q} ?a) -> (?a {R} ?c)]"),
        &LintOptions::default(),
    );
    let json = report.to_json().to_string();
    assert!(json.contains("\"code\":\"OWL001\""), "{json}");
    assert!(json.contains("\"severity\":\"deny\""), "{json}");
    assert!(json.contains("\"violation\":\"multi-join\""), "{json}");
    assert!(json.contains("\"context\":\"data-partitioned\""), "{json}");
    assert!(json.contains("\"ok\":false"), "{json}");
}

#[test]
fn human_rendering_names_rule_and_code() {
    let report = lint_text(
        &format!("[multi: (?a {P} ?b) (?b {P} ?c) (?c {Q} ?a) -> (?a {R} ?c)]"),
        &LintOptions::default(),
    );
    let text = report.render_human();
    assert!(text.contains("OWL001"), "{text}");
    assert!(text.contains("[multi]"), "{text}");
    assert!(text.contains("verdict: DENY"), "{text}");
}
