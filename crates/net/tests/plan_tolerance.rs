//! Predicted-vs-measured wire accounting: the static plan analyzer's
//! setup and round byte estimates must land within a factor of two of
//! the `WireLedger`'s measurements — both ways — for every auto
//! candidate strategy on the bench KB at k ∈ {2, 4}. This is the test
//! that keeps the cost model (`owlpar_core::plan` +
//! `owlpar_lint::WireCostModel`) calibrated against the actual cluster
//! wire format as either evolves.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_core::{
    analyze_strategy, auto_candidates, ParallelConfig, PartitioningStrategy, PlanningBase,
    WireBytes,
};
use owlpar_datagen::{generate_lubm, LubmConfig};
use owlpar_lint::{check_skew_tolerance, LintCode, Severity};
use owlpar_net::{run_cluster_master, run_cluster_worker, MasterOptions, WorkerOptions};
use owlpar_obs::{Event, Phase, Recorder};
use owlpar_rdf::Graph;
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::thread;

/// The same KB the `cluster_scaling` bench sweeps: LUBM grown to at
/// least 3000 base triples.
fn bench_kb() -> Graph {
    let mut unis = 1;
    let mut g = generate_lubm(&LubmConfig::mini(unis));
    while g.len() < 3000 {
        unis += 1;
        g = generate_lubm(&LubmConfig::mini(unis));
    }
    g
}

/// One in-process loopback cluster run; returns the master's ledger.
fn measure(g0: &Graph, k: usize, strategy: PartitioningStrategy) -> WireBytes {
    let cfg = ParallelConfig {
        k,
        strategy,
        ..ParallelConfig::default()
    }
    .forward();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut g = g0.clone();
    let report = thread::scope(|s| {
        let workers: Vec<_> = (0..k)
            .map(|_| s.spawn(move || run_cluster_worker(addr, &WorkerOptions::default())))
            .collect();
        let report =
            run_cluster_master(&mut g, &cfg, listener, &MasterOptions::default()).unwrap();
        for w in workers {
            w.join().unwrap().unwrap();
        }
        report
    });
    report.wire.expect("cluster runs report wire stats")
}

fn assert_within_2x(what: &str, predicted: f64, measured: f64) {
    assert!(
        predicted > 0.0 && measured > 0.0,
        "{what}: degenerate comparison (predicted {predicted}, measured {measured})"
    );
    let ratio = measured / predicted;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "{what}: measured {measured:.0} B vs predicted {predicted:.0} B \
         (ratio {ratio:.2} outside [0.5, 2])"
    );
}

#[test]
fn predictions_within_2x_of_measurements() {
    let g0 = bench_kb();
    let (base, dict) = {
        let mut g = g0.clone();
        let base = PlanningBase::compile(&mut g, &[]);
        (base, g.dict)
    };
    for k in [2usize, 4] {
        for strategy in auto_candidates(k) {
            // A deny-level *skew* diagnostic (e.g. rule partitioning's
            // load imbalance at small k) only gates `--strategy auto`;
            // the plan still runs when requested explicitly, so its
            // estimates must still be calibrated. Only infeasibility
            // (no estimates at all) would make the comparison moot.
            let predicted = analyze_strategy(&base, &dict, k, &strategy).expect("analyzable");
            assert!(
                predicted.feasible,
                "k={k} {}: bench plan unexpectedly infeasible",
                predicted.strategy
            );
            let wire = measure(&g0, k, strategy);
            let tag = format!("k={k} {} setup", predicted.strategy);
            assert_within_2x(&tag, predicted.setup_bytes as f64, wire.setup.bytes as f64);
            let tag = format!("k={k} {} rounds", predicted.strategy);
            assert_within_2x(&tag, predicted.round_bytes, wire.rounds.bytes as f64);
        }
    }
}

/// OWL017 against a real traced run: per-round skew ratios measured
/// from the merged cluster trace (max/mean of the worker `Round` span
/// durations) feed [`check_skew_tolerance`] next to the analyzer's
/// predicted ratio. Wall-clock skew on a loaded host is arbitrarily
/// noisy, so the test pins the check's *behavior* on real measurements
/// — an unreachable bound never fires, a bound strictly below the worst
/// measurement fires a warn-level OWL017 — not a timing threshold.
#[test]
fn owl017_checks_measured_skew_against_prediction() {
    let g0 = bench_kb();
    let k = 2usize;
    let strategy = PartitioningStrategy::data_graph();
    let predicted = {
        let mut g = g0.clone();
        let base = PlanningBase::compile(&mut g, &[]);
        analyze_strategy(&base, &g.dict, k, &strategy).expect("analyzable")
    };
    let pred_skew = predicted.max_load_share * k as f64;
    assert!(pred_skew >= 1.0, "skew ratio is max/mean, never below 1");

    let rec = Recorder::enabled();
    let cfg = ParallelConfig {
        k,
        strategy,
        ..ParallelConfig::default()
    }
    .forward();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut g = g0.clone();
    let opts = MasterOptions {
        trace: Some(rec.clone()),
        ..MasterOptions::default()
    };
    thread::scope(|s| {
        let workers: Vec<_> = (0..k)
            .map(|_| s.spawn(move || run_cluster_worker(addr, &WorkerOptions::default())))
            .collect();
        run_cluster_master(&mut g, &cfg, listener, &opts).unwrap();
        for w in workers {
            w.join().unwrap().unwrap();
        }
    });

    let book = rec.drain();
    let mut per_round: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for e in &book.events {
        if let Event::Span {
            phase: Phase::Round,
            round,
            dur_us,
            ..
        } = e
        {
            per_round.entry(*round).or_default().push((*dur_us).max(1));
        }
    }
    assert!(!per_round.is_empty(), "traced run produced no Round spans");
    let measured: Vec<f64> = per_round
        .values()
        .map(|durs| {
            let max = durs.iter().copied().max().unwrap_or(1) as f64;
            let mean = durs.iter().sum::<u64>() as f64 / durs.len() as f64;
            max / mean
        })
        .collect();
    let worst = measured.iter().copied().fold(f64::MIN, f64::max);
    assert!(worst >= 1.0);

    // Unreachable bound: never fires, however noisy the host was.
    assert!(check_skew_tolerance(&measured, pred_skew, 1e9).is_none());
    // Bound strictly below the worst measurement: always fires, as a
    // warn, carrying the OWL017 identity.
    let d = check_skew_tolerance(&measured, worst / 2.0, 1.0).expect("bound below worst fires");
    assert_eq!(d.code, LintCode::SkewExceedsPredicted);
    assert_eq!(d.code.id(), "OWL017");
    assert_eq!(d.severity, Severity::Warn);
    assert!(!d.suppressed);
}
