//! Cluster telemetry merge, end to end over loopback TCP: a traced
//! 2-worker run must produce one merged lane per worker (spans shipped
//! as `TraceChunk` frames, clock-offset corrected) plus the master's
//! relay lane, without perturbing the closure. Also pins the per-round
//! wire ledger the same runs feed into `WireBytes::per_round`.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_core::{run_serial, ParallelConfig, PartitioningStrategy};
use owlpar_datagen::{generate_lubm, LubmConfig};
use owlpar_datalog::MaterializationStrategy;
use owlpar_net::{run_cluster_master, run_cluster_worker, MasterOptions, WorkerOptions};
use owlpar_obs::{chrome, Event, Metric, Phase, Recorder, TrackMeta};
use std::net::TcpListener;
use std::thread;

fn span_count(book_events: &[Event], track: u32, phase: Phase) -> usize {
    book_events
        .iter()
        .filter(|e| matches!(e, Event::Span { track: t, phase: p, .. } if *t == track && *p == phase))
        .count()
}

#[test]
fn traced_loopback_cluster_merges_worker_spans() {
    let g0 = generate_lubm(&LubmConfig::mini(2));
    let mut serial = g0.clone();
    run_serial(&mut serial, MaterializationStrategy::ForwardSemiNaive);

    let rec = Recorder::enabled();
    let master_opts = MasterOptions {
        trace: Some(rec.clone()),
        ..MasterOptions::default()
    };
    let cfg = ParallelConfig {
        k: 2,
        strategy: PartitioningStrategy::data_graph(),
        ..ParallelConfig::default()
    }
    .forward();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut g = g0.clone();
    let (report, summaries) = thread::scope(|s| {
        let workers: Vec<_> = (0..cfg.k)
            .map(|_| s.spawn(move || run_cluster_worker(addr, &WorkerOptions::default())))
            .collect();
        let report = run_cluster_master(&mut g, &cfg, listener, &master_opts).unwrap();
        let sums: Vec<_> = workers
            .into_iter()
            .map(|w| w.join().unwrap().unwrap())
            .collect();
        (report, sums)
    });

    // Tracing must not perturb the run: the closure still equals serial.
    assert_eq!(g.len(), serial.len());
    assert_eq!(g.term_fingerprint(), serial.term_fingerprint());
    assert!(report.worker_errors.is_empty());

    let book = rec.drain();

    // The master's relay lane (pid 0) plus one merged lane per worker
    // process (pid = node_id + 1).
    let relay: &TrackMeta = book
        .tracks
        .iter()
        .find(|t| t.name == "relay")
        .expect("relay lane");
    assert_eq!(relay.pid, 0);
    assert!(span_count(&book.events, relay.id, Phase::Setup) >= 1);
    assert!(span_count(&book.events, relay.id, Phase::BarrierWait) >= 1);
    assert!(span_count(&book.events, relay.id, Phase::Aggregate) >= 1);
    // Relay exchange traffic is a per-round byte counter on the master.
    let relay_byte_counts = book
        .events
        .iter()
        .filter(|e| {
            matches!(e, Event::Count { track, phase: Phase::Exchange, metric: Metric::Bytes, .. }
                     if *track == relay.id)
        })
        .count();
    assert!(relay_byte_counts >= 1, "no relay Exchange/Bytes counters");

    for w in &summaries {
        let lane = book
            .tracks
            .iter()
            .find(|t| t.pid == w.node_id + 1)
            .unwrap_or_else(|| panic!("no merged lane for worker {}", w.node_id));
        assert!(
            lane.name.starts_with(&format!("worker {}", w.node_id)),
            "lane {:?} for worker {}",
            lane.name,
            w.node_id
        );
        // Every round the worker announced (one RoundDone each) must
        // appear as exactly one Round span in the merged timeline.
        assert_eq!(
            span_count(&book.events, lane.id, Phase::Round),
            w.rounds,
            "worker {} round spans",
            w.node_id
        );
        // Barrier-wait and exchange are distinguishable phases, one each
        // per round.
        assert_eq!(span_count(&book.events, lane.id, Phase::BarrierWait), w.rounds);
        assert_eq!(span_count(&book.events, lane.id, Phase::Exchange), w.rounds);
        // The initial close plus one join per non-final round.
        assert_eq!(span_count(&book.events, lane.id, Phase::Join), w.rounds);
    }

    // Predictions ride the book for `owlpar trace summary`.
    assert!(
        book.extra_json.iter().any(|(k, _)| k == "plan"),
        "plan extra missing"
    );

    // The Chrome export is self-contained and carries the plan extra.
    let json = chrome::to_chrome_json(&book);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"plan\""));

    // Per-round wire ledger: ascending rounds, totals consistent with
    // the aggregate round phase.
    let wire = report.wire.expect("cluster run has a wire report");
    assert!(!wire.per_round.is_empty());
    assert!(wire.per_round.windows(2).all(|w| w[0].round < w[1].round));
    let (bytes, triples) = wire
        .per_round
        .iter()
        .fold((0u64, 0u64), |(b, t), r| (b + r.bytes, t + r.triples));
    assert_eq!(bytes, wire.rounds.bytes, "per-round bytes cover the phase");
    assert_eq!(triples, wire.rounds.triples);
}

/// An untraced cluster run ships no telemetry and records nothing, and
/// its closure is identical to the traced one's — the recorder is inert
/// by default.
#[test]
fn untraced_cluster_records_nothing() {
    let g0 = generate_lubm(&LubmConfig::mini(1));
    let rec = Recorder::disabled();
    let master_opts = MasterOptions {
        trace: Some(rec.clone()),
        ..MasterOptions::default()
    };
    let cfg = ParallelConfig {
        k: 2,
        strategy: PartitioningStrategy::data_graph(),
        ..ParallelConfig::default()
    }
    .forward();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut g = g0.clone();
    let report = thread::scope(|s| {
        let workers: Vec<_> = (0..cfg.k)
            .map(|_| s.spawn(move || run_cluster_worker(addr, &WorkerOptions::default())))
            .collect();
        let report = run_cluster_master(&mut g, &cfg, listener, &master_opts).unwrap();
        for w in workers {
            w.join().unwrap().unwrap();
        }
        report
    });
    assert!(report.worker_errors.is_empty());
    let book = rec.drain();
    assert!(book.events.is_empty());
    assert!(book.tracks.is_empty());

    let mut serial = g0.clone();
    run_serial(&mut serial, MaterializationStrategy::ForwardSemiNaive);
    assert_eq!(g.term_fingerprint(), serial.term_fingerprint());
}
