//! End-to-end tests for the TCP cluster runtime: closure equivalence
//! (TCP mesh ≡ channel transport ≡ serial) across generators and cluster
//! sizes, the bootstrap handshake's rejection paths, and mid-run
//! worker-loss recovery over real sockets.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use owlpar_core::{
    read_crc_frame, run_parallel, run_serial, CommMode, FaultKind, FaultPlan, ParallelConfig,
    PartitioningStrategy, RunReport,
};
use owlpar_datagen::{generate_lubm, generate_mdc, LubmConfig, MdcConfig};
use owlpar_datalog::MaterializationStrategy;
use owlpar_net::protocol::{decode_master_msg, encode_worker_msg, MasterMsg, WorkerMsg};
use owlpar_net::{
    run_cluster_master, run_cluster_worker, MasterOptions, NetError, TcpFabricFactory,
    WorkerOptions, WorkerSummary, PROTOCOL_VERSION, WIRE_MAGIC,
};
use owlpar_rdf::Graph;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn serial_closure(mut g: Graph) -> (u64, usize) {
    run_serial(&mut g, MaterializationStrategy::ForwardSemiNaive);
    (g.term_fingerprint(), g.len())
}

fn forward_cfg(k: usize, strategy: PartitioningStrategy) -> ParallelConfig {
    ParallelConfig {
        k,
        strategy,
        ..ParallelConfig::default()
    }
    .forward()
}

/// Run a whole cluster inside this process: the master on the calling
/// thread with a bound listener, `k` workers on their own threads dialing
/// it over real loopback TCP — the same code paths the multi-process
/// binary exercises, minus `fork`.
fn run_cluster(
    g0: &Graph,
    cfg: &ParallelConfig,
) -> (
    Result<RunReport, NetError>,
    Graph,
    Vec<Result<WorkerSummary, NetError>>,
) {
    run_cluster_opts(g0, cfg, &MasterOptions::default(), &WorkerOptions::default())
}

fn run_cluster_opts(
    g0: &Graph,
    cfg: &ParallelConfig,
    master_opts: &MasterOptions,
    worker_opts: &WorkerOptions,
) -> (
    Result<RunReport, NetError>,
    Graph,
    Vec<Result<WorkerSummary, NetError>>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut g = g0.clone();
    let mut worker_results = Vec::new();
    let report = thread::scope(|s| {
        let workers: Vec<_> = (0..cfg.k)
            .map(|_| {
                let opts = worker_opts.clone();
                s.spawn(move || run_cluster_worker(addr, &opts))
            })
            .collect();
        let report = run_cluster_master(&mut g, cfg, listener, master_opts);
        for w in workers {
            worker_results.push(w.join().unwrap());
        }
        report
    });
    (report, g, worker_results)
}

/// The N-seed property: for every seed KB and every cluster size, the
/// closure computed through the in-process channel transport and through
/// the loopback TCP mesh both equal the serial closure, term for term.
#[test]
fn closure_equivalence_across_transports_and_seeds() {
    let seeds: Vec<(&str, Graph)> = vec![
        ("lubm-1", generate_lubm(&LubmConfig::mini(1))),
        ("lubm-2", generate_lubm(&LubmConfig::mini(2))),
        ("mdc", generate_mdc(&MdcConfig::mini())),
    ];
    for (name, g0) in seeds {
        let (want_fp, want_len) = serial_closure(g0.clone());
        for k in [2, 4] {
            for tcp in [false, true] {
                let mut cfg = forward_cfg(k, PartitioningStrategy::data_graph());
                if tcp {
                    cfg.comm = CommMode::Custom(Arc::new(TcpFabricFactory::default()));
                }
                let mut g = g0.clone();
                let report = run_parallel(&mut g, &cfg)
                    .unwrap_or_else(|e| panic!("{name} k={k} tcp={tcp}: {e}"));
                assert!(!report.recovered);
                assert_eq!(g.len(), want_len, "{name} k={k} tcp={tcp}");
                assert_eq!(g.term_fingerprint(), want_fp, "{name} k={k} tcp={tcp}");
            }
        }
    }
}

#[test]
fn cluster_processes_match_serial_data_graph() {
    let g0 = generate_lubm(&LubmConfig::mini(1));
    let (want_fp, want_len) = serial_closure(g0.clone());
    for k in [2, 4] {
        let cfg = forward_cfg(k, PartitioningStrategy::data_graph());
        let (report, g, workers) = run_cluster(&g0, &cfg);
        let report = report.unwrap_or_else(|e| panic!("k={k}: {e}"));
        assert!(!report.recovered);
        assert_eq!(report.k, k);
        assert_eq!(g.len(), want_len, "k={k}");
        assert_eq!(g.term_fingerprint(), want_fp, "k={k}");
        let mut ids: Vec<u32> = workers
            .iter()
            .map(|w| w.as_ref().unwrap().node_id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..k as u32).collect::<Vec<_>>());
        for w in &workers {
            let w = w.as_ref().unwrap();
            assert_eq!(w.k as usize, k);
            assert!(w.rounds >= 1);
        }
    }
}

/// Rule and hybrid partitioning ship very different routing tables
/// (consumer sets and group × shard grids); both must rebuild faithfully
/// on the worker side.
#[test]
fn cluster_processes_match_serial_rule_and_hybrid() {
    let g0 = generate_lubm(&LubmConfig::mini(1));
    let (want_fp, want_len) = serial_closure(g0.clone());
    for (label, cfg) in [
        ("hash", forward_cfg(2, PartitioningStrategy::data_hash())),
        ("rule", forward_cfg(2, PartitioningStrategy::rule())),
        ("hybrid", forward_cfg(4, PartitioningStrategy::Hybrid { rule_groups: 2 })),
    ] {
        let (report, g, workers) = run_cluster(&g0, &cfg);
        let report = report.unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(!report.recovered, "{label}");
        assert_eq!(g.len(), want_len, "{label}");
        assert_eq!(g.term_fingerprint(), want_fp, "{label}");
        for w in workers {
            w.unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }
}

/// A worker executing an injected `Disconnect` mid-run must surface as a
/// typed error on its side, and the master must detect the loss, drain
/// the survivors, and re-close to the exact serial closure.
#[test]
fn mid_run_disconnect_recovers_to_serial_closure() {
    let g0 = generate_mdc(&MdcConfig::mini());
    let (want_fp, want_len) = serial_closure(g0.clone());
    let cfg = forward_cfg(4, PartitioningStrategy::data_graph())
        .with_round_timeout(Duration::from_secs(120))
        .with_faults(FaultPlan::new().with(1, 2, FaultKind::Disconnect));
    let (report, g, workers) = run_cluster(&g0, &cfg);
    let report = report.expect("master recovers from the lost worker");
    assert!(report.recovered, "disconnect at round 1 triggers recovery");
    assert_eq!(report.worker_errors.len(), 1);
    assert_eq!(report.workers.len(), 4, "dead worker keeps its stats slot");
    assert_eq!(g.len(), want_len);
    assert_eq!(g.term_fingerprint(), want_fp);
    let injected: Vec<_> = workers
        .iter()
        .filter(|w| matches!(w, Err(NetError::Injected { round: 1, kind: "disconnect" })))
        .collect();
    assert_eq!(injected.len(), 1, "exactly the faulted worker errors");
    assert_eq!(
        workers.iter().filter(|w| w.is_ok()).count(),
        3,
        "survivors finish cleanly"
    );
}

/// A worker speaking the wrong protocol version is told why (Reject) and
/// the master refuses to start — bootstrap is all-or-nothing.
#[test]
fn handshake_version_mismatch_is_rejected() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut g = generate_lubm(&LubmConfig::mini(1));
    let cfg = forward_cfg(1, PartitioningStrategy::data_graph());
    let master = thread::spawn(move || {
        run_cluster_master(&mut g, &cfg, listener, &MasterOptions::default())
    });

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let hello = encode_worker_msg(&WorkerMsg::Hello {
        magic: WIRE_MAGIC,
        version: PROTOCOL_VERSION + 99,
    });
    owlpar_core::write_crc_frame(&mut stream, &hello).unwrap();
    let body = read_crc_frame(&mut stream).unwrap();
    match decode_master_msg(&body, u32::MAX).unwrap() {
        MasterMsg::Reject { reason } => {
            assert!(reason.contains("version"), "{reason}");
        }
        other => panic!("expected Reject, got {other:?}"),
    }
    let err = master.join().unwrap().unwrap_err();
    assert!(matches!(err, NetError::Handshake { .. }), "{err}");
}

/// A torn frame (payload bytes flipped under the CRC) is detected before
/// any of it is interpreted; the master refuses the worker.
#[test]
fn torn_handshake_frame_is_rejected() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut g = generate_lubm(&LubmConfig::mini(1));
    let cfg = forward_cfg(1, PartitioningStrategy::data_graph());
    let master = thread::spawn(move || {
        run_cluster_master(&mut g, &cfg, listener, &MasterOptions::default())
    });

    let mut stream = TcpStream::connect(addr).unwrap();
    let hello = encode_worker_msg(&WorkerMsg::Hello {
        magic: WIRE_MAGIC,
        version: PROTOCOL_VERSION,
    });
    let mut framed = Vec::new();
    owlpar_core::write_crc_frame(&mut framed, &hello).unwrap();
    let last = framed.len() - 1;
    framed[last] ^= 0xFF; // tear the payload under the checksum
    stream.write_all(&framed).unwrap();
    stream.flush().unwrap();

    let err = master.join().unwrap().unwrap_err();
    assert!(
        matches!(err, NetError::Frame(_)),
        "CRC damage surfaces as a frame error, got: {err}"
    );
}

/// End-to-end partition caching: the first run over a KB ships every
/// worker its full `SetupPayload` (all misses); a second run against the
/// same cache directory ships digests only (all hits), spending less
/// than 1% of the cold run's setup bytes — and both closures equal the
/// serial oracle exactly.
#[test]
fn second_run_ships_digest_only_setups() {
    let g0 = generate_lubm(&LubmConfig::mini(22));
    let (want_fp, want_len) = serial_closure(g0.clone());
    let cache_dir = std::env::temp_dir().join(format!(
        "owlpar-cluster-test-cache-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let worker_opts = WorkerOptions {
        cache_dir: Some(cache_dir.clone()),
        ..WorkerOptions::default()
    };
    let k = 2;
    let cfg = forward_cfg(k, PartitioningStrategy::data_graph());

    let (cold, g_cold, _) =
        run_cluster_opts(&g0, &cfg, &MasterOptions::default(), &worker_opts);
    let cold = cold.expect("cold run").wire.expect("wire stats");
    assert_eq!(cold.cache_misses, k as u64, "first run misses everywhere");
    assert_eq!(cold.cache_hits, 0);
    assert_eq!((g_cold.term_fingerprint(), g_cold.len()), (want_fp, want_len));

    let (warm, g_warm, _) =
        run_cluster_opts(&g0, &cfg, &MasterOptions::default(), &worker_opts);
    let warm = warm.expect("warm run").wire.expect("wire stats");
    assert_eq!(warm.cache_hits, k as u64, "second run hits everywhere");
    assert_eq!(warm.cache_misses, 0);
    assert_eq!((g_warm.term_fingerprint(), g_warm.len()), (want_fp, want_len));
    assert!(
        warm.setup.bytes * 100 < cold.setup.bytes,
        "digest-only setups ({} B) must be <1% of full setups ({} B)",
        warm.setup.bytes,
        cold.setup.bytes
    );
    assert!(warm.setup.triples == 0, "no partition triples re-shipped");
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// With the chunk cap lowered to a test-size 16 triples, `Final` stores
/// and round deliveries stream as many bounded frames instead of one
/// huge frame each — the mechanism that lifts the 64 MB payload cap —
/// and the closure is byte-identical to serial.
#[test]
fn chunked_streaming_at_tiny_cap_preserves_closure() {
    let g0 = generate_lubm(&LubmConfig::mini(2));
    let (want_fp, want_len) = serial_closure(g0.clone());
    let k = 2;
    let cfg = forward_cfg(k, PartitioningStrategy::data_graph());
    let master_opts = MasterOptions {
        chunk_triples: 16,
        ..MasterOptions::default()
    };
    let worker_opts = WorkerOptions {
        chunk_triples: 16,
        ..WorkerOptions::default()
    };
    let (report, g, workers) = run_cluster_opts(&g0, &cfg, &master_opts, &worker_opts);
    let report = report.expect("chunked run");
    assert!(!report.recovered);
    assert_eq!(g.len(), want_len);
    assert_eq!(g.term_fingerprint(), want_fp);
    for w in workers {
        w.expect("worker");
    }
    let wire = report.wire.expect("wire stats");
    assert!(
        wire.finals.frames > 2 * k as u64,
        "final stores of {} triples at a 16-triple cap must stream as \
         chunk sequences, saw {} frame(s)",
        wire.finals.triples,
        wire.finals.frames
    );
}

/// A master that answers `Hello` with `Reject` must surface worker-side
/// as a typed handshake error carrying the reason — not a decode failure
/// or a hang.
#[test]
fn worker_surfaces_reject_as_typed_handshake_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stub = thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let _hello = read_crc_frame(&mut stream).unwrap();
        let reject = owlpar_net::protocol::encode_master_msg(&MasterMsg::Reject {
            reason: "cluster is full, try the next epoch".to_string(),
        });
        owlpar_core::write_crc_frame(&mut stream, &reject).unwrap();
    });
    let err = run_cluster_worker(addr, &WorkerOptions::default()).unwrap_err();
    stub.join().unwrap();
    match err {
        NetError::Handshake { detail } => {
            assert!(detail.contains("cluster is full"), "{detail}");
        }
        other => panic!("expected a typed handshake error, got {other}"),
    }
}

/// Version-mismatch regression, old-worker direction: a peer that opens
/// with the v1 `Hello` (same frozen byte layout, `version: 1`) gets a
/// typed `Reject` naming both versions, and the master's graph is left
/// untouched.
#[test]
fn v1_hello_gets_typed_reject_and_graph_is_unchanged() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let g0 = generate_lubm(&LubmConfig::mini(1));
    let mut g = g0.clone();
    let cfg = forward_cfg(1, PartitioningStrategy::data_graph());
    let master = thread::spawn(move || {
        let r = run_cluster_master(&mut g, &cfg, listener, &MasterOptions::default());
        (r, g)
    });

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let hello = encode_worker_msg(&WorkerMsg::Hello {
        magic: WIRE_MAGIC,
        version: 1,
    });
    owlpar_core::write_crc_frame(&mut stream, &hello).unwrap();
    let body = read_crc_frame(&mut stream).unwrap();
    match decode_master_msg(&body, u32::MAX).unwrap() {
        MasterMsg::Reject { reason } => {
            assert!(
                reason.contains("version 1") && reason.contains(&format!("version {PROTOCOL_VERSION}")),
                "{reason}"
            );
        }
        other => panic!("expected Reject, got {other:?}"),
    }
    let (result, g) = master.join().unwrap();
    assert!(matches!(result, Err(NetError::Handshake { .. })));
    assert_eq!(g.len(), g0.len(), "no partial partitions applied");
    assert_eq!(g.term_fingerprint(), g0.term_fingerprint());
}

/// The rejected run must leave the master's graph untouched (no partial
/// partitions applied) — callers can retry with a fixed worker fleet.
#[test]
fn failed_bootstrap_leaves_graph_unchanged() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let g0 = generate_lubm(&LubmConfig::mini(1));
    let mut g = g0.clone();
    let cfg = forward_cfg(1, PartitioningStrategy::data_graph());
    let master = thread::spawn({
        let opts = MasterOptions::default();
        move || {
            let r = run_cluster_master(&mut g, &cfg, listener, &opts);
            (r, g)
        }
    });
    // Dial and vanish without a Hello: the master sees EOF mid-handshake.
    drop(TcpStream::connect(addr).unwrap());
    let (result, g) = master.join().unwrap();
    assert!(result.is_err());
    assert_eq!(g.len(), g0.len());
    assert_eq!(g.term_fingerprint(), g0.term_fingerprint());
}
