//! The `owlpar-cluster` command-line tool: run the multi-process
//! distributed reasoner — one master, `k` worker processes, TCP between.
//!
//! ```text
//! owlpar-cluster master <in.nt> [--k 4] [--listen 127.0.0.1:0] [--spawn-local]
//!                       [--strategy graph|hash|domain|rule|hybrid|auto]
//!                       [--fault-plan 'disconnect@1.1,...'] [--round-timeout 30]
//!                       [--epoch 0] [--out FILE] [--check-serial]
//!                       [--cache-dir DIR] [--wire-stats FILE] [--trace-out FILE]
//! owlpar-cluster worker <master-addr> [--connect-timeout 30] [--cache-dir DIR]
//! ```
//!
//! `--spawn-local` forks `k` worker processes of this same binary against
//! the bound address — the one-command way to run a whole cluster on one
//! host. `--check-serial` recomputes the closure serially afterwards and
//! verifies the cluster result is identical (by term fingerprint).
//! `--cache-dir` lets workers persist shipped partitions keyed by
//! `(input digest, config digest, node)`; a repeat run over the same KB
//! and config ships 16-byte digests instead of partitions (with
//! `--spawn-local` the flag is forwarded to every spawned worker).
//! `--wire-stats` writes the master's per-phase wire accounting as JSON.
//! `--trace-out` records the whole run — master relay lane plus every
//! worker's spans, shipped back as telemetry frames and clock-offset
//! merged — and writes a Chrome-trace JSON file (load it in
//! `chrome://tracing` / Perfetto, or feed it to `owlpar trace summary`).
//!
//! Exit codes: 0 success, 1 usage/IO error, 3 the run itself failed (a
//! handshake, protocol or worker failure without recovery — or an
//! injected fault, on the worker side).

use owlpar_core::config::RoundMode;
use owlpar_core::{run_serial, FaultPlan, ParallelConfig, PartitioningStrategy};
use owlpar_net::{run_cluster_master, run_cluster_worker, MasterOptions, NetError, WorkerOptions};
use owlpar_rdf::{parse_ntriples, write_ntriples, Graph};
use std::net::TcpListener;
use std::process::{Child, Command, ExitCode};
use std::time::Duration;

/// What went wrong, split by exit code.
enum CliError {
    /// Bad arguments or IO trouble — exit code 1.
    Usage(String),
    /// The cluster run failed — exit code 3.
    Net(NetError),
    /// The `--check-serial` cross-check found a divergence — exit code 3.
    Check(String),
}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError::Usage(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError::Usage(s.to_string())
    }
}

impl From<NetError> for CliError {
    fn from(e: NetError) -> Self {
        CliError::Net(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(e)) => {
            eprintln!("owlpar-cluster: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Net(e)) => {
            eprintln!("owlpar-cluster: run failed: {e}");
            ExitCode::from(3)
        }
        Err(CliError::Check(e)) => {
            eprintln!("owlpar-cluster: serial check FAILED: {e}");
            ExitCode::from(3)
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run(args: Vec<String>) -> Result<(), CliError> {
    let cmd = args.first().cloned().unwrap_or_default();
    let rest = &args[args.len().min(1)..];
    match cmd.as_str() {
        "master" => master(rest),
        "worker" => worker(rest),
        _ => Err(CliError::Usage(format!(
            "usage: owlpar-cluster <master|worker> ... (got '{cmd}')"
        ))),
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut g = Graph::new();
    parse_ntriples(&text, &mut g).map_err(|e| format!("parsing {path}: {e}"))?;
    Ok(g)
}

fn master(args: &[String]) -> Result<(), CliError> {
    let [input, ..] = args else {
        return Err("master needs <in.nt>".into());
    };
    let k: usize = flag_value(args, "--k")
        .map_or(Ok(4), |v| v.parse().map_err(|_| "--k".to_string()))?;
    let strategy = match flag_value(args, "--strategy").as_deref() {
        None | Some("graph") => PartitioningStrategy::data_graph(),
        Some("hash") => PartitioningStrategy::data_hash(),
        Some("domain") => PartitioningStrategy::data_domain(),
        Some("rule") => PartitioningStrategy::rule(),
        Some("hybrid") => PartitioningStrategy::Hybrid {
            rule_groups: if k.is_multiple_of(2) { 2 } else { 1 },
        },
        Some("auto") => PartitioningStrategy::Auto,
        Some(other) => return Err(format!("unknown strategy '{other}'").into()),
    };
    let mut cfg = ParallelConfig {
        k,
        strategy,
        rounds: RoundMode::Barrier,
        ..ParallelConfig::default()
    }
    .forward();
    if let Some(secs) = flag_value(args, "--round-timeout") {
        let secs: u64 = secs.parse().map_err(|_| "--round-timeout".to_string())?;
        cfg = cfg.with_round_timeout(Duration::from_secs(secs));
    }
    if let Some(spec) = flag_value(args, "--fault-plan") {
        let plan = FaultPlan::parse(&spec).map_err(|e| format!("--fault-plan: {e}"))?;
        cfg = cfg.with_faults(plan);
    }
    let epoch: u64 = flag_value(args, "--epoch")
        .map_or(Ok(0), |v| v.parse().map_err(|_| "--epoch".to_string()))?;
    let trace_out = flag_value(args, "--trace-out");
    let recorder = trace_out.as_ref().map(|_| owlpar_obs::Recorder::enabled());
    let opts = MasterOptions {
        epoch,
        trace: recorder.clone(),
        ..MasterOptions::default()
    };

    let mut g = load_graph(input)?;
    let baseline = args
        .iter()
        .any(|a| a == "--check-serial")
        .then(|| g.clone());
    let before = g.len();

    let listen = flag_value(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let listener = TcpListener::bind(&listen).map_err(|e| format!("binding {listen}: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("resolving bound address: {e}"))?;
    println!("master: listening on {addr}, waiting for {k} worker(s)");

    let cache_dir = flag_value(args, "--cache-dir");
    let mut children: Vec<Child> = Vec::new();
    if args.iter().any(|a| a == "--spawn-local") {
        let exe = std::env::current_exe().map_err(|e| format!("locating this binary: {e}"))?;
        for i in 0..k {
            let mut cmd = Command::new(&exe);
            cmd.arg("worker").arg(addr.to_string());
            if let Some(dir) = &cache_dir {
                cmd.arg("--cache-dir").arg(dir);
            }
            let child = cmd
                .spawn()
                .map_err(|e| format!("spawning local worker {i}: {e}"))?;
            children.push(child);
        }
    }

    let result = run_cluster_master(&mut g, &cfg, listener, &opts);
    // Reap local workers regardless of the outcome. A worker executing an
    // injected fault exits nonzero by design; the master's own verdict
    // (recovery or error) is what decides the exit code.
    for mut child in children {
        let _ = child.wait();
    }
    let report = result?;

    println!(
        "master: {before} base triples -> {} total: {}",
        g.len(),
        report.summary()
    );
    if let Some(wire) = &report.wire {
        println!("master: {}", wire.summary());
        if let Some(path) = flag_value(args, "--wire-stats") {
            std::fs::write(&path, wire.to_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    if let (Some(path), Some(rec)) = (&trace_out, &recorder) {
        let book = rec.drain();
        std::fs::write(path, owlpar_obs::chrome::to_chrome_json(&book))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "master: trace written to {path} ({} event(s), {} lane(s))",
            book.events.len(),
            book.tracks.len()
        );
    }
    if report.recovered {
        for e in &report.worker_errors {
            eprintln!("owlpar-cluster: recovered from: {e}");
        }
        eprintln!(
            "owlpar-cluster: {} worker(s) lost; closure re-derived serially (still exact)",
            report.worker_errors.len()
        );
    }
    if let Some(out) = flag_value(args, "--out") {
        std::fs::write(&out, write_ntriples(&g)).map_err(|e| format!("writing {out}: {e}"))?;
    }
    if let Some(mut serial) = baseline {
        run_serial(&mut serial, cfg.materialization);
        if serial.term_fingerprint() == g.term_fingerprint() && serial.len() == g.len() {
            println!("serial check: OK ({} triples)", g.len());
        } else {
            return Err(CliError::Check(format!(
                "cluster closure has {} triples, serial has {}",
                g.len(),
                serial.len()
            )));
        }
    }
    Ok(())
}

fn worker(args: &[String]) -> Result<(), CliError> {
    let [addr, ..] = args else {
        return Err("worker needs <master-addr>".into());
    };
    let mut opts = WorkerOptions::default();
    if let Some(secs) = flag_value(args, "--connect-timeout") {
        let secs: u64 = secs.parse().map_err(|_| "--connect-timeout".to_string())?;
        opts.connect_timeout = Duration::from_secs(secs);
    }
    if let Some(dir) = flag_value(args, "--cache-dir") {
        opts.cache_dir = Some(dir.into());
    }
    let summary = run_cluster_worker(addr.as_str(), &opts)?;
    println!(
        "worker {}/{} (epoch {}): {} round(s), {} derived, {} sent, {} in final store",
        summary.node_id,
        summary.k,
        summary.epoch,
        summary.rounds,
        summary.derived,
        summary.sent,
        summary.store_len
    );
    Ok(())
}
