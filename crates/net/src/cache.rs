//! The shipped-partition cache: workers persist the [`SetupPayload`]
//! blobs the master ships them, keyed by
//! `(input digest, partitioning config digest, node id)`, so a repeat
//! run over the same KB and config ships a 16-byte digest instead of
//! the partition.
//!
//! ## Correctness model
//!
//! The cache can only ever *miss*, never corrupt: the master compares
//! the worker's advertised `payload` digest against the digest of the
//! payload it just built for this run, and only elides the transfer on
//! an exact match. A nondeterministic partitioner, a stale entry, or a
//! flipped bit on disk all degrade to a full ship. On the worker side a
//! loaded blob is re-verified (CRC and digest) before it is decoded,
//! and decoding applies the same full validation as the wire path
//! ([`decode_setup_payload`](crate::protocol::decode_setup_payload)).
//!
//! ## On-disk format
//!
//! One file per entry, named
//! `part-<input hex32>-<config hex32>-<node>.owlpart`, written with
//! [`atomic_write`] so a crashed worker never leaves a torn entry:
//!
//! ```text
//! magic u32 | version u32 | input [16] | config [16] | node u32 |
//! payload_digest [16] | payload_len u32 | payload_crc u32 | payload
//! ```
//!
//! Files that fail any check are ignored by [`PartitionCache::scan`]
//! and deleted lazily by [`PartitionCache::load`].

use crate::protocol::{CacheEntry, MAX_CACHE_ADVERT};
use owlpar_core::{atomic_write, crc32, digest128, hex128, TMP_SUFFIX};
use std::io;
use std::path::{Path, PathBuf};

/// `"OWCP"` — first field of every cache file.
const CACHE_MAGIC: u32 = 0x4F57_4350;

/// Cache format version; bumped with the wire format, because the
/// cached bytes *are* wire bytes ([`crate::protocol::PROTOCOL_VERSION`]
/// 2's `SetupPayload` grammar).
const CACHE_VERSION: u32 = 2;

/// Fixed header ahead of the payload: magic, version, key, digest,
/// length, CRC.
const HEADER_LEN: usize = 4 + 4 + 16 + 16 + 4 + 16 + 4 + 4;

/// File extension for cache entries.
const EXT: &str = "owlpart";

/// Default retention: newest entries kept per node id by
/// [`PartitionCache::store`] — one per `(input, config)` the node has
/// recently run, so a worker cycling through KBs and partitioning
/// configs keeps its working set without growing the directory without
/// bound.
pub const DEFAULT_RETAIN_PER_NODE: usize = 8;

/// A directory of shipped-partition entries.
#[derive(Debug, Clone)]
pub struct PartitionCache {
    dir: PathBuf,
    retain_per_node: usize,
}

fn entry_name(input: &[u8; 16], config: &[u8; 16], node: u32) -> String {
    format!("part-{}-{}-{node}.{EXT}", hex128(input), hex128(config))
}

fn read_exact_at(buf: &[u8], at: usize, n: usize) -> Option<&[u8]> {
    buf.get(at..at.checked_add(n)?)
}

fn digest_at(buf: &[u8], at: usize) -> Option<[u8; 16]> {
    let mut d = [0u8; 16];
    d.copy_from_slice(read_exact_at(buf, at, 16)?);
    Some(d)
}

fn u32_at(buf: &[u8], at: usize) -> Option<u32> {
    let b = read_exact_at(buf, at, 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Parse a cache file's bytes into `(entry, payload)`. `None` on any
/// header mismatch, length mismatch, CRC failure or digest failure —
/// a bad file is a miss, never an error.
fn parse_entry(bytes: &[u8]) -> Option<(CacheEntry, &[u8])> {
    if u32_at(bytes, 0)? != CACHE_MAGIC || u32_at(bytes, 4)? != CACHE_VERSION {
        return None;
    }
    let input = digest_at(bytes, 8)?;
    let config = digest_at(bytes, 24)?;
    let node = u32_at(bytes, 40)?;
    let payload_digest = digest_at(bytes, 44)?;
    let len = u32_at(bytes, 60)? as usize;
    let crc = u32_at(bytes, 64)?;
    let payload = read_exact_at(bytes, HEADER_LEN, len)?;
    if bytes.len() != HEADER_LEN + len || crc32(payload) != crc {
        return None;
    }
    if digest128(payload) != payload_digest {
        return None;
    }
    Some((
        CacheEntry {
            input,
            config,
            node,
            payload: payload_digest,
        },
        payload,
    ))
}

impl PartitionCache {
    /// Open (creating if needed) a cache directory with the default
    /// per-node retention ([`DEFAULT_RETAIN_PER_NODE`]).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(PartitionCache {
            dir,
            retain_per_node: DEFAULT_RETAIN_PER_NODE,
        })
    }

    /// Override the per-node retention (floored at 1: the entry just
    /// stored always survives its own store).
    pub fn with_retention(mut self, retain_per_node: usize) -> Self {
        self.retain_per_node = retain_per_node.max(1);
        self
    }

    fn path_for(&self, input: &[u8; 16], config: &[u8; 16], node: u32) -> PathBuf {
        self.dir.join(entry_name(input, config, node))
    }

    /// Enumerate the valid entries on disk (full verification: CRC and
    /// payload digest), capped at [`MAX_CACHE_ADVERT`] — exactly what a
    /// worker advertises after its handshake.
    pub fn scan(&self) -> Vec<CacheEntry> {
        let mut entries = Vec::new();
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return entries;
        };
        for item in dir.flatten() {
            let path = item.path();
            if !is_entry_path(&path) {
                continue;
            }
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            if let Some((entry, _)) = parse_entry(&bytes) {
                entries.push(entry);
                if entries.len() >= MAX_CACHE_ADVERT {
                    break;
                }
            }
        }
        // Deterministic advert order (read_dir order is arbitrary).
        entries.sort_by(|a, b| {
            (a.input, a.config, a.node).cmp(&(b.input, b.config, b.node))
        });
        entries
    }

    /// Load the payload for a key, verifying the file *and* that its
    /// payload digests to `expect` (the digest the master's `Setup`
    /// header demands). Any mismatch deletes the bad file and reports a
    /// miss.
    pub fn load(
        &self,
        input: &[u8; 16],
        config: &[u8; 16],
        node: u32,
        expect: &[u8; 16],
    ) -> Option<Vec<u8>> {
        let path = self.path_for(input, config, node);
        let bytes = std::fs::read(&path).ok()?;
        match parse_entry(&bytes) {
            Some((entry, payload)) if entry.payload == *expect => Some(payload.to_vec()),
            _ => {
                // Stale or damaged: evict so the next run re-ships.
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Persist a payload under its key, atomically. The entry self
    /// describes: its digest is recomputed, not trusted from callers.
    pub fn store(
        &self,
        input: &[u8; 16],
        config: &[u8; 16],
        node: u32,
        payload: &[u8],
    ) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&CACHE_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&CACHE_VERSION.to_le_bytes());
        bytes.extend_from_slice(input);
        bytes.extend_from_slice(config);
        bytes.extend_from_slice(&node.to_le_bytes());
        bytes.extend_from_slice(&digest128(payload));
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        let path = self.path_for(input, config, node);
        atomic_write(&path, &bytes)?;
        self.evict_stale(node, &path);
        Ok(())
    }

    /// Enforce retention for `node`: keep the newest
    /// `retain_per_node` entries by file modification time (the one at
    /// `keep` — just written — always survives), delete the rest.
    /// Eviction is advisory: an unreadable directory or a failed remove
    /// leaves extra entries behind, which only costs disk, never
    /// correctness (every load re-verifies).
    fn evict_stale(&self, node: u32, keep: &Path) {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut aged: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
        for item in dir.flatten() {
            let path = item.path();
            if !is_entry_path(&path) || node_of_path(&path) != Some(node) || path == keep {
                continue;
            }
            let mtime = item
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            aged.push((mtime, path));
        }
        if aged.len() < self.retain_per_node {
            return;
        }
        // Oldest first; tie-break on the name so eviction order is
        // deterministic under coarse mtime granularity.
        aged.sort();
        let excess = aged.len() + 1 - self.retain_per_node;
        for (_, path) in aged.into_iter().take(excess) {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Node id embedded in an entry file name
/// (`part-<input>-<config>-<node>.owlpart`).
fn node_of_path(path: &Path) -> Option<u32> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_suffix(&format!(".{EXT}"))?;
    stem.rsplit('-').next()?.parse().ok()
}

fn is_entry_path(path: &Path) -> bool {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    name.starts_with("part-") && name.ends_with(&format!(".{EXT}")) && !name.ends_with(TMP_SUFFIX)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn tmp_cache(tag: &str) -> PartitionCache {
        let dir = std::env::temp_dir().join(format!(
            "owlpar-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        PartitionCache::open(dir).unwrap()
    }

    #[test]
    fn store_scan_load_roundtrip() {
        let cache = tmp_cache("roundtrip");
        let input = digest128(b"kb");
        let config = digest128(b"cfg");
        let payload = b"the shipped partition blob".to_vec();
        cache.store(&input, &config, 3, &payload).unwrap();

        let entries = cache.scan();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].input, input);
        assert_eq!(entries[0].config, config);
        assert_eq!(entries[0].node, 3);
        assert_eq!(entries[0].payload, digest128(&payload));

        let got = cache.load(&input, &config, 3, &digest128(&payload)).unwrap();
        assert_eq!(got, payload);
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn digest_mismatch_is_a_miss_and_evicts() {
        let cache = tmp_cache("mismatch");
        let input = digest128(b"kb");
        let config = digest128(b"cfg");
        cache.store(&input, &config, 0, b"old partition").unwrap();
        // The master demands a different payload this run.
        assert!(cache.load(&input, &config, 0, &digest128(b"new partition")).is_none());
        // The stale entry was evicted entirely.
        assert!(cache.scan().is_empty());
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn corrupt_files_are_invisible() {
        let cache = tmp_cache("corrupt");
        let input = digest128(b"kb");
        let config = digest128(b"cfg");
        cache.store(&input, &config, 1, b"partition bytes").unwrap();
        // Flip one payload byte on disk.
        let path = cache.path_for(&input, &config, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.scan().is_empty());
        assert!(cache.load(&input, &config, 1, &digest128(b"partition bytes")).is_none());
        // Truncations at every offset are equally invisible.
        let full = {
            cache.store(&input, &config, 1, b"partition bytes").unwrap();
            std::fs::read(&path).unwrap()
        };
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(cache.scan().is_empty(), "cut at {cut} accepted");
        }
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn retention_keeps_newest_n_per_node() {
        let cache = tmp_cache("retention").with_retention(3);
        let config = digest128(b"cfg");
        // Six entries for node 0, each backdated so entry i is strictly
        // older than entry i+1 regardless of filesystem granularity.
        let now = std::time::SystemTime::now();
        for i in 0u8..6 {
            let input = digest128(&[b'k', i]);
            cache.store(&input, &config, 0, &[i; 32]).unwrap();
            let f = std::fs::File::options()
                .append(true)
                .open(cache.path_for(&input, &config, 0))
                .unwrap();
            f.set_modified(now - std::time::Duration::from_secs(100 - i as u64))
                .unwrap();
        }
        // Another node's entry is untouched by node 0's retention.
        cache.store(&digest128(b"other"), &config, 1, b"n1").unwrap();

        let entries = cache.scan();
        let node0: Vec<_> = entries.iter().filter(|e| e.node == 0).collect();
        assert_eq!(node0.len(), 3, "newest 3 of 6 survive");
        assert_eq!(entries.iter().filter(|e| e.node == 1).count(), 1);
        // Exactly the newest three (inputs 3, 4, 5) remain loadable.
        for i in 0u8..6 {
            let input = digest128(&[b'k', i]);
            let hit = cache
                .load(&input, &config, 0, &digest128(&[i; 32]))
                .is_some();
            assert_eq!(hit, i >= 3, "entry {i} retention");
        }
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn scan_ignores_foreign_files() {
        let cache = tmp_cache("foreign");
        std::fs::write(cache.dir.join("notes.txt"), b"hello").unwrap();
        std::fs::write(cache.dir.join(format!("part-x.{EXT}{TMP_SUFFIX}")), b"torn").unwrap();
        assert!(cache.scan().is_empty());
        let _ = std::fs::remove_dir_all(&cache.dir);
    }
}
