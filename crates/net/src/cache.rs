//! The shipped-partition cache: workers persist the [`SetupPayload`]
//! blobs the master ships them, keyed by
//! `(input digest, partitioning config digest, node id)`, so a repeat
//! run over the same KB and config ships a 16-byte digest instead of
//! the partition.
//!
//! ## Correctness model
//!
//! The cache can only ever *miss*, never corrupt: the master compares
//! the worker's advertised `payload` digest against the digest of the
//! payload it just built for this run, and only elides the transfer on
//! an exact match. A nondeterministic partitioner, a stale entry, or a
//! flipped bit on disk all degrade to a full ship. On the worker side a
//! loaded blob is re-verified (CRC and digest) before it is decoded,
//! and decoding applies the same full validation as the wire path
//! ([`decode_setup_payload`](crate::protocol::decode_setup_payload)).
//!
//! ## On-disk format
//!
//! One file per entry, named
//! `part-<input hex32>-<config hex32>-<node>.owlpart`, written with
//! [`atomic_write`] so a crashed worker never leaves a torn entry:
//!
//! ```text
//! magic u32 | version u32 | input [16] | config [16] | node u32 |
//! payload_digest [16] | payload_len u32 | payload_crc u32 | payload
//! ```
//!
//! Files that fail any check are ignored by [`PartitionCache::scan`]
//! and deleted lazily by [`PartitionCache::load`].

use crate::protocol::{CacheEntry, MAX_CACHE_ADVERT};
use owlpar_core::{atomic_write, crc32, digest128, hex128, TMP_SUFFIX};
use std::io;
use std::path::{Path, PathBuf};

/// `"OWCP"` — first field of every cache file.
const CACHE_MAGIC: u32 = 0x4F57_4350;

/// Cache format version; bumped with the wire format, because the
/// cached bytes *are* wire bytes ([`crate::protocol::PROTOCOL_VERSION`]
/// 2's `SetupPayload` grammar).
const CACHE_VERSION: u32 = 2;

/// Fixed header ahead of the payload: magic, version, key, digest,
/// length, CRC.
const HEADER_LEN: usize = 4 + 4 + 16 + 16 + 4 + 16 + 4 + 4;

/// File extension for cache entries.
const EXT: &str = "owlpart";

/// A directory of shipped-partition entries.
#[derive(Debug, Clone)]
pub struct PartitionCache {
    dir: PathBuf,
}

fn entry_name(input: &[u8; 16], config: &[u8; 16], node: u32) -> String {
    format!("part-{}-{}-{node}.{EXT}", hex128(input), hex128(config))
}

fn read_exact_at(buf: &[u8], at: usize, n: usize) -> Option<&[u8]> {
    buf.get(at..at.checked_add(n)?)
}

fn digest_at(buf: &[u8], at: usize) -> Option<[u8; 16]> {
    let mut d = [0u8; 16];
    d.copy_from_slice(read_exact_at(buf, at, 16)?);
    Some(d)
}

fn u32_at(buf: &[u8], at: usize) -> Option<u32> {
    let b = read_exact_at(buf, at, 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Parse a cache file's bytes into `(entry, payload)`. `None` on any
/// header mismatch, length mismatch, CRC failure or digest failure —
/// a bad file is a miss, never an error.
fn parse_entry(bytes: &[u8]) -> Option<(CacheEntry, &[u8])> {
    if u32_at(bytes, 0)? != CACHE_MAGIC || u32_at(bytes, 4)? != CACHE_VERSION {
        return None;
    }
    let input = digest_at(bytes, 8)?;
    let config = digest_at(bytes, 24)?;
    let node = u32_at(bytes, 40)?;
    let payload_digest = digest_at(bytes, 44)?;
    let len = u32_at(bytes, 60)? as usize;
    let crc = u32_at(bytes, 64)?;
    let payload = read_exact_at(bytes, HEADER_LEN, len)?;
    if bytes.len() != HEADER_LEN + len || crc32(payload) != crc {
        return None;
    }
    if digest128(payload) != payload_digest {
        return None;
    }
    Some((
        CacheEntry {
            input,
            config,
            node,
            payload: payload_digest,
        },
        payload,
    ))
}

impl PartitionCache {
    /// Open (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(PartitionCache { dir })
    }

    fn path_for(&self, input: &[u8; 16], config: &[u8; 16], node: u32) -> PathBuf {
        self.dir.join(entry_name(input, config, node))
    }

    /// Enumerate the valid entries on disk (full verification: CRC and
    /// payload digest), capped at [`MAX_CACHE_ADVERT`] — exactly what a
    /// worker advertises after its handshake.
    pub fn scan(&self) -> Vec<CacheEntry> {
        let mut entries = Vec::new();
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return entries;
        };
        for item in dir.flatten() {
            let path = item.path();
            if !is_entry_path(&path) {
                continue;
            }
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            if let Some((entry, _)) = parse_entry(&bytes) {
                entries.push(entry);
                if entries.len() >= MAX_CACHE_ADVERT {
                    break;
                }
            }
        }
        // Deterministic advert order (read_dir order is arbitrary).
        entries.sort_by(|a, b| {
            (a.input, a.config, a.node).cmp(&(b.input, b.config, b.node))
        });
        entries
    }

    /// Load the payload for a key, verifying the file *and* that its
    /// payload digests to `expect` (the digest the master's `Setup`
    /// header demands). Any mismatch deletes the bad file and reports a
    /// miss.
    pub fn load(
        &self,
        input: &[u8; 16],
        config: &[u8; 16],
        node: u32,
        expect: &[u8; 16],
    ) -> Option<Vec<u8>> {
        let path = self.path_for(input, config, node);
        let bytes = std::fs::read(&path).ok()?;
        match parse_entry(&bytes) {
            Some((entry, payload)) if entry.payload == *expect => Some(payload.to_vec()),
            _ => {
                // Stale or damaged: evict so the next run re-ships.
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Persist a payload under its key, atomically. The entry self
    /// describes: its digest is recomputed, not trusted from callers.
    pub fn store(
        &self,
        input: &[u8; 16],
        config: &[u8; 16],
        node: u32,
        payload: &[u8],
    ) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&CACHE_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&CACHE_VERSION.to_le_bytes());
        bytes.extend_from_slice(input);
        bytes.extend_from_slice(config);
        bytes.extend_from_slice(&node.to_le_bytes());
        bytes.extend_from_slice(&digest128(payload));
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        atomic_write(&self.path_for(input, config, node), &bytes)
    }
}

fn is_entry_path(path: &Path) -> bool {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    name.starts_with("part-") && name.ends_with(&format!(".{EXT}")) && !name.ends_with(TMP_SUFFIX)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn tmp_cache(tag: &str) -> PartitionCache {
        let dir = std::env::temp_dir().join(format!(
            "owlpar-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        PartitionCache::open(dir).unwrap()
    }

    #[test]
    fn store_scan_load_roundtrip() {
        let cache = tmp_cache("roundtrip");
        let input = digest128(b"kb");
        let config = digest128(b"cfg");
        let payload = b"the shipped partition blob".to_vec();
        cache.store(&input, &config, 3, &payload).unwrap();

        let entries = cache.scan();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].input, input);
        assert_eq!(entries[0].config, config);
        assert_eq!(entries[0].node, 3);
        assert_eq!(entries[0].payload, digest128(&payload));

        let got = cache.load(&input, &config, 3, &digest128(&payload)).unwrap();
        assert_eq!(got, payload);
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn digest_mismatch_is_a_miss_and_evicts() {
        let cache = tmp_cache("mismatch");
        let input = digest128(b"kb");
        let config = digest128(b"cfg");
        cache.store(&input, &config, 0, b"old partition").unwrap();
        // The master demands a different payload this run.
        assert!(cache.load(&input, &config, 0, &digest128(b"new partition")).is_none());
        // The stale entry was evicted entirely.
        assert!(cache.scan().is_empty());
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn corrupt_files_are_invisible() {
        let cache = tmp_cache("corrupt");
        let input = digest128(b"kb");
        let config = digest128(b"cfg");
        cache.store(&input, &config, 1, b"partition bytes").unwrap();
        // Flip one payload byte on disk.
        let path = cache.path_for(&input, &config, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.scan().is_empty());
        assert!(cache.load(&input, &config, 1, &digest128(b"partition bytes")).is_none());
        // Truncations at every offset are equally invisible.
        let full = {
            cache.store(&input, &config, 1, b"partition bytes").unwrap();
            std::fs::read(&path).unwrap()
        };
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(cache.scan().is_empty(), "cut at {cut} accepted");
        }
        let _ = std::fs::remove_dir_all(&cache.dir);
    }

    #[test]
    fn scan_ignores_foreign_files() {
        let cache = tmp_cache("foreign");
        std::fs::write(cache.dir.join("notes.txt"), b"hello").unwrap();
        std::fs::write(cache.dir.join(format!("part-x.{EXT}{TMP_SUFFIX}")), b"torn").unwrap();
        assert!(cache.scan().is_empty());
        let _ = std::fs::remove_dir_all(&cache.dir);
    }
}
