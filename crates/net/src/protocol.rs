//! The cluster bootstrap + round protocol: typed messages and their wire
//! codecs.
//!
//! Every message travels as one CRC frame (`owlpar_core::frame`:
//! `len | crc32 | body`), so torn or bit-flipped frames are rejected at
//! the framing layer before any of these decoders run. The body grammar
//! is a tag byte followed by little-endian fields; every length field is
//! bounds-checked against the remaining buffer *before* allocation, and
//! every triple id is validated against the run's dictionary size — a
//! frame that passes CRC but decodes to nonsense is a protocol violation
//! (the stream cannot be resynchronized), not a skippable message.
//!
//! ```text
//! worker → master:  Hello CacheAdvert | Triples* RoundDone | FinalChunk* Final
//! master → worker:  Welcome | Reject | Setup | DeliverChunk* Deliver
//! ```
//!
//! **Wire format v2** (see `DESIGN.md §13`): triple payloads travel as
//! sort-order delta/varint blocks ([`owlpar_core::frame::encode_triple_block`])
//! instead of raw 12-byte records; ownership tables are delta/varint
//! encoded; the bulky parts of `Setup` are wrapped into a canonical
//! [`SetupPayload`] blob so a worker that already holds the identical
//! blob in its on-disk cache can be sent the 16-byte digest instead; and
//! large `Final`/`Deliver` transfers stream as bounded chunk sequences
//! (`FinalChunk*`/`DeliverChunk*` ending in the ordinary terminator), so
//! a result of any size moves without raising the per-frame payload cap.
//!
//! The bootstrap handshake is versioned: `Hello` carries [`WIRE_MAGIC`]
//! and [`PROTOCOL_VERSION`]; a master that cannot serve that version
//! answers `Reject` and aborts the run before any partition ships. The
//! `Hello` byte layout is frozen across versions — a v1 peer and a v2
//! peer can always *parse* each other's opener, so a mismatch is a typed
//! `Reject` in both directions, never garbage.

use owlpar_core::frame::{get_varint32, put_varint32};
use owlpar_core::{
    decode_triple_block, encode_triple_block, FrameError, RunError, WorkerStats,
};
use owlpar_datalog::backward::TableScope;
use owlpar_datalog::{Atom, MaterializationStrategy, Rule, TermPat};
use owlpar_rdf::{NodeId, Triple};
use std::time::Duration;

/// `"OWLP"` — first field of every `Hello`.
pub const WIRE_MAGIC: u32 = 0x4F57_4C50;

/// Version of the cluster wire protocol. Bumped on any incompatible
/// change to the message grammar; the handshake refuses mismatches.
/// v1: raw 12-byte triple records, monolithic `Setup`.
/// v2: delta/varint triple blocks, digest-keyed `Setup` payloads,
/// chunked `Final`/`Deliver` streaming.
/// v3: `trace` flag in `Welcome`, `TraceChunk` telemetry frames
/// (`owlpar_obs::wire` payloads), `skipped`/`io_retries` in the final
/// stats record. The `Hello` layout stays frozen.
pub const PROTOCOL_VERSION: u32 = 3;

/// Anything that can go wrong running the cluster.
#[derive(Debug)]
pub enum NetError {
    /// Socket trouble (connect, accept, read, write).
    Io(std::io::Error),
    /// A frame violated the shared framing layer (bad length, bad CRC).
    Frame(FrameError),
    /// A CRC-valid frame decoded to something that is not a valid
    /// message (unknown tag, truncated field, out-of-dictionary id,
    /// wrong round number). The connection is unusable.
    Protocol {
        /// What was wrong.
        detail: String,
    },
    /// The bootstrap handshake failed: version mismatch, a rejected
    /// `Hello`, or the cluster never assembled within the deadline.
    Handshake {
        /// Why bootstrap was refused.
        detail: String,
    },
    /// The run itself failed with a structured core error (lint gate,
    /// bad config, unrecovered worker losses).
    Run(RunError),
    /// An injected fault ([`owlpar_core::FaultKind::Disconnect`] /
    /// `Panic`) killed this worker on schedule — the expected outcome of
    /// a chaos run, kept distinct from organic failures.
    Injected {
        /// Round at which the fault fired.
        round: usize,
        /// Which fault kind fired.
        kind: &'static str,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Frame(e) => write!(f, "bad frame: {e}"),
            NetError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            NetError::Handshake { detail } => write!(f, "handshake failed: {detail}"),
            NetError::Run(e) => write!(f, "run failed: {e}"),
            NetError::Injected { round, kind } => {
                write!(f, "injected {kind} fault fired at round {round}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Frame(e) => Some(e),
            NetError::Run(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<RunError> for NetError {
    fn from(e: RunError) -> Self {
        NetError::Run(e)
    }
}

impl NetError {
    pub(crate) fn protocol(detail: impl Into<String>) -> Self {
        NetError::Protocol {
            detail: detail.into(),
        }
    }
}

/// A fault the master ships to the worker it targets. Only the
/// worker-level kinds travel — transport-level IO/corruption injection
/// stays inside the in-process fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Panic at the start of the round (the worker process dies loudly).
    Panic,
    /// Close the master connection at the start of the round and exit.
    Disconnect,
    /// Sleep before the round's sends (a slow peer; exercises the
    /// master's deadline patience without killing anyone).
    Delay {
        /// Wall-clock delay in milliseconds.
        millis: u64,
    },
}

/// A routing table in shippable form — the wire image of
/// [`owlpar_core::worker::Routing`], minus the `Arc`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRouting {
    /// Data partitioning: the ownership table.
    Data {
        /// `(node, owning worker)` pairs.
        owner: Vec<(NodeId, u32)>,
    },
    /// Rule partitioning: the rule→partition assignment.
    Rule {
        /// Number of partitions.
        k: u32,
        /// Partition id per rule index (into the shipped `all_rules`).
        assignment: Vec<u32>,
    },
    /// Hybrid: ownership over shards × rule grouping.
    Hybrid {
        /// `(node, owning shard)` pairs (shard ids `0..data_shards`).
        owner: Vec<(NodeId, u32)>,
        /// Number of rule groups.
        groups_k: u32,
        /// Group id per rule index.
        groups_assignment: Vec<u32>,
        /// Number of data shards.
        data_shards: u32,
    },
}

/// The cacheable bulk of a worker's bootstrap: everything that depends
/// only on `(input KB, partitioning config, node id)` and nothing else.
/// Ships inside [`Setup`] as one canonically-encoded blob
/// ([`encode_setup_payload`]) so that its digest is stable across runs
/// and a worker holding the identical blob on disk can skip the
/// transfer entirely.
#[derive(Debug, Clone)]
pub struct SetupPayload {
    /// Size of the master's frozen dictionary; every triple id in every
    /// later frame must be below it.
    pub n_terms: u32,
    /// The resolved closure engine (no `threads: 0` auto value ships —
    /// the master resolves it so every process uses the same budget).
    pub materialization: MaterializationStrategy,
    /// Schema triples (replicated to every worker).
    pub schema: Vec<Triple>,
    /// This worker's base partition.
    pub base: Vec<Triple>,
    /// The complete effective rule-base (routing needs it even when this
    /// worker evaluates only a subset).
    pub all_rules: Vec<Rule>,
    /// The rules this worker evaluates.
    pub my_rules: Vec<Rule>,
    /// How this worker routes fresh derivations.
    pub routing: WireRouting,
}

/// Everything a worker needs before round 0 — the cluster image of the
/// master's [`owlpar_core::RunPlan`] slice for one worker. The bulky,
/// run-independent part travels as an optional [`SetupPayload`] blob:
/// `payload: None` means "you advertised a cache entry whose digests
/// match — load the blob from your cache"; the `payload_digest` lets the
/// worker verify whatever it loads (or received) byte-for-byte.
#[derive(Debug, Clone)]
pub struct Setup {
    /// Digest of the input KB (dictionary size + sorted id-triples).
    pub input_digest: [u8; 16],
    /// Digest of the partitioning configuration (k, strategy, engine).
    pub config_digest: [u8; 16],
    /// Digest of the canonical [`SetupPayload`] encoding this worker
    /// must end up holding, shipped or cached.
    pub payload_digest: [u8; 16],
    /// Per-message read patience during rounds, in milliseconds.
    pub round_timeout_ms: u64,
    /// Injected faults for this worker, as `(round, fault)` pairs.
    /// Per-run, so deliberately *outside* the cached payload.
    pub faults: Vec<(u32, WireFault)>,
    /// The encoded [`SetupPayload`], or `None` on a cache hit.
    pub payload: Option<Vec<u8>>,
}

/// One shipped-partition cache entry a worker advertises after the
/// handshake: "I already hold the payload for `(input, config, node)`
/// and its bytes digest to `payload`."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// Input-KB digest the cached payload was built from.
    pub input: [u8; 16],
    /// Partitioning-config digest it was built under.
    pub config: [u8; 16],
    /// Node id (partition index) the payload belongs to.
    pub node: u32,
    /// Digest of the cached payload bytes themselves.
    pub payload: [u8; 16],
}

/// Per-worker counters in shippable form; micros instead of `Duration`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Rounds the worker participated in.
    pub rounds: u64,
    /// Triples it derived.
    pub derived: u64,
    /// Triples it sent.
    pub sent: u64,
    /// Triples it received.
    pub received: u64,
    /// Reasoning CPU, microseconds.
    pub reason_micros: u64,
    /// IO (serialize/route/exchange) CPU, microseconds.
    pub io_micros: u64,
    /// Per-round CPU charges, microseconds.
    pub round_cpu_micros: Vec<u64>,
    /// Final local store size.
    pub output_size: u64,
    /// Bytes this worker wrote to its master connection (frame headers
    /// included) — the worker's own view of its wire footprint.
    pub wire_sent_bytes: u64,
    /// Bytes this worker read from its master connection.
    pub wire_recv_bytes: u64,
    /// Messages skipped with a report (v3; lost before then, which is
    /// why merged cluster summaries used to report zero).
    pub skipped: u64,
    /// Transient IO failures absorbed by retrying (v3).
    pub io_retries: u64,
}

impl WireStats {
    /// Rehydrate into the core's stats record for `RunReport` assembly.
    pub fn into_worker_stats(self, id: usize) -> WorkerStats {
        WorkerStats {
            id,
            reason_time: Duration::from_micros(self.reason_micros),
            io_time: Duration::from_micros(self.io_micros),
            round_cpu: self
                .round_cpu_micros
                .iter()
                .map(|&us| Duration::from_micros(us))
                .collect(),
            rounds: self.rounds as usize,
            derived: self.derived as usize,
            sent: self.sent as usize,
            received: self.received as usize,
            output_size: self.output_size as usize,
            skipped: self.skipped as usize,
            io_retries: self.io_retries as usize,
            ..WorkerStats::default()
        }
    }
}

/// Messages a worker sends to the master.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerMsg {
    /// Handshake opener. Byte layout frozen across protocol versions.
    Hello {
        /// Must be [`WIRE_MAGIC`].
        magic: u32,
        /// Must be [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Sent once right after `Welcome`: the shipped-partition cache
    /// entries this worker holds for the master to match against.
    /// An empty advert is valid (no cache, or nothing relevant).
    CacheAdvert {
        /// Entries, at most [`MAX_CACHE_ADVERT`].
        entries: Vec<CacheEntry>,
    },
    /// Fresh derivations routed to worker `to`, part of the current
    /// round (every `Triples` precedes its round's `RoundDone` on the
    /// stream, so the round number is implicit). Large batches split
    /// into several `Triples` frames; the master unions them.
    Triples {
        /// Destination worker.
        to: u32,
        /// The routed triples.
        batch: Vec<Triple>,
    },
    /// This worker finished the round's local work and sends.
    RoundDone {
        /// The round just finished.
        round: u32,
        /// Triples this worker sent this round (termination detector).
        sent: u64,
    },
    /// One bounded chunk of the final store, streamed before `Final`.
    /// Chunks arrive in `seq` order starting at 0.
    FinalChunk {
        /// Chunk sequence number.
        seq: u32,
        /// The chunk's triples.
        batch: Vec<Triple>,
    },
    /// Sent once after a `Stop` verdict: counters + the final store's
    /// tail (everything not already streamed as `FinalChunk`s).
    Final {
        /// The worker's counters.
        stats: WireStats,
        /// Tail of its complete local store.
        store: Vec<Triple>,
    },
    /// One batch of telemetry events (an `owlpar_obs::wire` chunk:
    /// worker clock sample + span/counter events), sent only when the
    /// `Welcome` enabled tracing — immediately before each `RoundDone`
    /// and before `Final`, so the master can align the worker's clock
    /// (offset = min over chunks of receipt − `clock_us`) and merge the
    /// spans into one cluster timeline. Opaque at this layer: the codec
    /// ships bytes, `owlpar_obs::wire` owns the grammar.
    TraceChunk {
        /// An encoded `owlpar_obs::wire` trace chunk.
        payload: Vec<u8>,
    },
}

/// Messages the master sends a worker.
#[derive(Debug, Clone)]
pub enum MasterMsg {
    /// Handshake accept: identity and cluster shape.
    Welcome {
        /// This worker's node id (= partition index).
        node_id: u32,
        /// Cluster size.
        k: u32,
        /// Run epoch — lets a late reconnect from a previous run be told
        /// apart from this run's workers.
        epoch: u64,
        /// True when the master runs with `--trace-out`: record spans
        /// and ship [`WorkerMsg::TraceChunk`] frames.
        trace: bool,
    },
    /// Handshake refusal (version mismatch, cluster already full).
    Reject {
        /// Why.
        reason: String,
    },
    /// The worker's partition of the run plan.
    Setup(Box<Setup>),
    /// One bounded chunk of a round's inbound triples, streamed before
    /// the round's `Deliver` verdict.
    DeliverChunk {
        /// The round the chunk belongs to.
        round: u32,
        /// The chunk's triples.
        batch: Vec<Triple>,
    },
    /// Round verdict + the tail of this worker's inbound triples for
    /// the round (everything not already streamed as `DeliverChunk`s).
    Deliver {
        /// The round this verdict closes.
        round: u32,
        /// True when the run is over (quiescence or a lost worker):
        /// absorb nothing, send `Final`.
        stop: bool,
        /// Tail of the triples routed to this worker this round.
        triples: Vec<Triple>,
    },
}

// ---------------------------------------------------------------------
// body grammar
// ---------------------------------------------------------------------

const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_REJECT: u8 = 3;
const TAG_SETUP: u8 = 4;
const TAG_TRIPLES: u8 = 5;
const TAG_ROUND_DONE: u8 = 6;
const TAG_DELIVER: u8 = 7;
const TAG_FINAL: u8 = 8;
const TAG_CACHE_ADVERT: u8 = 9;
const TAG_FINAL_CHUNK: u8 = 10;
const TAG_DELIVER_CHUNK: u8 = 11;
const TAG_TRACE_CHUNK: u8 = 12;

/// Largest encoded trace chunk the decoder accepts. Generous — a chunk
/// holds one round's spans for one worker, a few dozen events.
const MAX_TRACE_CHUNK: usize = 4 * 1024 * 1024;

/// Longest string field (rule name, reject reason) the decoder accepts.
const MAX_STRING: usize = 64 * 1024;
/// Most rules a setup may carry (far above any real rule-base).
const MAX_RULES: usize = 64 * 1024;
/// Most cache entries one `CacheAdvert` may carry. A worker only ever
/// has entries for partitions it was once shipped, so anything beyond
/// this is garbage, not a big cache.
pub const MAX_CACHE_ADVERT: usize = 4096;

/// Bounds-checked little-endian reader over a message body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                NetError::protocol(format!(
                    "truncated message: wanted {n} more byte(s) at offset {}",
                    self.pos
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// LEB128 varint (shared grammar with the triple-block codec).
    fn varint(&mut self) -> Result<u32, NetError> {
        let (v, next) = get_varint32(self.buf, self.pos).map_err(|e| {
            NetError::protocol(format!("bad varint at offset {}: {e}", self.pos))
        })?;
        self.pos = next;
        Ok(v)
    }

    /// A 128-bit digest field.
    fn digest(&mut self) -> Result<[u8; 16], NetError> {
        let b = self.take(16)?;
        let mut d = [0u8; 16];
        d.copy_from_slice(b);
        Ok(d)
    }

    fn string(&mut self) -> Result<String, NetError> {
        let len = self.u32()? as usize;
        if len > MAX_STRING {
            return Err(NetError::protocol(format!(
                "string field of {len} bytes exceeds the {MAX_STRING}-byte bound"
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| NetError::protocol("string field is not valid UTF-8"))
    }

    /// The decoder consumed the whole body — trailing bytes are a
    /// violation (they would mean sender and receiver disagree on the
    /// grammar).
    fn done(&self) -> Result<(), NetError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(NetError::protocol(format!(
                "{} trailing byte(s) after message body",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append a compact delta/varint triple block (the v2 triple grammar;
/// see `owlpar_core::frame`). Sorts and dedups internally when needed —
/// every cluster data path has set semantics, so the canonical sorted
/// order is free to impose.
fn put_triples(out: &mut Vec<u8>, triples: &[Triple]) {
    out.extend_from_slice(&encode_triple_block(triples));
}

/// Read one compact triple block, validating every id against the
/// dictionary size. Returns the triples in canonical sorted order.
fn get_triples(cur: &mut Cursor<'_>, n_terms: u32) -> Result<Vec<Triple>, NetError> {
    let (triples, consumed) = decode_triple_block(&cur.buf[cur.pos..]).map_err(|e| {
        NetError::protocol(format!("bad triple block at offset {}: {e}", cur.pos))
    })?;
    cur.pos += consumed;
    for t in &triples {
        if t.s.0 >= n_terms || t.p.0 >= n_terms || t.o.0 >= n_terms {
            return Err(NetError::protocol(format!(
                "triple {t} has ids outside the {n_terms}-term dictionary"
            )));
        }
    }
    Ok(triples)
}

fn put_term_pat(out: &mut Vec<u8>, p: &TermPat) {
    match p {
        TermPat::Var(v) => {
            out.push(0);
            put_varint32(out, u32::from(*v));
        }
        TermPat::Const(c) => {
            out.push(1);
            put_varint32(out, c.0);
        }
    }
}

fn get_term_pat(cur: &mut Cursor<'_>, n_terms: u32) -> Result<TermPat, NetError> {
    match cur.u8()? {
        0 => {
            let v = cur.varint()?;
            u16::try_from(v)
                .map(TermPat::Var)
                .map_err(|_| NetError::protocol(format!("variable index {v} exceeds u16")))
        }
        1 => {
            let id = cur.varint()?;
            if id >= n_terms {
                return Err(NetError::protocol(format!(
                    "rule constant {id} outside the {n_terms}-term dictionary"
                )));
            }
            Ok(TermPat::Const(NodeId(id)))
        }
        other => Err(NetError::protocol(format!("unknown term-pattern tag {other}"))),
    }
}

fn put_atom(out: &mut Vec<u8>, a: &Atom) {
    put_term_pat(out, &a.s);
    put_term_pat(out, &a.p);
    put_term_pat(out, &a.o);
}

fn get_atom(cur: &mut Cursor<'_>, n_terms: u32) -> Result<Atom, NetError> {
    Ok(Atom {
        s: get_term_pat(cur, n_terms)?,
        p: get_term_pat(cur, n_terms)?,
        o: get_term_pat(cur, n_terms)?,
    })
}

fn put_rule(out: &mut Vec<u8>, r: &Rule) {
    put_varint32(out, r.name.len() as u32);
    out.extend_from_slice(r.name.as_bytes());
    put_atom(out, &r.head);
    put_varint32(out, r.body.len() as u32);
    for a in &r.body {
        put_atom(out, a);
    }
}

fn get_rule(cur: &mut Cursor<'_>, n_terms: u32) -> Result<Rule, NetError> {
    let name_len = cur.varint()? as usize;
    if name_len > MAX_STRING {
        return Err(NetError::protocol(format!(
            "rule name of {name_len} bytes exceeds the {MAX_STRING}-byte bound"
        )));
    }
    let name = String::from_utf8(cur.take(name_len)?.to_vec())
        .map_err(|_| NetError::protocol("rule name is not valid UTF-8"))?;
    let head = get_atom(cur, n_terms)?;
    let body_len = cur.varint()? as usize;
    if body_len > MAX_RULES {
        return Err(NetError::protocol(format!(
            "rule body of {body_len} atoms exceeds the {MAX_RULES} bound"
        )));
    }
    let mut body = Vec::with_capacity(body_len.min(1 << 10));
    for _ in 0..body_len {
        body.push(get_atom(cur, n_terms)?);
    }
    // Rule::new re-validates (non-empty body, dense variables,
    // range restriction) and recomputes var_count — a rule that was
    // valid at the master decodes to the same rule or not at all.
    Rule::new(name, head, body).map_err(NetError::protocol)
}

fn put_rules(out: &mut Vec<u8>, rules: &[Rule]) {
    put_varint32(out, rules.len() as u32);
    for r in rules {
        put_rule(out, r);
    }
}

fn get_rules(cur: &mut Cursor<'_>, n_terms: u32) -> Result<Vec<Rule>, NetError> {
    let count = cur.varint()? as usize;
    if count > MAX_RULES {
        return Err(NetError::protocol(format!(
            "rule count {count} exceeds the {MAX_RULES} bound"
        )));
    }
    let mut out = Vec::with_capacity(count.min(1 << 10));
    for _ in 0..count {
        out.push(get_rule(cur, n_terms)?);
    }
    Ok(out)
}

/// Encode a worker's rule subset against the full rule-base it rides
/// with: each rule that appears in `all` is written as a 1-biased
/// varint index into it (typically 1–2 bytes instead of tens), and a
/// rule that does not (marker `0`) is inlined verbatim. Under data
/// partitioning `my == all`, so this turns the second full rule-base
/// copy in every `Setup` into a run of small integers.
fn put_rule_refs(out: &mut Vec<u8>, all: &[Rule], my: &[Rule]) {
    put_varint32(out, my.len() as u32);
    for r in my {
        match all.iter().position(|a| a == r) {
            Some(i) => put_varint32(out, i as u32 + 1),
            None => {
                put_varint32(out, 0);
                put_rule(out, r);
            }
        }
    }
}

fn get_rule_refs(cur: &mut Cursor<'_>, all: &[Rule], n_terms: u32) -> Result<Vec<Rule>, NetError> {
    let count = cur.varint()? as usize;
    if count > MAX_RULES {
        return Err(NetError::protocol(format!(
            "rule count {count} exceeds the {MAX_RULES} bound"
        )));
    }
    let mut out = Vec::with_capacity(count.min(1 << 10));
    for _ in 0..count {
        match cur.varint()? as usize {
            0 => out.push(get_rule(cur, n_terms)?),
            i => {
                let rule = all.get(i - 1).ok_or_else(|| {
                    NetError::protocol(format!(
                        "rule reference {} outside the {}-rule base",
                        i - 1,
                        all.len()
                    ))
                })?;
                out.push(rule.clone());
            }
        }
    }
    Ok(out)
}

fn put_materialization(out: &mut Vec<u8>, m: &MaterializationStrategy) {
    let scope_byte = |s: &TableScope| match s {
        TableScope::PerQuery => 0u8,
        TableScope::PerSweep => 1,
        TableScope::None => 2,
    };
    match m {
        MaterializationStrategy::ForwardSemiNaive => {
            out.push(0);
            put_u32(out, 0);
        }
        MaterializationStrategy::ForwardParallel { threads } => {
            out.push(1);
            put_u32(out, *threads as u32);
        }
        MaterializationStrategy::BackwardPerResource(s) => {
            out.push(2);
            put_u32(out, u32::from(scope_byte(s)));
        }
        MaterializationStrategy::BackwardJena(s) => {
            out.push(3);
            put_u32(out, u32::from(scope_byte(s)));
        }
    }
}

fn get_materialization(cur: &mut Cursor<'_>) -> Result<MaterializationStrategy, NetError> {
    let tag = cur.u8()?;
    let param = cur.u32()?;
    let scope = |p: u32| match p {
        0 => Ok(TableScope::PerQuery),
        1 => Ok(TableScope::PerSweep),
        2 => Ok(TableScope::None),
        other => Err(NetError::protocol(format!("unknown table scope {other}"))),
    };
    match tag {
        0 => Ok(MaterializationStrategy::ForwardSemiNaive),
        1 => Ok(MaterializationStrategy::ForwardParallel {
            threads: param as usize,
        }),
        2 => Ok(MaterializationStrategy::BackwardPerResource(scope(param)?)),
        3 => Ok(MaterializationStrategy::BackwardJena(scope(param)?)),
        other => Err(NetError::protocol(format!(
            "unknown materialization tag {other}"
        ))),
    }
}

/// Delta/varint-encode an ownership table. Node ids are sorted (the
/// table is a map, so order carries no information) and stored as
/// first-absolute-then-`gap-1` varints — consecutive ids cost one byte
/// each instead of four; worker ids are varints (tiny in practice).
fn put_owner(out: &mut Vec<u8>, owner: &[(NodeId, u32)]) {
    let sorted: Vec<(NodeId, u32)>;
    let pairs: &[(NodeId, u32)] = if owner.windows(2).all(|w| w[0].0 < w[1].0) {
        owner
    } else {
        let mut v = owner.to_vec();
        v.sort_unstable_by_key(|p| p.0);
        // The table comes from a map, so duplicate nodes cannot carry
        // conflicting owners; collapse exact repeats defensively.
        v.dedup_by_key(|p| p.0);
        sorted = v;
        &sorted
    };
    put_varint32(out, pairs.len() as u32);
    let mut prev = 0u32;
    for (i, (node, w)) in pairs.iter().enumerate() {
        let delta = if i == 0 { node.0 } else { node.0 - prev - 1 };
        put_varint32(out, delta);
        put_varint32(out, *w);
        prev = node.0;
    }
}

fn get_owner(cur: &mut Cursor<'_>, n_terms: u32, k: u32) -> Result<Vec<(NodeId, u32)>, NetError> {
    let count = cur.varint()? as usize;
    // ≥ 2 bytes per pair must fit in what remains — refuse the count
    // before allocating for it.
    if count > cur.buf.len().saturating_sub(cur.pos) {
        return Err(NetError::protocol(format!(
            "ownership table claims {count} entries with {} byte(s) left",
            cur.buf.len() - cur.pos
        )));
    }
    let mut out = Vec::with_capacity(count.min(1 << 20));
    let mut prev = 0u32;
    for i in 0..count {
        let delta = cur.varint()?;
        let node = if i == 0 {
            delta
        } else {
            prev.checked_add(1)
                .and_then(|n| n.checked_add(delta))
                .ok_or_else(|| {
                    NetError::protocol(format!("ownership delta {delta} overflows past node {prev}"))
                })?
        };
        let w = cur.varint()?;
        if node >= n_terms {
            return Err(NetError::protocol(format!(
                "ownership entry for node {node} outside the {n_terms}-term dictionary"
            )));
        }
        if w >= k {
            return Err(NetError::protocol(format!(
                "ownership entry assigns node {node} to worker {w} of {k}"
            )));
        }
        out.push((NodeId(node), w));
        prev = node;
    }
    Ok(out)
}

fn put_assignment(out: &mut Vec<u8>, assignment: &[u32]) {
    put_varint32(out, assignment.len() as u32);
    for &a in assignment {
        put_varint32(out, a);
    }
}

fn get_assignment(cur: &mut Cursor<'_>, parts: u32) -> Result<Vec<u32>, NetError> {
    let count = cur.varint()? as usize;
    if count > MAX_RULES {
        return Err(NetError::protocol(format!(
            "assignment length {count} exceeds the {MAX_RULES} bound"
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let a = cur.varint()?;
        if a >= parts {
            return Err(NetError::protocol(format!(
                "assignment entry {a} outside 0..{parts}"
            )));
        }
        out.push(a);
    }
    Ok(out)
}

fn put_routing(out: &mut Vec<u8>, r: &WireRouting) {
    match r {
        WireRouting::Data { owner } => {
            out.push(0);
            put_owner(out, owner);
        }
        WireRouting::Rule { k, assignment } => {
            out.push(1);
            put_u32(out, *k);
            put_assignment(out, assignment);
        }
        WireRouting::Hybrid {
            owner,
            groups_k,
            groups_assignment,
            data_shards,
        } => {
            out.push(2);
            put_u32(out, *data_shards);
            put_owner(out, owner);
            put_u32(out, *groups_k);
            put_assignment(out, groups_assignment);
        }
    }
}

fn get_routing(cur: &mut Cursor<'_>, n_terms: u32, k: u32) -> Result<WireRouting, NetError> {
    match cur.u8()? {
        0 => Ok(WireRouting::Data {
            owner: get_owner(cur, n_terms, k)?,
        }),
        1 => {
            let parts = cur.u32()?;
            Ok(WireRouting::Rule {
                k: parts,
                assignment: get_assignment(cur, parts)?,
            })
        }
        2 => {
            let data_shards = cur.u32()?;
            if data_shards == 0 {
                return Err(NetError::protocol("hybrid routing with zero data shards"));
            }
            let owner = get_owner(cur, n_terms, data_shards)?;
            let groups_k = cur.u32()?;
            Ok(WireRouting::Hybrid {
                owner,
                groups_k,
                groups_assignment: get_assignment(cur, groups_k)?,
                data_shards,
            })
        }
        other => Err(NetError::protocol(format!("unknown routing tag {other}"))),
    }
}

fn put_stats(out: &mut Vec<u8>, s: &WireStats) {
    put_u64(out, s.rounds);
    put_u64(out, s.derived);
    put_u64(out, s.sent);
    put_u64(out, s.received);
    put_u64(out, s.reason_micros);
    put_u64(out, s.io_micros);
    put_u32(out, s.round_cpu_micros.len() as u32);
    for &us in &s.round_cpu_micros {
        put_u64(out, us);
    }
    put_u64(out, s.output_size);
    put_u64(out, s.wire_sent_bytes);
    put_u64(out, s.wire_recv_bytes);
    put_u64(out, s.skipped);
    put_u64(out, s.io_retries);
}

fn get_stats(cur: &mut Cursor<'_>) -> Result<WireStats, NetError> {
    let rounds = cur.u64()?;
    let derived = cur.u64()?;
    let sent = cur.u64()?;
    let received = cur.u64()?;
    let reason_micros = cur.u64()?;
    let io_micros = cur.u64()?;
    let n = cur.u32()? as usize;
    if n > 1 << 20 {
        return Err(NetError::protocol(format!("round_cpu list of {n} entries")));
    }
    let mut round_cpu_micros = Vec::with_capacity(n);
    for _ in 0..n {
        round_cpu_micros.push(cur.u64()?);
    }
    Ok(WireStats {
        rounds,
        derived,
        sent,
        received,
        reason_micros,
        io_micros,
        round_cpu_micros,
        output_size: cur.u64()?,
        wire_sent_bytes: cur.u64()?,
        wire_recv_bytes: cur.u64()?,
        skipped: cur.u64()?,
        io_retries: cur.u64()?,
    })
}

/// Encode a [`SetupPayload`] into its canonical blob: deterministic
/// byte-for-byte given the same logical content (triple blocks are
/// sorted, ownership tables are sorted), so equal payloads digest
/// equally across runs — the property the partition cache keys on.
pub fn encode_setup_payload(p: &SetupPayload) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, p.n_terms);
    put_materialization(&mut out, &p.materialization);
    put_triples(&mut out, &p.schema);
    put_triples(&mut out, &p.base);
    put_rules(&mut out, &p.all_rules);
    put_rule_refs(&mut out, &p.all_rules, &p.my_rules);
    put_routing(&mut out, &p.routing);
    out
}

/// Exact byte count the **v1** wire format would have needed to ship
/// this payload: raw 12-byte triple records with a `u32` count, 8-byte
/// ownership pairs, fixed 5-byte atom terms, `u32` string lengths, and
/// both rule lists in full (v1 had no rule references and no partition
/// cache, so every run pays this price again). This is the honest
/// baseline the wire accounting reports compression against.
pub fn v1_setup_payload_cost(p: &SetupPayload) -> u64 {
    let atom = 3 * (1 + 4) as u64;
    let rule = |r: &Rule| 4 + r.name.len() as u64 + atom + 2 + atom * r.body.len() as u64;
    let rules = |rs: &[Rule]| 4 + rs.iter().map(rule).sum::<u64>();
    let owner = |pairs: usize| 4 + 8 * pairs as u64;
    let assignment = |len: usize| 4 + 4 * len as u64;
    let routing = match &p.routing {
        WireRouting::Data { owner: o } => 1 + owner(o.len()),
        WireRouting::Rule { assignment: a, .. } => 1 + 4 + assignment(a.len()),
        WireRouting::Hybrid {
            owner: o,
            groups_assignment: a,
            ..
        } => 1 + 4 + owner(o.len()) + 4 + assignment(a.len()),
    };
    let mut mat = Vec::new();
    put_materialization(&mut mat, &p.materialization);
    4 + mat.len() as u64
        + (4 + 12 * p.schema.len() as u64)
        + (4 + 12 * p.base.len() as u64)
        + rules(&p.all_rules)
        + rules(&p.my_rules)
        + routing
}

/// Decode (and fully validate) a [`SetupPayload`] blob — whether it
/// arrived on the wire or was loaded from the on-disk cache, it passes
/// through exactly this checking.
pub fn decode_setup_payload(bytes: &[u8]) -> Result<SetupPayload, NetError> {
    let mut cur = Cursor::new(bytes);
    let n_terms = cur.u32()?;
    let materialization = get_materialization(&mut cur)?;
    let schema = get_triples(&mut cur, n_terms)?;
    let base = get_triples(&mut cur, n_terms)?;
    let all_rules = get_rules(&mut cur, n_terms)?;
    let my_rules = get_rule_refs(&mut cur, &all_rules, n_terms)?;
    let routing = get_routing(&mut cur, n_terms, u32::MAX)?;
    cur.done()?;
    Ok(SetupPayload {
        n_terms,
        materialization,
        schema,
        base,
        all_rules,
        my_rules,
        routing,
    })
}

/// Encode a worker→master message body.
pub fn encode_worker_msg(m: &WorkerMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match m {
        WorkerMsg::Hello { magic, version } => {
            out.push(TAG_HELLO);
            put_u32(&mut out, *magic);
            put_u32(&mut out, *version);
        }
        WorkerMsg::CacheAdvert { entries } => {
            out.push(TAG_CACHE_ADVERT);
            put_u32(&mut out, entries.len() as u32);
            for e in entries {
                out.extend_from_slice(&e.input);
                out.extend_from_slice(&e.config);
                put_u32(&mut out, e.node);
                out.extend_from_slice(&e.payload);
            }
        }
        WorkerMsg::Triples { to, batch } => {
            out.push(TAG_TRIPLES);
            put_u32(&mut out, *to);
            put_triples(&mut out, batch);
        }
        WorkerMsg::RoundDone { round, sent } => {
            out.push(TAG_ROUND_DONE);
            put_u32(&mut out, *round);
            put_u64(&mut out, *sent);
        }
        WorkerMsg::FinalChunk { seq, batch } => {
            out.push(TAG_FINAL_CHUNK);
            put_u32(&mut out, *seq);
            put_triples(&mut out, batch);
        }
        WorkerMsg::Final { stats, store } => {
            out.push(TAG_FINAL);
            put_stats(&mut out, stats);
            put_triples(&mut out, store);
        }
        WorkerMsg::TraceChunk { payload } => {
            out.push(TAG_TRACE_CHUNK);
            put_u32(&mut out, payload.len() as u32);
            out.extend_from_slice(payload);
        }
    }
    out
}

/// Decode a worker→master message body. `n_terms` is the master's
/// dictionary size; every triple id is validated against it.
pub fn decode_worker_msg(body: &[u8], n_terms: u32) -> Result<WorkerMsg, NetError> {
    let mut cur = Cursor::new(body);
    let msg = match cur.u8()? {
        TAG_HELLO => WorkerMsg::Hello {
            magic: cur.u32()?,
            version: cur.u32()?,
        },
        TAG_CACHE_ADVERT => {
            let count = cur.u32()? as usize;
            if count > MAX_CACHE_ADVERT {
                return Err(NetError::protocol(format!(
                    "cache advert of {count} entries exceeds the {MAX_CACHE_ADVERT} bound"
                )));
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push(CacheEntry {
                    input: cur.digest()?,
                    config: cur.digest()?,
                    node: cur.u32()?,
                    payload: cur.digest()?,
                });
            }
            WorkerMsg::CacheAdvert { entries }
        }
        TAG_TRIPLES => WorkerMsg::Triples {
            to: cur.u32()?,
            batch: get_triples(&mut cur, n_terms)?,
        },
        TAG_ROUND_DONE => WorkerMsg::RoundDone {
            round: cur.u32()?,
            sent: cur.u64()?,
        },
        TAG_FINAL_CHUNK => WorkerMsg::FinalChunk {
            seq: cur.u32()?,
            batch: get_triples(&mut cur, n_terms)?,
        },
        TAG_FINAL => WorkerMsg::Final {
            stats: get_stats(&mut cur)?,
            store: get_triples(&mut cur, n_terms)?,
        },
        TAG_TRACE_CHUNK => {
            let len = cur.u32()? as usize;
            if len > MAX_TRACE_CHUNK {
                return Err(NetError::protocol(format!(
                    "trace chunk of {len} bytes exceeds the {MAX_TRACE_CHUNK}-byte bound"
                )));
            }
            WorkerMsg::TraceChunk {
                payload: cur.take(len)?.to_vec(),
            }
        }
        other => return Err(NetError::protocol(format!("unknown worker message tag {other}"))),
    };
    cur.done()?;
    Ok(msg)
}

/// Encode a master→worker message body.
pub fn encode_master_msg(m: &MasterMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match m {
        MasterMsg::Welcome {
            node_id,
            k,
            epoch,
            trace,
        } => {
            out.push(TAG_WELCOME);
            put_u32(&mut out, *node_id);
            put_u32(&mut out, *k);
            put_u64(&mut out, *epoch);
            out.push(u8::from(*trace));
        }
        MasterMsg::Reject { reason } => {
            out.push(TAG_REJECT);
            put_string(&mut out, reason);
        }
        MasterMsg::Setup(s) => {
            out.push(TAG_SETUP);
            out.extend_from_slice(&s.input_digest);
            out.extend_from_slice(&s.config_digest);
            out.extend_from_slice(&s.payload_digest);
            put_u64(&mut out, s.round_timeout_ms);
            put_u32(&mut out, s.faults.len() as u32);
            for (round, fault) in &s.faults {
                put_u32(&mut out, *round);
                match fault {
                    WireFault::Panic => {
                        out.push(0);
                        put_u64(&mut out, 0);
                    }
                    WireFault::Disconnect => {
                        out.push(1);
                        put_u64(&mut out, 0);
                    }
                    WireFault::Delay { millis } => {
                        out.push(2);
                        put_u64(&mut out, *millis);
                    }
                }
            }
            match &s.payload {
                Some(blob) => {
                    out.push(1);
                    put_u32(&mut out, blob.len() as u32);
                    out.extend_from_slice(blob);
                }
                None => out.push(0),
            }
        }
        MasterMsg::DeliverChunk { round, batch } => {
            out.push(TAG_DELIVER_CHUNK);
            put_u32(&mut out, *round);
            put_triples(&mut out, batch);
        }
        MasterMsg::Deliver {
            round,
            stop,
            triples,
        } => {
            out.push(TAG_DELIVER);
            put_u32(&mut out, *round);
            out.push(u8::from(*stop));
            put_triples(&mut out, triples);
        }
    }
    out
}

/// Decode a master→worker message body. `n_terms` bounds triple ids in
/// `Deliver`/`DeliverChunk`; a `Setup` payload carries (and is
/// validated against) its own. During the handshake — before any
/// `Setup` — pass the value from the `Setup` once known, or `u32::MAX`
/// to accept any id (the handshake messages carry no triples).
pub fn decode_master_msg(body: &[u8], n_terms: u32) -> Result<MasterMsg, NetError> {
    let mut cur = Cursor::new(body);
    let msg = match cur.u8()? {
        TAG_WELCOME => MasterMsg::Welcome {
            node_id: cur.u32()?,
            k: cur.u32()?,
            epoch: cur.u64()?,
            trace: cur.u8()? != 0,
        },
        TAG_REJECT => MasterMsg::Reject {
            reason: cur.string()?,
        },
        TAG_SETUP => {
            let input_digest = cur.digest()?;
            let config_digest = cur.digest()?;
            let payload_digest = cur.digest()?;
            let round_timeout_ms = cur.u64()?;
            let n_faults = cur.u32()? as usize;
            if n_faults > 1 << 16 {
                return Err(NetError::protocol(format!("{n_faults} fault entries")));
            }
            let mut faults = Vec::with_capacity(n_faults);
            for _ in 0..n_faults {
                let round = cur.u32()?;
                let tag = cur.u8()?;
                let param = cur.u64()?;
                let fault = match tag {
                    0 => WireFault::Panic,
                    1 => WireFault::Disconnect,
                    2 => WireFault::Delay { millis: param },
                    other => {
                        return Err(NetError::protocol(format!("unknown fault tag {other}")))
                    }
                };
                faults.push((round, fault));
            }
            let payload = match cur.u8()? {
                0 => None,
                1 => {
                    let len = cur.u32()? as usize;
                    Some(cur.take(len)?.to_vec())
                }
                other => {
                    return Err(NetError::protocol(format!(
                        "unknown setup payload marker {other}"
                    )))
                }
            };
            MasterMsg::Setup(Box::new(Setup {
                input_digest,
                config_digest,
                payload_digest,
                round_timeout_ms,
                faults,
                payload,
            }))
        }
        TAG_DELIVER_CHUNK => MasterMsg::DeliverChunk {
            round: cur.u32()?,
            batch: get_triples(&mut cur, n_terms)?,
        },
        TAG_DELIVER => MasterMsg::Deliver {
            round: cur.u32()?,
            stop: cur.u8()? != 0,
            triples: get_triples(&mut cur, n_terms)?,
        },
        other => return Err(NetError::protocol(format!("unknown master message tag {other}"))),
    };
    cur.done()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_core::digest128;
    use owlpar_datalog::ast::build::{atom, c, v};

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    fn rules() -> Vec<Rule> {
        vec![
            Rule::new(
                "p2q",
                atom(v(0), c(NodeId(9)), v(1)),
                vec![atom(v(0), c(NodeId(8)), v(1))],
            )
            .unwrap(),
            Rule::new(
                "join",
                atom(v(0), c(NodeId(7)), v(2)),
                vec![
                    atom(v(0), c(NodeId(8)), v(1)),
                    atom(v(1), c(NodeId(8)), v(2)),
                ],
            )
            .unwrap(),
        ]
    }

    fn payload() -> SetupPayload {
        SetupPayload {
            n_terms: 10,
            materialization: MaterializationStrategy::ForwardSemiNaive,
            schema: vec![t(0, 1, 2)],
            base: vec![t(3, 4, 5), t(6, 7, 8)],
            all_rules: rules(),
            my_rules: rules()[..1].to_vec(),
            routing: WireRouting::Data {
                owner: vec![(NodeId(3), 0), (NodeId(6), 1)],
            },
        }
    }

    fn setup_with(blob: Option<Vec<u8>>, digest: [u8; 16]) -> Setup {
        Setup {
            input_digest: digest128(b"input"),
            config_digest: digest128(b"config"),
            payload_digest: digest,
            round_timeout_ms: 30_000,
            faults: vec![(1, WireFault::Disconnect), (2, WireFault::Delay { millis: 5 })],
            payload: blob,
        }
    }

    #[test]
    fn worker_messages_roundtrip() {
        let msgs = [
            WorkerMsg::Hello {
                magic: WIRE_MAGIC,
                version: PROTOCOL_VERSION,
            },
            WorkerMsg::CacheAdvert {
                entries: vec![CacheEntry {
                    input: digest128(b"in"),
                    config: digest128(b"cfg"),
                    node: 3,
                    payload: digest128(b"blob"),
                }],
            },
            WorkerMsg::CacheAdvert { entries: vec![] },
            WorkerMsg::Triples {
                to: 3,
                batch: vec![t(1, 2, 3), t(4, 5, 6)],
            },
            WorkerMsg::RoundDone { round: 7, sent: 99 },
            WorkerMsg::FinalChunk {
                seq: 2,
                batch: vec![t(0, 0, 1), t(0, 0, 2)],
            },
            WorkerMsg::Final {
                stats: WireStats {
                    rounds: 4,
                    derived: 100,
                    sent: 20,
                    received: 30,
                    reason_micros: 1234,
                    io_micros: 56,
                    round_cpu_micros: vec![10, 20, 30],
                    output_size: 500,
                    wire_sent_bytes: 4096,
                    wire_recv_bytes: 8192,
                    skipped: 2,
                    io_retries: 5,
                },
                store: vec![t(0, 1, 2)],
            },
            WorkerMsg::TraceChunk {
                payload: vec![0x01, 0x02, 0x03],
            },
        ];
        for m in msgs {
            let body = encode_worker_msg(&m);
            assert_eq!(decode_worker_msg(&body, 10).unwrap(), m);
        }
    }

    #[test]
    fn setup_payload_roundtrips_through_canonical_blob() {
        let p = payload();
        let blob = encode_setup_payload(&p);
        let got = decode_setup_payload(&blob).unwrap();
        assert_eq!(got.n_terms, p.n_terms);
        assert_eq!(got.schema, p.schema);
        assert_eq!(got.base, p.base);
        assert_eq!(got.all_rules, p.all_rules);
        assert_eq!(got.my_rules, p.my_rules);
        assert_eq!(got.routing, p.routing);
        // Canonical: re-encoding the decode reproduces the bytes, so
        // the digest is stable across ship → decode → re-encode.
        assert_eq!(encode_setup_payload(&got), blob);
    }

    #[test]
    fn setup_blob_encoding_is_order_independent() {
        let mut shuffled = payload();
        shuffled.base.reverse();
        if let WireRouting::Data { owner } = &mut shuffled.routing {
            owner.reverse();
        }
        assert_eq!(encode_setup_payload(&payload()), encode_setup_payload(&shuffled));
    }

    #[test]
    fn my_rules_ship_as_references_not_copies() {
        // With `my == all` (data partitioning), the second rule list
        // must cost ~1 varint per rule, not a full re-encoding.
        let mut p = payload();
        p.my_rules = p.all_rules.clone();
        let with_refs = encode_setup_payload(&p).len();
        p.my_rules = vec![];
        let without = encode_setup_payload(&p).len();
        assert!(
            with_refs <= without + 2 * rules().len() + 1,
            "{} rules cost {} extra bytes",
            rules().len(),
            with_refs - without
        );
    }

    #[test]
    fn my_rule_outside_the_base_is_inlined_and_roundtrips() {
        let mut p = payload();
        p.my_rules = vec![Rule::new(
            "local-only",
            atom(v(0), c(NodeId(5)), v(1)),
            vec![atom(v(0), c(NodeId(4)), v(1))],
        )
        .unwrap()];
        assert!(!p.all_rules.contains(&p.my_rules[0]));
        let blob = encode_setup_payload(&p);
        let got = decode_setup_payload(&blob).unwrap();
        assert_eq!(got.my_rules, p.my_rules);
        assert_eq!(encode_setup_payload(&got), blob);
    }

    #[test]
    fn rule_reference_outside_the_base_is_rejected() {
        let all = rules();
        let mut buf = Vec::new();
        put_varint32(&mut buf, 1); // one rule...
        put_varint32(&mut buf, all.len() as u32 + 1); // ...past the base
        let err = get_rule_refs(&mut Cursor::new(&buf), &all, 10).unwrap_err();
        assert!(err.to_string().contains("rule reference"), "{err}");
    }

    #[test]
    fn master_messages_roundtrip() {
        let blob = encode_setup_payload(&payload());
        let digest = digest128(&blob);
        for wire_payload in [Some(blob.clone()), None] {
            let setup = setup_with(wire_payload.clone(), digest);
            let body = encode_master_msg(&MasterMsg::Setup(Box::new(setup.clone())));
            let MasterMsg::Setup(got) = decode_master_msg(&body, u32::MAX).unwrap() else {
                panic!("wrong variant");
            };
            assert_eq!(got.input_digest, setup.input_digest);
            assert_eq!(got.config_digest, setup.config_digest);
            assert_eq!(got.payload_digest, digest);
            assert_eq!(got.faults, setup.faults);
            assert_eq!(got.payload, wire_payload);
        }

        let body = encode_master_msg(&MasterMsg::Deliver {
            round: 3,
            stop: true,
            triples: vec![t(1, 2, 3)],
        });
        let MasterMsg::Deliver { round, stop, triples } =
            decode_master_msg(&body, 10).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!((round, stop, triples), (3, true, vec![t(1, 2, 3)]));

        let body = encode_master_msg(&MasterMsg::DeliverChunk {
            round: 5,
            batch: vec![t(1, 2, 3), t(1, 2, 4)],
        });
        let MasterMsg::DeliverChunk { round, batch } = decode_master_msg(&body, 10).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!((round, batch), (5, vec![t(1, 2, 3), t(1, 2, 4)]));
    }

    #[test]
    fn rule_and_hybrid_routing_roundtrip() {
        for routing in [
            WireRouting::Rule {
                k: 3,
                assignment: vec![0, 2, 1],
            },
            WireRouting::Hybrid {
                owner: vec![(NodeId(1), 0)],
                groups_k: 2,
                groups_assignment: vec![0, 1],
                data_shards: 2,
            },
        ] {
            let mut out = Vec::new();
            put_routing(&mut out, &routing);
            let mut cur = Cursor::new(&out);
            assert_eq!(get_routing(&mut cur, 10, u32::MAX).unwrap(), routing);
            cur.done().unwrap();
        }
    }

    #[test]
    fn owner_table_delta_encoding_sorts_and_compresses() {
        // Unsorted input encodes to the same bytes as sorted input...
        let sorted: Vec<(NodeId, u32)> = (0..1000u32).map(|n| (NodeId(n), n % 4)).collect();
        let mut reversed = sorted.clone();
        reversed.reverse();
        let mut a = Vec::new();
        let mut b = Vec::new();
        put_owner(&mut a, &sorted);
        put_owner(&mut b, &reversed);
        assert_eq!(a, b);
        // ...decodes back to the sorted table...
        let mut cur = Cursor::new(&a);
        assert_eq!(get_owner(&mut cur, 1000, 4).unwrap(), sorted);
        cur.done().unwrap();
        // ...and a dense table costs ~2 bytes/pair, not 8.
        assert!(
            a.len() < 3 * sorted.len(),
            "dense owner table took {} bytes for {} pairs",
            a.len(),
            sorted.len()
        );
    }

    #[test]
    fn owner_table_rejects_overflowing_delta() {
        let mut out = Vec::new();
        put_varint32(&mut out, 2); // two entries
        put_varint32(&mut out, u32::MAX - 1); // node u32::MAX - 1
        put_varint32(&mut out, 0); // worker 0
        put_varint32(&mut out, 1); // gap ⇒ node u32::MAX + 1: overflow
        put_varint32(&mut out, 0);
        let mut cur = Cursor::new(&out);
        let err = get_owner(&mut cur, u32::MAX, 4).unwrap_err();
        assert!(err.to_string().contains("overflow"), "got: {err}");
    }

    #[test]
    fn owner_table_count_is_bounds_checked_before_allocation() {
        let mut out = Vec::new();
        put_varint32(&mut out, u32::MAX); // claims 4G entries, no bytes follow
        let mut cur = Cursor::new(&out);
        let err = get_owner(&mut cur, 10, 2).unwrap_err();
        assert!(err.to_string().contains("claims"), "got: {err}");
    }

    #[test]
    fn out_of_dictionary_ids_are_protocol_violations() {
        let body = encode_worker_msg(&WorkerMsg::Triples {
            to: 0,
            batch: vec![t(1, 2, 999)],
        });
        let err = decode_worker_msg(&body, 10).unwrap_err();
        assert!(matches!(err, NetError::Protocol { .. }));
        assert!(err.to_string().contains("dictionary"));
    }

    #[test]
    fn truncation_at_every_cut_is_rejected_not_panicking() {
        let blob = encode_setup_payload(&SetupPayload {
            n_terms: 10,
            materialization: MaterializationStrategy::ForwardParallel { threads: 2 },
            schema: vec![t(0, 1, 2)],
            base: vec![t(3, 4, 5)],
            all_rules: rules(),
            my_rules: rules(),
            routing: WireRouting::Rule {
                k: 2,
                assignment: vec![0, 1],
            },
        });
        let body = encode_master_msg(&MasterMsg::Setup(Box::new(setup_with(
            Some(blob.clone()),
            digest128(&blob),
        ))));
        for cut in 0..body.len() {
            let err = decode_master_msg(&body[..cut], u32::MAX).unwrap_err();
            assert!(
                matches!(err, NetError::Protocol { .. }),
                "cut at {cut} must be a protocol error, got {err}"
            );
        }
        // The payload blob decoder is equally truncation-proof (the
        // cache load path feeds it bytes that never crossed the wire).
        for cut in 0..blob.len() {
            let err = decode_setup_payload(&blob[..cut]).unwrap_err();
            assert!(
                matches!(err, NetError::Protocol { .. }),
                "payload cut at {cut} must be a protocol error, got {err}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut body = encode_worker_msg(&WorkerMsg::RoundDone { round: 0, sent: 0 });
        body.push(0xaa);
        let err = decode_worker_msg(&body, 10).unwrap_err();
        assert!(err.to_string().contains("trailing"));
        let mut blob = encode_setup_payload(&payload());
        blob.push(0xaa);
        assert!(decode_setup_payload(&blob).unwrap_err().to_string().contains("trailing"));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(decode_worker_msg(&[0xfe], 10).is_err());
        assert!(decode_master_msg(&[0xfe], 10).is_err());
        assert!(decode_worker_msg(&[], 10).is_err(), "empty body");
    }

    #[test]
    fn oversized_string_is_rejected_before_allocation() {
        let mut body = vec![TAG_REJECT];
        put_u32(&mut body, u32::MAX); // claims a 4 GiB reason
        let err = decode_master_msg(&body, 10).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn oversized_cache_advert_is_rejected() {
        let mut body = vec![TAG_CACHE_ADVERT];
        put_u32(&mut body, (MAX_CACHE_ADVERT + 1) as u32);
        let err = decode_worker_msg(&body, 10).unwrap_err();
        assert!(err.to_string().contains("bound"), "got: {err}");
    }

    #[test]
    fn ownership_bounds_are_validated() {
        // worker id out of range
        let mut out = vec![0u8]; // Data routing tag
        put_varint32(&mut out, 1); // one pair
        put_varint32(&mut out, 3); // node 3 (< n_terms)
        put_varint32(&mut out, 9); // worker 9 of k=2
        let mut cur = Cursor::new(&out);
        assert!(get_routing(&mut cur, 10, 2).is_err());
    }

    /// The v1 `Hello` body (`tag | magic | version`) must keep decoding
    /// under v2 — a version mismatch has to surface as a typed `Reject`,
    /// which requires both sides to parse each other's opener.
    #[test]
    fn v1_hello_layout_still_decodes() {
        let mut body = vec![TAG_HELLO];
        put_u32(&mut body, WIRE_MAGIC);
        put_u32(&mut body, 1); // a v1 peer's version field
        let WorkerMsg::Hello { magic, version } = decode_worker_msg(&body, 0).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!((magic, version), (WIRE_MAGIC, 1));
    }

    /// Compact triple blocks actually shrink a dense batch on the wire.
    #[test]
    fn triples_message_is_compact_for_dense_batches() {
        let batch: Vec<Triple> = (0..2000u32).map(|i| t(i / 50, 3, 10 + i % 50)).collect();
        let body = encode_worker_msg(&WorkerMsg::Triples {
            to: 0,
            batch: batch.clone(),
        });
        assert!(
            body.len() * 3 < batch.len() * 12,
            "compact batch of {} triples took {} bytes (raw would be {})",
            batch.len(),
            body.len(),
            batch.len() * 12
        );
        let WorkerMsg::Triples { batch: got, .. } = decode_worker_msg(&body, 4000).unwrap()
        else {
            panic!("wrong variant");
        };
        let mut sorted = batch;
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(got, sorted);
    }
}
