//! The cluster bootstrap + round protocol: typed messages and their wire
//! codecs.
//!
//! Every message travels as one CRC frame (`owlpar_core::frame`:
//! `len | crc32 | body`), so torn or bit-flipped frames are rejected at
//! the framing layer before any of these decoders run. The body grammar
//! is a tag byte followed by little-endian fields; every length field is
//! bounds-checked against the remaining buffer *before* allocation, and
//! every triple id is validated against the run's dictionary size — a
//! frame that passes CRC but decodes to nonsense is a protocol violation
//! (the stream cannot be resynchronized), not a skippable message.
//!
//! ```text
//! worker → master:  Hello | Triples* RoundDone | Final
//! master → worker:  Welcome | Reject | Setup | Deliver
//! ```
//!
//! The bootstrap handshake is versioned: `Hello` carries [`WIRE_MAGIC`]
//! and [`PROTOCOL_VERSION`]; a master that cannot serve that version
//! answers `Reject` and aborts the run before any partition ships.

use owlpar_core::{FrameError, RunError, WorkerStats};
use owlpar_datalog::backward::TableScope;
use owlpar_datalog::{Atom, MaterializationStrategy, Rule, TermPat};
use owlpar_rdf::triple::{decode_batch, encode_batch};
use owlpar_rdf::{NodeId, Triple};
use std::time::Duration;

/// `"OWLP"` — first field of every `Hello`.
pub const WIRE_MAGIC: u32 = 0x4F57_4C50;

/// Version of the cluster wire protocol. Bumped on any incompatible
/// change to the message grammar; the handshake refuses mismatches.
pub const PROTOCOL_VERSION: u32 = 1;

/// Anything that can go wrong running the cluster.
#[derive(Debug)]
pub enum NetError {
    /// Socket trouble (connect, accept, read, write).
    Io(std::io::Error),
    /// A frame violated the shared framing layer (bad length, bad CRC).
    Frame(FrameError),
    /// A CRC-valid frame decoded to something that is not a valid
    /// message (unknown tag, truncated field, out-of-dictionary id,
    /// wrong round number). The connection is unusable.
    Protocol {
        /// What was wrong.
        detail: String,
    },
    /// The bootstrap handshake failed: version mismatch, a rejected
    /// `Hello`, or the cluster never assembled within the deadline.
    Handshake {
        /// Why bootstrap was refused.
        detail: String,
    },
    /// The run itself failed with a structured core error (lint gate,
    /// bad config, unrecovered worker losses).
    Run(RunError),
    /// An injected fault ([`owlpar_core::FaultKind::Disconnect`] /
    /// `Panic`) killed this worker on schedule — the expected outcome of
    /// a chaos run, kept distinct from organic failures.
    Injected {
        /// Round at which the fault fired.
        round: usize,
        /// Which fault kind fired.
        kind: &'static str,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Frame(e) => write!(f, "bad frame: {e}"),
            NetError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            NetError::Handshake { detail } => write!(f, "handshake failed: {detail}"),
            NetError::Run(e) => write!(f, "run failed: {e}"),
            NetError::Injected { round, kind } => {
                write!(f, "injected {kind} fault fired at round {round}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Frame(e) => Some(e),
            NetError::Run(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<RunError> for NetError {
    fn from(e: RunError) -> Self {
        NetError::Run(e)
    }
}

impl NetError {
    pub(crate) fn protocol(detail: impl Into<String>) -> Self {
        NetError::Protocol {
            detail: detail.into(),
        }
    }
}

/// A fault the master ships to the worker it targets. Only the
/// worker-level kinds travel — transport-level IO/corruption injection
/// stays inside the in-process fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Panic at the start of the round (the worker process dies loudly).
    Panic,
    /// Close the master connection at the start of the round and exit.
    Disconnect,
    /// Sleep before the round's sends (a slow peer; exercises the
    /// master's deadline patience without killing anyone).
    Delay {
        /// Wall-clock delay in milliseconds.
        millis: u64,
    },
}

/// A routing table in shippable form — the wire image of
/// [`owlpar_core::worker::Routing`], minus the `Arc`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRouting {
    /// Data partitioning: the ownership table.
    Data {
        /// `(node, owning worker)` pairs.
        owner: Vec<(NodeId, u32)>,
    },
    /// Rule partitioning: the rule→partition assignment.
    Rule {
        /// Number of partitions.
        k: u32,
        /// Partition id per rule index (into the shipped `all_rules`).
        assignment: Vec<u32>,
    },
    /// Hybrid: ownership over shards × rule grouping.
    Hybrid {
        /// `(node, owning shard)` pairs (shard ids `0..data_shards`).
        owner: Vec<(NodeId, u32)>,
        /// Number of rule groups.
        groups_k: u32,
        /// Group id per rule index.
        groups_assignment: Vec<u32>,
        /// Number of data shards.
        data_shards: u32,
    },
}

/// Everything a worker needs before round 0 — the cluster image of the
/// master's [`owlpar_core::RunPlan`] slice for one worker.
#[derive(Debug, Clone)]
pub struct Setup {
    /// Size of the master's frozen dictionary; every triple id in every
    /// later frame must be below it.
    pub n_terms: u32,
    /// Per-message read patience during rounds, in milliseconds.
    pub round_timeout_ms: u64,
    /// The resolved closure engine (no `threads: 0` auto value ships —
    /// the master resolves it so every process uses the same budget).
    pub materialization: MaterializationStrategy,
    /// Schema triples (replicated to every worker).
    pub schema: Vec<Triple>,
    /// This worker's base partition.
    pub base: Vec<Triple>,
    /// The complete effective rule-base (routing needs it even when this
    /// worker evaluates only a subset).
    pub all_rules: Vec<Rule>,
    /// The rules this worker evaluates.
    pub my_rules: Vec<Rule>,
    /// How this worker routes fresh derivations.
    pub routing: WireRouting,
    /// Injected faults for this worker, as `(round, fault)` pairs.
    pub faults: Vec<(u32, WireFault)>,
}

/// Per-worker counters in shippable form; micros instead of `Duration`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Rounds the worker participated in.
    pub rounds: u64,
    /// Triples it derived.
    pub derived: u64,
    /// Triples it sent.
    pub sent: u64,
    /// Triples it received.
    pub received: u64,
    /// Reasoning CPU, microseconds.
    pub reason_micros: u64,
    /// IO (serialize/route/exchange) CPU, microseconds.
    pub io_micros: u64,
    /// Per-round CPU charges, microseconds.
    pub round_cpu_micros: Vec<u64>,
    /// Final local store size.
    pub output_size: u64,
}

impl WireStats {
    /// Rehydrate into the core's stats record for `RunReport` assembly.
    pub fn into_worker_stats(self, id: usize) -> WorkerStats {
        WorkerStats {
            id,
            reason_time: Duration::from_micros(self.reason_micros),
            io_time: Duration::from_micros(self.io_micros),
            round_cpu: self
                .round_cpu_micros
                .iter()
                .map(|&us| Duration::from_micros(us))
                .collect(),
            rounds: self.rounds as usize,
            derived: self.derived as usize,
            sent: self.sent as usize,
            received: self.received as usize,
            output_size: self.output_size as usize,
            ..WorkerStats::default()
        }
    }
}

/// Messages a worker sends to the master.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerMsg {
    /// Handshake opener.
    Hello {
        /// Must be [`WIRE_MAGIC`].
        magic: u32,
        /// Must be [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Fresh derivations routed to worker `to`, part of the current
    /// round (every `Triples` precedes its round's `RoundDone` on the
    /// stream, so the round number is implicit).
    Triples {
        /// Destination worker.
        to: u32,
        /// The routed triples.
        batch: Vec<Triple>,
    },
    /// This worker finished the round's local work and sends.
    RoundDone {
        /// The round just finished.
        round: u32,
        /// Triples this worker sent this round (termination detector).
        sent: u64,
    },
    /// Sent once after a `Stop` verdict: counters + the final store.
    Final {
        /// The worker's counters.
        stats: WireStats,
        /// Its complete local store.
        store: Vec<Triple>,
    },
}

/// Messages the master sends a worker.
#[derive(Debug, Clone)]
pub enum MasterMsg {
    /// Handshake accept: identity and cluster shape.
    Welcome {
        /// This worker's node id (= partition index).
        node_id: u32,
        /// Cluster size.
        k: u32,
        /// Run epoch — lets a late reconnect from a previous run be told
        /// apart from this run's workers.
        epoch: u64,
    },
    /// Handshake refusal (version mismatch, cluster already full).
    Reject {
        /// Why.
        reason: String,
    },
    /// The worker's partition of the run plan.
    Setup(Box<Setup>),
    /// Round verdict + this worker's inbound triples for the round.
    Deliver {
        /// The round this verdict closes.
        round: u32,
        /// True when the run is over (quiescence or a lost worker):
        /// absorb nothing, send `Final`.
        stop: bool,
        /// Triples routed to this worker this round.
        triples: Vec<Triple>,
    },
}

// ---------------------------------------------------------------------
// body grammar
// ---------------------------------------------------------------------

const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_REJECT: u8 = 3;
const TAG_SETUP: u8 = 4;
const TAG_TRIPLES: u8 = 5;
const TAG_ROUND_DONE: u8 = 6;
const TAG_DELIVER: u8 = 7;
const TAG_FINAL: u8 = 8;

/// Longest string field (rule name, reject reason) the decoder accepts.
const MAX_STRING: usize = 64 * 1024;
/// Most rules a setup may carry (far above any real rule-base).
const MAX_RULES: usize = 64 * 1024;

/// Bounds-checked little-endian reader over a message body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                NetError::protocol(format!(
                    "truncated message: wanted {n} more byte(s) at offset {}",
                    self.pos
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, NetError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn string(&mut self) -> Result<String, NetError> {
        let len = self.u32()? as usize;
        if len > MAX_STRING {
            return Err(NetError::protocol(format!(
                "string field of {len} bytes exceeds the {MAX_STRING}-byte bound"
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| NetError::protocol("string field is not valid UTF-8"))
    }

    /// The decoder consumed the whole body — trailing bytes are a
    /// violation (they would mean sender and receiver disagree on the
    /// grammar).
    fn done(&self) -> Result<(), NetError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(NetError::protocol(format!(
                "{} trailing byte(s) after message body",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_triples(out: &mut Vec<u8>, triples: &[Triple]) {
    put_u32(out, triples.len() as u32);
    out.extend_from_slice(&encode_batch(triples));
}

/// Read a `u32 count | count × 12 bytes` triple block, validating every
/// id against the dictionary size.
fn get_triples(cur: &mut Cursor<'_>, n_terms: u32) -> Result<Vec<Triple>, NetError> {
    let count = cur.u32()? as usize;
    let bytes = cur.take(count.checked_mul(12).ok_or_else(|| {
        NetError::protocol("triple count overflows the byte budget")
    })?)?;
    let mut out = Vec::with_capacity(count);
    for t in decode_batch(bytes) {
        if t.s.0 >= n_terms || t.p.0 >= n_terms || t.o.0 >= n_terms {
            return Err(NetError::protocol(format!(
                "triple {t} has ids outside the {n_terms}-term dictionary"
            )));
        }
        out.push(t);
    }
    Ok(out)
}

fn put_term_pat(out: &mut Vec<u8>, p: &TermPat) {
    match p {
        TermPat::Var(v) => {
            out.push(0);
            put_u32(out, u32::from(*v));
        }
        TermPat::Const(c) => {
            out.push(1);
            put_u32(out, c.0);
        }
    }
}

fn get_term_pat(cur: &mut Cursor<'_>, n_terms: u32) -> Result<TermPat, NetError> {
    match cur.u8()? {
        0 => {
            let v = cur.u32()?;
            u16::try_from(v)
                .map(TermPat::Var)
                .map_err(|_| NetError::protocol(format!("variable index {v} exceeds u16")))
        }
        1 => {
            let id = cur.u32()?;
            if id >= n_terms {
                return Err(NetError::protocol(format!(
                    "rule constant {id} outside the {n_terms}-term dictionary"
                )));
            }
            Ok(TermPat::Const(NodeId(id)))
        }
        other => Err(NetError::protocol(format!("unknown term-pattern tag {other}"))),
    }
}

fn put_atom(out: &mut Vec<u8>, a: &Atom) {
    put_term_pat(out, &a.s);
    put_term_pat(out, &a.p);
    put_term_pat(out, &a.o);
}

fn get_atom(cur: &mut Cursor<'_>, n_terms: u32) -> Result<Atom, NetError> {
    Ok(Atom {
        s: get_term_pat(cur, n_terms)?,
        p: get_term_pat(cur, n_terms)?,
        o: get_term_pat(cur, n_terms)?,
    })
}

fn put_rules(out: &mut Vec<u8>, rules: &[Rule]) {
    put_u32(out, rules.len() as u32);
    for r in rules {
        put_string(out, &r.name);
        put_atom(out, &r.head);
        put_u16(out, r.body.len() as u16);
        for a in &r.body {
            put_atom(out, a);
        }
    }
}

fn get_rules(cur: &mut Cursor<'_>, n_terms: u32) -> Result<Vec<Rule>, NetError> {
    let count = cur.u32()? as usize;
    if count > MAX_RULES {
        return Err(NetError::protocol(format!(
            "rule count {count} exceeds the {MAX_RULES} bound"
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name = cur.string()?;
        let head = get_atom(cur, n_terms)?;
        let body_len = cur.u16()? as usize;
        let mut body = Vec::with_capacity(body_len);
        for _ in 0..body_len {
            body.push(get_atom(cur, n_terms)?);
        }
        // Rule::new re-validates (non-empty body, dense variables,
        // range restriction) and recomputes var_count — a rule that was
        // valid at the master decodes to the same rule or not at all.
        out.push(Rule::new(name, head, body).map_err(NetError::protocol)?);
    }
    Ok(out)
}

fn put_materialization(out: &mut Vec<u8>, m: &MaterializationStrategy) {
    let scope_byte = |s: &TableScope| match s {
        TableScope::PerQuery => 0u8,
        TableScope::PerSweep => 1,
        TableScope::None => 2,
    };
    match m {
        MaterializationStrategy::ForwardSemiNaive => {
            out.push(0);
            put_u32(out, 0);
        }
        MaterializationStrategy::ForwardParallel { threads } => {
            out.push(1);
            put_u32(out, *threads as u32);
        }
        MaterializationStrategy::BackwardPerResource(s) => {
            out.push(2);
            put_u32(out, u32::from(scope_byte(s)));
        }
        MaterializationStrategy::BackwardJena(s) => {
            out.push(3);
            put_u32(out, u32::from(scope_byte(s)));
        }
    }
}

fn get_materialization(cur: &mut Cursor<'_>) -> Result<MaterializationStrategy, NetError> {
    let tag = cur.u8()?;
    let param = cur.u32()?;
    let scope = |p: u32| match p {
        0 => Ok(TableScope::PerQuery),
        1 => Ok(TableScope::PerSweep),
        2 => Ok(TableScope::None),
        other => Err(NetError::protocol(format!("unknown table scope {other}"))),
    };
    match tag {
        0 => Ok(MaterializationStrategy::ForwardSemiNaive),
        1 => Ok(MaterializationStrategy::ForwardParallel {
            threads: param as usize,
        }),
        2 => Ok(MaterializationStrategy::BackwardPerResource(scope(param)?)),
        3 => Ok(MaterializationStrategy::BackwardJena(scope(param)?)),
        other => Err(NetError::protocol(format!(
            "unknown materialization tag {other}"
        ))),
    }
}

fn put_owner(out: &mut Vec<u8>, owner: &[(NodeId, u32)]) {
    put_u32(out, owner.len() as u32);
    for (node, w) in owner {
        put_u32(out, node.0);
        put_u32(out, *w);
    }
}

fn get_owner(cur: &mut Cursor<'_>, n_terms: u32, k: u32) -> Result<Vec<(NodeId, u32)>, NetError> {
    let count = cur.u32()? as usize;
    // 8 bytes per pair must fit in what remains — checked by take().
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let node = cur.u32()?;
        let w = cur.u32()?;
        if node >= n_terms {
            return Err(NetError::protocol(format!(
                "ownership entry for node {node} outside the {n_terms}-term dictionary"
            )));
        }
        if w >= k {
            return Err(NetError::protocol(format!(
                "ownership entry assigns node {node} to worker {w} of {k}"
            )));
        }
        out.push((NodeId(node), w));
    }
    Ok(out)
}

fn put_assignment(out: &mut Vec<u8>, assignment: &[u32]) {
    put_u32(out, assignment.len() as u32);
    for &a in assignment {
        put_u32(out, a);
    }
}

fn get_assignment(cur: &mut Cursor<'_>, parts: u32) -> Result<Vec<u32>, NetError> {
    let count = cur.u32()? as usize;
    if count > MAX_RULES {
        return Err(NetError::protocol(format!(
            "assignment length {count} exceeds the {MAX_RULES} bound"
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let a = cur.u32()?;
        if a >= parts {
            return Err(NetError::protocol(format!(
                "assignment entry {a} outside 0..{parts}"
            )));
        }
        out.push(a);
    }
    Ok(out)
}

fn put_routing(out: &mut Vec<u8>, r: &WireRouting) {
    match r {
        WireRouting::Data { owner } => {
            out.push(0);
            put_owner(out, owner);
        }
        WireRouting::Rule { k, assignment } => {
            out.push(1);
            put_u32(out, *k);
            put_assignment(out, assignment);
        }
        WireRouting::Hybrid {
            owner,
            groups_k,
            groups_assignment,
            data_shards,
        } => {
            out.push(2);
            put_u32(out, *data_shards);
            put_owner(out, owner);
            put_u32(out, *groups_k);
            put_assignment(out, groups_assignment);
        }
    }
}

fn get_routing(cur: &mut Cursor<'_>, n_terms: u32, k: u32) -> Result<WireRouting, NetError> {
    match cur.u8()? {
        0 => Ok(WireRouting::Data {
            owner: get_owner(cur, n_terms, k)?,
        }),
        1 => {
            let parts = cur.u32()?;
            Ok(WireRouting::Rule {
                k: parts,
                assignment: get_assignment(cur, parts)?,
            })
        }
        2 => {
            let data_shards = cur.u32()?;
            if data_shards == 0 {
                return Err(NetError::protocol("hybrid routing with zero data shards"));
            }
            let owner = get_owner(cur, n_terms, data_shards)?;
            let groups_k = cur.u32()?;
            Ok(WireRouting::Hybrid {
                owner,
                groups_k,
                groups_assignment: get_assignment(cur, groups_k)?,
                data_shards,
            })
        }
        other => Err(NetError::protocol(format!("unknown routing tag {other}"))),
    }
}

fn put_stats(out: &mut Vec<u8>, s: &WireStats) {
    put_u64(out, s.rounds);
    put_u64(out, s.derived);
    put_u64(out, s.sent);
    put_u64(out, s.received);
    put_u64(out, s.reason_micros);
    put_u64(out, s.io_micros);
    put_u32(out, s.round_cpu_micros.len() as u32);
    for &us in &s.round_cpu_micros {
        put_u64(out, us);
    }
    put_u64(out, s.output_size);
}

fn get_stats(cur: &mut Cursor<'_>) -> Result<WireStats, NetError> {
    let rounds = cur.u64()?;
    let derived = cur.u64()?;
    let sent = cur.u64()?;
    let received = cur.u64()?;
    let reason_micros = cur.u64()?;
    let io_micros = cur.u64()?;
    let n = cur.u32()? as usize;
    if n > 1 << 20 {
        return Err(NetError::protocol(format!("round_cpu list of {n} entries")));
    }
    let mut round_cpu_micros = Vec::with_capacity(n);
    for _ in 0..n {
        round_cpu_micros.push(cur.u64()?);
    }
    Ok(WireStats {
        rounds,
        derived,
        sent,
        received,
        reason_micros,
        io_micros,
        round_cpu_micros,
        output_size: cur.u64()?,
    })
}

/// Encode a worker→master message body.
pub fn encode_worker_msg(m: &WorkerMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match m {
        WorkerMsg::Hello { magic, version } => {
            out.push(TAG_HELLO);
            put_u32(&mut out, *magic);
            put_u32(&mut out, *version);
        }
        WorkerMsg::Triples { to, batch } => {
            out.push(TAG_TRIPLES);
            put_u32(&mut out, *to);
            put_triples(&mut out, batch);
        }
        WorkerMsg::RoundDone { round, sent } => {
            out.push(TAG_ROUND_DONE);
            put_u32(&mut out, *round);
            put_u64(&mut out, *sent);
        }
        WorkerMsg::Final { stats, store } => {
            out.push(TAG_FINAL);
            put_stats(&mut out, stats);
            put_triples(&mut out, store);
        }
    }
    out
}

/// Decode a worker→master message body. `n_terms` is the master's
/// dictionary size; every triple id is validated against it.
pub fn decode_worker_msg(body: &[u8], n_terms: u32) -> Result<WorkerMsg, NetError> {
    let mut cur = Cursor::new(body);
    let msg = match cur.u8()? {
        TAG_HELLO => WorkerMsg::Hello {
            magic: cur.u32()?,
            version: cur.u32()?,
        },
        TAG_TRIPLES => WorkerMsg::Triples {
            to: cur.u32()?,
            batch: get_triples(&mut cur, n_terms)?,
        },
        TAG_ROUND_DONE => WorkerMsg::RoundDone {
            round: cur.u32()?,
            sent: cur.u64()?,
        },
        TAG_FINAL => WorkerMsg::Final {
            stats: get_stats(&mut cur)?,
            store: get_triples(&mut cur, n_terms)?,
        },
        other => return Err(NetError::protocol(format!("unknown worker message tag {other}"))),
    };
    cur.done()?;
    Ok(msg)
}

/// Encode a master→worker message body.
pub fn encode_master_msg(m: &MasterMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match m {
        MasterMsg::Welcome { node_id, k, epoch } => {
            out.push(TAG_WELCOME);
            put_u32(&mut out, *node_id);
            put_u32(&mut out, *k);
            put_u64(&mut out, *epoch);
        }
        MasterMsg::Reject { reason } => {
            out.push(TAG_REJECT);
            put_string(&mut out, reason);
        }
        MasterMsg::Setup(s) => {
            out.push(TAG_SETUP);
            put_u32(&mut out, s.n_terms);
            put_u64(&mut out, s.round_timeout_ms);
            put_materialization(&mut out, &s.materialization);
            put_triples(&mut out, &s.schema);
            put_triples(&mut out, &s.base);
            put_rules(&mut out, &s.all_rules);
            put_rules(&mut out, &s.my_rules);
            put_routing(&mut out, &s.routing);
            put_u32(&mut out, s.faults.len() as u32);
            for (round, fault) in &s.faults {
                put_u32(&mut out, *round);
                match fault {
                    WireFault::Panic => {
                        out.push(0);
                        put_u64(&mut out, 0);
                    }
                    WireFault::Disconnect => {
                        out.push(1);
                        put_u64(&mut out, 0);
                    }
                    WireFault::Delay { millis } => {
                        out.push(2);
                        put_u64(&mut out, *millis);
                    }
                }
            }
        }
        MasterMsg::Deliver {
            round,
            stop,
            triples,
        } => {
            out.push(TAG_DELIVER);
            put_u32(&mut out, *round);
            out.push(u8::from(*stop));
            put_triples(&mut out, triples);
        }
    }
    out
}

/// Decode a master→worker message body. `n_terms` bounds triple ids in
/// `Deliver`; a `Setup` carries (and is validated against) its own.
/// During the handshake — before any `Setup` — pass the value from the
/// `Setup` once known, or `u32::MAX` to accept any id (the handshake
/// messages carry no triples).
pub fn decode_master_msg(body: &[u8], n_terms: u32) -> Result<MasterMsg, NetError> {
    let mut cur = Cursor::new(body);
    let msg = match cur.u8()? {
        TAG_WELCOME => MasterMsg::Welcome {
            node_id: cur.u32()?,
            k: cur.u32()?,
            epoch: cur.u64()?,
        },
        TAG_REJECT => MasterMsg::Reject {
            reason: cur.string()?,
        },
        TAG_SETUP => {
            let n_terms = cur.u32()?;
            let round_timeout_ms = cur.u64()?;
            let materialization = get_materialization(&mut cur)?;
            let schema = get_triples(&mut cur, n_terms)?;
            let base = get_triples(&mut cur, n_terms)?;
            let all_rules = get_rules(&mut cur, n_terms)?;
            let my_rules = get_rules(&mut cur, n_terms)?;
            let routing = get_routing(&mut cur, n_terms, u32::MAX)?;
            let n_faults = cur.u32()? as usize;
            if n_faults > 1 << 16 {
                return Err(NetError::protocol(format!("{n_faults} fault entries")));
            }
            let mut faults = Vec::with_capacity(n_faults);
            for _ in 0..n_faults {
                let round = cur.u32()?;
                let tag = cur.u8()?;
                let param = cur.u64()?;
                let fault = match tag {
                    0 => WireFault::Panic,
                    1 => WireFault::Disconnect,
                    2 => WireFault::Delay { millis: param },
                    other => {
                        return Err(NetError::protocol(format!("unknown fault tag {other}")))
                    }
                };
                faults.push((round, fault));
            }
            MasterMsg::Setup(Box::new(Setup {
                n_terms,
                round_timeout_ms,
                materialization,
                schema,
                base,
                all_rules,
                my_rules,
                routing,
                faults,
            }))
        }
        TAG_DELIVER => MasterMsg::Deliver {
            round: cur.u32()?,
            stop: cur.u8()? != 0,
            triples: get_triples(&mut cur, n_terms)?,
        },
        other => return Err(NetError::protocol(format!("unknown master message tag {other}"))),
    };
    cur.done()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_datalog::ast::build::{atom, c, v};

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    fn rules() -> Vec<Rule> {
        vec![
            Rule::new(
                "p2q",
                atom(v(0), c(NodeId(9)), v(1)),
                vec![atom(v(0), c(NodeId(8)), v(1))],
            )
            .unwrap(),
            Rule::new(
                "join",
                atom(v(0), c(NodeId(7)), v(2)),
                vec![
                    atom(v(0), c(NodeId(8)), v(1)),
                    atom(v(1), c(NodeId(8)), v(2)),
                ],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn worker_messages_roundtrip() {
        let msgs = [
            WorkerMsg::Hello {
                magic: WIRE_MAGIC,
                version: PROTOCOL_VERSION,
            },
            WorkerMsg::Triples {
                to: 3,
                batch: vec![t(1, 2, 3), t(4, 5, 6)],
            },
            WorkerMsg::RoundDone { round: 7, sent: 99 },
            WorkerMsg::Final {
                stats: WireStats {
                    rounds: 4,
                    derived: 100,
                    sent: 20,
                    received: 30,
                    reason_micros: 1234,
                    io_micros: 56,
                    round_cpu_micros: vec![10, 20, 30],
                    output_size: 500,
                },
                store: vec![t(0, 1, 2)],
            },
        ];
        for m in msgs {
            let body = encode_worker_msg(&m);
            assert_eq!(decode_worker_msg(&body, 10).unwrap(), m);
        }
    }

    #[test]
    fn master_messages_roundtrip() {
        let setup = Setup {
            n_terms: 10,
            round_timeout_ms: 30_000,
            materialization: MaterializationStrategy::ForwardSemiNaive,
            schema: vec![t(0, 1, 2)],
            base: vec![t(3, 4, 5), t(6, 7, 8)],
            all_rules: rules(),
            my_rules: rules()[..1].to_vec(),
            routing: WireRouting::Data {
                owner: vec![(NodeId(3), 0), (NodeId(6), 1)],
            },
            faults: vec![(1, WireFault::Disconnect), (2, WireFault::Delay { millis: 5 })],
        };
        let body = encode_master_msg(&MasterMsg::Setup(Box::new(setup.clone())));
        let MasterMsg::Setup(got) = decode_master_msg(&body, u32::MAX).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(got.n_terms, setup.n_terms);
        assert_eq!(got.schema, setup.schema);
        assert_eq!(got.base, setup.base);
        assert_eq!(got.all_rules, setup.all_rules);
        assert_eq!(got.my_rules, setup.my_rules);
        assert_eq!(got.routing, setup.routing);
        assert_eq!(got.faults, setup.faults);

        let body = encode_master_msg(&MasterMsg::Deliver {
            round: 3,
            stop: true,
            triples: vec![t(1, 2, 3)],
        });
        let MasterMsg::Deliver { round, stop, triples } =
            decode_master_msg(&body, 10).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!((round, stop, triples), (3, true, vec![t(1, 2, 3)]));
    }

    #[test]
    fn rule_and_hybrid_routing_roundtrip() {
        for routing in [
            WireRouting::Rule {
                k: 3,
                assignment: vec![0, 2, 1],
            },
            WireRouting::Hybrid {
                owner: vec![(NodeId(1), 0)],
                groups_k: 2,
                groups_assignment: vec![0, 1],
                data_shards: 2,
            },
        ] {
            let mut out = Vec::new();
            put_routing(&mut out, &routing);
            let mut cur = Cursor::new(&out);
            assert_eq!(get_routing(&mut cur, 10, u32::MAX).unwrap(), routing);
            cur.done().unwrap();
        }
    }

    #[test]
    fn out_of_dictionary_ids_are_protocol_violations() {
        let body = encode_worker_msg(&WorkerMsg::Triples {
            to: 0,
            batch: vec![t(1, 2, 999)],
        });
        let err = decode_worker_msg(&body, 10).unwrap_err();
        assert!(matches!(err, NetError::Protocol { .. }));
        assert!(err.to_string().contains("dictionary"));
    }

    #[test]
    fn truncation_at_every_cut_is_rejected_not_panicking() {
        let body = encode_master_msg(&MasterMsg::Setup(Box::new(Setup {
            n_terms: 10,
            round_timeout_ms: 1,
            materialization: MaterializationStrategy::ForwardParallel { threads: 2 },
            schema: vec![t(0, 1, 2)],
            base: vec![t(3, 4, 5)],
            all_rules: rules(),
            my_rules: rules(),
            routing: WireRouting::Rule {
                k: 2,
                assignment: vec![0, 1],
            },
            faults: vec![(0, WireFault::Panic)],
        })));
        for cut in 0..body.len() {
            let err = decode_master_msg(&body[..cut], u32::MAX).unwrap_err();
            assert!(
                matches!(err, NetError::Protocol { .. }),
                "cut at {cut} must be a protocol error, got {err}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut body = encode_worker_msg(&WorkerMsg::RoundDone { round: 0, sent: 0 });
        body.push(0xaa);
        let err = decode_worker_msg(&body, 10).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(decode_worker_msg(&[0xfe], 10).is_err());
        assert!(decode_master_msg(&[0xfe], 10).is_err());
        assert!(decode_worker_msg(&[], 10).is_err(), "empty body");
    }

    #[test]
    fn oversized_string_is_rejected_before_allocation() {
        let mut body = vec![TAG_REJECT];
        put_u32(&mut body, u32::MAX); // claims a 4 GiB reason
        let err = decode_master_msg(&body, 10).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn ownership_bounds_are_validated() {
        // worker id out of range
        let mut out = vec![0u8]; // Data routing tag
        put_u32(&mut out, 1); // one pair
        put_u32(&mut out, 3); // node 3 (< n_terms)
        put_u32(&mut out, 9); // worker 9 of k=2
        let mut cur = Cursor::new(&out);
        assert!(get_routing(&mut cur, 10, 2).is_err());
    }
}
