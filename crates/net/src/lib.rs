//! The TCP cluster runtime — Algorithm 3 across real sockets.
//!
//! The paper ran its partitions as processes on a cluster, exchanging
//! tuples through a shared filesystem. `owlpar-core` reproduces that
//! in-process (threads + channels or shared-directory files); this crate
//! takes the remaining step to *actual* distribution, in two layers:
//!
//! * [`transport`] — a loopback TCP mesh implementing the core's
//!   [`Transport`](owlpar_core::Transport) plug-in point, so
//!   `run_parallel` can push every inter-partition triple through real
//!   sockets ([`CommMode::Custom`](owlpar_core::CommMode)) while keeping
//!   its threads, barriers and fault containment;
//! * [`cluster`] — a multi-process star runtime: a master process
//!   partitions the KB with the same [`prepare_run`](owlpar_core::prepare_run)
//!   the in-process runtime uses, ships each worker process its partition,
//!   rule-base and routing table over a versioned bootstrap protocol, then
//!   coordinates barrier rounds with per-connection deadlines. A worker
//!   that dies mid-run (EOF, deadline, injected
//!   [`FaultKind::Disconnect`](owlpar_core::FaultKind)) flows into the
//!   same adopt-and-reclose recovery the in-process master uses.
//!
//! Every frame on every connection is length-prefixed and CRC-checked
//! through the shared `owlpar-core` frame codec; payload bounds are the
//! same [`MAX_PAYLOAD_BYTES`](owlpar_core::MAX_PAYLOAD_BYTES) every other
//! byte stream in the system enforces. The `owlpar-cluster` binary
//! (master / worker subcommands, `--spawn-local k`) fronts this crate.

#![forbid(unsafe_code)]

pub mod cache;
pub mod cluster;
pub mod protocol;
pub mod transport;

pub use cache::PartitionCache;
pub use cluster::{
    run_cluster_master, run_cluster_worker, MasterOptions, WorkerOptions, WorkerSummary,
    DEFAULT_CHUNK_TRIPLES,
};
pub use protocol::{NetError, PROTOCOL_VERSION, WIRE_MAGIC};
pub use transport::TcpFabricFactory;
