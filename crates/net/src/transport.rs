//! A loopback TCP mesh implementing the core's [`Transport`] plug-in.
//!
//! [`TcpFabricFactory::build`] wires `k` endpoints into a full mesh of
//! real TCP connections (one per worker pair) and hands them to
//! `run_parallel` through [`CommMode::Custom`](owlpar_core::CommMode):
//! the runtime keeps its threads, barriers and fault containment, but
//! every inter-partition triple crosses a kernel socket in a CRC frame.
//!
//! ## Deadlock freedom
//!
//! The classic mesh failure is two peers blocking on writes into each
//! other's full kernel buffers with neither reading. Each endpoint
//! therefore runs one detached *reader thread per peer* that does
//! nothing but pull frames off the socket and push parsed events into
//! the endpoint's inbox channel — kernel receive buffers are always
//! drained, so a blocking `send` always makes progress.
//!
//! ## Round framing
//!
//! A TCP stream multiplexes every round, so each frame carries its round
//! number and `collect(r)` first sends an end-of-round marker to every
//! peer, then drains its inbox until each live peer has delivered its
//! own round-`r` marker. The runtime's barrier discipline guarantees no
//! honest peer can be a full round ahead while we are still collecting
//! `r` (it cannot leave round `r`'s barrier before we reach it), so a
//! frame with any other round number is a protocol violation, not a
//! buffering problem. A peer whose socket reaches EOF is treated as
//! cleanly dead — the runtime's fault layer decides what that means —
//! while CRC or grammar damage poisons the collect with
//! [`CommError::Protocol`], because a corrupted length-prefixed stream
//! cannot be resynchronized.

use owlpar_core::{
    decode_triple_block, encode_triple_block, read_crc_frame, write_crc_frame, Backoff, CommError,
    FrameError, Transport, TransportFactory,
};
use owlpar_rdf::Triple;
use std::io::ErrorKind;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

const TAG_TRIPLES: u8 = 1;
const TAG_END_ROUND: u8 = 2;

/// How long `build` keeps retrying a refused loopback connect.
const CONNECT_DEADLINE: Duration = Duration::from_secs(10);

/// Builds loopback TCP mesh fabrics; plug into
/// [`ParallelConfig::comm`](owlpar_core::ParallelConfig) via
/// `CommMode::Custom(Arc::new(TcpFabricFactory::default()))`.
#[derive(Debug, Clone)]
pub struct TcpFabricFactory {
    /// Per-event patience while collecting a round (and the write
    /// timeout on every socket). An endpoint that waits longer than this
    /// for the *next* frame of a round fails the collect with
    /// [`CommError::Timeout`].
    pub io_timeout: Duration,
}

impl Default for TcpFabricFactory {
    fn default() -> Self {
        TcpFabricFactory {
            io_timeout: Duration::from_secs(30),
        }
    }
}

impl TransportFactory for TcpFabricFactory {
    fn label(&self) -> &'static str {
        "tcp-loopback-mesh"
    }

    fn build(&self, k: usize) -> Result<Vec<Box<dyn Transport>>, CommError> {
        build_mesh(k, self.io_timeout)
    }
}

/// What a reader thread distills each inbound frame into.
enum MeshEvent {
    /// A routed batch for `round`.
    Triples {
        from: usize,
        round: usize,
        batch: Vec<Triple>,
    },
    /// The peer finished sending for `round`.
    End { from: usize, round: usize },
    /// The peer's stream ended. `clean` for EOF/reset (the peer process
    /// or thread is simply gone); unclean for CRC or grammar damage.
    Dead {
        from: usize,
        clean: bool,
        detail: String,
    },
}

/// One worker's endpoint of the mesh.
struct TcpTransport {
    me: usize,
    /// Write half per peer (`None` at `me` and for dead peers).
    peers: Vec<Option<TcpStream>>,
    /// Peers whose connection is gone (send attempts fail fast).
    dead: Vec<bool>,
    /// Inbox fed by this endpoint's reader threads.
    events: mpsc::Receiver<MeshEvent>,
    /// Kept so reader threads never observe a closed channel while the
    /// endpoint lives (they each hold a clone).
    _events_tx: mpsc::Sender<MeshEvent>,
    io_timeout: Duration,
}

fn io_comm_error(worker: usize, e: &std::io::Error, detail: String) -> CommError {
    CommError::Io {
        round: 0,
        worker,
        path: None,
        kind: e.kind(),
        detail,
        attempts: 1,
    }
}

/// Dial `addr` until it accepts or the deadline passes, with the shared
/// capped exponential backoff between attempts.
fn connect_with_backoff(
    addr: SocketAddr,
    deadline: Instant,
    worker: usize,
) -> Result<TcpStream, CommError> {
    let mut backoff = Backoff::new(Duration::from_millis(1), Duration::from_millis(50));
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io_comm_error(
                        worker,
                        &e,
                        format!("connecting mesh peer at {addr}: {e}"),
                    ));
                }
                backoff.sleep();
            }
        }
    }
}

/// Build the full mesh: `k` listeners, one connection per worker pair,
/// a 4-byte id header identifying the dialer on each.
fn build_mesh(k: usize, io_timeout: Duration) -> Result<Vec<Box<dyn Transport>>, CommError> {
    let map_io = |worker: usize, what: &'static str| {
        move |e: std::io::Error| io_comm_error(worker, &e, format!("{what}: {e}"))
    };

    let mut listeners = Vec::with_capacity(k);
    let mut addrs = Vec::with_capacity(k);
    for i in 0..k {
        let l = TcpListener::bind("127.0.0.1:0").map_err(map_io(i, "binding mesh listener"))?;
        addrs.push(l.local_addr().map_err(map_io(i, "reading listener addr"))?);
        listeners.push(l);
    }

    // streams[i][j] = i's connection to j.
    let mut streams: Vec<Vec<Option<TcpStream>>> =
        (0..k).map(|_| (0..k).map(|_| None).collect()).collect();
    let deadline = Instant::now() + CONNECT_DEADLINE;
    #[allow(clippy::needless_range_loop)] // j indexes both streams and addrs
    for i in 0..k {
        for j in (i + 1)..k {
            // j dials i and announces itself; i accepts and checks.
            let mut dial = connect_with_backoff(addrs[i], deadline, j)?;
            use std::io::{Read, Write};
            dial.write_all(&(j as u32).to_le_bytes())
                .map_err(map_io(j, "writing mesh id header"))?;
            let (mut accepted, _) = listeners[i]
                .accept()
                .map_err(map_io(i, "accepting mesh peer"))?;
            let mut id = [0u8; 4];
            accepted
                .read_exact(&mut id)
                .map_err(map_io(i, "reading mesh id header"))?;
            let announced = u32::from_le_bytes(id) as usize;
            if announced != j {
                return Err(CommError::Protocol {
                    round: 0,
                    worker: i,
                    peer: j,
                    detail: format!("mesh peer announced id {announced}, expected {j}"),
                });
            }
            for s in [&dial, &accepted] {
                s.set_nodelay(true).map_err(map_io(i, "setting nodelay"))?;
                s.set_write_timeout(Some(io_timeout))
                    .map_err(map_io(i, "setting write timeout"))?;
            }
            streams[j][i] = Some(dial);
            streams[i][j] = Some(accepted);
        }
    }

    let mut endpoints: Vec<Box<dyn Transport>> = Vec::with_capacity(k);
    for (me, row) in streams.into_iter().enumerate() {
        let (tx, rx) = mpsc::channel();
        let mut peers: Vec<Option<TcpStream>> = Vec::with_capacity(k);
        for (peer, stream) in row.into_iter().enumerate() {
            match stream {
                Some(s) => {
                    let reader = s.try_clone().map_err(map_io(me, "cloning mesh stream"))?;
                    spawn_reader(me, peer, reader, tx.clone());
                    peers.push(Some(s));
                }
                None => peers.push(None),
            }
        }
        endpoints.push(Box::new(TcpTransport {
            me,
            peers,
            dead: vec![false; k],
            events: rx,
            _events_tx: tx,
            io_timeout,
        }));
    }
    Ok(endpoints)
}

/// Decode a mesh frame body: `tag u8 | round u32 | payload`.
fn parse_frame(body: &[u8]) -> Result<(u8, usize, &[u8]), String> {
    if body.len() < 5 {
        return Err(format!("mesh frame of {} byte(s), need at least 5", body.len()));
    }
    let tag = body[0];
    let round = u32::from_le_bytes([body[1], body[2], body[3], body[4]]) as usize;
    Ok((tag, round, &body[5..]))
}

/// The per-peer reader: drain frames until the stream dies, pushing
/// events into the endpoint's inbox. Detached — unblocked at shutdown by
/// `TcpTransport::drop` closing the socket.
fn spawn_reader(me: usize, from: usize, mut stream: TcpStream, tx: mpsc::Sender<MeshEvent>) {
    let fallback_tx = tx.clone();
    thread::Builder::new()
        .name(format!("mesh-{me}-from-{from}"))
        .spawn(move || loop {
            let event = match read_crc_frame(&mut stream) {
                Ok(body) => match parse_frame(&body) {
                    // v2 mesh payloads are compact delta/varint triple
                    // blocks; a block that does not decode cleanly to
                    // exactly the payload is unclean death, same as any
                    // other grammar damage.
                    Ok((TAG_TRIPLES, round, payload)) => match decode_triple_block(payload) {
                        Ok((batch, consumed)) if consumed == payload.len() => {
                            MeshEvent::Triples { from, round, batch }
                        }
                        Ok((_, consumed)) => MeshEvent::Dead {
                            from,
                            clean: false,
                            detail: format!(
                                "mesh triple block left {} trailing byte(s)",
                                payload.len() - consumed
                            ),
                        },
                        Err(e) => MeshEvent::Dead {
                            from,
                            clean: false,
                            detail: format!("bad mesh triple block: {e}"),
                        },
                    },
                    Ok((TAG_END_ROUND, round, [])) => MeshEvent::End { from, round },
                    Ok((tag, _, payload)) => MeshEvent::Dead {
                        from,
                        clean: false,
                        detail: format!(
                            "malformed mesh frame: tag {tag}, {} payload byte(s)",
                            payload.len()
                        ),
                    },
                    Err(detail) => MeshEvent::Dead {
                        from,
                        clean: false,
                        detail,
                    },
                },
                // EOF / reset: the peer is gone — clean from the
                // transport's perspective. Anything else on the stream
                // is unrecoverable damage.
                Err(FrameError::Io(e)) => MeshEvent::Dead {
                    from,
                    clean: matches!(
                        e.kind(),
                        ErrorKind::UnexpectedEof
                            | ErrorKind::ConnectionReset
                            | ErrorKind::ConnectionAborted
                            | ErrorKind::BrokenPipe
                    ),
                    detail: format!("mesh stream from peer {from}: {e}"),
                },
                Err(e) => MeshEvent::Dead {
                    from,
                    clean: false,
                    detail: format!("mesh stream from peer {from}: {e}"),
                },
            };
            let fatal = matches!(event, MeshEvent::Dead { .. });
            if tx.send(event).is_err() || fatal {
                return;
            }
        })
        // Thread spawn can only fail on resource exhaustion; surface it
        // as a dead peer rather than killing the build.
        .map(|_| ())
        .unwrap_or_else(|e| {
            let _ = fallback_tx.send(MeshEvent::Dead {
                from,
                clean: false,
                detail: format!("could not spawn mesh reader: {e}"),
            });
        });
}

impl TcpTransport {
    fn write_to(&mut self, round: usize, to: usize, body: &[u8]) -> Result<(), CommError> {
        let disconnected = CommError::Disconnected {
            round,
            from: self.me,
            to,
        };
        let Some(stream) = self.peers.get_mut(to).and_then(Option::as_mut) else {
            return Err(disconnected);
        };
        if self.dead[to] {
            return Err(disconnected);
        }
        match write_crc_frame(stream, body) {
            Ok(()) => Ok(()),
            Err(FrameError::Io(_)) => {
                // The peer's receive path is gone; fail this send fast
                // and every later one too.
                self.dead[to] = true;
                let _ = stream.shutdown(Shutdown::Both);
                Err(disconnected)
            }
            Err(e) => Err(CommError::Io {
                round,
                worker: self.me,
                path: None,
                kind: ErrorKind::InvalidInput,
                detail: format!("framing mesh message to {to}: {e}"),
                attempts: 1,
            }),
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, round: usize, to: usize, batch: &[Triple]) -> Result<u64, CommError> {
        if batch.is_empty() {
            return Ok(0);
        }
        let mut body = Vec::with_capacity(5 + batch.len() * 4);
        body.push(TAG_TRIPLES);
        body.extend_from_slice(&(round as u32).to_le_bytes());
        body.extend_from_slice(&encode_triple_block(batch));
        self.write_to(round, to, &body)?;
        // 8 header bytes (len + crc) plus the body actually crossed the
        // socket.
        Ok(8 + body.len() as u64)
    }

    fn collect(&mut self, round: usize) -> Result<Vec<Triple>, CommError> {
        let k = self.dead.len();
        let mut marker = Vec::with_capacity(5);
        marker.push(TAG_END_ROUND);
        marker.extend_from_slice(&(round as u32).to_le_bytes());

        // Tell every live peer our sends for this round are complete. A
        // peer we cannot write to is dead; its reader will deliver the
        // matching Dead event (or already has).
        let mut pending = Vec::new();
        for peer in 0..k {
            if peer == self.me || self.dead[peer] {
                continue;
            }
            if self.write_to(round, peer, &marker).is_ok() {
                pending.push(peer);
            }
        }

        let mut done = vec![false; k];
        let mut collected = Vec::new();
        let protocol = |peer: usize, detail: String| CommError::Protocol {
            round,
            worker: self.me,
            peer,
            detail,
        };
        while pending.iter().any(|&p| !done[p] && !self.dead[p]) {
            let event = self
                .events
                .recv_timeout(self.io_timeout)
                .map_err(|_| CommError::Timeout {
                    round,
                    worker: self.me,
                    waited: self.io_timeout,
                })?;
            match event {
                MeshEvent::Triples {
                    from,
                    round: r,
                    batch,
                } => {
                    if r != round {
                        return Err(protocol(
                            from,
                            format!("triples for round {r} while collecting round {round}"),
                        ));
                    }
                    collected.extend(batch);
                }
                MeshEvent::End { from, round: r } => {
                    if r != round {
                        return Err(protocol(
                            from,
                            format!("end-of-round {r} while collecting round {round}"),
                        ));
                    }
                    done[from] = true;
                }
                MeshEvent::Dead {
                    from,
                    clean,
                    detail,
                } => {
                    self.dead[from] = true;
                    if let Some(s) = self.peers.get_mut(from).and_then(Option::as_mut) {
                        let _ = s.shutdown(Shutdown::Both);
                    }
                    if !clean {
                        return Err(protocol(from, detail));
                    }
                    // Clean death: this round simply sees no more of its
                    // triples; the runtime's fault layer notices the
                    // worker itself is gone.
                }
            }
        }
        Ok(collected)
    }
}

impl Drop for TcpTransport {
    /// Close every peer socket so the detached reader threads unblock
    /// and exit (they share the fd via `try_clone`).
    fn drop(&mut self) {
        for stream in self.peers.iter().flatten() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use owlpar_rdf::NodeId;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    #[test]
    fn pairwise_exchange_over_real_sockets() {
        // 0 → 1, 1 → 2, 2 → 0, all in round 0 — each endpoint driven by
        // its own thread, as `run_parallel` would.
        let eps = build_mesh(3, Duration::from_secs(5)).unwrap();
        // The runtime separates rounds with a barrier (collect happens
        // strictly between barriers A and B); without it, a fast worker's
        // round-1 markers could legally reach a peer still collecting
        // round 0 and trip the cross-round protocol check.
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(3));
        let handles: Vec<_> = eps
            .into_iter()
            .enumerate()
            .map(|(i, mut ep)| {
                let barrier = std::sync::Arc::clone(&barrier);
                thread::spawn(move || {
                    let (to, batch) = match i {
                        0 => (1, vec![t(1, 2, 3)]),
                        1 => (2, vec![t(4, 5, 6), t(7, 8, 9)]),
                        _ => (0, vec![t(10, 11, 12)]),
                    };
                    let sent = ep.send(0, to, &batch).unwrap();
                    assert!(sent > 12, "accounting covers frame overhead");
                    let got = ep.collect(0).unwrap();
                    barrier.wait();
                    // A quiet round still terminates (markers only).
                    assert!(ep.collect(1).unwrap().is_empty());
                    got
                })
            })
            .collect();
        let got: Vec<Vec<Triple>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got[0], vec![t(10, 11, 12)]);
        assert_eq!(got[1], vec![t(1, 2, 3)]);
        assert_eq!(got[2], vec![t(4, 5, 6), t(7, 8, 9)]);
    }

    #[test]
    fn single_endpoint_mesh_is_trivial() {
        let mut eps = build_mesh(1, Duration::from_secs(1)).unwrap();
        assert_eq!(eps.len(), 1);
        assert!(eps[0].collect(0).unwrap().is_empty());
        // Sending to self is a disconnect, not a loopback.
        assert!(matches!(
            eps[0].send(0, 0, &[t(1, 2, 3)]),
            Err(CommError::Disconnected { .. })
        ));
    }

    #[test]
    fn empty_batches_are_not_put_on_the_wire() {
        let eps = build_mesh(2, Duration::from_secs(5)).unwrap();
        let handles: Vec<_> = eps
            .into_iter()
            .enumerate()
            .map(|(i, mut ep)| {
                thread::spawn(move || {
                    assert_eq!(ep.send(0, 1 - i, &[]).unwrap(), 0);
                    ep.collect(0).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().is_empty());
        }
    }

    #[test]
    fn dropped_peer_reads_as_clean_death() {
        let mut eps = build_mesh(2, Duration::from_secs(5)).unwrap();
        let mut survivor = eps.pop().unwrap(); // endpoint 1
        drop(eps); // endpoint 0's sockets close
        // Peer 0 is gone: collect terminates without it, send fails fast.
        assert!(survivor.collect(0).unwrap().is_empty());
        assert!(matches!(
            survivor.send(1, 0, &[t(1, 2, 3)]),
            Err(CommError::Disconnected { round: 1, from: 1, to: 0 })
        ));
    }

    #[test]
    fn cross_round_frames_are_protocol_violations() {
        let mut eps = build_mesh(2, Duration::from_secs(5)).unwrap();
        eps[0].send(7, 1, &[t(1, 2, 3)]).unwrap();
        let err = eps[1].collect(0).unwrap_err();
        assert!(matches!(err, CommError::Protocol { peer: 0, .. }), "{err}");
    }

    #[test]
    fn factory_builds_through_the_trait() {
        let factory = TcpFabricFactory::default();
        assert_eq!(factory.label(), "tcp-loopback-mesh");
        let eps = factory.build(4).unwrap();
        assert_eq!(eps.len(), 4);
    }
}
