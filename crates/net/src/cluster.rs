//! The multi-process star runtime: one master process, `k` worker
//! processes, all exchange through the master over TCP.
//!
//! The master runs the same pre-spawn half of Algorithm 3 the in-process
//! runtime uses — [`prepare_run`] compiles, lints and partitions — then
//! ships each worker its partition, rule subsets and routing table over
//! the versioned bootstrap protocol (`protocol`). Rounds mirror
//! `run_worker` exactly: a worker closes its local store, routes fresh
//! derivations, sends them (as `Triples` frames relayed through the
//! master), announces `RoundDone`, and blocks until the master's
//! `Deliver` hands it the round verdict plus its inbound triples. The
//! verdict is the paper's termination test — a round in which nobody
//! sent anything — computed from the per-round send counts every
//! `RoundDone` carries, so it is reached by every worker in the same
//! round, just like the in-process cumulative-counter check.
//!
//! ## Star, not mesh
//!
//! Relaying rounds through the master costs each triple two hops but
//! buys the failure model: the master observes every worker through one
//! connection with a deadline, so a dead, hung or defecting worker is
//! detected at the next read and the run flows into the same
//! adopt-and-reclose recovery the in-process master uses ([`RunPlan`]'s
//! recoverability rule is shared). The peer-to-peer TCP path without a
//! coordinator is the in-process mesh (`transport`).
//!
//! ## Failure discipline
//!
//! Bootstrap failures are fatal — a cluster that cannot assemble its `k`
//! workers and ship every partition refuses to start, because a partial
//! start could silently compute a partial closure. Mid-run failures are
//! recoverable: survivors drain at the next verdict (any death forces
//! `stop`), their stores are unioned (each is a subset of the closure),
//! and — for data partitioning under
//! [`FaultRecovery::AdoptAndReclose`] — a serial re-close reproduces
//! exactly the serial closure, monotonicity doing the proof.

use crate::cache::PartitionCache;
use crate::protocol::{
    decode_master_msg, decode_setup_payload, decode_worker_msg, encode_master_msg,
    encode_setup_payload, encode_worker_msg, v1_setup_payload_cost, CacheEntry, MasterMsg,
    NetError, Setup, SetupPayload, WireFault, WireRouting, WireStats, WorkerMsg, PROTOCOL_VERSION,
    WIRE_MAGIC,
};
use owlpar_core::config::RoundMode;
use owlpar_core::cputime::CpuTimer;
use owlpar_core::master::resolve_materialization;
use owlpar_core::stats::{simulate_rounds, PhaseBreakdown, WireBytes, WirePhase, WireRound};
use owlpar_core::worker::Routing;
use owlpar_obs::{wire as obs_wire, Metric, Phase, Recorder, NO_ROUND};
use owlpar_core::{
    digest128, prepare_run, read_crc_frame, reclose_serial, write_crc_frame, Backoff, CommError,
    Digest128, FaultKind, ParallelConfig, RunError, RunReport, WorkerError, WorkerStats,
};
use owlpar_datalog::{Reasoner, Rule};
use owlpar_partition::metrics::or_excess;
use owlpar_partition::RulePartitions;
use owlpar_rdf::fx::FxHashMap;
use owlpar_rdf::{Graph, Triple, TripleStore};
use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Frame envelope cost of the shared codec (`len u32 | crc u32`).
const FRAME_OVERHEAD: u64 = 8;

/// Default chunk bound for streamed transfers (`Triples`, `FinalChunk`,
/// `DeliverChunk`), in triples. One chunk encodes well under the 64 MB
/// per-frame payload cap even at the raw-equivalent 12 bytes/triple;
/// transfers of any size stream as chunk sequences, so the cap no
/// longer limits result size. Tests lower it to force multi-chunk
/// streams on tiny KBs.
pub const DEFAULT_CHUNK_TRIPLES: usize = 1 << 20;

/// Master-side knobs (everything else comes from [`ParallelConfig`]).
#[derive(Debug, Clone)]
pub struct MasterOptions {
    /// Run epoch carried in every `Welcome` — lets a worker (and its
    /// logs) tell two runs on the same port apart.
    pub epoch: u64,
    /// How long the master waits for all `k` workers to dial in and
    /// complete their handshake before refusing to start.
    pub accept_timeout: Duration,
    /// Most triples per streamed chunk frame (`DeliverChunk` splitting).
    pub chunk_triples: usize,
    /// Telemetry sink. `Some(enabled recorder)` turns the `trace` flag
    /// on in every `Welcome`, making workers record phase spans and ship
    /// them back as `TraceChunk` frames; the master merges them into
    /// this recorder (clock-offset corrected) alongside its own relay
    /// lane. `None` (default) keeps the run telemetry-free — workers
    /// are told not to record and ship nothing.
    pub trace: Option<Recorder>,
}

impl Default for MasterOptions {
    fn default() -> Self {
        MasterOptions {
            epoch: 0,
            accept_timeout: Duration::from_secs(60),
            chunk_triples: DEFAULT_CHUNK_TRIPLES,
            trace: None,
        }
    }
}

/// Worker-side knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// How long the worker keeps dialing (with capped exponential
    /// backoff) before giving up; also the handshake read patience.
    pub connect_timeout: Duration,
    /// Where to persist shipped partitions for digest-keyed reuse
    /// across runs; `None` disables the cache (every run ships full).
    pub cache_dir: Option<PathBuf>,
    /// Most triples per streamed chunk frame (`Triples`/`FinalChunk`
    /// splitting).
    pub chunk_triples: usize,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            connect_timeout: Duration::from_secs(30),
            cache_dir: None,
            chunk_triples: DEFAULT_CHUNK_TRIPLES,
        }
    }
}

// ---------------------------------------------------------------------
// wire accounting
// ---------------------------------------------------------------------

/// Master-side wire accounting, updated concurrently by the
/// per-connection handler threads. The star topology makes the master
/// the authoritative vantage point: every frame of the run crosses it
/// exactly once.
#[derive(Debug, Default)]
struct WireLedger {
    setup: [AtomicU64; 4],
    rounds: [AtomicU64; 4],
    finals: [AtomicU64; 4],
    control_bytes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Round-phase traffic broken out per round number:
    /// `round → (bytes, triples)`. Inbound `Triples` frames carry no
    /// round number, so each handler buffers them and flushes the
    /// accumulator when the worker's `RoundDone(r)` labels the batch;
    /// outbound `DeliverChunk`/`Deliver` are charged to their explicit
    /// round. A `BTreeMap` under a mutex — a handful of handler threads
    /// touching it once per frame burst, never on the triple hot path.
    per_round: Mutex<BTreeMap<u32, (u64, u64)>>,
}

impl WireLedger {
    fn add(phase: &[AtomicU64; 4], body_len: usize, triples: usize, v1_bytes: u64) {
        phase[0].fetch_add(body_len as u64 + FRAME_OVERHEAD, Ordering::Relaxed);
        phase[1].fetch_add(1, Ordering::Relaxed);
        phase[2].fetch_add(triples as u64, Ordering::Relaxed);
        phase[3].fetch_add(v1_bytes, Ordering::Relaxed);
    }

    /// `v1_cost` is the exact v1 `Setup` byte count for this worker's
    /// payload ([`v1_setup_payload_cost`]) — charged whether or not this
    /// run actually shipped it, because v1 (cache-less) always would.
    fn setup_frame(&self, body_len: usize, triples: usize, v1_cost: u64) {
        Self::add(&self.setup, body_len, triples, v1_cost);
    }

    /// Round/final v1 baseline is the conservative floor `12 × triples`
    /// (v1 frame headers and counts not charged).
    fn round_frame(&self, body_len: usize, triples: usize) {
        Self::add(&self.rounds, body_len, triples, triples as u64 * 12);
    }

    fn final_frame(&self, body_len: usize, triples: usize) {
        Self::add(&self.finals, body_len, triples, triples as u64 * 12);
    }

    fn control_frame(&self, body_len: usize) {
        self.control_bytes
            .fetch_add(body_len as u64 + FRAME_OVERHEAD, Ordering::Relaxed);
    }

    /// Charge `bytes`/`triples` of round-phase traffic to round `round`.
    fn round_traffic(&self, round: u32, bytes: u64, triples: u64) {
        if bytes == 0 && triples == 0 {
            return;
        }
        if let Ok(mut per_round) = self.per_round.lock() {
            let slot = per_round.entry(round).or_insert((0, 0));
            slot.0 += bytes;
            slot.1 += triples;
        }
    }

    fn cache_outcome(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> WireBytes {
        let phase = |p: &[AtomicU64; 4]| WirePhase {
            bytes: p[0].load(Ordering::Relaxed),
            frames: p[1].load(Ordering::Relaxed),
            triples: p[2].load(Ordering::Relaxed),
            v1_bytes: p[3].load(Ordering::Relaxed),
        };
        let per_round = self
            .per_round
            .lock()
            .map(|m| {
                m.iter()
                    .map(|(&round, &(bytes, triples))| WireRound {
                        round,
                        bytes,
                        triples,
                    })
                    .collect()
            })
            .unwrap_or_default();
        WireBytes {
            setup: phase(&self.setup),
            rounds: phase(&self.rounds),
            finals: phase(&self.finals),
            control_bytes: self.control_bytes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            per_round,
        }
    }
}

/// What a worker process reports when its run completed cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Identity the master assigned in `Welcome`.
    pub node_id: u32,
    /// Cluster size.
    pub k: u32,
    /// Run epoch.
    pub epoch: u64,
    /// Rounds participated in.
    pub rounds: usize,
    /// Triples derived locally.
    pub derived: usize,
    /// Final local store size.
    pub store_len: usize,
    /// Triples sent (with multiplicity).
    pub sent: u64,
}

fn handshake_err(detail: impl Into<String>) -> NetError {
    NetError::Handshake {
        detail: detail.into(),
    }
}

fn send_master(stream: &mut TcpStream, msg: &MasterMsg) -> Result<(), NetError> {
    write_crc_frame(stream, &encode_master_msg(msg)).map_err(NetError::from)
}

/// Worker-side send with wire-byte accounting (frame envelope included).
fn send_worker_counted(
    stream: &mut TcpStream,
    msg: &WorkerMsg,
    sent: &mut u64,
) -> Result<(), NetError> {
    let body = encode_worker_msg(msg);
    *sent += body.len() as u64 + FRAME_OVERHEAD;
    write_crc_frame(stream, &body).map_err(NetError::from)
}

// ---------------------------------------------------------------------
// master
// ---------------------------------------------------------------------

/// What a connection-handler thread distills worker frames into.
enum Event {
    /// The worker routed a batch to worker `to`.
    Routed {
        from: usize,
        to: usize,
        batch: Vec<Triple>,
    },
    /// The worker finished a round's sends.
    Done {
        from: usize,
        round: usize,
        sent: u64,
    },
    /// The worker delivered its final counters and store.
    Final {
        from: usize,
        stats: WireStats,
        store: Vec<Triple>,
    },
    /// The connection is gone (EOF, deadline, CRC damage, bad grammar).
    Dead { from: usize, detail: String },
}

/// Per-connection pump: frames in → events out, `Deliver`s written back
/// when the coordinator releases the round. Exits on `Final`, on any
/// connection error, or when the coordinator drops the delivery sender
/// (the worker was declared dead).
///
/// Large deliveries are split here into `DeliverChunk* Deliver` at
/// `chunk` triples per frame; inbound `FinalChunk` sequences are
/// reassembled here, so the coordinator only ever sees whole stores.
/// Every frame is charged to the shared [`WireLedger`].
///
/// When `trace` is set, inbound `TraceChunk` frames accumulate here and
/// are absorbed into the recorder (as `worker {id}`, pid `id + 1`) when
/// the pump exits — on `Final` and on death alike, so a crashed
/// worker's spans up to its last chunk still reach the merged timeline.
#[allow(clippy::too_many_arguments)] // internal pump; the master wires it up once
fn handle_worker(
    id: usize,
    stream: TcpStream,
    n_terms: u32,
    chunk: usize,
    ledger: &WireLedger,
    events: &mpsc::Sender<Event>,
    delivery: &mpsc::Receiver<MasterMsg>,
    trace: Option<&Recorder>,
) {
    let mut acc = TraceAcc::default();
    pump_worker(
        id, stream, n_terms, chunk, ledger, events, delivery, trace, &mut acc,
    );
    if let (Some(rec), false) = (trace, acc.events.is_empty()) {
        rec.absorb(
            &acc.events,
            &format!("worker {id}"),
            id as u32 + 1,
            acc.offset_us.unwrap_or(0),
        );
    }
}

/// Worker telemetry accumulated by one connection handler: decoded
/// events plus the best clock-offset estimate — the minimum of
/// `master receipt − worker clock` over all chunks, because the chunk
/// with the smallest transit delay bounds the offset tightest.
#[derive(Default)]
struct TraceAcc {
    events: Vec<owlpar_obs::Event>,
    offset_us: Option<i64>,
}

#[allow(clippy::too_many_arguments)] // split from handle_worker, same wiring
fn pump_worker(
    id: usize,
    mut stream: TcpStream,
    n_terms: u32,
    chunk: usize,
    ledger: &WireLedger,
    events: &mpsc::Sender<Event>,
    delivery: &mpsc::Receiver<MasterMsg>,
    trace: Option<&Recorder>,
    acc: &mut TraceAcc,
) {
    let dead = |detail: String| {
        let _ = events.send(Event::Dead { from: id, detail });
    };
    let chunk = chunk.max(1);
    let mut final_acc: Vec<Triple> = Vec::new();
    let mut next_seq = 0u32;
    // Inbound round traffic awaiting a round label (see
    // `WireLedger::per_round`): `(bytes, triples)`.
    let mut pending = (0u64, 0u64);
    loop {
        let body = match read_crc_frame(&mut stream) {
            Ok(b) => b,
            Err(e) => return dead(format!("reading from worker {id}: {e}")),
        };
        match decode_worker_msg(&body, n_terms) {
            Ok(WorkerMsg::Triples { to, batch }) => {
                ledger.round_frame(body.len(), batch.len());
                pending.0 += body.len() as u64 + FRAME_OVERHEAD;
                pending.1 += batch.len() as u64;
                let routed = Event::Routed {
                    from: id,
                    to: to as usize,
                    batch,
                };
                if events.send(routed).is_err() {
                    return;
                }
            }
            Ok(WorkerMsg::RoundDone { round, sent }) => {
                ledger.control_frame(body.len());
                ledger.round_traffic(round, pending.0, pending.1);
                pending = (0, 0);
                let done = Event::Done {
                    from: id,
                    round: round as usize,
                    sent,
                };
                if events.send(done).is_err() {
                    return;
                }
                // Block until the coordinator releases the round for this
                // worker; a closed channel means we were declared dead.
                let Ok(msg) = delivery.recv() else { return };
                let MasterMsg::Deliver {
                    round,
                    stop,
                    mut triples,
                } = msg
                else {
                    return dead(format!("coordinator queued a non-Deliver for worker {id}"));
                };
                // Stream the bulk as bounded chunks; the verdict frame
                // carries the tail, so the worker needs no chunk count
                // up front and any inbox size fits under the frame cap.
                let mut offset = 0usize;
                while triples.len() - offset > chunk {
                    let part = MasterMsg::DeliverChunk {
                        round,
                        batch: triples[offset..offset + chunk].to_vec(),
                    };
                    let part_body = encode_master_msg(&part);
                    ledger.round_frame(part_body.len(), chunk);
                    ledger.round_traffic(round, part_body.len() as u64 + FRAME_OVERHEAD, chunk as u64);
                    if let Err(e) = write_crc_frame(&mut stream, &part_body) {
                        return dead(format!("delivering round chunk to worker {id}: {e}"));
                    }
                    offset += chunk;
                }
                triples.drain(..offset);
                let tail = triples.len();
                let verdict = MasterMsg::Deliver {
                    round,
                    stop,
                    triples,
                };
                let verdict_body = encode_master_msg(&verdict);
                ledger.round_frame(verdict_body.len(), tail);
                ledger.round_traffic(round, verdict_body.len() as u64 + FRAME_OVERHEAD, tail as u64);
                if let Err(e) = write_crc_frame(&mut stream, &verdict_body) {
                    return dead(format!("delivering round to worker {id}: {e}"));
                }
            }
            Ok(WorkerMsg::FinalChunk { seq, batch }) => {
                ledger.final_frame(body.len(), batch.len());
                if seq != next_seq {
                    return dead(format!(
                        "worker {id} sent final chunk {seq}, expected {next_seq}"
                    ));
                }
                next_seq += 1;
                final_acc.extend(batch);
            }
            Ok(WorkerMsg::Final { stats, store }) => {
                ledger.final_frame(body.len(), store.len());
                final_acc.extend(store);
                let _ = events.send(Event::Final {
                    from: id,
                    stats,
                    store: final_acc,
                });
                return;
            }
            Ok(WorkerMsg::TraceChunk { payload }) => {
                ledger.control_frame(body.len());
                // Tolerated-but-dropped when tracing is off: the Welcome
                // told this worker not to send any, but a stray chunk is
                // not worth killing the run over.
                let Some(rec) = trace else { continue };
                let receipt = i64::try_from(rec.now_us()).unwrap_or(i64::MAX);
                match obs_wire::decode_trace_chunk(&payload) {
                    Ok(chunk) => {
                        let clock = i64::try_from(chunk.clock_us).unwrap_or(i64::MAX);
                        let offset = receipt.saturating_sub(clock);
                        acc.offset_us = Some(acc.offset_us.map_or(offset, |o| o.min(offset)));
                        acc.events.extend(chunk.events);
                    }
                    Err(e) => {
                        return dead(format!("undecodable trace chunk from worker {id}: {e}"))
                    }
                }
            }
            Ok(WorkerMsg::Hello { .. } | WorkerMsg::CacheAdvert { .. }) => {
                return dead(format!("worker {id} repeated the handshake mid-run"))
            }
            Err(e) => return dead(format!("undecodable message from worker {id}: {e}")),
        }
    }
}

/// The shippable image of a worker's routing table.
fn wire_routing(r: &Routing) -> WireRouting {
    match r {
        Routing::Data { owner } => WireRouting::Data {
            owner: owner.iter().map(|(&n, &w)| (n, w)).collect(),
        },
        Routing::Rule { partitions, .. } => WireRouting::Rule {
            k: partitions.k as u32,
            assignment: partitions.assignment.clone(),
        },
        Routing::Hybrid {
            owner,
            groups,
            data_shards,
            ..
        } => WireRouting::Hybrid {
            owner: owner.iter().map(|(&n, &w)| (n, w)).collect(),
            groups_k: groups.k as u32,
            groups_assignment: groups.assignment.clone(),
            data_shards: *data_shards,
        },
    }
}

/// The worker-level faults planned for worker `id` — transport-internal
/// kinds (IO flakes, corruption) stay in-process and do not ship.
fn wire_faults(cfg: &ParallelConfig, id: usize) -> Vec<(u32, WireFault)> {
    cfg.fault
        .iter()
        .flat_map(|p| p.events.iter())
        .filter(|e| e.worker == id)
        .filter_map(|e| {
            let fault = match e.kind {
                FaultKind::Panic => WireFault::Panic,
                FaultKind::Disconnect => WireFault::Disconnect,
                FaultKind::Delay { millis } => WireFault::Delay { millis },
                _ => return None,
            };
            Some((e.round as u32, fault))
        })
        .collect()
}

/// Accept one worker and run the versioned handshake
/// (`Hello → Welcome → CacheAdvert`). Returns the stream, ready for
/// `Setup`, plus the cache entries the worker advertised.
fn accept_worker(
    listener: &TcpListener,
    deadline: Instant,
    node_id: u32,
    k: u32,
    opts: &MasterOptions,
    ledger: &WireLedger,
) -> Result<(TcpStream, Vec<CacheEntry>), NetError> {
    // Poll the nonblocking listener with the shared backoff so a slow
    // cluster assembly neither busy-spins nor oversleeps the deadline.
    let mut backoff = Backoff::new(Duration::from_millis(1), Duration::from_millis(50));
    let mut stream = loop {
        match listener.accept() {
            Ok((s, _)) => break s,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(handshake_err(format!(
                        "worker {node_id}/{k} never connected within {:?}",
                        opts.accept_timeout
                    )));
                }
                backoff.sleep();
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    };
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(opts.accept_timeout))?;
    stream.set_write_timeout(Some(opts.accept_timeout))?;

    let body = read_crc_frame(&mut stream)?;
    ledger.control_frame(body.len());
    // The dictionary bound is irrelevant during the handshake — Hello
    // carries no triples.
    match decode_worker_msg(&body, u32::MAX)? {
        WorkerMsg::Hello { magic, version }
            if magic == WIRE_MAGIC && version == PROTOCOL_VERSION =>
        {
            let welcome = encode_master_msg(&MasterMsg::Welcome {
                node_id,
                k,
                epoch: opts.epoch,
                trace: opts.trace.as_ref().is_some_and(Recorder::is_enabled),
            });
            ledger.control_frame(welcome.len());
            write_crc_frame(&mut stream, &welcome)?;
            // The advert follows immediately — an empty one when the
            // worker has no cache.
            let advert = read_crc_frame(&mut stream)?;
            ledger.control_frame(advert.len());
            match decode_worker_msg(&advert, u32::MAX)? {
                WorkerMsg::CacheAdvert { entries } => Ok((stream, entries)),
                other => Err(handshake_err(format!(
                    "expected CacheAdvert after Welcome, got {other:?}"
                ))),
            }
        }
        WorkerMsg::Hello { magic, version } => {
            let reason = format!(
                "incompatible hello: magic {magic:#010x} version {version}, \
                 this master speaks {WIRE_MAGIC:#010x} version {PROTOCOL_VERSION}"
            );
            let _ = send_master(&mut stream, &MasterMsg::Reject { reason: reason.clone() });
            Err(handshake_err(reason))
        }
        other => Err(handshake_err(format!(
            "expected Hello from connecting worker, got {other:?}"
        ))),
    }
}

/// Digest of the input KB: dictionary size plus every id-triple in
/// canonical sorted order — the `input` half of the partition-cache
/// key. Order-canonical so the same KB digests equally run after run
/// regardless of hash-set iteration order.
fn input_digest(graph: &Graph) -> [u8; 16] {
    let mut d = Digest128::new();
    d.update_u32(graph.dict.len() as u32);
    for t in graph.store.iter_sorted() {
        d.update_u32(t.s.0);
        d.update_u32(t.p.0);
        d.update_u32(t.o.0);
    }
    d.finish()
}

/// Digest of the partitioning configuration — everything that changes
/// *which bytes* a worker's partition payload holds, beyond the input
/// KB itself. The payload digest is the actual correctness check; this
/// merely keys the cache so config changes don't thrash one entry.
fn config_digest(
    cfg: &ParallelConfig,
    k: usize,
    materialization: owlpar_datalog::MaterializationStrategy,
) -> [u8; 16] {
    let fp = format!(
        "k={k}|strategy={:?}|materialization={materialization:?}|extra_rules={}|unsafe_rules={:?}",
        cfg.strategy,
        cfg.extra_rules.len(),
        cfg.unsafe_rules,
    );
    digest128(fp.as_bytes())
}

/// Run a cluster master over `listener`: assemble `cfg.k` workers, ship
/// partitions, coordinate rounds to quiescence, aggregate the closure
/// into `graph`. The report is shaped exactly like
/// [`run_parallel`](owlpar_core::run_parallel)'s.
pub fn run_cluster_master(
    graph: &mut Graph,
    cfg: &ParallelConfig,
    listener: TcpListener,
    opts: &MasterOptions,
) -> Result<RunReport, NetError> {
    if matches!(cfg.rounds, RoundMode::Async) {
        return Err(NetError::Run(RunError::config(
            "the cluster runtime supports barrier rounds only",
        )));
    }
    let start_total = Instant::now();
    let before_len = graph.len();
    // The cache key's input half is the KB as handed to us, digested
    // before partitioning touches anything.
    let in_digest = input_digest(graph);
    let plan = prepare_run(graph, cfg)?;
    let recoverable = plan.recoverable(cfg.recovery);
    let k = plan.k;
    // Telemetry: an enabled recorder in the options turns on worker-side
    // tracing (via the Welcome flag) and gives the master its own
    // "relay" lane. Predicted-vs-measured needs the analyzer's report —
    // Auto runs already carry one; otherwise a traced run pays for one
    // analyzer pass here (it re-runs the partitioner, accepted only
    // when tracing).
    let trace = opts.trace.clone().filter(Recorder::is_enabled);
    let analysis = match (&trace, &plan.analysis) {
        (Some(_), None) => {
            let base = owlpar_core::PlanningBase::compile(graph, &cfg.extra_rules);
            owlpar_core::analyze_strategy(&base, &graph.dict, k, &plan.strategy).ok()
        }
        _ => plan.analysis.clone(),
    };
    let pred_round_bytes = analysis
        .as_ref()
        .map(|a| a.round_bytes / a.rounds.expected.max(1) as f64);
    let pred_skew = analysis.as_ref().map(|a| a.max_load_share * k as f64);
    let trace_rec = trace.clone().unwrap_or_default();
    let mut relay = trace_rec.track("relay");
    let n_terms = graph.dict.len() as u32;
    let materialization = resolve_materialization(cfg.materialization, k);
    let cfg_digest = config_digest(cfg, k, materialization);
    let ledger = Arc::new(WireLedger::default());

    // --- bootstrap: all-or-nothing -----------------------------------
    let setup_span = relay.begin(Phase::Setup, NO_ROUND);
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + opts.accept_timeout;
    let mut streams = Vec::with_capacity(k);
    let mut adverts = Vec::with_capacity(k);
    for id in 0..k {
        let (stream, advert) =
            accept_worker(&listener, deadline, id as u32, k as u32, opts, &ledger)?;
        streams.push(stream);
        adverts.push(advert);
    }
    let mut bases = plan.bases;
    for (id, stream) in streams.iter_mut().enumerate() {
        let payload = SetupPayload {
            n_terms,
            materialization,
            schema: plan.schema.clone(),
            base: std::mem::take(&mut bases[id]),
            all_rules: plan.all_rules.clone(),
            my_rules: plan.rules_per_worker[id].clone(),
            routing: wire_routing(&plan.routing[id]),
        };
        let payload_triples = payload.schema.len() + payload.base.len();
        let v1_cost = v1_setup_payload_cost(&payload);
        let blob = encode_setup_payload(&payload);
        let payload_digest = digest128(&blob);
        // Digest-only ship iff the worker advertised this exact blob —
        // exact meaning the payload digest matches too, so a stale or
        // nondeterministically different partition degrades to a full
        // ship, never to a wrong one.
        let hit = adverts[id].iter().any(|e| {
            e.input == in_digest
                && e.config == cfg_digest
                && e.node == id as u32
                && e.payload == payload_digest
        });
        ledger.cache_outcome(hit);
        let setup = Setup {
            input_digest: in_digest,
            config_digest: cfg_digest,
            payload_digest,
            round_timeout_ms: cfg.round_timeout.as_millis() as u64,
            faults: wire_faults(cfg, id),
            payload: (!hit).then_some(blob),
        };
        let body = encode_master_msg(&MasterMsg::Setup(Box::new(setup)));
        ledger.setup_frame(body.len(), if hit { 0 } else { payload_triples }, v1_cost);
        write_crc_frame(stream, &body)?;
        // From here on the per-read patience is the round timeout: a
        // worker that produces nothing for that long is declared dead.
        stream.set_read_timeout(Some(cfg.round_timeout.saturating_mul(2)))?;
        stream.set_write_timeout(Some(cfg.round_timeout))?;
    }
    relay.end(setup_span);

    // --- rounds ------------------------------------------------------
    let t_par = Instant::now();
    let (events_tx, events) = mpsc::channel::<Event>();
    let mut delivery_txs: Vec<Option<mpsc::Sender<MasterMsg>>> = Vec::with_capacity(k);
    let mut worker_errors: Vec<WorkerError> = Vec::new();
    let mut finals: Vec<Option<(WireStats, Vec<Triple>)>> = (0..k).map(|_| None).collect();

    thread::scope(|scope| {
        for (id, stream) in streams.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<MasterMsg>();
            delivery_txs.push(Some(tx));
            let handler_tx = events_tx.clone();
            let handler_ledger = Arc::clone(&ledger);
            let handler_trace = trace.clone();
            let chunk = opts.chunk_triples;
            let builder = thread::Builder::new().name(format!("cluster-worker-{id}"));
            let spawned = builder.spawn_scoped(scope, move || {
                handle_worker(
                    id,
                    stream,
                    n_terms,
                    chunk,
                    &handler_ledger,
                    &handler_tx,
                    &rx,
                    handler_trace.as_ref(),
                );
            });
            if spawned.is_err() {
                let _ = events_tx.send(Event::Dead {
                    from: id,
                    detail: "could not spawn connection handler".to_string(),
                });
            }
        }
        drop(events_tx);

        let mut alive = vec![true; k];
        let mut inboxes: Vec<Vec<Triple>> = (0..k).map(|_| Vec::new()).collect();
        let kill = |id: usize,
                        err: WorkerError,
                        alive: &mut Vec<bool>,
                        delivery_txs: &mut Vec<Option<mpsc::Sender<MasterMsg>>>,
                        worker_errors: &mut Vec<WorkerError>| {
            if alive[id] {
                alive[id] = false;
                delivery_txs[id] = None; // unblocks the handler
                worker_errors.push(err);
            }
        };

        let mut round = 0usize;
        loop {
            let mut done = vec![false; k];
            let mut round_sent = 0u64;
            // Live skew: when each worker's RoundDone lands, measured
            // from the master's release of the previous round. The gap
            // between first and last arrival is the straggler tax the
            // analyzer's `skew_ratio` predicts.
            let round_t0 = Instant::now();
            let mut done_at_ms: Vec<f64> = Vec::with_capacity(k);
            let relay_bytes_before = ledger.rounds[0].load(Ordering::Relaxed);
            let wait_span = relay.begin(Phase::BarrierWait, round as u32);
            while (0..k).any(|i| alive[i] && !done[i]) {
                match events.recv_timeout(cfg.round_timeout) {
                    Ok(Event::Routed { from, to, batch }) => {
                        if to < k {
                            inboxes[to].extend(batch);
                        } else {
                            kill(
                                from,
                                WorkerError::Comm {
                                    worker: from,
                                    source: CommError::Protocol {
                                        round,
                                        worker: from,
                                        peer: from,
                                        detail: format!("routed a batch to worker {to} of {k}"),
                                    },
                                },
                                &mut alive,
                                &mut delivery_txs,
                                &mut worker_errors,
                            );
                        }
                    }
                    Ok(Event::Done { from, round: r, sent }) => {
                        if r == round {
                            done[from] = true;
                            round_sent += sent;
                            done_at_ms.push(round_t0.elapsed().as_secs_f64() * 1e3);
                        } else {
                            kill(
                                from,
                                WorkerError::Comm {
                                    worker: from,
                                    source: CommError::Protocol {
                                        round,
                                        worker: from,
                                        peer: from,
                                        detail: format!("announced round {r} during round {round}"),
                                    },
                                },
                                &mut alive,
                                &mut delivery_txs,
                                &mut worker_errors,
                            );
                        }
                    }
                    Ok(Event::Dead { from, detail }) => {
                        kill(
                            from,
                            WorkerError::Comm {
                                worker: from,
                                source: CommError::Io {
                                    round,
                                    worker: from,
                                    path: None,
                                    kind: ErrorKind::ConnectionAborted,
                                    detail,
                                    attempts: 1,
                                },
                            },
                            &mut alive,
                            &mut delivery_txs,
                            &mut worker_errors,
                        );
                    }
                    Ok(Event::Final { from, .. }) => {
                        kill(
                            from,
                            WorkerError::Comm {
                                worker: from,
                                source: CommError::Protocol {
                                    round,
                                    worker: from,
                                    peer: from,
                                    detail: "sent Final before the stop verdict".to_string(),
                                },
                            },
                            &mut alive,
                            &mut delivery_txs,
                            &mut worker_errors,
                        );
                    }
                    Err(_) => {
                        // Nothing from anyone for a whole round timeout:
                        // declare every straggler dead.
                        for id in 0..k {
                            if alive[id] && !done[id] {
                                kill(
                                    id,
                                    WorkerError::BarrierTimeout {
                                        worker: id,
                                        round,
                                        waited: cfg.round_timeout,
                                    },
                                    &mut alive,
                                    &mut delivery_txs,
                                    &mut worker_errors,
                                );
                            }
                        }
                    }
                }
            }

            relay.end(wait_span);

            // The verdict: quiescence, or any loss so far drains the
            // survivors — same rule as the in-process RunFlags check.
            let stop = round_sent == 0 || !worker_errors.is_empty();
            for id in 0..k {
                if !alive[id] || !done[id] {
                    continue;
                }
                let deliver = MasterMsg::Deliver {
                    round: round as u32,
                    stop,
                    triples: std::mem::take(&mut inboxes[id]),
                };
                if let Some(tx) = &delivery_txs[id] {
                    if tx.send(deliver).is_err() {
                        kill(
                            id,
                            WorkerError::Comm {
                                worker: id,
                                source: CommError::Disconnected {
                                    round,
                                    from: id,
                                    to: id,
                                },
                            },
                            &mut alive,
                            &mut delivery_txs,
                            &mut worker_errors,
                        );
                    }
                }
            }
            // Relay traffic this round, measured at the master: inbound
            // Triples plus outbound Deliver(Chunk)s charged since the
            // loop top. (Deliveries of round N−1 written after that
            // snapshot smear into round N — a bounded, documented blur.)
            let relay_bytes = ledger.rounds[0]
                .load(Ordering::Relaxed)
                .saturating_sub(relay_bytes_before);
            relay.count(Phase::Exchange, round as u32, Metric::Bytes, relay_bytes);
            if trace.is_some() && !done_at_ms.is_empty() {
                let max = done_at_ms.iter().copied().fold(f64::MIN, f64::max);
                let min = done_at_ms.iter().copied().fold(f64::MAX, f64::min);
                let mean = done_at_ms.iter().sum::<f64>() / done_at_ms.len() as f64;
                let skew_ratio = if mean > 0.0 { max / mean } else { 1.0 };
                let pred = match (pred_round_bytes, pred_skew) {
                    (Some(b), Some(s)) => {
                        format!(" pred_round_bytes={b:.0} pred_skew_ratio={s:.2}")
                    }
                    _ => String::new(),
                };
                eprintln!(
                    "[owlpar-cluster] RoundSummary round={round} workers={} \
                     sent={round_sent} max_ms={max:.1} min_ms={min:.1} \
                     skew_ms={:.1} skew_ratio={skew_ratio:.2} \
                     relay_bytes={relay_bytes}{pred}",
                    done_at_ms.len(),
                    max - min,
                );
            }
            if stop || !alive.iter().any(|&a| a) {
                break;
            }
            round += 1;
        }

        // --- finals --------------------------------------------------
        while (0..k).any(|i| alive[i] && finals[i].is_none()) {
            match events.recv_timeout(cfg.round_timeout) {
                Ok(Event::Final { from, stats, store }) => {
                    finals[from] = Some((stats, store));
                    delivery_txs[from] = None;
                }
                Ok(Event::Dead { from, detail }) => {
                    kill(
                        from,
                        WorkerError::Comm {
                            worker: from,
                            source: CommError::Io {
                                round,
                                worker: from,
                                path: None,
                                kind: ErrorKind::ConnectionAborted,
                                detail,
                                attempts: 1,
                            },
                        },
                        &mut alive,
                        &mut delivery_txs,
                        &mut worker_errors,
                    );
                }
                Ok(Event::Routed { .. }) => {} // late, harmless: run is over
                Ok(Event::Done { from, .. }) => {
                    kill(
                        from,
                        WorkerError::Comm {
                            worker: from,
                            source: CommError::Protocol {
                                round,
                                worker: from,
                                peer: from,
                                detail: "announced a round after the stop verdict".to_string(),
                            },
                        },
                        &mut alive,
                        &mut delivery_txs,
                        &mut worker_errors,
                    );
                }
                Err(_) => {
                    for id in 0..k {
                        if alive[id] && finals[id].is_none() {
                            kill(
                                id,
                                WorkerError::BarrierTimeout {
                                    worker: id,
                                    round,
                                    waited: cfg.round_timeout,
                                },
                                &mut alive,
                                &mut delivery_txs,
                                &mut worker_errors,
                            );
                        }
                    }
                }
            }
        }
        delivery_txs.clear(); // release any handler still blocked
    });
    let host_parallel_time = t_par.elapsed();

    // --- aggregate + recover -----------------------------------------
    let t_agg = Instant::now();
    let agg_span = relay.begin(Phase::Aggregate, NO_ROUND);
    let mut worker_stats = Vec::with_capacity(k);
    let mut output_sizes = Vec::with_capacity(k);
    for (id, f) in finals.into_iter().enumerate() {
        match f {
            Some((stats, store)) => {
                output_sizes.push(store.len());
                let mut part = TripleStore::new();
                part.extend(store);
                graph.store.union_with(&part);
                worker_stats.push(stats.into_worker_stats(id));
            }
            None => worker_stats.push(WorkerStats {
                id,
                ..WorkerStats::default()
            }),
        }
    }
    let mut recovered = false;
    if !worker_errors.is_empty() {
        if !recoverable {
            return Err(NetError::Run(RunError::Workers {
                errors: worker_errors,
            }));
        }
        let recovery_span = relay.begin(Phase::Recovery, NO_ROUND);
        reclose_serial(graph, cfg, &plan.all_rules);
        relay.end(recovery_span);
        recovered = true;
    }
    relay.end(agg_span);
    let aggregation = t_agg.elapsed();

    let (parallel_time, sim_sync) = simulate_rounds(&worker_stats);
    for (w, s) in worker_stats.iter_mut().zip(sim_sync) {
        w.sync_time = s;
    }
    // Lay the analyzer's predictions beside the measured trace — the
    // exact keys `owlpar trace summary` reads from the `"plan"` extra.
    if let Some(rec) = &trace {
        let plan_json = match &analysis {
            Some(a) => format!(
                "{{\"strategy\":{:?},\"setup_bytes\":{},\"round_bytes\":{:.1},\
                 \"predicted_rounds\":{},\"skew_ratio\":{:.4}}}",
                a.strategy,
                a.setup_bytes,
                a.round_bytes,
                a.rounds.expected,
                a.max_load_share * k as f64,
            ),
            None => format!("{{\"strategy\":{:?}}}", plan.strategy.label()),
        };
        rec.set_extra("plan", plan_json);
    }
    let closure_size = graph.len();
    Ok(RunReport {
        k,
        breakdown: PhaseBreakdown::from_workers(&worker_stats, aggregation),
        workers: worker_stats,
        partition_time: plan.partition_time,
        parallel_time,
        host_parallel_time,
        total_time: start_total.elapsed(),
        derived: closure_size - before_len,
        closure_size,
        output_replication: or_excess(&output_sizes, closure_size),
        partition_quality: plan.quality,
        edge_cut: plan.edge_cut,
        worker_errors,
        recovered,
        wire: Some(ledger.snapshot()),
    })
}

// ---------------------------------------------------------------------
// worker
// ---------------------------------------------------------------------

/// Rule indices per partition, recovered from the shipped assignment.
fn parts_from_assignment(k: usize, assignment: &[u32]) -> Vec<Vec<usize>> {
    let mut parts = vec![Vec::new(); k];
    for (i, &p) in assignment.iter().enumerate() {
        parts[p as usize].push(i);
    }
    parts
}

/// Rebuild the in-process routing table from its wire image, validating
/// every destination it could ever produce against the cluster size.
fn rebuild_routing(w: WireRouting, k: u32, all_rules: &Arc<Vec<Rule>>) -> Result<Routing, NetError> {
    let check_rules_len = |len: usize| {
        if len == all_rules.len() {
            Ok(())
        } else {
            Err(NetError::protocol(format!(
                "rule assignment covers {len} rule(s), rule-base has {}",
                all_rules.len()
            )))
        }
    };
    match w {
        WireRouting::Data { owner } => {
            let mut map = FxHashMap::default();
            for (node, worker) in owner {
                if worker >= k {
                    return Err(NetError::protocol(format!(
                        "ownership table assigns {node:?} to worker {worker} of {k}"
                    )));
                }
                map.insert(node, worker);
            }
            Ok(Routing::Data {
                owner: Arc::new(map),
            })
        }
        WireRouting::Rule { k: parts, assignment } => {
            if parts != k {
                return Err(NetError::protocol(format!(
                    "rule routing built for {parts} partitions, cluster has {k}"
                )));
            }
            check_rules_len(assignment.len())?;
            let rebuilt = RulePartitions {
                k: parts as usize,
                parts: parts_from_assignment(parts as usize, &assignment),
                assignment,
                edge_cut: 0,
                partition_time: Duration::ZERO,
            };
            Ok(Routing::Rule {
                partitions: Arc::new(rebuilt),
                all_rules: Arc::clone(all_rules),
            })
        }
        WireRouting::Hybrid {
            owner,
            groups_k,
            groups_assignment,
            data_shards,
        } => {
            if groups_k.checked_mul(data_shards) != Some(k) {
                return Err(NetError::protocol(format!(
                    "hybrid routing {groups_k} group(s) × {data_shards} shard(s) ≠ cluster size {k}"
                )));
            }
            check_rules_len(groups_assignment.len())?;
            let mut map = FxHashMap::default();
            for (node, shard) in owner {
                map.insert(node, shard); // shard < data_shards checked at decode
            }
            let rebuilt = RulePartitions {
                k: groups_k as usize,
                parts: parts_from_assignment(groups_k as usize, &groups_assignment),
                assignment: groups_assignment,
                edge_cut: 0,
                partition_time: Duration::ZERO,
            };
            Ok(Routing::Hybrid {
                owner: Arc::new(map),
                groups: Arc::new(rebuilt),
                all_rules: Arc::clone(all_rules),
                data_shards,
            })
        }
    }
}

/// Read one master frame and decode it, with wire-byte accounting.
fn read_master(stream: &mut TcpStream, n_terms: u32, recv: &mut u64) -> Result<MasterMsg, NetError> {
    let body = read_crc_frame(stream)?;
    *recv += body.len() as u64 + FRAME_OVERHEAD;
    decode_master_msg(&body, n_terms)
}

/// Run one worker process: dial the master, handshake, receive the
/// partition, execute barrier rounds to the stop verdict, ship the final
/// store back. Mirrors `owlpar_core::worker::run_worker` step for step —
/// the exchanges just travel through the master instead of channels.
pub fn run_cluster_worker(
    addr: impl ToSocketAddrs,
    opts: &WorkerOptions,
) -> Result<WorkerSummary, NetError> {
    // Dial with the shared capped backoff: the master may still be
    // partitioning when we start.
    let deadline = Instant::now() + opts.connect_timeout;
    let mut backoff = Backoff::new(Duration::from_millis(5), Duration::from_millis(250));
    let mut stream = loop {
        match TcpStream::connect(&addr) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(NetError::Io(e));
                }
                backoff.sleep();
            }
        }
    };
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(opts.connect_timeout))?;
    stream.set_write_timeout(Some(opts.connect_timeout))?;

    // --- handshake ---------------------------------------------------
    let mut wire_sent = 0u64;
    let mut wire_recv = 0u64;
    send_worker_counted(
        &mut stream,
        &WorkerMsg::Hello {
            magic: WIRE_MAGIC,
            version: PROTOCOL_VERSION,
        },
        &mut wire_sent,
    )?;
    let (node_id, k, epoch, traced) = match read_master(&mut stream, u32::MAX, &mut wire_recv)? {
        MasterMsg::Welcome {
            node_id,
            k,
            epoch,
            trace,
        } => (node_id, k, epoch, trace),
        MasterMsg::Reject { reason } => return Err(handshake_err(reason)),
        other => {
            return Err(handshake_err(format!(
                "expected Welcome or Reject, got {other:?}"
            )))
        }
    };
    if k == 0 || node_id >= k {
        return Err(handshake_err(format!(
            "master assigned node id {node_id} in a cluster of {k}"
        )));
    }

    // Advertise whatever shipped partitions we hold (an empty advert
    // when uncached — the master always reads one).
    let cache = match &opts.cache_dir {
        Some(dir) => Some(PartitionCache::open(dir)?),
        None => None,
    };
    let entries = cache.as_ref().map(PartitionCache::scan).unwrap_or_default();
    send_worker_counted(&mut stream, &WorkerMsg::CacheAdvert { entries }, &mut wire_sent)?;

    let setup = match read_master(&mut stream, u32::MAX, &mut wire_recv)? {
        MasterMsg::Setup(s) => *s,
        other => {
            return Err(handshake_err(format!(
                "expected Setup after Welcome, got {other:?}"
            )))
        }
    };
    // Resolve the payload blob: shipped on the wire (verify, then
    // persist for next time) or elided because the master matched our
    // advert (load and re-verify from disk). Either way the bytes are
    // checked against the header's digest before they are decoded.
    let blob = match setup.payload {
        Some(blob) => {
            if digest128(&blob) != setup.payload_digest {
                return Err(NetError::protocol(
                    "setup payload does not match its declared digest",
                ));
            }
            if let Some(c) = &cache {
                // A cache write failure costs the next run a re-ship,
                // not this run its result.
                let _ = c.store(&setup.input_digest, &setup.config_digest, node_id, &blob);
            }
            blob
        }
        None => cache
            .as_ref()
            .and_then(|c| {
                c.load(
                    &setup.input_digest,
                    &setup.config_digest,
                    node_id,
                    &setup.payload_digest,
                )
            })
            .ok_or_else(|| {
                handshake_err(
                    "master elided the setup payload but no matching cache entry exists",
                )
            })?,
    };
    let payload = decode_setup_payload(&blob)?;
    let n_terms = payload.n_terms;
    let round_timeout = Duration::from_millis(setup.round_timeout_ms.max(1000));
    // The master's Deliver can lag a full coordinator round behind our
    // sends; give reads twice its patience before declaring it gone.
    stream.set_read_timeout(Some(round_timeout.saturating_mul(2)))?;
    stream.set_write_timeout(Some(round_timeout))?;

    // --- local state: exactly run_worker's ---------------------------
    let all_rules = Arc::new(payload.all_rules);
    let routing = rebuild_routing(payload.routing, k, &all_rules)?;
    let reasoner = Reasoner::new(payload.my_rules, payload.materialization);
    let mut store = TripleStore::new();
    store.extend(payload.schema);
    store.extend(payload.base);
    let mut faults = setup.faults;
    faults.sort_by_key(|&(r, _)| r);

    let mut stats = WireStats::default();
    let me = node_id;
    let mut round_cpu = Duration::ZERO;

    // Telemetry: a LOCAL recorder, never the process global — worker
    // events reach the merged timeline only as `TraceChunk` frames, so
    // a loopback cluster (worker threads sharing one process in tests)
    // cannot double-count through an ambient recorder. The master's
    // Welcome flag decides; untraced runs carry a no-op recorder and
    // ship nothing.
    let rec = if traced {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let mut lane = rec.track("worker");

    let t = CpuTimer::start();
    let join_span = lane.begin(Phase::Join, NO_ROUND);
    let base: Vec<Triple> = store.iter().copied().collect();
    let mut derived = reasoner.materialize_delta(&mut store, base);
    lane.end(join_span);
    let dt = t.elapsed();
    stats.reason_micros += dt.as_micros() as u64;
    round_cpu += dt;
    stats.derived += derived.len() as u64;

    let mut dests: Vec<u32> = Vec::with_capacity(2);
    let mut round = 0usize;
    loop {
        stats.rounds += 1;
        let round_span = lane.begin(Phase::Round, round as u32);

        // injected faults pinned to the start of this round
        for &(r, fault) in &faults {
            if r as usize != round {
                continue;
            }
            match fault {
                WireFault::Panic => {
                    let _ = stream.shutdown(Shutdown::Both);
                    return Err(NetError::Injected {
                        round,
                        kind: "panic",
                    });
                }
                WireFault::Disconnect => {
                    let _ = stream.shutdown(Shutdown::Both);
                    return Err(NetError::Injected {
                        round,
                        kind: "disconnect",
                    });
                }
                WireFault::Delay { millis } => thread::sleep(Duration::from_millis(millis)),
            }
        }

        // route + send
        let t = CpuTimer::start();
        let exchange_span = lane.begin(Phase::Exchange, round as u32);
        let mut outbox: Vec<Vec<Triple>> = vec![Vec::new(); k as usize];
        for tr in &derived {
            routing.destinations(tr, me, &mut dests);
            for &d in &dests {
                outbox[d as usize].push(*tr);
            }
        }
        let chunk = opts.chunk_triples.max(1);
        let mut sent_now = 0u64;
        for (to, batch) in outbox.iter().enumerate() {
            if batch.is_empty() || to as u32 == me {
                continue;
            }
            // Bounded frames regardless of batch size: a huge round
            // splits into several Triples frames the master unions.
            for part in batch.chunks(chunk) {
                send_worker_counted(
                    &mut stream,
                    &WorkerMsg::Triples {
                        to: to as u32,
                        batch: part.to_vec(),
                    },
                    &mut wire_sent,
                )?;
            }
            sent_now += batch.len() as u64;
        }
        lane.count(Phase::Exchange, round as u32, Metric::Sent, sent_now);
        lane.end(exchange_span);
        // Ship buffered telemetry before announcing the round — one
        // chunk per round keeps frames small and gives the master a
        // fresh clock sample every round: the chunk's `clock_us` is the
        // clock-offset handshake (the master keeps the minimum-latency
        // estimate). Spans still open here (this Round span itself)
        // ride a later chunk; the pre-Final flush ships the stragglers.
        if rec.is_enabled() {
            let chunk_events = lane.take_buffered();
            let payload = obs_wire::encode_trace_chunk(rec.now_us(), &chunk_events);
            send_worker_counted(&mut stream, &WorkerMsg::TraceChunk { payload }, &mut wire_sent)?;
        }
        send_worker_counted(
            &mut stream,
            &WorkerMsg::RoundDone {
                round: round as u32,
                sent: sent_now,
            },
            &mut wire_sent,
        )?;
        stats.sent += sent_now;
        let dt = t.elapsed();
        stats.io_micros += dt.as_micros() as u64;
        round_cpu += dt;

        // the Deliver is barrier A, the verdict and barrier B in one
        stats.round_cpu_micros.push(round_cpu.as_micros() as u64);
        round_cpu = Duration::ZERO;
        let t = CpuTimer::start();
        let wait_span = lane.begin(Phase::BarrierWait, round as u32);
        // The round's inbound stream: any number of DeliverChunk frames
        // then the Deliver verdict carrying the tail.
        let mut inbound: Vec<Triple> = Vec::new();
        let stop = loop {
            match read_master(&mut stream, n_terms, &mut wire_recv)? {
                MasterMsg::DeliverChunk { round: r, batch } => {
                    if r as usize != round {
                        return Err(NetError::protocol(format!(
                            "master streamed a chunk of round {r} during round {round}"
                        )));
                    }
                    inbound.extend(batch);
                }
                MasterMsg::Deliver {
                    round: r,
                    stop,
                    triples,
                } => {
                    if r as usize != round {
                        return Err(NetError::protocol(format!(
                            "master delivered round {r} during round {round}"
                        )));
                    }
                    inbound.extend(triples);
                    break stop;
                }
                other => {
                    return Err(NetError::protocol(format!(
                        "expected Deliver, got {other:?}"
                    )))
                }
            }
        };
        lane.end(wait_span);
        let triples = inbound;
        stats.received += triples.len() as u64;
        lane.count(Phase::Collect, round as u32, Metric::Received, triples.len() as u64);
        let dt = t.elapsed();
        stats.io_micros += dt.as_micros() as u64;
        round_cpu += dt;
        if stop {
            lane.end(round_span);
            break;
        }

        // absorb + incremental closure
        let t = CpuTimer::start();
        let join_span = lane.begin(Phase::Join, round as u32);
        let fresh: Vec<Triple> = triples.into_iter().filter(|tr| store.insert(*tr)).collect();
        derived = reasoner.materialize_delta(&mut store, fresh);
        lane.end(join_span);
        let dt = t.elapsed();
        stats.reason_micros += dt.as_micros() as u64;
        round_cpu += dt;
        stats.derived += derived.len() as u64;
        lane.end(round_span);
        round += 1;
    }
    if round_cpu > Duration::ZERO {
        stats.round_cpu_micros.push(round_cpu.as_micros() as u64);
    }
    stats.output_size = store.len() as u64;

    let summary = WorkerSummary {
        node_id,
        k,
        epoch,
        rounds: stats.rounds as usize,
        derived: stats.derived as usize,
        store_len: store.len(),
        sent: stats.sent,
    };
    // Ship the final store as a bounded chunk stream: FinalChunk* then
    // the Final terminator carrying the tail (and the counters), so a
    // store of any size fits under the per-frame cap. Globally sorted
    // first — each chunk is then a contiguous id range, which is both
    // deterministic and what the delta codec compresses best.
    let full = store.iter_sorted();
    let chunk = opts.chunk_triples.max(1);
    let tail_start = full.len().saturating_sub(1) / chunk * chunk;
    for (seq, part) in full[..tail_start].chunks(chunk).enumerate() {
        send_worker_counted(
            &mut stream,
            &WorkerMsg::FinalChunk {
                seq: seq as u32,
                batch: part.to_vec(),
            },
            &mut wire_sent,
        )?;
    }
    // Flush the telemetry stragglers (final Round span, last barrier
    // wait) just before the Final frame — the handler absorbs the
    // accumulated events when the pump exits.
    if rec.is_enabled() {
        let chunk_events = lane.take_buffered();
        let payload = obs_wire::encode_trace_chunk(rec.now_us(), &chunk_events);
        send_worker_counted(&mut stream, &WorkerMsg::TraceChunk { payload }, &mut wire_sent)?;
    }
    // The counters ride inside the Final frame, so they cannot include
    // it; the master-side ledger is the authoritative total.
    stats.wire_sent_bytes = wire_sent;
    stats.wire_recv_bytes = wire_recv;
    send_worker_counted(
        &mut stream,
        &WorkerMsg::Final {
            stats,
            store: full[tail_start..].to_vec(),
        },
        &mut wire_sent,
    )?;
    Ok(summary)
}
