//! The empirical performance model of Figs. 3 and 4.
//!
//! The paper regresses a cubic model over serial reasoning times for
//! LUBM-1, LUBM-5, LUBM-10, ... ("since the worst case of the reasoning
//! for the rule set is cubic, fitting a cubic model is reasonable") and
//! uses it to compute a theoretical maximum speedup: a perfect partition
//! splits the n-resource problem into k problems of n/k resources with no
//! replication, so
//! `max_speedup(n, k) = t(n) / t(n/k)`.

use serde::Serialize;

/// A fitted polynomial `t(x) = c₀ + c₁x + c₂x² + …`.
#[derive(Debug, Clone, Serialize)]
pub struct PolyModel {
    /// Coefficients, lowest order first.
    pub coeffs: Vec<f64>,
    /// Coefficient of determination on the training points.
    pub r_squared: f64,
}

impl PolyModel {
    /// Evaluate the model at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.coeffs
            .iter()
            .rev()
            .fold(0.0, |acc, &c| acc * x + c)
    }

    /// Theoretical maximum speedup on a size-`n` input over `k` perfect
    /// partitions (Fig. 3): the serial time over the time of one
    /// (n/k)-sized partition.
    pub fn max_speedup(&self, n: f64, k: f64) -> f64 {
        let whole = self.predict(n);
        let part = self.predict(n / k);
        if part <= 0.0 {
            return f64::NAN;
        }
        whole / part
    }
}

/// Least-squares fit of a degree-`deg` polynomial through `(x, y)` points
/// via the normal equations (fine for the tiny systems of Fig. 4).
pub fn fit_poly(xs: &[f64], ys: &[f64], deg: usize) -> PolyModel {
    assert_eq!(xs.len(), ys.len());
    assert!(
        xs.len() > deg,
        "need more points than coefficients ({} <= {deg})",
        xs.len()
    );
    let m = deg + 1;
    // normal matrix A[i][j] = Σ x^(i+j), rhs b[i] = Σ y x^i
    let mut a = vec![vec![0.0f64; m]; m];
    let mut b = vec![0.0f64; m];
    for (&x, &y) in xs.iter().zip(ys) {
        let mut powers = vec![1.0f64; 2 * m - 1];
        for p in 1..2 * m - 1 {
            powers[p] = powers[p - 1] * x;
        }
        for i in 0..m {
            for j in 0..m {
                a[i][j] += powers[i + j];
            }
            b[i] += y * powers[i];
        }
    }
    let coeffs = solve(a, b);
    // R²
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|&y| (y - mean).powi(2)).sum();
    let model = PolyModel {
        coeffs,
        r_squared: 0.0,
    };
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| (y - model.predict(x)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    PolyModel {
        r_squared,
        ..model
    }
}

/// Cubic fit — the paper's choice.
pub fn fit_cubic(xs: &[f64], ys: &[f64]) -> PolyModel {
    fit_poly(xs, ys, 3)
}

/// Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // pivot
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap_or(col);
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(
            diag.abs() > 1e-12,
            "singular normal matrix (collinear sample points?)"
        );
        for row in (col + 1)..n {
            let f = a[row][col] / diag;
            let (head, tail) = a.split_at_mut(row);
            let pivot_row = &head[col];
            for (dst, src) in tail[0][col..n].iter_mut().zip(&pivot_row[col..n]) {
                *dst -= f * src;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in (row + 1)..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_cubic_recovered() {
        // t(x) = 2 + 3x + 0.5x² + 0.25x³
        let truth = |x: f64| 2.0 + 3.0 * x + 0.5 * x * x + 0.25 * x * x * x;
        let xs: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| truth(x)).collect();
        let m = fit_cubic(&xs, &ys);
        for (i, want) in [2.0, 3.0, 0.5, 0.25].iter().enumerate() {
            assert!(
                (m.coeffs[i] - want).abs() < 1e-6,
                "coeff {i}: {} vs {want}",
                m.coeffs[i]
            );
        }
        assert!(m.r_squared > 0.999999);
        assert!((m.predict(10.0) - truth(10.0)).abs() < 1e-4);
    }

    #[test]
    fn noisy_fit_has_reasonable_r2() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        // pseudo-noise deterministic
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| x * x * x + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let m = fit_cubic(&xs, &ys);
        assert!(m.r_squared > 0.99, "r2={}", m.r_squared);
    }

    #[test]
    fn linear_data_fits_with_linear_poly() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0]; // 1 + 2x
        let m = fit_poly(&xs, &ys, 1);
        assert!((m.coeffs[0] - 1.0).abs() < 1e-9);
        assert!((m.coeffs[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn superlinear_speedup_for_cubic_model() {
        // pure cubic: t(n) = n³ → speedup at k = t(n)/t(n/k) = k³
        let m = PolyModel {
            coeffs: vec![0.0, 0.0, 0.0, 1.0],
            r_squared: 1.0,
        };
        assert!((m.max_speedup(1000.0, 4.0) - 64.0).abs() < 1e-9);
        // the paper's 18x on 16 nodes is far below the cubic ceiling
        assert!(m.max_speedup(1000.0, 16.0) > 18.0);
    }

    #[test]
    fn linear_model_gives_linear_speedup() {
        let m = PolyModel {
            coeffs: vec![0.0, 2.0],
            r_squared: 1.0,
        };
        assert!((m.max_speedup(100.0, 8.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need more points")]
    fn underdetermined_fit_panics() {
        fit_cubic(&[1.0, 2.0], &[1.0, 2.0]);
    }
}
