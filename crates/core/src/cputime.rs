//! Per-thread CPU clocks — the basis of the cluster simulation.
//!
//! The paper ran one partition per processor core of a 16-node cluster.
//! This reproduction may run on a machine with fewer cores than
//! partitions, where wall-clock timing of worker threads measures core
//! *contention*, not the algorithm. Instead, each worker charges its work
//! against its own `CLOCK_THREAD_CPUTIME_ID`: the time a dedicated
//! processor would have needed. The master then reconstructs the
//! cluster's wall-clock per barrier round (`max` over workers) — a
//! discrete-event simulation of the synchronous execution in Algorithm 3.
//! On a machine with ≥ k cores, CPU time and wall time coincide and the
//! simulation degenerates to direct measurement.

use std::time::Duration;

/// CPU time consumed by the calling thread since it started.
// The only unsafe code in the workspace: a direct libc syscall (there is
// no stable std API for CLOCK_THREAD_CPUTIME_ID). The crate root denies
// `unsafe_code`, so the exemption is scoped to this one probe.
#[allow(unsafe_code)]
pub fn thread_cpu_now() -> Duration {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid, writable timespec; the clock id is a constant
    // supported on all Linux targets.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
}

/// A stopwatch over the thread CPU clock.
#[derive(Debug, Clone, Copy)]
pub struct CpuTimer {
    start: Duration,
}

impl CpuTimer {
    /// Start timing now.
    pub fn start() -> Self {
        CpuTimer {
            start: thread_cpu_now(),
        }
    }

    /// CPU time elapsed on this thread since [`CpuTimer::start`].
    pub fn elapsed(&self) -> Duration {
        thread_cpu_now().saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn burn(mut n: u64) -> u64 {
        let mut acc = 0u64;
        while n > 0 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(n);
            n -= 1;
        }
        acc
    }

    #[test]
    fn cpu_clock_is_monotonic() {
        let a = thread_cpu_now();
        std::hint::black_box(burn(100_000));
        let b = thread_cpu_now();
        assert!(b >= a);
    }

    #[test]
    fn busy_work_accumulates_cpu_time() {
        let t = CpuTimer::start();
        std::hint::black_box(burn(20_000_000));
        assert!(t.elapsed() > Duration::from_micros(100));
    }

    #[test]
    fn sleeping_accumulates_almost_no_cpu_time() {
        let t = CpuTimer::start();
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            t.elapsed() < Duration::from_millis(20),
            "sleep must not be charged as CPU: {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn threads_have_independent_clocks() {
        std::hint::black_box(burn(5_000_000));
        let child_cpu = std::thread::spawn(|| {
            let t = CpuTimer::start();
            std::hint::black_box(burn(1_000));
            t.elapsed()
        })
        .join()
        .unwrap();
        // a fresh thread's stopwatch doesn't see the parent's burned CPU
        assert!(child_cpu < Duration::from_millis(50));
    }
}
