//! Typed errors for the parallel runtime.
//!
//! Algorithm 3 runs workers through barrier-synchronized rounds over a
//! transport that is fallible by design (the paper exchanged files on a
//! shared filesystem). Instead of panicking on the first IO hiccup and
//! poisoning the whole fabric, every failure is classified into one of
//! three layers and propagated to the master:
//!
//! * [`CommError`] — a single transport operation failed (persistent IO
//!   error after bounded retries, a hung-up channel peer, a timeout);
//! * [`WorkerError`] — one worker is out of the run (comm failure,
//!   contained panic, barrier timeout);
//! * [`RunError`] — the run as a whole could not produce a closure
//!   (invalid configuration, unrecovered worker losses).
//!
//! Corrupted or foreign *messages* are deliberately **not** errors: the
//! transport skips them and records a [`SkippedMessage`] report, because
//! one bad message must not take down a round that every other message
//! completed (see `comm`).

use owlpar_lint::LintReport;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// A failed communication operation on one worker's endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// An IO operation kept failing after bounded retries with backoff.
    Io {
        /// Round in which the operation ran.
        round: usize,
        /// Worker whose endpoint failed.
        worker: usize,
        /// File involved, if the shared-file transport was active.
        path: Option<PathBuf>,
        /// Kind of the final IO error.
        kind: std::io::ErrorKind,
        /// Rendered message of the final IO error.
        detail: String,
        /// Number of attempts made (including the first).
        attempts: u32,
    },
    /// The channel peer hung up (its worker is gone).
    Disconnected {
        /// Round in which the send ran.
        round: usize,
        /// Sending worker.
        from: usize,
        /// Receiving worker whose endpoint is gone.
        to: usize,
    },
    /// A collect did not complete within the allotted time.
    Timeout {
        /// Round that timed out.
        round: usize,
        /// Worker that was waiting.
        worker: usize,
        /// How long it waited.
        waited: Duration,
    },
    /// The operation is not supported by the selected transport
    /// (e.g. asynchronous draining over the shared-file transport).
    Unsupported {
        /// What was attempted.
        detail: &'static str,
    },
    /// A peer violated the wire protocol (bad checksum, unknown message
    /// tag, wrong round marker). Unlike a skippable corrupt *message
    /// file*, a corrupted length-prefixed *stream* cannot be
    /// resynchronized, so the connection is dead.
    Protocol {
        /// Round in which the violation was observed.
        round: usize,
        /// Worker whose endpoint observed it.
        worker: usize,
        /// Peer that sent the offending bytes.
        peer: usize,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Io {
                round,
                worker,
                path,
                kind,
                detail,
                attempts,
            } => {
                write!(
                    f,
                    "worker {worker} round {round}: IO error after {attempts} attempt(s)"
                )?;
                if let Some(p) = path {
                    write!(f, " on {}", p.display())?;
                }
                write!(f, ": {detail} ({kind:?})")
            }
            CommError::Disconnected { round, from, to } => write!(
                f,
                "worker {from} round {round}: peer {to} disconnected"
            ),
            CommError::Timeout {
                round,
                worker,
                waited,
            } => write!(
                f,
                "worker {worker} round {round}: collect timed out after {waited:?}"
            ),
            CommError::Unsupported { detail } => {
                write!(f, "unsupported transport operation: {detail}")
            }
            CommError::Protocol {
                round,
                worker,
                peer,
                detail,
            } => write!(
                f,
                "worker {worker} round {round}: protocol violation from peer {peer}: {detail}"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Why one worker dropped out of the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerError {
    /// The worker's transport endpoint failed permanently.
    Comm {
        /// Worker index.
        worker: usize,
        /// The transport failure.
        source: CommError,
    },
    /// The worker panicked; the panic was contained by the runtime.
    Panicked {
        /// Worker index.
        worker: usize,
        /// Last round the worker was known to have entered.
        round: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// The worker gave up waiting at the round barrier.
    BarrierTimeout {
        /// Worker index.
        worker: usize,
        /// Round at which it was waiting.
        round: usize,
        /// Configured patience that ran out.
        waited: Duration,
    },
}

impl WorkerError {
    /// Index of the worker this error belongs to.
    pub fn worker(&self) -> usize {
        match self {
            WorkerError::Comm { worker, .. }
            | WorkerError::Panicked { worker, .. }
            | WorkerError::BarrierTimeout { worker, .. } => *worker,
        }
    }
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Comm { worker, source } => {
                write!(f, "worker {worker}: communication failed: {source}")
            }
            WorkerError::Panicked {
                worker,
                round,
                message,
            } => write!(f, "worker {worker} panicked in round {round}: {message}"),
            WorkerError::BarrierTimeout {
                worker,
                round,
                waited,
            } => write!(
                f,
                "worker {worker} timed out at the round-{round} barrier after {waited:?}"
            ),
        }
    }
}

impl std::error::Error for WorkerError {}

/// Why a parallel run produced no closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The configuration is invalid (k = 0, indivisible hybrid split,
    /// async rounds over the file transport, unparsable fault plan, ...).
    Config {
        /// What is wrong.
        detail: String,
    },
    /// Building the communication fabric failed before any worker ran.
    Fabric {
        /// The underlying transport failure.
        source: CommError,
    },
    /// The pre-spawn lint gate found deny-level problems in the effective
    /// rule-base (compiled + extra rules): running it under the configured
    /// partitioning could silently produce an incomplete closure, so the
    /// master refuses before any worker spawns.
    Lint {
        /// The full lint report (render or serialize it for the user).
        report: LintReport,
    },
    /// The static plan analyzer rejected every candidate plan with
    /// deny-level diagnostics (OWL011–OWL016): running any of them would
    /// degenerate (one worker owning the load, exchange dwarfing the
    /// base, a majority of workers idle). Raised by `--strategy auto`
    /// before any worker spawns; not overridable. Carries rendered text
    /// rather than the reports so `RunError` stays `Eq` (the reports
    /// hold floating-point estimates).
    Plan {
        /// Strategy labels that were considered.
        candidates: Vec<String>,
        /// Total deny-level findings across the candidates.
        deny: usize,
        /// Rendered per-candidate deny diagnostics.
        detail: String,
    },
    /// One or more workers were lost and the run could not recover
    /// (recovery is only guaranteed for data partitioning; see
    /// `FaultRecovery`).
    Workers {
        /// Every worker loss, in worker order.
        errors: Vec<WorkerError>,
    },
}

impl RunError {
    /// Convenience constructor for configuration errors.
    pub fn config(detail: impl Into<String>) -> Self {
        RunError::Config {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Config { detail } => write!(f, "invalid configuration: {detail}"),
            RunError::Fabric { source } => write!(f, "building comm fabric failed: {source}"),
            RunError::Lint { report } => write!(
                f,
                "rule-base rejected by the lint gate ({} deny finding(s)): {}",
                report.deny_count(),
                report
                    .deny_findings()
                    .map(|d| format!(
                        "{}{}: {}",
                        d.code.id(),
                        d.rule.as_deref().map(|r| format!(" [{r}]")).unwrap_or_default(),
                        d.message
                    ))
                    .collect::<Vec<_>>()
                    .join("; ")
            ),
            RunError::Plan {
                candidates,
                deny,
                detail,
            } => write!(
                f,
                "no viable partition plan: every candidate ({}) has deny-level plan \
                 diagnostics ({deny} finding(s)): {detail}",
                candidates.join(", ")
            ),
            RunError::Workers { errors } => {
                write!(f, "{} worker(s) lost without recovery: ", errors.len())?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<WorkerError> for RunError {
    fn from(e: WorkerError) -> Self {
        RunError::Workers { errors: vec![e] }
    }
}

/// A message the transport dropped instead of delivering, with the reason.
/// Skipping is reported, never silent: the master surfaces the counts in
/// `WorkerStats::skipped` and the reports on the endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedMessage {
    /// Round in which the message was collected.
    pub round: usize,
    /// Worker that skipped it.
    pub worker: usize,
    /// File name (shared-file transport) or a synthetic label.
    pub origin: String,
    /// Why it was skipped.
    pub reason: String,
}

impl fmt::Display for SkippedMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker {} round {}: skipped {}: {}",
            self.worker, self.round, self.origin, self.reason
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_coordinates() {
        let e = CommError::Io {
            round: 3,
            worker: 1,
            path: Some(PathBuf::from("/tmp/x.msg")),
            kind: std::io::ErrorKind::Interrupted,
            detail: "interrupted".into(),
            attempts: 5,
        };
        let s = e.to_string();
        assert!(s.contains("round 3"));
        assert!(s.contains("worker 1"));
        assert!(s.contains("5 attempt"));
    }

    #[test]
    fn worker_error_exposes_worker() {
        let e = WorkerError::Panicked {
            worker: 7,
            round: 2,
            message: "boom".into(),
        };
        assert_eq!(e.worker(), 7);
        assert!(e.to_string().contains("worker 7"));
        assert!(e.to_string().contains("round 2"));
    }

    #[test]
    fn run_error_aggregates_workers() {
        let e = RunError::Workers {
            errors: vec![
                WorkerError::Panicked {
                    worker: 0,
                    round: 1,
                    message: "a".into(),
                },
                WorkerError::BarrierTimeout {
                    worker: 2,
                    round: 1,
                    waited: Duration::from_secs(30),
                },
            ],
        };
        let s = e.to_string();
        assert!(s.contains("2 worker(s)"));
        assert!(s.contains("worker 0"));
        assert!(s.contains("worker 2"));
    }
}
