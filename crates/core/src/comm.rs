//! Inter-partition communication backends.
//!
//! The paper's implementation exchanged tuples through files on a shared
//! filesystem ("we could not find an MPI package that works with the
//! version of Java we have used") and reports the resulting IO overhead
//! in Fig. 2, predicting that an in-memory transport (MPI) would shrink
//! it. We implement both ends of that comparison:
//!
//! * [`CommMode::Channel`] — crossbeam channels, the "MPI-like" zero-copy
//!   transport;
//! * [`CommMode::SharedFile`] — actual files in a shared directory, one
//!   per (round, sender, receiver), serialized as N-Triples text (like
//!   the paper's Jena implementation) or as the compact binary batch
//!   format.
//!
//! Both are round-synchronous: every `send` happens before the round
//! barrier, every `collect` after it, so `collect` sees exactly the
//! messages addressed to this worker this round.
//!
//! # Fault model
//!
//! Message exchange is treated as fallible by design:
//!
//! * every file write is **atomic** (temp file + rename), so a crashed
//!   writer never leaves a half-message where `collect` will find it;
//! * transient IO errors are retried with bounded exponential backoff
//!   ([`RETRY_ATTEMPTS`]/[`RETRY_BASE`]); only a *persistent* failure
//!   surfaces as [`CommError::Io`];
//! * corrupted, truncated, non-UTF-8 or otherwise undecodable messages
//!   are **skipped with a report** ([`SkippedMessage`]) instead of
//!   poisoning the round — one bad file must not take down the fabric;
//! * auto-created shared directories are removed when the last endpoint
//!   of the fabric drops;
//! * a seeded [`FaultPlan`] can inject IO errors, corruption, delays and
//!   panics at chosen (round, worker) coordinates for testing.

use crate::backoff::Backoff;
use crate::error::{CommError, SkippedMessage};
use crate::fault::{FaultPlan, FaultState};
use crossbeam::channel::{unbounded, Receiver, Sender};
use owlpar_rdf::triple::{decode_batch, encode_batch};
use owlpar_rdf::{parse_ntriples, Dictionary, Graph, Triple};
use std::io::ErrorKind;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A pluggable round-synchronous transport endpoint — how an external
/// crate (`owlpar-net`'s TCP mesh) slots into the fabric without the
/// core knowing about sockets. The contract mirrors [`WorkerComm`]:
/// every `send` of a round happens before that round's `collect`, and
/// `collect(round)` must return exactly the batches peers sent for
/// `round` — transports that multiplex rounds over one stream (TCP) use
/// end-of-round markers to cut the boundaries.
pub trait Transport: Send {
    /// Send a non-empty batch to peer `to` in `round`. Returns the bytes
    /// put on the wire (for the endpoint's traffic accounting).
    fn send(&mut self, round: usize, to: usize, batch: &[Triple]) -> Result<u64, CommError>;

    /// Drain every message addressed to this endpoint in `round`.
    fn collect(&mut self, round: usize) -> Result<Vec<Triple>, CommError>;

    /// Non-blocking drain for the asynchronous mode. Round-structured
    /// transports reject this ([`CommError::Unsupported`]).
    fn try_collect(&mut self) -> Result<Vec<Triple>, CommError> {
        Err(CommError::Unsupported {
            detail: "asynchronous draining is not supported by this transport",
        })
    }

    /// Messages skipped-with-report since the last call (drained into the
    /// endpoint's report list after each collect).
    fn take_skipped(&mut self) -> Vec<SkippedMessage> {
        Vec::new()
    }
}

/// Builds the `k` endpoints of a custom transport fabric (one
/// [`Transport`] per worker, index = worker id).
pub trait TransportFactory: Send + Sync {
    /// Human-readable transport name for reports and errors.
    fn label(&self) -> &'static str;

    /// Build all `k` connected endpoints.
    fn build(&self, k: usize) -> Result<Vec<Box<dyn Transport>>, CommError>;
}

/// Transport selection.
#[derive(Clone, Default)]
pub enum CommMode {
    /// In-memory channels (the paper's hypothetical MPI transport).
    #[default]
    Channel,
    /// Files in a shared directory (the paper's actual transport).
    SharedFile {
        /// Directory to exchange through; `None` = fresh temp dir,
        /// removed again when the fabric's last endpoint drops.
        dir: Option<PathBuf>,
        /// On-disk message encoding.
        format: WireFormat,
    },
    /// A custom fabric supplied by another crate (e.g. `owlpar-net`'s
    /// loopback TCP mesh).
    Custom(Arc<dyn TransportFactory>),
}

impl std::fmt::Debug for CommMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommMode::Channel => write!(f, "Channel"),
            CommMode::SharedFile { dir, format } => f
                .debug_struct("SharedFile")
                .field("dir", dir)
                .field("format", format)
                .finish(),
            CommMode::Custom(factory) => write!(f, "Custom({})", factory.label()),
        }
    }
}

/// On-disk message encoding for [`CommMode::SharedFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// N-Triples text — what a Jena-based implementation writes.
    #[default]
    NTriples,
    /// Little-endian 12-byte id triples.
    Binary,
}

/// Upper bound on a single message or frame payload the runtime accepts.
/// Shared between the shared-file transport and the serving wire codec
/// (`owlpar-serve`), so every length-prefixed byte stream in the system
/// rejects the same degenerate inputs.
pub const MAX_PAYLOAD_BYTES: u64 = 64 * 1024 * 1024;

/// Why a payload length was rejected by [`check_payload_bounds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadBoundsError {
    /// Zero-length payloads are never produced by a healthy peer — the
    /// transports skip empty batches at the sender.
    Empty,
    /// The payload exceeds [`MAX_PAYLOAD_BYTES`].
    Oversized {
        /// Claimed or observed length.
        len: u64,
        /// The bound that was exceeded.
        max: u64,
    },
}

impl std::fmt::Display for PayloadBoundsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PayloadBoundsError::Empty => write!(f, "zero-length payload"),
            PayloadBoundsError::Oversized { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte bound")
            }
        }
    }
}

impl std::error::Error for PayloadBoundsError {}

/// Validate a message/frame payload length *before* allocating or
/// decoding it. Both the shared-file decoder ([`WorkerComm::collect`])
/// and the `owlpar-serve` wire codec route their length fields through
/// this single check.
pub fn check_payload_bounds(len: u64) -> Result<(), PayloadBoundsError> {
    if len == 0 {
        Err(PayloadBoundsError::Empty)
    } else if len > MAX_PAYLOAD_BYTES {
        Err(PayloadBoundsError::Oversized {
            len,
            max: MAX_PAYLOAD_BYTES,
        })
    } else {
        Ok(())
    }
}

/// IO attempts per operation (first try + retries).
pub const RETRY_ATTEMPTS: u32 = 5;
/// Backoff before the second attempt; doubles per retry, capped at
/// [`RETRY_CAP`].
pub const RETRY_BASE: Duration = Duration::from_millis(1);
/// Upper bound on a single backoff sleep.
pub const RETRY_CAP: Duration = Duration::from_millis(50);

/// Is this IO error worth retrying?
fn transient(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
    )
}

/// Removes an auto-created shared directory when the last endpoint drops.
struct CommDirGuard {
    path: PathBuf,
}

impl Drop for CommDirGuard {
    fn drop(&mut self) {
        // Best-effort: a leftover dir is a leak, not a correctness issue.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// One worker's endpoint of the fabric.
pub struct WorkerComm {
    me: usize,
    round: usize,
    backend: Backend,
    faults: FaultState,
    skipped: Vec<SkippedMessage>,
    /// Bytes written by this worker (file mode) or triples moved
    /// (channel mode, 12 bytes each).
    pub bytes_sent: u64,
    /// Transient IO failures absorbed by retrying.
    pub io_retries: u64,
}

enum Backend {
    Channel {
        senders: Vec<Sender<Vec<Triple>>>,
        receiver: Receiver<Vec<Triple>>,
    },
    File {
        dir: PathBuf,
        dict: Arc<Dictionary>,
        format: WireFormat,
        /// Present iff the fabric auto-created the directory.
        _cleanup: Option<Arc<CommDirGuard>>,
    },
    Custom(Box<dyn Transport>),
}

/// Build the k-worker fabric for a mode. `dict` is the frozen global
/// dictionary (file mode decodes against it).
pub fn build_fabric(
    k: usize,
    mode: &CommMode,
    dict: Arc<Dictionary>,
) -> Result<Vec<WorkerComm>, CommError> {
    build_fabric_with_faults(k, mode, dict, None)
}

/// [`build_fabric`], with each endpoint additionally armed with its slice
/// of a fault-injection plan.
pub fn build_fabric_with_faults(
    k: usize,
    mode: &CommMode,
    dict: Arc<Dictionary>,
    plan: Option<&FaultPlan>,
) -> Result<Vec<WorkerComm>, CommError> {
    let fault_for = |me: usize| {
        plan.map(|p| p.for_worker(me)).unwrap_or_default()
    };
    match mode {
        CommMode::Channel => {
            let mut senders: Vec<Sender<Vec<Triple>>> = Vec::with_capacity(k);
            let mut receivers: Vec<Receiver<Vec<Triple>>> = Vec::with_capacity(k);
            for _ in 0..k {
                let (s, r) = unbounded();
                senders.push(s);
                receivers.push(r);
            }
            Ok(receivers
                .into_iter()
                .enumerate()
                .map(|(me, receiver)| WorkerComm {
                    me,
                    round: 0,
                    backend: Backend::Channel {
                        senders: senders.clone(),
                        receiver,
                    },
                    faults: fault_for(me),
                    skipped: Vec::new(),
                    bytes_sent: 0,
                    io_retries: 0,
                })
                .collect())
        }
        CommMode::SharedFile { dir, format } => {
            let (dir, cleanup) = match dir {
                Some(d) => (d.clone(), None),
                None => {
                    let mut d = std::env::temp_dir();
                    d.push(format!(
                        "owlpar-comm-{}-{:x}",
                        std::process::id(),
                        unique_nonce()
                    ));
                    let guard = Arc::new(CommDirGuard { path: d.clone() });
                    (d, Some(guard))
                }
            };
            std::fs::create_dir_all(&dir).map_err(|e| CommError::Io {
                round: 0,
                worker: 0,
                path: Some(dir.clone()),
                kind: e.kind(),
                detail: e.to_string(),
                attempts: 1,
            })?;
            Ok((0..k)
                .map(|me| WorkerComm {
                    me,
                    round: 0,
                    backend: Backend::File {
                        dir: dir.clone(),
                        dict: Arc::clone(&dict),
                        format: *format,
                        _cleanup: cleanup.clone(),
                    },
                    faults: fault_for(me),
                    skipped: Vec::new(),
                    bytes_sent: 0,
                    io_retries: 0,
                })
                .collect())
        }
        CommMode::Custom(factory) => Ok(factory
            .build(k)?
            .into_iter()
            .enumerate()
            .map(|(me, transport)| WorkerComm {
                me,
                round: 0,
                backend: Backend::Custom(transport),
                faults: fault_for(me),
                skipped: Vec::new(),
                bytes_sent: 0,
                io_retries: 0,
            })
            .collect()),
    }
}

/// Monotonic nonce for temp-dir names (avoids collisions between
/// concurrently running fabrics in one process, e.g. parallel tests).
pub(crate) fn unique_nonce() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NONCE: AtomicU64 = AtomicU64::new(1);
    NONCE.fetch_add(1, Ordering::Relaxed)
}

impl WorkerComm {
    /// This worker's index.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Rounds completed so far (= the index of the round in progress).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Messages skipped with a report so far (corrupted/undecodable).
    pub fn skipped(&self) -> &[SkippedMessage] {
        &self.skipped
    }

    /// True when the fault plan schedules a panic for this worker in
    /// `round` (consulted by the worker loop; the round is explicit
    /// because the async mode numbers bursts itself).
    pub fn panic_scheduled(&self, round: usize) -> bool {
        self.faults.panic_scheduled(round)
    }

    /// Fire the scheduled panic (separated from the check so the worker
    /// loop can account the round first).
    pub fn fire_scheduled_panic(&self, round: usize) {
        self.faults.fire_panic(round, self.me);
    }

    /// Injected wall-clock delay before this round's sends, if any.
    pub fn scheduled_delay(&self, round: usize) -> Option<Duration> {
        self.faults.send_delay(round)
    }

    /// Run `op` with bounded retry + exponential backoff on transient IO
    /// errors; consult the fault plan for injected failures first.
    fn retry_io<T>(
        faults: &mut FaultState,
        io_retries: &mut u64,
        round: usize,
        worker: usize,
        is_send: bool,
        path: Option<&PathBuf>,
        mut op: impl FnMut() -> std::io::Result<T>,
    ) -> Result<T, CommError> {
        // The same capped-exponential pacing the TCP transport uses for
        // its connect retries (`backoff`): one discipline, two fabrics.
        let mut backoff = Backoff::new(RETRY_BASE, RETRY_CAP);
        let mut last: Option<std::io::Error> = None;
        for attempt in 1..=RETRY_ATTEMPTS {
            let injected = if is_send {
                faults.take_send_io(round)
            } else {
                faults.take_collect_io(round)
            };
            let result = if injected {
                Err(std::io::Error::new(
                    ErrorKind::Interrupted,
                    "injected transient IO fault",
                ))
            } else {
                op()
            };
            match result {
                Ok(v) => return Ok(v),
                Err(e) if transient(e.kind()) && attempt < RETRY_ATTEMPTS => {
                    *io_retries += 1;
                    last = Some(e);
                    backoff.sleep();
                }
                Err(e) => {
                    return Err(CommError::Io {
                        round,
                        worker,
                        path: path.cloned(),
                        kind: e.kind(),
                        detail: e.to_string(),
                        attempts: attempt,
                    });
                }
            }
        }
        // All attempts were transient failures.
        let (kind, detail) = last
            .map(|e| (e.kind(), e.to_string()))
            .unwrap_or((ErrorKind::Other, "exhausted retries".to_string()));
        Err(CommError::Io {
            round,
            worker,
            path: path.cloned(),
            kind,
            detail,
            attempts: RETRY_ATTEMPTS,
        })
    }

    /// Send a batch to worker `to`. Must happen before the round barrier.
    ///
    /// File mode writes atomically (temp file + rename) and retries
    /// transient IO errors; a persistent failure comes back as
    /// [`CommError::Io`]. Channel mode reports a dead receiver as
    /// [`CommError::Disconnected`].
    pub fn send(&mut self, to: usize, batch: &[Triple]) -> Result<(), CommError> {
        if batch.is_empty() {
            return Ok(());
        }
        let round = self.round;
        let me = self.me;
        match &mut self.backend {
            Backend::Channel { senders, .. } => {
                // Injected transient faults exercise the same retry path
                // the file transport uses.
                Self::retry_io(
                    &mut self.faults,
                    &mut self.io_retries,
                    round,
                    me,
                    true,
                    None,
                    || Ok(()),
                )?;
                match senders.get(to) {
                    Some(s) if s.send(batch.to_vec()).is_ok() => {
                        self.bytes_sent += (batch.len() * 12) as u64;
                        Ok(())
                    }
                    _ => Err(CommError::Disconnected {
                        round,
                        from: me,
                        to,
                    }),
                }
            }
            Backend::Custom(transport) => {
                // Injected transient faults exercise the same retry path
                // the file transport uses; real wire failures are the
                // transport's own (it retries connects internally, but a
                // broken established stream is not retryable).
                Self::retry_io(
                    &mut self.faults,
                    &mut self.io_retries,
                    round,
                    me,
                    true,
                    None,
                    || Ok(()),
                )?;
                self.bytes_sent += transport.send(round, to, batch)?;
                Ok(())
            }
            Backend::File {
                dir, dict, format, ..
            } => {
                let path = dir.join(format!("r{}_f{}_t{}.msg", round, me, to));
                let mut bytes = match format {
                    WireFormat::Binary => encode_batch(batch),
                    WireFormat::NTriples => {
                        let mut text = String::new();
                        for t in batch {
                            match (dict.term(t.s), dict.term(t.p), dict.term(t.o)) {
                                (Some(s), Some(p), Some(o)) => {
                                    text.push_str(&format!("{s} {p} {o} .\n"));
                                }
                                _ => {
                                    // A triple whose id escaped the frozen
                                    // dictionary cannot be serialized;
                                    // skip it with a report rather than
                                    // poisoning the whole batch.
                                    self.skipped.push(SkippedMessage {
                                        round,
                                        worker: me,
                                        origin: format!("outbound to {to}"),
                                        reason: format!(
                                            "triple {t} has ids outside the frozen dictionary"
                                        ),
                                    });
                                }
                            }
                        }
                        text.into_bytes()
                    }
                };
                if let Some(truncate_only) = self.faults.mangle(round, to) {
                    let half = bytes.len() / 2;
                    bytes.truncate(half.max(1));
                    if !truncate_only {
                        for b in &mut bytes {
                            *b ^= 0xa5;
                        }
                    }
                }
                if bytes.is_empty() {
                    // Every triple of the batch was skipped during
                    // serialization; a healthy peer never writes a
                    // zero-length message (collect rejects them).
                    return Ok(());
                }
                self.bytes_sent += bytes.len() as u64;
                Self::retry_io(
                    &mut self.faults,
                    &mut self.io_retries,
                    round,
                    me,
                    true,
                    Some(&path),
                    // The shared temp+rename discipline (`durable`): a
                    // crashed sender leaves only `.tmp` debris, which
                    // `collect` never picks up.
                    || crate::durable::atomic_write(&path, &bytes),
                )
            }
        }
    }

    /// Non-blocking drain for the asynchronous mode (paper §VI-B: "by
    /// making a partition not wait till all other partitions finish, but
    /// rather start immediately using all the currently received tuples").
    /// Channel transport only — the file transport is inherently
    /// round-structured, and asking it to drain asynchronously is a
    /// configuration error ([`CommError::Unsupported`]).
    pub fn try_collect(&mut self) -> Result<Vec<Triple>, CommError> {
        match &mut self.backend {
            Backend::Channel { receiver, .. } => {
                let mut out = Vec::new();
                while let Ok(batch) = receiver.try_recv() {
                    out.extend(batch);
                }
                Ok(out)
            }
            Backend::File { .. } => Err(CommError::Unsupported {
                detail: "asynchronous draining requires the channel transport",
            }),
            Backend::Custom(transport) => transport.try_collect(),
        }
    }

    /// Drain every message addressed to this worker this round. Must be
    /// called after the round barrier. Advances to the next round.
    ///
    /// Corrupted, truncated or undecodable messages are skipped with a
    /// [`SkippedMessage`] report (see [`WorkerComm::skipped`]); only a
    /// persistent IO failure aborts the collect.
    pub fn collect(&mut self) -> Result<Vec<Triple>, CommError> {
        let round = self.round;
        let me = self.me;
        let out = match &mut self.backend {
            Backend::Channel { receiver, .. } => {
                let mut out = Vec::new();
                while let Ok(batch) = receiver.try_recv() {
                    out.extend(batch);
                }
                out
            }
            Backend::Custom(transport) => {
                let out = transport.collect(round)?;
                self.skipped.extend(transport.take_skipped());
                out
            }
            Backend::File {
                dir, dict, format, ..
            } => {
                let mut out = Vec::new();
                let prefix = format!("r{round}_");
                let suffix = format!("_t{me}.msg");
                let dir_path = dir.clone();
                let entries = Self::retry_io(
                    &mut self.faults,
                    &mut self.io_retries,
                    round,
                    me,
                    false,
                    Some(&dir_path),
                    || {
                        std::fs::read_dir(&dir_path)
                            .and_then(|rd| rd.collect::<std::io::Result<Vec<_>>>())
                    },
                )?;
                for entry in entries {
                    let name = entry.file_name();
                    let name = name.to_string_lossy().into_owned();
                    if !name.starts_with(&prefix) || !name.ends_with(&suffix) {
                        continue; // foreign file: not ours, not this round
                    }
                    let path = entry.path();
                    // Bounds-check the file length before reading: the
                    // same check the serving wire codec applies to its
                    // length prefix. A zero-length or oversized message
                    // is skipped with a report, not read into memory.
                    if let Ok(meta) = entry.metadata() {
                        if let Err(bounds) = check_payload_bounds(meta.len()) {
                            self.skipped.push(SkippedMessage {
                                round,
                                worker: me,
                                origin: name.clone(),
                                reason: bounds.to_string(),
                            });
                            let _ = std::fs::remove_file(&path);
                            continue;
                        }
                    }
                    let bytes = match Self::retry_io(
                        &mut self.faults,
                        &mut self.io_retries,
                        round,
                        me,
                        false,
                        Some(&path),
                        || std::fs::read(&path),
                    ) {
                        Ok(b) => b,
                        Err(CommError::Io { kind, detail, .. }) => {
                            // One unreadable message file must not poison
                            // the round: skip it with a report.
                            self.skipped.push(SkippedMessage {
                                round,
                                worker: me,
                                origin: name.clone(),
                                reason: format!("unreadable after retries: {detail} ({kind:?})"),
                            });
                            let _ = std::fs::remove_file(&path);
                            continue;
                        }
                        Err(e) => return Err(e),
                    };
                    match format {
                        WireFormat::Binary => {
                            if bytes.len() % 12 != 0 {
                                self.skipped.push(SkippedMessage {
                                    round,
                                    worker: me,
                                    origin: name.clone(),
                                    reason: format!(
                                        "truncated binary payload ({} bytes)",
                                        bytes.len()
                                    ),
                                });
                            }
                            let n_terms = dict.len() as u32;
                            for t in decode_batch(&bytes) {
                                if t.s.0 < n_terms && t.p.0 < n_terms && t.o.0 < n_terms {
                                    out.push(t);
                                } else {
                                    self.skipped.push(SkippedMessage {
                                        round,
                                        worker: me,
                                        origin: name.clone(),
                                        reason: format!(
                                            "decoded triple {t} has ids outside the dictionary"
                                        ),
                                    });
                                }
                            }
                        }
                        WireFormat::NTriples => match String::from_utf8(bytes) {
                            Err(_) => {
                                self.skipped.push(SkippedMessage {
                                    round,
                                    worker: me,
                                    origin: name.clone(),
                                    reason: "payload is not valid UTF-8".into(),
                                });
                            }
                            Ok(text) => {
                                let mut tmp = Graph::new();
                                match parse_ntriples(&text, &mut tmp) {
                                    Err(e) => {
                                        self.skipped.push(SkippedMessage {
                                            round,
                                            worker: me,
                                            origin: name.clone(),
                                            reason: format!("malformed N-Triples: {e}"),
                                        });
                                    }
                                    Ok(_) => {
                                        for t in tmp.store.iter() {
                                            let (s, p, o) = tmp.decode(*t);
                                            match (dict.id(&s), dict.id(&p), dict.id(&o)) {
                                                (Some(s), Some(p), Some(o)) => {
                                                    out.push(Triple::new(s, p, o));
                                                }
                                                _ => {
                                                    self.skipped.push(SkippedMessage {
                                                        round,
                                                        worker: me,
                                                        origin: name.clone(),
                                                        reason: format!(
                                                            "term of ({s} {p} {o}) not in the frozen dictionary"
                                                        ),
                                                    });
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        },
                    }
                    let _ = std::fs::remove_file(&path);
                }
                out
            }
        };
        self.round += 1;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::fault::FaultKind;
    use owlpar_rdf::NodeId;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    fn dict_with(n: u32) -> Arc<Dictionary> {
        let mut d = Dictionary::new();
        for i in 0..n {
            d.intern_iri(format!("http://x/n{i}"));
        }
        Arc::new(d)
    }

    #[test]
    fn channel_roundtrip() {
        let mut fabric = build_fabric(2, &CommMode::Channel, dict_with(10)).unwrap();
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        w0.send(1, &[t(1, 2, 3), t(4, 5, 6)]).unwrap();
        w1.send(0, &[t(7, 8, 9)]).unwrap();
        assert_eq!(w1.collect().unwrap(), vec![t(1, 2, 3), t(4, 5, 6)]);
        assert_eq!(w0.collect().unwrap(), vec![t(7, 8, 9)]);
        // next round: nothing pending
        assert!(w0.collect().unwrap().is_empty());
    }

    #[test]
    fn channel_empty_batch_not_sent() {
        let mut fabric = build_fabric(2, &CommMode::Channel, dict_with(1)).unwrap();
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        w0.send(1, &[]).unwrap();
        assert_eq!(w0.bytes_sent, 0);
        assert!(w1.collect().unwrap().is_empty());
    }

    #[test]
    fn channel_dead_receiver_is_disconnected_not_panic() {
        let mut fabric = build_fabric(2, &CommMode::Channel, dict_with(10)).unwrap();
        let w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        drop(w1); // worker 1 died
        let err = w0.send(1, &[t(1, 2, 3)]).unwrap_err();
        assert!(matches!(err, CommError::Disconnected { to: 1, .. }));
    }

    fn file_mode(format: WireFormat) -> CommMode {
        CommMode::SharedFile { dir: None, format }
    }

    #[test]
    fn file_binary_roundtrip() {
        let mut fabric = build_fabric(3, &file_mode(WireFormat::Binary), dict_with(10)).unwrap();
        let mut w2 = fabric.pop().unwrap();
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        w0.send(2, &[t(1, 2, 3)]).unwrap();
        w1.send(2, &[t(4, 5, 6)]).unwrap();
        let mut got = w2.collect().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![t(1, 2, 3), t(4, 5, 6)]);
        assert!(w0.collect().unwrap().is_empty());
        assert!(w1.collect().unwrap().is_empty());
    }

    #[test]
    fn file_ntriples_roundtrip_via_dictionary() {
        let dict = dict_with(10);
        let mut fabric =
            build_fabric(2, &file_mode(WireFormat::NTriples), Arc::clone(&dict)).unwrap();
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        w0.send(1, &[t(0, 1, 2), t(3, 4, 5)]).unwrap();
        assert!(w0.bytes_sent > 24, "text encoding is bigger than binary");
        let mut got = w1.collect().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![t(0, 1, 2), t(3, 4, 5)]);
    }

    #[test]
    fn file_rounds_are_isolated() {
        let mut fabric = build_fabric(2, &file_mode(WireFormat::Binary), dict_with(4)).unwrap();
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        // round 0
        w0.send(1, &[t(0, 1, 2)]).unwrap();
        assert_eq!(w1.collect().unwrap(), vec![t(0, 1, 2)]);
        let _ = w0.collect().unwrap();
        // round 1: a message from round 0 must not reappear
        w0.send(1, &[t(1, 2, 3)]).unwrap();
        assert_eq!(w1.collect().unwrap(), vec![t(1, 2, 3)]);
    }

    #[test]
    fn ntriples_mode_counts_more_bytes_than_binary() {
        let dict = dict_with(10);
        let batch = [t(0, 1, 2), t(3, 4, 5), t(6, 7, 8)];
        let mut nt = build_fabric(2, &file_mode(WireFormat::NTriples), Arc::clone(&dict)).unwrap();
        let mut bin = build_fabric(2, &file_mode(WireFormat::Binary), dict).unwrap();
        nt[0].send(1, &batch).unwrap();
        bin[0].send(1, &batch).unwrap();
        assert!(nt[0].bytes_sent > bin[0].bytes_sent * 3);
    }

    /// Shared dir for tests that need to reach into the directory
    /// themselves (cleaned up manually — explicit dirs are not
    /// auto-removed).
    fn explicit_dir() -> PathBuf {
        let mut d = std::env::temp_dir();
        d.push(format!(
            "owlpar-comm-test-{}-{:x}",
            std::process::id(),
            unique_nonce()
        ));
        d
    }

    #[test]
    fn auto_temp_dir_removed_when_last_endpoint_drops() {
        let dict = dict_with(4);
        let mut fabric = build_fabric(2, &file_mode(WireFormat::Binary), dict).unwrap();
        let dir = match &fabric[0].backend {
            Backend::File { dir, .. } => dir.clone(),
            _ => unreachable!(),
        };
        assert!(dir.exists(), "fabric created its temp dir");
        fabric[0].send(1, &[t(0, 1, 2)]).unwrap();
        let w1 = fabric.pop().unwrap();
        drop(w1);
        assert!(dir.exists(), "dir survives while an endpoint remains");
        drop(fabric);
        assert!(!dir.exists(), "last endpoint removes the dir");
    }

    #[test]
    fn explicit_dir_not_removed_on_drop() {
        let dir = explicit_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let mode = CommMode::SharedFile {
            dir: Some(dir.clone()),
            format: WireFormat::Binary,
        };
        let fabric = build_fabric(2, &mode, dict_with(4)).unwrap();
        drop(fabric);
        assert!(dir.exists(), "user-provided dirs are the user's to manage");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_file_dropped_mid_round_is_skipped_with_report() {
        // The satellite regression: a garbage file lands in the shared
        // dir mid-round. collect() must skip it with a report instead of
        // panicking, and still deliver the well-formed message.
        let dir = explicit_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let mode = CommMode::SharedFile {
            dir: Some(dir.clone()),
            format: WireFormat::NTriples,
        };
        let dict = dict_with(10);
        let mut fabric = build_fabric(2, &mode, dict).unwrap();
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        w0.send(1, &[t(0, 1, 2)]).unwrap();
        // mid-round garbage addressed to worker 1: invalid UTF-8 bytes
        std::fs::write(dir.join("r0_f9_t1.msg"), [0xff, 0xfe, 0x00, 0x80]).unwrap();
        // and a syntactically broken N-Triples file
        std::fs::write(dir.join("r0_f8_t1.msg"), "<no closing bracket .\n").unwrap();
        // and a foreign file that matches no message pattern at all
        std::fs::write(dir.join("README.txt"), "not a message").unwrap();
        let got = w1.collect().unwrap();
        assert_eq!(got, vec![t(0, 1, 2)], "good message still delivered");
        assert_eq!(w1.skipped().len(), 2, "both garbage files reported");
        assert!(w1.skipped().iter().any(|s| s.reason.contains("UTF-8")));
        assert!(w1
            .skipped()
            .iter()
            .any(|s| s.reason.contains("malformed N-Triples")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_terms_in_ntriples_skipped_with_report() {
        let dir = explicit_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let mode = CommMode::SharedFile {
            dir: Some(dir.clone()),
            format: WireFormat::NTriples,
        };
        let mut fabric = build_fabric(2, &mode, dict_with(4)).unwrap();
        let mut w1 = fabric.pop().unwrap();
        // a well-formed message whose terms the frozen dictionary has
        // never seen
        std::fs::write(
            dir.join("r0_f0_t1.msg"),
            "<http://alien/a> <http://alien/b> <http://alien/c> .\n",
        )
        .unwrap();
        let got = w1.collect().unwrap();
        assert!(got.is_empty());
        assert_eq!(w1.skipped().len(), 1);
        assert!(w1.skipped()[0].reason.contains("frozen dictionary"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_binary_skipped_with_report_keeps_whole_triples() {
        let dir = explicit_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let mode = CommMode::SharedFile {
            dir: Some(dir.clone()),
            format: WireFormat::Binary,
        };
        let mut fabric = build_fabric(2, &mode, dict_with(10)).unwrap();
        let mut w1 = fabric.pop().unwrap();
        let mut bytes = encode_batch(&[t(0, 1, 2), t(3, 4, 5)]);
        bytes.truncate(18); // cut the second triple in half
        std::fs::write(dir.join("r0_f0_t1.msg"), bytes).unwrap();
        let got = w1.collect().unwrap();
        assert_eq!(got, vec![t(0, 1, 2)], "intact prefix still delivered");
        assert_eq!(w1.skipped().len(), 1);
        assert!(w1.skipped()[0].reason.contains("truncated"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_ids_outside_dictionary_skipped() {
        let dir = explicit_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let mode = CommMode::SharedFile {
            dir: Some(dir.clone()),
            format: WireFormat::Binary,
        };
        let mut fabric = build_fabric(2, &mode, dict_with(4)).unwrap();
        let mut w1 = fabric.pop().unwrap();
        let bytes = encode_batch(&[t(0, 1, 2), t(9999, 1, 2)]);
        std::fs::write(dir.join("r0_f0_t1.msg"), bytes).unwrap();
        let got = w1.collect().unwrap();
        assert_eq!(got, vec![t(0, 1, 2)]);
        assert_eq!(w1.skipped().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_length_message_skipped_with_report() {
        let dir = explicit_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let mode = CommMode::SharedFile {
            dir: Some(dir.clone()),
            format: WireFormat::Binary,
        };
        let mut fabric = build_fabric(2, &mode, dict_with(10)).unwrap();
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        w0.send(1, &[t(0, 1, 2)]).unwrap();
        std::fs::write(dir.join("r0_f9_t1.msg"), []).unwrap();
        let got = w1.collect().unwrap();
        assert_eq!(got, vec![t(0, 1, 2)], "good message still delivered");
        assert_eq!(w1.skipped().len(), 1);
        assert!(w1.skipped()[0].reason.contains("zero-length"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_message_skipped_without_reading_it() {
        let dir = explicit_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let mode = CommMode::SharedFile {
            dir: Some(dir.clone()),
            format: WireFormat::Binary,
        };
        let mut fabric = build_fabric(2, &mode, dict_with(10)).unwrap();
        let mut w1 = fabric.pop().unwrap();
        // A sparse file one byte over the bound — created instantly,
        // never read by collect.
        let f = std::fs::File::create(dir.join("r0_f0_t1.msg")).unwrap();
        f.set_len(MAX_PAYLOAD_BYTES + 1).unwrap();
        drop(f);
        let got = w1.collect().unwrap();
        assert!(got.is_empty());
        assert_eq!(w1.skipped().len(), 1);
        assert!(w1.skipped()[0].reason.contains("exceeds"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn payload_bounds_shared_check() {
        assert_eq!(check_payload_bounds(0), Err(PayloadBoundsError::Empty));
        assert!(check_payload_bounds(1).is_ok());
        assert!(check_payload_bounds(MAX_PAYLOAD_BYTES).is_ok());
        assert!(matches!(
            check_payload_bounds(MAX_PAYLOAD_BYTES + 1),
            Err(PayloadBoundsError::Oversized { .. })
        ));
    }

    #[test]
    fn injected_transient_send_faults_are_retried_through() {
        let plan = FaultPlan::new().with(0, 0, FaultKind::SendIo { failures: 2 });
        let dict = dict_with(10);
        let mut fabric = build_fabric_with_faults(
            2,
            &file_mode(WireFormat::Binary),
            dict,
            Some(&plan),
        )
        .unwrap();
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        w0.send(1, &[t(1, 2, 3)]).unwrap();
        assert_eq!(w0.io_retries, 2, "two injected failures absorbed");
        assert_eq!(w1.collect().unwrap(), vec![t(1, 2, 3)]);
    }

    #[test]
    fn injected_persistent_send_fault_surfaces_typed_error() {
        let plan = FaultPlan::new().with(
            0,
            0,
            FaultKind::SendIo {
                failures: RETRY_ATTEMPTS,
            },
        );
        let dict = dict_with(10);
        let mut fabric = build_fabric_with_faults(
            2,
            &file_mode(WireFormat::Binary),
            dict,
            Some(&plan),
        )
        .unwrap();
        let mut w0 = fabric.swap_remove(0);
        let err = w0.send(1, &[t(1, 2, 3)]).unwrap_err();
        assert!(matches!(
            err,
            CommError::Io {
                round: 0,
                worker: 0,
                attempts: RETRY_ATTEMPTS,
                ..
            }
        ));
    }

    #[test]
    fn injected_corruption_is_skipped_with_report() {
        let plan = FaultPlan::new().with(0, 0, FaultKind::Corrupt { to: 1 });
        let dict = dict_with(10);
        let mut fabric = build_fabric_with_faults(
            2,
            &file_mode(WireFormat::NTriples),
            dict,
            Some(&plan),
        )
        .unwrap();
        let mut w1 = fabric.pop().unwrap();
        let mut w0 = fabric.pop().unwrap();
        w0.send(1, &[t(0, 1, 2)]).unwrap();
        let got = w1.collect().unwrap();
        assert!(got.is_empty(), "corrupted payload must not decode");
        assert_eq!(w1.skipped().len(), 1);
    }

    #[test]
    fn async_drain_on_file_transport_is_typed_error() {
        let mut fabric = build_fabric(2, &file_mode(WireFormat::Binary), dict_with(4)).unwrap();
        assert!(matches!(
            fabric[0].try_collect(),
            Err(CommError::Unsupported { .. })
        ));
    }
}
